// Ablation 2 (paper Sec 4, difference (2)): three-category classification
// (stable-0 / unstable / stable-1) vs the traditional two-category 0.5
// threshold.
//
// With the 0.5 threshold every challenge is usable, but responses near the
// boundary flip; with three categories the marginal band is discarded and
// the remaining CRPs are error-free even at V/T corners. This bench
// measures one-shot response error rates at every corner for both schemes.
#include <cstdio>

#include "bench_common.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "abl2_threshold_categories",
                                "Ablation 2: three-category thresholds vs binary 0.5 threshold");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

  // Calibrate betas over the grid (the deployment configuration).
  const std::size_t eval_n = std::min<std::size_t>(scale.challenges, 8'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng));
  model.set_betas(puf::find_betas(model, blocks).betas);

  const std::size_t test_n = std::min<std::size_t>(scale.challenges, 20'000);

  Table t("One-shot response error rate of PUF 0's model prediction");
  t.set_header({"corner", "binary@0.5 (all CRPs)", "3-category (selected CRPs)",
                "selected fraction"});
  CsvWriter csv(benchutil::out_dir() + "/abl2_threshold_categories.csv",
                {"corner", "binary_error", "selected_error", "selected_fraction"});

  for (const auto& env : sim::paper_corner_grid()) {
    std::size_t binary_err = 0;
    std::size_t sel_total = 0, sel_err = 0;
    Rng crng(2020);
    for (std::size_t i = 0; i < test_n; ++i) {
      const auto c = puf::random_challenge(chip.stages(), crng);
      const double pred = model.predict_soft(0, c);
      const bool predicted_bit = pred > 0.5;
      // One-shot device evaluation at this corner.
      const bool device_bit = chip.device_for_analysis(0).evaluate(c, env, rng);
      if (predicted_bit != device_bit) ++binary_err;
      const puf::StableClass cls = model.adjusted_thresholds(0).classify(pred);
      if (cls != puf::StableClass::kUnstable) {
        ++sel_total;
        const bool sel_bit = cls == puf::StableClass::kStable1;
        if (sel_bit != device_bit) ++sel_err;
      }
    }
    t.add_row({env.label(),
               Table::pct(static_cast<double>(binary_err) / static_cast<double>(test_n), 3),
               sel_total > 0 ? Table::pct(static_cast<double>(sel_err) / static_cast<double>(sel_total), 4)
                             : "n/a",
               Table::pct(static_cast<double>(sel_total) / static_cast<double>(test_n), 1)});
    csv.write_row(std::vector<double>{
        env.voltage * 1000 + env.temperature,  // encoded corner key
        static_cast<double>(binary_err) / static_cast<double>(test_n),
        sel_total > 0 ? static_cast<double>(sel_err) / static_cast<double>(sel_total) : 0.0,
        static_cast<double>(sel_total) / static_cast<double>(test_n)});
    std::fprintf(stderr, "  [abl2] %s done\n", env.label().c_str());
  }
  t.print();
  std::printf("\ntakeaway: the binary threshold leaves a persistent error floor from "
              "marginal CRPs; discarding the unstable band buys (near-)zero error at "
              "the cost of yield — the enabler of the zero-HD criterion.\n");
  return 0;
}
