// Reproduces paper Fig 12: probability of stable CRPs versus XOR width n
// for three selection regimes:
//   (a) measured at nominal            (paper: ~0.800^n, 10.9% at n=10)
//   (b) model-predicted, nominal betas (paper: ~0.545^n, 0.238% at n=10)
//   (c) model-predicted, V/T betas     (paper: ~0.342^n, 0.000213% at n=10)
// All curves are exponential in n — negligible inter-PUF correlation — and
// the paper's point stands: even the tiny V/T-safe fraction of a 64-stage
// challenge space (2^64 challenges) leaves ~3.9e13 usable CRPs.
#include <cmath>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig12_stable_predicted",
                                "Fig 12: stable-CRP probability vs n under three regimes");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);
  const std::size_t max_n = 10;

  // (a) measured at nominal.
  const auto measured = analysis::measured_stable_vs_n(
      chip, max_n, std::min<std::size_t>(scale.challenges, scale.full ? scale.challenges : 50'000),
      scale.trials, sim::Environment::nominal(), rng);

  // Enroll + nominal betas.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const std::size_t eval_n =
      scale.full ? 100'000 : std::min<std::size_t>(scale.challenges, 10'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
  const auto nominal_block = puf::measure_evaluation_block(
      chip, eval_challenges, sim::Environment::nominal(), scale.trials, rng);
  const auto nominal_betas = puf::find_betas(model, {nominal_block}).betas;

  // V/T betas over the 9-corner grid.
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng));
  const auto vt_betas = puf::find_betas(model, blocks).betas;

  // (b)/(c) predicted-stable curves. The deep-n fractions are tiny, so use a
  // large prediction-only sweep (no device measurements -> cheap).
  const std::size_t predict_n = scale.full ? 2'000'000 : 400'000;
  model.set_betas(nominal_betas);
  const auto pred_nominal = analysis::predicted_stable_vs_n(model, max_n, predict_n, rng);
  model.set_betas(vt_betas);
  const auto pred_vt = analysis::predicted_stable_vs_n(model, max_n, predict_n, rng);

  Table t("Fig 12: % stable CRPs vs n (paper bases: 0.800 / 0.545 / 0.342)");
  t.set_header({"n", "measured (nominal)", "predicted (nominal V,T)",
                "predicted (all V,T)"});
  CsvWriter csv(benchutil::out_dir() + "/fig12_stable_predicted.csv",
                {"n", "measured", "predicted_nominal", "predicted_vt"});
  for (std::size_t n = 1; n <= max_n; ++n) {
    t.add_row({std::to_string(n), Table::pct(measured[n - 1], 3),
               Table::pct(pred_nominal[n - 1], 3), Table::pct(pred_vt[n - 1], 4)});
    csv.write_row(std::vector<double>{static_cast<double>(n), measured[n - 1],
                                      pred_nominal[n - 1], pred_vt[n - 1]});
  }
  t.print();

  const double base_m = analysis::fit_exponential_base(measured);
  const double base_n = analysis::fit_exponential_base(pred_nominal);
  const double base_v = analysis::fit_exponential_base(pred_vt);
  std::printf("\nexponential bases: measured %.3f (paper 0.800), predicted-nominal "
              "%.3f (paper 0.545), predicted-V/T %.3f (paper 0.342)\n",
              base_m, base_n, base_v);
  std::printf("betas: nominal %.2f/%.2f, all-V/T %.2f/%.2f\n", nominal_betas.beta0,
              nominal_betas.beta1, vt_betas.beta0, vt_betas.beta1);
  const double vt10 = pred_vt[max_n - 1] > 0.0 ? pred_vt[max_n - 1]
                                               : std::pow(base_v, 10.0);
  std::printf("usable 64-stage CRP space at n=10 under V/T betas: ~%.2e of 2^64 = "
              "%.2e challenges (paper: 0.000213%% -> 3.93e13)\n",
              vt10, vt10 * std::pow(2.0, 64.0));
  std::printf("CSV written: %s\n", csv.path().c_str());
  return 0;
}
