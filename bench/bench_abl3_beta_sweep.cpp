// Ablation 3: the beta safety-margin tradeoff (paper Sec 5's design knob).
//
// Sweeping beta0 down / beta1 up trades usable-CRP yield against residual
// instability among selected CRPs. The paper picks the first beta pair with
// zero violations; this bench shows the whole frontier, including the
// trivial "extremely stringent" corner (0.0 / inf analog) the paper rejects
// for discarding too many CRPs.
#include <cstdio>

#include "bench_common.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "abl3_beta_sweep",
                                "Ablation 3: yield vs residual instability over the beta grid");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);
  const std::size_t n_pufs = chip.puf_count();

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

  // Evaluation data at the worst corners plus nominal.
  const std::size_t eval_n = std::min<std::size_t>(scale.challenges, 8'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env :
       {sim::Environment::nominal(), sim::Environment{0.8, 0.0}, sim::Environment{0.8, 60.0},
        sim::Environment{1.0, 0.0}, sim::Environment{1.0, 60.0}})
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng));

  const std::vector<double> beta0s{1.00, 0.95, 0.90, 0.80, 0.70, 0.55, 0.40};
  const std::vector<double> beta1s{1.00, 1.05, 1.10, 1.20, 1.30, 1.45, 1.60};

  Table t("Yield (% of CRPs predicted usable, n=" + std::to_string(n_pufs) +
          ") and residual violations over " + std::to_string(blocks.size()) +
          " corners");
  t.set_header({"beta0", "beta1", "yield", "violating CRPs", "violation rate"});
  CsvWriter csv(benchutil::out_dir() + "/abl3_beta_sweep.csv",
                {"beta0", "beta1", "yield", "violations", "violation_rate"});

  for (std::size_t k = 0; k < beta0s.size(); ++k) {
    const puf::BetaFactors betas{beta0s[k], beta1s[k]};
    model.set_betas(betas);

    // Yield on fresh random challenges.
    Rng yrng(777);
    const std::size_t yield_n = 20'000;
    std::size_t usable = 0;
    for (std::size_t i = 0; i < yield_n; ++i)
      if (model.all_stable(puf::random_challenge(chip.stages(), yrng), n_pufs)) ++usable;

    // Residual violations among selected CRPs on the evaluation blocks.
    std::size_t selected = 0, violations = 0;
    for (const auto& block : blocks) {
      for (std::size_t c = 0; c < block.challenges.size(); ++c) {
        for (std::size_t p = 0; p < n_pufs; ++p) {
          const puf::StableClass cls = model.classify(p, block.challenges[c]);
          if (cls == puf::StableClass::kUnstable) continue;
          ++selected;
          const double soft = block.soft[p][c];
          const bool ok = (cls == puf::StableClass::kStable0 && soft == 0.0) ||
                          (cls == puf::StableClass::kStable1 && soft == 1.0);
          if (!ok) ++violations;
        }
      }
    }
    const double vrate =
        selected > 0 ? static_cast<double>(violations) / static_cast<double>(selected)
                     : 0.0;
    t.add_row({Table::num(betas.beta0, 2), Table::num(betas.beta1, 2),
               Table::pct(static_cast<double>(usable) / yield_n, 3),
               std::to_string(violations), Table::sci(vrate, 2)});
    csv.write_row(std::vector<double>{betas.beta0, betas.beta1,
                                      static_cast<double>(usable) / yield_n,
                                      static_cast<double>(violations), vrate});
  }
  t.print();
  std::printf("\ntakeaway: the violation rate falls ~orders of magnitude per beta "
              "step while yield falls more slowly in relative terms; at n=%zu the "
              "clean point costs most of the raw yield, but even a 0.005%% yield of "
              "a 64-stage space leaves ~9e14 usable challenges — the paper's Sec 5.2 "
              "argument for why the stringent operating point is affordable.\n",
              n_pufs);
  return 0;
}
