// Reproduces paper Fig 8: comparison between measured soft responses and
// model-predicted soft responses on the enrollment training set, and the
// extraction of the Thr('0')/Thr('1') classification thresholds.
//
// Paper observations: measured soft responses live in [0, 1] with heavy mass
// at the extremes; predictions have a wider range but stay centered at 0.5;
// some CRPs stable in measurement fall between the thresholds and are
// deliberately discarded as marginal.
#include <cstdio>

#include "analysis/histogram.hpp"
#include "bench_common.hpp"
#include "puf/enrollment.hpp"
#include "puf/transform.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig08_threshold_extraction",
                                "Fig 8: measured vs model-predicted soft response, 5,000 CRPs");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();

  const std::size_t train_n = static_cast<std::size_t>(bench.cli().get_int("train", 5'000));
  sim::ChipTester tester(sim::Environment::nominal(), scale.trials, rng.fork());
  const auto challenges = tester.random_challenges(pop.chip(0), train_n);
  const auto scan = tester.scan_individual(pop.chip(0), challenges);

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = train_n;
  ecfg.trials = scale.trials;
  const puf::ServerModel model = puf::Enroller(ecfg).enroll_from_scan(0, scan);

  // Work with PUF 0, exactly like the paper's single-PUF figure.
  const auto& enrollment = model.puf(0);
  std::vector<double> predicted(train_n);
  for (std::size_t i = 0; i < train_n; ++i)
    predicted[i] = enrollment.model.predict_raw(challenges[i]);
  const auto& measured = scan.soft[0];

  analysis::Histogram measured_hist(0.0, 1.0, 50);
  measured_hist.add_all(measured);
  analysis::Histogram predicted_hist(-0.6, 1.6, 55);
  predicted_hist.add_all(predicted);

  std::printf("measured soft responses (range [0, 1]):\n%s\n",
              measured_hist.render(50, 11).c_str());
  std::printf("model-predicted soft responses (wider range, centered at 0.5):\n%s\n",
              predicted_hist.render(50, 11).c_str());

  // Classification bookkeeping around the derived thresholds.
  std::size_t stable_meas = 0, stable_pred = 0, stable_meas_discarded = 0;
  for (std::size_t i = 0; i < train_n; ++i) {
    const bool m_stable = puf::measured_stable(measured[i]);
    const bool p_stable = enrollment.thresholds.is_stable(predicted[i]);
    stable_meas += m_stable;
    stable_pred += p_stable;
    stable_meas_discarded += (m_stable && !p_stable);
  }

  Table t("Fig 8: threshold extraction (PUF 0)");
  t.set_header({"quantity", "value"});
  t.add_row({"Thr('0')  lowest prediction with measured flips",
             Table::num(enrollment.thresholds.thr0, 4)});
  t.add_row({"Thr('1')  highest prediction with measured flips",
             Table::num(enrollment.thresholds.thr1, 4)});
  t.add_row({"training r^2 of the linear model", Table::num(enrollment.train_r_squared, 4)});
  t.add_row({"stable in measurement",
             Table::pct(static_cast<double>(stable_meas) / static_cast<double>(train_n), 2)});
  t.add_row({"stable in model (three-category)",
             Table::pct(static_cast<double>(stable_pred) / static_cast<double>(train_n), 2)});
  t.add_row({"stable in measurement but discarded as marginal",
             Table::pct(static_cast<double>(stable_meas_discarded) / static_cast<double>(train_n), 2)});
  t.print();

  CsvWriter csv(benchutil::out_dir() + "/fig08_pred_vs_measured.csv",
                {"predicted_soft", "measured_soft"});
  for (std::size_t i = 0; i < train_n; ++i)
    csv.write_row(std::vector<double>{predicted[i], measured[i]});
  std::printf("\nCSV written: %s\n", csv.path().c_str());
  return 0;
}
