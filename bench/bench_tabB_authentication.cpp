// Authentication outcome table (paper Secs 3 and 5, no single figure):
// zero-Hamming-distance authentication success of the model-assisted scheme
// across all 9 V/T corners, against two baselines:
//   - random challenges (traditional scheme, no stability selection),
//   - measurement-based selection at nominal only (prior art [1], which
//     cannot anticipate V/T drift without extra corner testing).
#include <cstdio>

#include "bench_common.hpp"
#include "puf/authentication.hpp"
#include "puf/database.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "tabB_authentication",
                                "Tab B: zero-HD authentication across V/T corners");
  const BenchScale& scale = bench.scale();

  const std::size_t n_pufs = 10;
  sim::ChipPopulation pop(benchutil::population_config(scale, n_pufs));
  Rng rng = pop.measurement_rng();
  auto& chip = pop.chip(0);

  // Enrollment + V/T beta adjustment.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const std::size_t eval_n =
      scale.full ? 50'000 : std::min<std::size_t>(scale.challenges, 8'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng));
  model.set_betas(puf::find_betas(model, blocks).betas);

  // Measurement-based baseline: CRPs measured 100% stable at nominal only.
  puf::MeasurementBasedSelector meas_sel(chip, sim::Environment::nominal(),
                                         scale.trials, n_pufs);
  const std::size_t batch_size = 64;
  const std::size_t rounds = scale.full ? 20 : 8;
  puf::SelectionResult meas_batch = meas_sel.select(batch_size, rng);

  puf::AuthenticationServer server(model, n_pufs, {.challenge_count = batch_size});

  // After selection/enrollment artifacts exist, deploy the chip.
  chip.blow_fuses();

  Table t("Tab B: mismatches per " + std::to_string(batch_size) +
          "-CRP batch, averaged over " + std::to_string(rounds) + " rounds");
  t.set_header({"corner", "model-selected", "pass rate", "random challenges",
                "pass rate", "meas.-selected@nominal", "pass rate"});
  CsvWriter csv(benchutil::out_dir() + "/tabB_authentication.csv",
                {"corner", "model_mismatch", "model_pass", "random_mismatch",
                 "random_pass", "meas_mismatch", "meas_pass"});

  for (const auto& env : sim::paper_corner_grid()) {
    double model_mis = 0, random_mis = 0, meas_mis = 0;
    std::size_t model_pass = 0, random_pass = 0, meas_pass = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto m = server.authenticate(chip, env, rng, /*model_selected=*/true);
      model_mis += static_cast<double>(m.mismatches);
      model_pass += m.approved;
      const auto rm = server.authenticate(chip, env, rng, /*model_selected=*/false);
      random_mis += static_cast<double>(rm.mismatches);
      random_pass += rm.approved;
      // Measurement-selected batch, one-shot sampled at this corner.
      std::size_t mm = 0;
      for (std::size_t i = 0; i < meas_batch.challenges.size(); ++i) {
        const bool resp = chip.xor_response(meas_batch.challenges[i], env, rng);
        if (resp != meas_batch.expected_responses[i]) ++mm;
      }
      meas_mis += static_cast<double>(mm);
      meas_pass += (mm == 0);
    }
    const double rd = static_cast<double>(rounds);
    t.add_row({env.label(), Table::num(model_mis / rd, 2),
               Table::pct(static_cast<double>(model_pass) / rd, 0), Table::num(random_mis / rd, 2),
               Table::pct(static_cast<double>(random_pass) / rd, 0), Table::num(meas_mis / rd, 2),
               Table::pct(static_cast<double>(meas_pass) / rd, 0)});
    csv.write_row(std::vector<std::string>{
        env.label(), Table::num(model_mis / rd, 3), Table::num(static_cast<double>(model_pass) / rd, 3),
        Table::num(random_mis / rd, 3), Table::num(static_cast<double>(random_pass) / rd, 3),
        Table::num(meas_mis / rd, 3), Table::num(static_cast<double>(meas_pass) / rd, 3)});
    std::fprintf(stderr, "  [tabB] %s done\n", env.label().c_str());
  }
  t.print();
  std::printf("\npaper claim: model-selected CRPs allow a zero-Hamming-distance "
              "criterion at every corner; random CRPs cannot (one-shot XOR sampling "
              "hits unstable responses), and nominal-only measured selection degrades "
              "once V/T moves.\n");

  // Replay-protection accounting: a server that reuses its issuance RNG seed
  // (restart, misconfiguration, or an adversary replaying a recorded session)
  // re-draws challenges already in the device's ledger. The database must
  // refuse them, refill the batch from fresh draws, and COUNT the rejections
  // — the per-device issuance signal that makes chosen-challenge probing
  // observable.
  puf::ServerDatabase db(
      puf::DatabaseConfig{.n_pufs = n_pufs, .policy = {.challenge_count = batch_size}, .screening = {}, .pool = {}});
  db.register_device(model);
  Rng first_session(424242);
  const puf::DatabaseAuthOutcome first =
      db.authenticate(chip, sim::Environment::nominal(), first_session);
  Rng replayed_session(424242);  // same seed: identical candidate stream
  const puf::DatabaseAuthOutcome second =
      db.authenticate(chip, sim::Environment::nominal(), replayed_session);
  std::printf("\nreplay ledger: first auth tried %zu candidates (0 replays), "
              "re-seeded second auth rejected %zu replayed challenges, refilled, "
              "and %s (ledger now %zu challenges)\n",
              first.outcome.candidates_tried, second.replay_rejected,
              second.outcome.approved ? "approved" : "DENIED",
              db.issued_count(chip.id()));
  return 0;
}
