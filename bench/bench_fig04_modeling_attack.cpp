// Reproduces paper Fig 4: prediction accuracy of the MLP modeling attack as
// a function of training-set size and XOR width n.
//
// Paper setup: 3-layer MLP (35/25/25), L-BFGS, transformed challenge
// vectors in, 1-bit stable XOR responses out; 90/10 train/test split of
// stable CRPs only. Paper result: for n < 10 the model reaches 90% accuracy
// with < 100,000 CRPs; at n >= 10 it stays near chance at these budgets —
// hence the recommendation of >= 10 parallel PUFs.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "puf/attack.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig04_modeling_attack",
                                "Fig 4: MLP attack accuracy vs training size and n");
  const BenchScale& scale = bench.scale();
  bench.set_items(scale.attack_max_train);

  std::vector<std::size_t> widths;
  std::vector<std::size_t> train_sizes;
  if (scale.full) {
    widths = {4, 5, 6, 7, 8, 9, 10, 11};
    train_sizes = {1'000, 5'000, 10'000, 50'000, 100'000};
  } else {
    widths = {4, 6, 8, 10};
    train_sizes = {1'000, 4'000, 12'000};
  }
  while (!train_sizes.empty() && train_sizes.back() > scale.attack_max_train)
    train_sizes.pop_back();
  if (train_sizes.empty()) train_sizes = {scale.attack_max_train};

  sim::ChipPopulation pop(benchutil::population_config(scale, /*n_pufs=*/11));
  Rng rng = pop.measurement_rng();

  Table t("Fig 4: MLP test accuracy on stable CRPs (paper: >=90% for n<10 "
          "with <100k CRPs)");
  std::vector<std::string> header{"n \\ train size"};
  for (std::size_t s : train_sizes) header.push_back(std::to_string(s));
  header.push_back("stable yield");
  t.set_header(header);

  CsvWriter csv(benchutil::out_dir() + "/fig04_attack_accuracy.csv",
                {"n", "train_size", "test_accuracy", "train_accuracy",
                 "ms_per_crp", "stable_fraction"});

  double total_ms = 0.0, total_crps = 0.0;
  for (std::size_t n : widths) {
    // Build one stable-CRP corpus per n, sized for the largest training set,
    // then reuse head subsets for the smaller sizes.
    const double expected_yield = std::pow(0.78, static_cast<double>(n));
    const std::size_t max_train = train_sizes.back();
    const auto need = static_cast<std::size_t>(
        static_cast<double>(max_train) / (0.9 * expected_yield) * 1.25) + 1'000;

    puf::AttackDatasetConfig dcfg;
    dcfg.n_pufs = n;
    dcfg.challenges = need;
    dcfg.trials = std::min<std::uint64_t>(scale.trials, 10'000);
    const puf::AttackDataset full = puf::build_stable_attack_dataset(pop.chip(0), dcfg, rng);

    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t size : train_sizes) {
      if (full.train.size() < size) {
        row.push_back("n/a");
        continue;
      }
      puf::AttackDataset subset;
      subset.n_pufs = n;
      subset.test = full.test;
      subset.train = full.train.head_split(size).first;

      puf::MlpAttackConfig acfg;  // the paper's 35/25/25 topology by default
      // tanh keeps the full-batch L-BFGS objective smooth (scikit-learn's
      // relu default relies on its stochastic fallback behavior).
      acfg.mlp.activation = ml::Activation::kTanh;
      acfg.lbfgs.max_iterations = scale.full ? 300 : 100;
      const puf::AttackResult res = puf::run_mlp_attack(subset, acfg);
      row.push_back(Table::pct(res.test_accuracy, 1));
      total_ms += res.train_time_ms;
      total_crps += static_cast<double>(res.train_size);
      csv.write_row(std::vector<double>{
          static_cast<double>(n), static_cast<double>(size), res.test_accuracy,
          res.train_accuracy, res.ms_per_crp(), full.stable_fraction});
      std::fprintf(stderr, "  [fig04] n=%zu size=%zu acc=%.3f (%.0f ms)\n", n, size,
                   res.test_accuracy, res.train_time_ms);
    }
    row.push_back(Table::pct(full.stable_fraction, 1));
    t.add_row(row);
  }
  t.print();
  bench.set_items(static_cast<std::uint64_t>(total_crps));
  if (total_crps > 0.0)
    std::printf("\naverage training speed: %.3f ms per CRP (paper: 0.395 ms/CRP)\n",
                total_ms / total_crps);
  std::printf("CSV written: %s\n", csv.path().c_str());
  return 0;
}
