// Shared plumbing for the reproduction benches: standard population
// construction from the CLI scale, output-directory handling, wall-clock
// timing artifacts, and the header every bench prints so runs are
// self-describing.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "sim/population.hpp"

namespace xpuf::benchutil {

/// The standard simulated lot for a bench: `chips` chips of `n_pufs`
/// 32-stage PUFs, fabricated from the canonical seed so every bench sees
/// the same silicon.
inline sim::PopulationConfig population_config(const BenchScale& scale,
                                               std::size_t n_pufs = 10,
                                               std::uint64_t seed = 2017) {
  sim::PopulationConfig cfg;
  cfg.n_chips = scale.chips;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.seed = seed;
  return cfg;
}

/// Directory for CSV artifacts (created on demand).
inline std::string out_dir() { return ensure_directory("bench_out"); }

/// Prints the standard bench banner and sizes the global thread pool from
/// the resolved scale (--threads / XPUF_THREADS). Thread count affects only
/// wall-clock time, never results.
inline void banner(const std::string& experiment, const BenchScale& scale) {
  ThreadPool::set_global_threads(scale.threads);
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("scale: %s | challenges=%llu trials=%llu chips=%llu threads=%llu\n",
              scale.full ? "FULL (paper)" : "reduced",
              static_cast<unsigned long long>(scale.challenges),
              static_cast<unsigned long long>(scale.trials),
              static_cast<unsigned long long>(scale.chips),
              static_cast<unsigned long long>(ThreadPool::global_threads()));
  std::printf("(paper scale: 1,000,000 challenges x 100,000 evaluations, 10 chips; "
              "run with --scale full or XPUF_BENCH_SCALE=full)\n\n");
}

/// Machine-readable perf trajectory: scoped wall-clock timer that writes
/// bench_out/<name>_timing.json on destruction, so every bench run leaves a
/// {"name", "seconds", "threads", "items"} record comparable across PRs and
/// thread counts.
class BenchTimer {
 public:
  /// `items` is the bench's own unit of work (challenges measured, CRPs
  /// trained, ...); refine later with set_items if it is only known at the
  /// end of the run.
  BenchTimer(std::string name, std::uint64_t items)
      : name_(std::move(name)), items_(items) {}

  BenchTimer(const BenchTimer&) = delete;
  BenchTimer& operator=(const BenchTimer&) = delete;

  void set_items(std::uint64_t items) { items_ = items; }

  /// Attaches an extra numeric field to the timing record (e.g. the
  /// per-mode seconds of an A/B bench). Last write per key wins; keys must
  /// not collide with the fixed name/seconds/threads/items schema.
  void set_field(const std::string& key, double value) {
    for (auto& [k, v] : fields_)
      if (k == key) {
        v = value;
        return;
      }
    fields_.emplace_back(key, value);
  }

  ~BenchTimer() {
    const double seconds = timer_.seconds();
    const std::string path = out_dir() + "/" + name_ + "_timing.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f,
                   "{\"name\": \"%s\", \"seconds\": %.6f, \"threads\": %llu, "
                   "\"items\": %llu",
                   name_.c_str(), seconds,
                   static_cast<unsigned long long>(ThreadPool::global_threads()),
                   static_cast<unsigned long long>(items_));
      for (const auto& [k, v] : fields_)
        std::fprintf(f, ", \"%s\": %.6f", k.c_str(), v);
      std::fprintf(f, "}\n");
      std::fclose(f);
      std::printf("timing written: %s (%.3f s, %llu threads)\n", path.c_str(), seconds,
                  static_cast<unsigned long long>(ThreadPool::global_threads()));
    }
  }

 private:
  std::string name_;
  Timer timer_;
  std::uint64_t items_;
  std::vector<std::pair<std::string, double>> fields_;
};

/// Shared observability flags: every bench that constructs a MetricsReport
/// understands `--metrics` (human-readable table on exit) and
/// `--metrics-out <file>` (JSON snapshot of the global MetricsRegistry, same
/// record family as bench_out/<name>_timing.json). Snapshot counts and
/// bucket shapes are deterministic; only span seconds carry wall-clock.
class MetricsReport {
 public:
  MetricsReport(const Cli& cli, std::string bench_name)
      : name_(std::move(bench_name)),
        json_path_(cli.get("metrics-out", "")),
        table_(cli.has("metrics")) {}

  MetricsReport(const MetricsReport&) = delete;
  MetricsReport& operator=(const MetricsReport&) = delete;

  ~MetricsReport() {
    if (json_path_.empty() && !table_) return;
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    if (table_) {
      std::printf("\n");
      snap.print();
    }
    if (json_path_.empty()) return;
    if (std::FILE* f = std::fopen(json_path_.c_str(), "w")) {
      const std::string json =
          snap.to_json(name_, ThreadPool::global_threads(), /*include_timing=*/true);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("metrics written: %s\n", json_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: cannot open %s for writing\n", json_path_.c_str());
    }
  }

 private:
  std::string name_;
  std::string json_path_;
  bool table_;
};

/// The preamble every bench main used to open with — CLI parsing, scale
/// resolution, the banner, the timing artifact and the --metrics /
/// --metrics-out report — hoisted into one object so the conventions stay
/// uniform across benches. Construct it first in main():
///
///   benchutil::BenchHarness bench(argc, argv, "fig02_soft_response",
///                                 "Fig 2: soft-response distribution");
///   const BenchScale& scale = bench.scale();
///
/// Artifacts: bench_out/<name>_timing.json always; the metrics snapshot and
/// table only when the flags ask for them. Item counts default to
/// scale().challenges; benches with a different unit of work call
/// set_items() once they know it.
class BenchHarness {
 public:
  /// `adjust` runs after scale resolution but before the banner sizes the
  /// thread pool, for benches that override scale defaults.
  BenchHarness(int argc, char** argv, std::string name,
               const std::string& title,
               const std::function<void(const Cli&, BenchScale&)>& adjust = {})
      : cli_(argc, argv), scale_(resolve_scale(cli_)), name_(std::move(name)) {
    if (adjust) adjust(cli_, scale_);
    banner(title, scale_);
    timer_.emplace(name_, scale_.challenges);
    metrics_.emplace(cli_, name_);
  }

  BenchHarness(const BenchHarness&) = delete;
  BenchHarness& operator=(const BenchHarness&) = delete;

  const Cli& cli() const { return cli_; }
  const BenchScale& scale() const { return scale_; }
  void set_items(std::uint64_t items) { timer_->set_items(items); }
  void set_field(const std::string& key, double value) { timer_->set_field(key, value); }

 private:
  Cli cli_;
  BenchScale scale_;
  std::string name_;
  // Declaration order fixes artifact order at exit: the metrics report
  // (destroyed first) prints before the timing line, as the benches always
  // have.
  std::optional<BenchTimer> timer_;
  std::optional<MetricsReport> metrics_;
};

}  // namespace xpuf::benchutil
