// Shared plumbing for the reproduction benches: standard population
// construction from the CLI scale, output-directory handling, and the
// header every bench prints so runs are self-describing.
#pragma once

#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "sim/population.hpp"

namespace xpuf::benchutil {

/// The standard simulated lot for a bench: `chips` chips of `n_pufs`
/// 32-stage PUFs, fabricated from the canonical seed so every bench sees
/// the same silicon.
inline sim::PopulationConfig population_config(const BenchScale& scale,
                                               std::size_t n_pufs = 10,
                                               std::uint64_t seed = 2017) {
  sim::PopulationConfig cfg;
  cfg.n_chips = scale.chips;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.seed = seed;
  return cfg;
}

/// Directory for CSV artifacts (created on demand).
inline std::string out_dir() { return ensure_directory("bench_out"); }

/// Prints the standard bench banner.
inline void banner(const std::string& experiment, const BenchScale& scale) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("scale: %s | challenges=%llu trials=%llu chips=%llu\n",
              scale.full ? "FULL (paper)" : "reduced",
              static_cast<unsigned long long>(scale.challenges),
              static_cast<unsigned long long>(scale.trials),
              static_cast<unsigned long long>(scale.chips));
  std::printf("(paper scale: 1,000,000 challenges x 100,000 evaluations, 10 chips; "
              "run with --scale full or XPUF_BENCH_SCALE=full)\n\n");
}

}  // namespace xpuf::benchutil
