// Shared plumbing for the reproduction benches: standard population
// construction from the CLI scale, output-directory handling, wall-clock
// timing artifacts, and the header every bench prints so runs are
// self-describing.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "sim/population.hpp"

namespace xpuf::benchutil {

/// The standard simulated lot for a bench: `chips` chips of `n_pufs`
/// 32-stage PUFs, fabricated from the canonical seed so every bench sees
/// the same silicon.
inline sim::PopulationConfig population_config(const BenchScale& scale,
                                               std::size_t n_pufs = 10,
                                               std::uint64_t seed = 2017) {
  sim::PopulationConfig cfg;
  cfg.n_chips = scale.chips;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.seed = seed;
  return cfg;
}

/// Directory for CSV artifacts (created on demand).
inline std::string out_dir() { return ensure_directory("bench_out"); }

/// Prints the standard bench banner and sizes the global thread pool from
/// the resolved scale (--threads / XPUF_THREADS). Thread count affects only
/// wall-clock time, never results.
inline void banner(const std::string& experiment, const BenchScale& scale) {
  ThreadPool::set_global_threads(scale.threads);
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("scale: %s | challenges=%llu trials=%llu chips=%llu threads=%llu\n",
              scale.full ? "FULL (paper)" : "reduced",
              static_cast<unsigned long long>(scale.challenges),
              static_cast<unsigned long long>(scale.trials),
              static_cast<unsigned long long>(scale.chips),
              static_cast<unsigned long long>(ThreadPool::global_threads()));
  std::printf("(paper scale: 1,000,000 challenges x 100,000 evaluations, 10 chips; "
              "run with --scale full or XPUF_BENCH_SCALE=full)\n\n");
}

/// Machine-readable perf trajectory: scoped wall-clock timer that writes
/// bench_out/<name>_timing.json on destruction, so every bench run leaves a
/// {"name", "seconds", "threads", "items"} record comparable across PRs and
/// thread counts.
class BenchTimer {
 public:
  /// `items` is the bench's own unit of work (challenges measured, CRPs
  /// trained, ...); refine later with set_items if it is only known at the
  /// end of the run.
  BenchTimer(std::string name, std::uint64_t items)
      : name_(std::move(name)), items_(items) {}

  BenchTimer(const BenchTimer&) = delete;
  BenchTimer& operator=(const BenchTimer&) = delete;

  void set_items(std::uint64_t items) { items_ = items; }

  ~BenchTimer() {
    const double seconds = timer_.seconds();
    const std::string path = out_dir() + "/" + name_ + "_timing.json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f,
                   "{\"name\": \"%s\", \"seconds\": %.6f, \"threads\": %llu, "
                   "\"items\": %llu}\n",
                   name_.c_str(), seconds,
                   static_cast<unsigned long long>(ThreadPool::global_threads()),
                   static_cast<unsigned long long>(items_));
      std::fclose(f);
      std::printf("timing written: %s (%.3f s, %llu threads)\n", path.c_str(), seconds,
                  static_cast<unsigned long long>(ThreadPool::global_threads()));
    }
  }

 private:
  std::string name_;
  Timer timer_;
  std::uint64_t items_;
};

}  // namespace xpuf::benchutil
