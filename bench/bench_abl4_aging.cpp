// Ablation 4: aging (the third reliability axis the paper's Sec 1 lists
// next to voltage and temperature, but does not measure).
//
// Question: how long do model-selected stable CRPs survive BTI drift, and
// does the V/T beta margin buy aging margin for free? The bench ages one
// chip through a product lifetime, re-checking (a) the stability of batches
// selected at time zero with nominal vs V/T betas and (b) zero-HD
// authentication, then shows re-enrollment restoring the scheme.
#include <cstdio>

#include "bench_common.hpp"
#include "puf/authentication.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "abl4_aging",
                                "Ablation 4: stable-CRP survival and zero-HD auth under aging");
  const BenchScale& scale = bench.scale();

  const std::size_t n_pufs = 10;
  sim::PopulationConfig pcfg = benchutil::population_config(scale, n_pufs);
  pcfg.seed = 7331;
  sim::ChipPopulation pop(pcfg);
  auto& chip = pop.chip(0);
  Rng rng = pop.measurement_rng();
  const auto env = sim::Environment::nominal();
  const std::uint64_t trials = std::min<std::uint64_t>(scale.trials, 10'000);

  // Enroll fresh silicon; derive nominal and V/T beta variants.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const auto eval = puf::random_challenges(chip.stages(), 4'000, rng);
  const auto nominal_block = puf::measure_evaluation_block(chip, eval, env, trials, rng);
  std::vector<puf::EvaluationBlock> grid_blocks;
  for (const auto& corner : sim::paper_corner_grid())
    grid_blocks.push_back(puf::measure_evaluation_block(chip, eval, corner, trials, rng));

  puf::ServerModel nominal_model = model;
  nominal_model.set_betas(puf::find_betas(model, {nominal_block}).betas);
  puf::ServerModel vt_model = model;
  vt_model.set_betas(puf::find_betas(model, grid_blocks).betas);

  // Time-zero batches from each variant.
  const std::size_t batch_n = 96;
  puf::ModelBasedSelector nom_sel(nominal_model, n_pufs);
  puf::ModelBasedSelector vt_sel(vt_model, n_pufs);
  Rng sel_rng(11);
  const auto nom_batch = nom_sel.select(batch_n, sel_rng);
  const auto vt_batch = vt_sel.select(batch_n, sel_rng);

  puf::AuthenticationServer server(vt_model, n_pufs, {.challenge_count = 64});

  auto unstable_count = [&](const std::vector<puf::Challenge>& challenges) {
    std::size_t bad = 0;
    for (const auto& c : challenges) {
      for (std::size_t p = 0; p < n_pufs; ++p) {
        if (!chip.measure_soft_response(p, c, env, trials, rng).fully_stable()) {
          ++bad;
          break;
        }
      }
    }
    return bad;
  };

  Table t("Aging timeline (nominal corner; batches selected at t = 0)");
  t.set_header({"stress hours", "nominal-beta batch unstable", "V/T-beta batch unstable",
                "zero-HD auth mismatches (V/T model)"});
  CsvWriter csv(benchutil::out_dir() + "/abl4_aging.csv",
                {"hours", "nominal_unstable", "vt_unstable", "auth_mismatch"});

  double aged = 0.0;
  for (double target : {0.0, 1'000.0, 10'000.0, 50'000.0, 100'000.0}) {
    chip.age(target - aged);
    aged = target;
    const std::size_t nom_bad = unstable_count(nom_batch.challenges);
    const std::size_t vt_bad = unstable_count(vt_batch.challenges);
    double mismatches = 0.0;
    const int rounds = 4;
    for (int r = 0; r < rounds; ++r)
      mismatches += static_cast<double>(server.authenticate(chip, env, rng).mismatches);
    mismatches /= rounds;
    t.add_row({Table::num(target, 0),
               std::to_string(nom_bad) + "/" + std::to_string(nom_batch.challenges.size()),
               std::to_string(vt_bad) + "/" + std::to_string(vt_batch.challenges.size()),
               Table::num(mismatches, 2)});
    csv.write_row(std::vector<double>{target, static_cast<double>(nom_bad),
                                      static_cast<double>(vt_bad), mismatches});
    std::fprintf(stderr, "  [abl4] %.0f h done\n", target);
  }
  t.print();

  // Recovery: re-enroll the aged silicon.
  puf::ServerModel refreshed = puf::Enroller(ecfg).enroll(chip, rng);
  const auto block2 = puf::measure_evaluation_block(chip, eval, env, trials, rng);
  refreshed.set_betas(puf::find_betas(refreshed, {block2}).betas);
  puf::AuthenticationServer server2(refreshed, n_pufs, {.challenge_count = 64});
  double post = 0.0;
  for (int r = 0; r < 4; ++r)
    post += static_cast<double>(server2.authenticate(chip, env, rng).mismatches);
  std::printf("\nafter re-enrollment at %.0f h: %.2f mismatches per 64-CRP batch\n",
              aged, post / 4.0);
  std::printf("takeaway: BTI drift slowly erodes a frozen enrollment model (the V/T "
              "beta margin also buys aging slack); periodic re-enrollment — or "
              "enrolling after burn-in — restores the zero-HD property. The paper "
              "flags aging as a concern; this quantifies the maintenance schedule.\n");
  return 0;
}
