// Reproduces paper Fig 2: soft-response distribution of a single MUX
// arbiter PUF under nominal conditions (0.9 V / 25 C).
//
// Paper result: 39.7% of challenges produce soft response 0.00 and 40.1%
// produce 1.00 (i.e. ~80% are 100% stable), with the remainder spread
// thinly between the extremes.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig02_soft_response",
                                "Fig 2: soft-response distribution, single MUX PUF, 0.9V/25C");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto study = analysis::study_soft_response(
      pop.chip(0), 0, scale.challenges, scale.trials, sim::Environment::nominal(), rng);

  std::printf("%s\n", study.histogram.render(60, 20).c_str());

  Table t("Fig 2 headline statistics (paper values in parentheses)");
  t.set_header({"statistic", "measured", "paper"});
  t.add_row({"Pr(stable '0')  soft == 0.00", Table::pct(study.pr_stable0, 1), "39.7%"});
  t.add_row({"Pr(stable '1')  soft == 1.00", Table::pct(study.pr_stable1, 1), "40.1%"});
  t.add_row({"Pr(stable total)", Table::pct(study.pr_stable0 + study.pr_stable1, 1),
             "79.8%"});
  t.add_row({"challenges", std::to_string(study.challenges), "1,000,000"});
  t.add_row({"evaluations per challenge", std::to_string(scale.trials), "100,000"});
  t.print();

  CsvWriter csv(benchutil::out_dir() + "/fig02_soft_response.csv",
                {"bin_center", "fraction"});
  for (std::size_t b = 0; b < study.histogram.bins(); ++b)
    csv.write_row(std::vector<double>{study.histogram.bin_center(b),
                                      study.histogram.fraction(b)});
  std::printf("\nCSV written: %s\n", csv.path().c_str());
  return 0;
}
