// Reproduces the paper's reported training speeds as a google-benchmark
// table (Sec 2.3 and Sec 5.1):
//   - MLP attack training: 0.395 ms per CRP, roughly linear in the CRP
//     count and only a weak function of n;
//   - linear-regression enrollment of 5,000 CRPs: 4.3 ms.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "bench_common.hpp"
#include "ml/linear_regression.hpp"
#include "puf/attack.hpp"
#include "puf/enrollment.hpp"
#include "puf/selection.hpp"
#include "sim/population.hpp"

namespace {

using namespace xpuf;

const sim::ChipPopulation& population() {
  static sim::ChipPopulation pop = [] {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 11;
    cfg.seed = 2017;
    return sim::ChipPopulation(cfg);
  }();
  return pop;
}

/// Cached stable-CRP corpora per XOR width (building them is not what we
/// want to time).
const puf::AttackDataset& attack_corpus(std::size_t n_pufs, std::size_t train_size) {
  static std::map<std::pair<std::size_t, std::size_t>, puf::AttackDataset> cache;
  const auto key = std::make_pair(n_pufs, train_size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(42 + n_pufs);
    puf::AttackDatasetConfig cfg;
    cfg.n_pufs = n_pufs;
    cfg.challenges = static_cast<std::size_t>(
        static_cast<double>(train_size) / (0.9 * std::pow(0.78, double(n_pufs))) * 1.3);
    cfg.trials = 5'000;
    puf::AttackDataset full =
        puf::build_stable_attack_dataset(population().chip(0), cfg, rng);
    if (full.train.size() > train_size)
      full.train = full.train.head_split(train_size).first;
    it = cache.emplace(key, std::move(full)).first;
  }
  return it->second;
}

/// MLP attack training time; counters report ms-per-CRP (paper: 0.395).
void BM_MlpAttackTraining(benchmark::State& state) {
  const auto n_pufs = static_cast<std::size_t>(state.range(0));
  const auto train_size = static_cast<std::size_t>(state.range(1));
  const puf::AttackDataset& data = attack_corpus(n_pufs, train_size);
  puf::MlpAttackConfig cfg;
  cfg.lbfgs.max_iterations = 60;  // fixed budget so timings are comparable
  double accuracy = 0.0;
  for (auto _ : state) {
    const puf::AttackResult res = puf::run_mlp_attack(data, cfg);
    accuracy = res.test_accuracy;
    benchmark::DoNotOptimize(accuracy);
  }
  // Inverted rate = seconds per training CRP (paper: 0.395 ms/CRP).
  state.counters["sec_per_crp"] = benchmark::Counter(
      static_cast<double>(data.train.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["train_crps"] = static_cast<double>(data.train.size());
}
BENCHMARK(BM_MlpAttackTraining)
    ->Args({4, 2'000})
    ->Args({4, 8'000})
    ->Args({6, 2'000})
    ->Args({6, 8'000})
    ->Args({8, 2'000})
    ->Unit(benchmark::kMillisecond);

/// Linear-regression enrollment fit of one PUF (paper: 4.3 ms for 5,000).
void BM_LinearRegressionEnrollmentFit(benchmark::State& state) {
  const auto train_size = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  sim::ChipTester tester(sim::Environment::nominal(), 5'000, rng.fork());
  const auto challenges = tester.random_challenges(population().chip(0), train_size);
  const auto scan = tester.scan_individual(population().chip(0), challenges);
  ml::Dataset data;
  data.x = puf::feature_matrix(scan.challenges);
  data.y = linalg::Vector(std::vector<double>(scan.soft[0].begin(), scan.soft[0].end()));
  for (auto _ : state) {
    ml::LinearRegression reg;
    reg.fit(data);
    benchmark::DoNotOptimize(reg.coefficients());
  }
}
BENCHMARK(BM_LinearRegressionEnrollmentFit)
    ->Arg(500)
    ->Arg(2'000)
    ->Arg(5'000)
    ->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Full enrollment (measure + fit + thresholds) of a 10-PUF chip.
void BM_FullChipEnrollment(benchmark::State& state) {
  puf::EnrollmentConfig cfg;
  cfg.training_challenges = static_cast<std::size_t>(state.range(0));
  cfg.trials = 5'000;
  for (auto _ : state) {
    Rng rng(11);
    puf::ServerModel model = puf::Enroller(cfg).enroll(population().chip(0), rng);
    benchmark::DoNotOptimize(model.puf_count());
  }
}
BENCHMARK(BM_FullChipEnrollment)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond);

/// Server-side challenge-selection throughput (Fig 7 select loop).
void BM_ModelBasedChallengeSelection(benchmark::State& state) {
  static puf::ServerModel model = [] {
    Rng rng(13);
    puf::EnrollmentConfig cfg;
    cfg.training_challenges = 5'000;
    cfg.trials = 5'000;
    puf::ServerModel m = puf::Enroller(cfg).enroll(population().chip(0), rng);
    m.set_betas(puf::BetaFactors{0.8, 1.2});
    return m;
  }();
  const auto n_pufs = static_cast<std::size_t>(state.range(0));
  puf::ModelBasedSelector selector(model, n_pufs);
  Rng rng(17);
  for (auto _ : state) {
    const auto res = selector.select(16, rng);
    benchmark::DoNotOptimize(res.challenges.size());
  }
  state.SetLabel("16 stable challenges per iteration");
}
BENCHMARK(BM_ModelBasedChallengeSelection)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strips the repo-wide --threads
// flag (google-benchmark would reject it as unrecognized), sizes the global
// pool, and records the wall-clock timing artifact like every other bench.
int main(int argc, char** argv) {
  std::int64_t threads = 0;
  if (const char* env = std::getenv("XPUF_THREADS"); env != nullptr && *env != '\0')
    threads = std::atoll(env);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoll(argv[i] + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (threads <= 0) threads = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  xpuf::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    xpuf::benchutil::BenchTimer timing("tabA_training_time", 0);
    timing.set_items(::benchmark::RunSpecifiedBenchmarks());
  }
  ::benchmark::Shutdown();
  return 0;
}
