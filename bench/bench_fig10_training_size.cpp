// Reproduces paper Fig 10: probability of stable CRPs (measured vs model-
// predicted after beta adjustment) versus the enrollment training-set size.
//
// Paper result: the model-predicted stable fraction rises with training size
// and saturates near ~60% (vs ~80% measured); 5,000 CRPs is the chosen
// operating point, with a linear-regression training time of 4.3 ms.
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig10_training_size",
                                "Fig 10: stable-CRP probability vs training-set size");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);
  const auto env = sim::Environment::nominal();

  // Fixed evaluation artifacts shared by every training size: a beta-search
  // block and a large random test pool for yield estimation.
  const std::size_t eval_n =
      scale.full ? 100'000 : std::min<std::size_t>(scale.challenges, 20'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
  const auto eval_block =
      puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng);
  const std::size_t test_n =
      scale.full ? scale.challenges : std::min<std::size_t>(scale.challenges, 50'000);

  // Measured reference: fraction of evaluation CRPs stable on PUF 0.
  std::size_t measured_stable = 0;
  for (double s : eval_block.soft[0])
    if (puf::measured_stable(s)) ++measured_stable;
  const double measured_fraction =
      static_cast<double>(measured_stable) / static_cast<double>(eval_n);

  const std::vector<std::size_t> train_sizes{500, 1'000, 2'000, 5'000, 10'000};

  Table t("Fig 10: % stable challenges vs training size (single PUF view)");
  t.set_header({"train size", "predicted stable (beta-adjusted)", "measured stable",
                "beta0", "beta1", "fit time (ms)"});
  CsvWriter csv(benchutil::out_dir() + "/fig10_training_size.csv",
                {"train_size", "predicted_stable", "measured_stable", "beta0", "beta1",
                 "fit_ms"});

  for (std::size_t train_n : train_sizes) {
    puf::EnrollmentConfig ecfg;
    ecfg.training_challenges = train_n;
    ecfg.trials = scale.trials;
    Timer timer;
    puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
    double fit_ms = 0.0;
    for (std::size_t p = 0; p < model.puf_count(); ++p)
      fit_ms += model.puf(p).fit_time_ms;
    fit_ms /= static_cast<double>(model.puf_count());

    const puf::BetaSearchResult betas = puf::find_betas(model, {eval_block});
    model.set_betas(betas.betas);

    // Predicted-stable yield on fresh random challenges (PUF 0 view, to
    // match the paper's single-PUF percentage axis).
    std::size_t predicted_stable = 0;
    Rng test_rng(991);
    for (std::size_t i = 0; i < test_n; ++i) {
      const auto c = puf::random_challenge(chip.stages(), test_rng);
      if (model.classify(0, c) != puf::StableClass::kUnstable) ++predicted_stable;
    }
    const double predicted_fraction =
        static_cast<double>(predicted_stable) / static_cast<double>(test_n);

    t.add_row({std::to_string(train_n), Table::pct(predicted_fraction, 1),
               Table::pct(measured_fraction, 1), Table::num(betas.betas.beta0, 2),
               Table::num(betas.betas.beta1, 2), Table::num(fit_ms, 2)});
    csv.write_row(std::vector<double>{static_cast<double>(train_n), predicted_fraction,
                                      measured_fraction, betas.betas.beta0,
                                      betas.betas.beta1, fit_ms});
    std::fprintf(stderr, "  [fig10] train=%zu predicted=%.3f\n", train_n,
                 predicted_fraction);
  }
  t.print();
  std::printf("\npaper: predicted saturates at ~60%% vs ~80%% measured; 5,000-CRP "
              "linear fit took 4.3 ms on the authors' desktop\n");
  return 0;
}
