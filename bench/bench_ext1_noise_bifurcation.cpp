// Extension 1: noise-bifurcation baseline (Yu et al. [6], discussed in the
// paper's Sec 1 as the related mitigation whose authentication criterion
// "must be relaxed considerably").
//
// Two sides of the tradeoff, per bifurcation group size d:
//   - security: eavesdropper's MLP attack accuracy on the label-noised
//     transcript data drops as d grows;
//   - cost: the counterfeit pass probability per group rises as 1 - 2^-d,
//     so the server needs many more groups for the same confidence.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "puf/attack.hpp"
#include "puf/extensions/noise_bifurcation.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "ext1_noise_bifurcation",
                                "Ext 1: noise-bifurcation tradeoff (attack hardness vs criterion)");
  const BenchScale& scale = bench.scale();

  const std::size_t n_pufs = 2;  // small XOR width so the baseline attack succeeds
  sim::ChipPopulation pop(benchutil::population_config(scale, n_pufs));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);

  // Server model for verification.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

  // A counterfeit chip for the false-accept side.
  sim::PopulationConfig counter_cfg = benchutil::population_config(scale, n_pufs);
  counter_cfg.seed = 909090;
  sim::ChipPopulation counterfeit_pop(counter_cfg);
  const auto& counterfeit = counterfeit_pop.chip(0);

  // Clean test set for attack scoring (true responses, no bifurcation).
  puf::AttackDatasetConfig tcfg;
  tcfg.n_pufs = n_pufs;
  tcfg.challenges = 20'000;
  tcfg.trials = std::min<std::uint64_t>(scale.trials, 5'000);
  const puf::AttackDataset clean = puf::build_stable_attack_dataset(chip, tcfg, rng);

  const std::size_t total_crps = scale.full ? 40'000 : 12'000;
  Table t("Bifurcation group size d: attack accuracy vs authentication cost "
          "(n=" + std::to_string(n_pufs) + " XOR PUF, " +
          std::to_string(total_crps) + " observed CRPs)");
  t.set_header({"d", "attacker label noise", "MLP attack accuracy",
                "genuine pass frac", "counterfeit pass frac", "accept thr"});
  CsvWriter csv(benchutil::out_dir() + "/ext1_noise_bifurcation.csv",
                {"d", "attack_accuracy", "genuine_pass", "counterfeit_pass",
                 "threshold"});

  for (std::size_t d : {1u, 2u, 4u}) {
    puf::NoiseBifurcationConfig bcfg;
    bcfg.group_size = d;
    bcfg.groups = total_crps / d;

    // Eavesdropped transcripts -> noisy training data.
    std::vector<puf::BifurcationTranscript> observed;
    observed.push_back(
        puf::run_bifurcation_exchange(chip, bcfg, sim::Environment::nominal(), rng));
    puf::AttackDataset noisy;
    noisy.n_pufs = n_pufs;
    noisy.train = puf::bifurcation_attack_dataset(observed);
    noisy.test = clean.test;

    puf::MlpAttackConfig acfg;
    acfg.mlp.hidden_layers = {24, 16};
    acfg.mlp.activation = ml::Activation::kTanh;
    acfg.lbfgs.max_iterations = scale.full ? 200 : 120;
    const puf::AttackResult attack = puf::run_mlp_attack(noisy, acfg);

    // Verification statistics over fresh exchanges.
    double genuine = 0.0, fake = 0.0;
    const int rounds = 5;
    for (int r = 0; r < rounds; ++r) {
      genuine += puf::verify_bifurcation(
          model, n_pufs,
          puf::run_bifurcation_exchange(chip, bcfg, sim::Environment::nominal(), rng));
      fake += puf::verify_bifurcation(
          model, n_pufs,
          puf::run_bifurcation_exchange(counterfeit, bcfg, sim::Environment::nominal(),
                                        rng));
    }
    genuine /= rounds;
    fake /= rounds;
    const double thr = puf::bifurcation_accept_threshold(d);
    const double label_noise = d == 1 ? 0.0 : (static_cast<double>(d - 1) / static_cast<double>(d)) * 0.5;

    t.add_row({std::to_string(d), Table::pct(label_noise, 1),
               Table::pct(attack.test_accuracy, 1), Table::pct(genuine, 1),
               Table::pct(fake, 1), Table::num(thr, 3)});
    csv.write_row(std::vector<double>{static_cast<double>(d), attack.test_accuracy,
                                      genuine, fake, thr});
    std::fprintf(stderr, "  [ext1] d=%zu attack=%.3f genuine=%.3f fake=%.3f\n", d,
                 attack.test_accuracy, genuine, fake);
  }
  t.print();
  std::printf("\ntakeaway: larger groups blunt the modeling attack but push the "
              "counterfeit pass fraction toward 1, shrinking the decision margin — "
              "the 'relaxed criterion' cost the paper cites for this baseline, and "
              "the motivation for its model-selected zero-HD alternative.\n");
  return 0;
}
