// Enrollment-throughput harness for the streaming pipeline.
//
// Times Enroller::enroll (streaming: chunked scan -> normal-equation
// accumulation -> one shared Cholesky) against Enroller::enroll_materialized
// (the historical whole-scan path) on the same seeded chip, and proves the
// two pipelines' ServerModels are bit-identical in-run. The acceptance
// workload is the paper-shaped 1,000,000 challenges x 100 evaluations x 10
// PUFs; the materialized side runs at --materialized-cap challenges (default
// 65536) because materializing the full workload is exactly the memory cliff
// the streaming path removes.
//
// Fixed-memory proof: before any materialized run, the bench enrolls
// streaming at a quarter of the challenge count and then at the full count,
// reading getrusage peak RSS after each. If the full run's peak exceeds the
// quarter run's by more than --rss-slack-mb (default 64), the pipeline is
// buffering O(n) state and the bench fails.
//
// Timing JSON fields (bench_out/enroll_throughput_timing.json):
//   materialized_seconds / streaming_seconds / speedup   A/B at the cap
//   full_seconds, crps_per_sec                           full streaming run
//   rss_quarter_mb, rss_full_mb                          fixed-memory probe
// tools/check_bench_regression.py gates the A/B pair in CI.
//
//   ./bench_enroll_throughput --threads 1          # acceptance run
//   ./bench_enroll_throughput --challenges 100000  # smaller workload
//   ./bench_enroll_throughput --chunk 1024         # smaller working set
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "puf/enrollment.hpp"

namespace {

/// Peak resident set of the process in MiB (ru_maxrss is KiB on Linux).
double max_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Exact-equality check across every fitted quantity the server stores; any
/// drifted bit between the streaming and materialized fits fails the bench.
bool models_identical(const xpuf::puf::ServerModel& a, const xpuf::puf::ServerModel& b) {
  if (a.puf_count() != b.puf_count()) return false;
  for (std::size_t p = 0; p < a.puf_count(); ++p) {
    const xpuf::puf::PufEnrollment& pa = a.puf(p);
    const xpuf::puf::PufEnrollment& pb = b.puf(p);
    if (pa.model.weights() != pb.model.weights()) return false;
    if (pa.thresholds.thr0 != pb.thresholds.thr0) return false;
    if (pa.thresholds.thr1 != pb.thresholds.thr1) return false;
    if (pa.train_r_squared != pb.train_r_squared) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(
      argc, argv, "enroll_throughput",
      "Enrollment throughput: streaming vs materialized pipeline",
      [](const Cli& cli, BenchScale& s) {
        if (!cli.has("challenges") && !s.full) s.challenges = 1'000'000;
        if (!cli.has("trials") && !s.full) s.trials = 100;
      });
  const BenchScale& scale = bench.scale();
  const auto n_pufs = static_cast<std::size_t>(bench.cli().get_int("pufs", 10));
  const auto stages = static_cast<std::size_t>(bench.cli().get_int("stages", 64));
  const auto chunk = static_cast<std::size_t>(bench.cli().get_int("chunk", 4096));
  const auto cap = std::min<std::size_t>(
      static_cast<std::size_t>(scale.challenges),
      static_cast<std::size_t>(bench.cli().get_int("materialized-cap", 65'536)));
  const double rss_slack_mb =
      static_cast<double>(bench.cli().get_int("rss-slack-mb", 64));
  const auto reps = static_cast<std::uint64_t>(bench.cli().get_int("reps", 3));
  XPUF_REQUIRE(reps > 0, "--reps must be positive");
  const auto challenges = static_cast<std::size_t>(scale.challenges);
  XPUF_REQUIRE(challenges >= 8, "enrollment bench needs at least 8 challenges");
  bench.set_items(scale.challenges * n_pufs);

  sim::PopulationConfig pop_cfg = benchutil::population_config(scale, n_pufs);
  pop_cfg.n_chips = 1;
  pop_cfg.device.stages = stages;
  sim::ChipPopulation pop(pop_cfg);
  const sim::XorPufChip& chip = pop.chip(0);

  // Every run reseeds identically, so any (pipeline, challenge-count) pair
  // repeats the same draws and timed repetitions are true reruns.
  auto enroll_with = [&](bool streaming, std::size_t n_challenges) {
    puf::EnrollmentConfig cfg;
    cfg.training_challenges = n_challenges;
    cfg.trials = scale.trials;
    cfg.chunk_challenges = chunk;
    puf::Enroller enroller(cfg);
    Rng rng(20170604);
    return streaming ? enroller.enroll(chip, rng)
                     : enroller.enroll_materialized(chip, rng);
  };

  // Fixed-memory probe FIRST, while no materialized run has inflated the
  // high-water mark: peak RSS after a quarter-scale streaming enrollment vs
  // after the full-scale one. ru_maxrss only ever grows, so any O(n) buffer
  // in the pipeline shows up as the delta between the two readings.
  Timer timer;
  (void)enroll_with(true, std::max<std::size_t>(std::size_t{1}, challenges / 4));
  const double rss_quarter = max_rss_mb();
  timer.reset();
  const puf::ServerModel full_model = enroll_with(true, challenges);
  const double full_seconds = timer.seconds();
  const double rss_full = max_rss_mb();
  const double rss_delta = rss_full - rss_quarter;
  const bool memory_fixed = rss_delta <= rss_slack_mb;
  const double crps_per_sec =
      static_cast<double>(challenges) * static_cast<double>(n_pufs) / full_seconds;
  XPUF_REQUIRE(full_model.puf_count() == n_pufs, "unexpected enrollment shape");

  // A/B at the cap, interleaved with per-rep minima (scheduler noise is
  // additive; the minimum estimates the true cost and interleaving exposes
  // both pipelines to the same load phases).
  const double kInf = std::numeric_limits<double>::infinity();
  double streaming_seconds = kInf, materialized_seconds = kInf;
  puf::ServerModel streamed, materialized;
  for (std::uint64_t i = 0; i < reps; ++i) {
    timer.reset();
    materialized = enroll_with(false, cap);
    materialized_seconds = std::min(materialized_seconds, timer.seconds());
    timer.reset();
    streamed = enroll_with(true, cap);
    streaming_seconds = std::min(streaming_seconds, timer.seconds());
  }
  const bool identical = models_identical(streamed, materialized);
  const double speedup =
      streaming_seconds > 0.0 ? materialized_seconds / streaming_seconds : 0.0;

  bench.set_field("materialized_seconds", materialized_seconds);
  bench.set_field("streaming_seconds", streaming_seconds);
  bench.set_field("speedup", speedup);
  bench.set_field("full_seconds", full_seconds);
  bench.set_field("crps_per_sec", crps_per_sec);
  bench.set_field("rss_quarter_mb", rss_quarter);
  bench.set_field("rss_full_mb", rss_full);

  Table t("enrollment throughput");
  t.set_header({"metric", "value"});
  t.add_row({"challenges (streaming)", std::to_string(challenges)});
  t.add_row({"challenges (A/B cap)", std::to_string(cap)});
  t.add_row({"pufs", std::to_string(n_pufs)});
  t.add_row({"stages", std::to_string(stages)});
  t.add_row({"trials/challenge", std::to_string(scale.trials)});
  t.add_row({"chunk challenges", std::to_string(chunk)});
  t.add_row({"threads", std::to_string(ThreadPool::global_threads())});
  t.add_row({"full streaming enroll [s]", Table::num(full_seconds, 3)});
  t.add_row({"CRPs/sec (streaming, full)", Table::num(crps_per_sec, 0)});
  t.add_row({"peak RSS @ quarter scale [MiB]", Table::num(rss_quarter, 1)});
  t.add_row({"peak RSS @ full scale [MiB]", Table::num(rss_full, 1)});
  t.add_row({"RSS delta [MiB]", Table::num(rss_delta, 1)});
  t.add_row({"memory fixed (delta <= slack)", memory_fixed ? "yes" : "NO"});
  t.add_row({"materialized enroll [s]", Table::num(materialized_seconds, 3)});
  t.add_row({"streaming enroll [s]", Table::num(streaming_seconds, 3)});
  t.add_row({"streaming speedup", Table::num(speedup, 2)});
  t.add_row({"pipelines bit-identical", identical ? "yes" : "NO"});
  t.print();

  if (!identical) {
    std::fprintf(stderr, "ERROR: streaming enrollment diverged from materialized\n");
    return 1;
  }
  if (!memory_fixed) {
    std::fprintf(stderr,
                 "ERROR: peak RSS grew %.1f MiB between quarter- and full-scale "
                 "streaming runs (slack %.1f MiB) — the pipeline is not fixed-memory\n",
                 rss_delta, rss_slack_mb);
    return 1;
  }
  return 0;
}
