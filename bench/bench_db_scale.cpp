// Million-device enrollment-store harness.
//
// Proves the crash-safe ServerDatabase backend at fleet scale: registers
// --devices synthetic devices into a store-backed database (every REGISTER
// durably appended), then drives sustained issue+verify traffic with the
// LRU model cache capped at 1% of the fleet. Three properties are asserted
// in-run, not just reported:
//
//   flat RSS      — peak RSS after a quarter of the authentication traffic
//                   vs after all of it; growth beyond --rss-slack-mb means
//                   serving is buffering O(fleet), and the bench fails.
//   zero drift    — exact accounting identities over the store's metrics:
//                   hits + misses + mmap hits == model resolutions == auths
//                   (verify is pure policy; only issue resolves), evictions
//                   == insertions - cache occupancy, db.ledger_size ==
//                   per-shard totals == challenges issued.
//   recoverability— the log replays after the traffic (timed), and
//                   compaction preserves device count, ledger totals and a
//                   spot-checked model bit pattern.
//
// The A/B pair gated by tools/check_bench_regression.py serves a hot
// working set through the LRU cache (uncached_seconds / cached_seconds):
// the reference side re-decodes the REGISTER record on every request
// (cache_capacity 1), the optimized side holds the hot set resident.
//
// Timing JSON fields (bench_out/db_scale_timing.json):
//   enroll_seconds, devices_per_sec          registration phase
//   auth_seconds, auths_per_sec              sustained issue+verify
//                                            (min over --auth-reps passes)
//   auth_p50_ms, auth_p99_ms                 per-auth wall latency quantiles
//                                            (auth.latency_ms histogram)
//   rss_quarter_mb, rss_full_mb              flat-RSS probe
//   uncached_seconds, cached_seconds         hot-set serving A/B
//   recovery_seconds                         full log replay (reopen)
//   compact_seconds                          log compaction
//
//   ./bench_db_scale --devices 1000000       # acceptance fleet
//   ./bench_db_scale --devices 20000         # reduced (default)
//   ./bench_db_scale --auths 20000 --cache-pct 1
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "puf/database.hpp"
#include "puf/store/store.hpp"

namespace {

/// Peak resident set of the process in MiB (ru_maxrss is KiB on Linux).
double max_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Deterministic synthetic enrollment: weights drawn from the device-id
/// seed with magnitudes that keep nearly every challenge predicted-stable,
/// so challenge selection costs what it costs in production (a handful of
/// draws) instead of depending on simulated silicon.
xpuf::puf::ServerModel make_device(std::uint64_t id, std::size_t n_pufs,
                                   std::size_t stages) {
  xpuf::Rng rng(0x5eed0000u + id);
  std::vector<xpuf::puf::PufEnrollment> pufs;
  pufs.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) {
    xpuf::puf::PufEnrollment e;
    xpuf::linalg::Vector w(stages + 1);
    for (std::size_t i = 0; i <= stages; ++i) w[i] = rng.uniform(-2.0, 2.0);
    e.model = xpuf::puf::ArbiterPufModel(std::move(w));
    e.thresholds.thr0 = -0.5;
    e.thresholds.thr1 = 0.5;
    e.train_r_squared = 0.99;
    e.fit_time_ms = 0.0;
    pufs.push_back(std::move(e));
  }
  return xpuf::puf::ServerModel(static_cast<std::size_t>(id), std::move(pufs));
}

/// Knuth multiplicative stride over [0, n): visits every id once before
/// repeating, in an order that defeats both the LRU cache and readahead.
std::uint64_t scatter(std::uint64_t i, std::uint64_t n) {
  return (i * 2654435761ull) % n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(
      argc, argv, "db_scale",
      "Enrollment store at fleet scale: durable log + LRU-bounded serving");
  const BenchScale& scale = bench.scale();
  const auto devices = static_cast<std::uint64_t>(
      bench.cli().get_int("devices", scale.full ? 1'000'000 : 20'000));
  const auto auths =
      static_cast<std::uint64_t>(bench.cli().get_int("auths", scale.full ? 20'000 : 2'000));
  const auto n_pufs = static_cast<std::size_t>(bench.cli().get_int("pufs", 10));
  const auto stages = static_cast<std::size_t>(bench.cli().get_int("stages", 64));
  const auto cache_pct = static_cast<double>(bench.cli().get_int("cache-pct", 1));
  const auto n_shards = static_cast<std::uint32_t>(bench.cli().get_int("shards", 64));
  const double rss_slack_mb =
      static_cast<double>(bench.cli().get_int("rss-slack-mb", 64));
  const auto hot_rounds = static_cast<std::uint64_t>(bench.cli().get_int("hot-rounds", 50));
  XPUF_REQUIRE(devices >= 100, "fleet bench needs at least 100 devices");
  XPUF_REQUIRE(auths >= 8, "fleet bench needs at least 8 authentications");
  const auto cache_capacity = static_cast<std::size_t>(std::max<double>(
      1.0, static_cast<double>(devices) * cache_pct / 100.0));
  bench.set_items(devices);

  const std::string dir =
      bench.cli().get("dir", benchutil::out_dir() + "/db_scale_store");
  std::filesystem::remove_all(dir);

  puf::DatabaseConfig cfg;
  cfg.n_pufs = n_pufs;
  cfg.policy.challenge_count = 16;
  puf::store::StoreOptions opts;
  opts.n_shards = n_shards;
  opts.cache_capacity = cache_capacity;

  auto& registry = MetricsRegistry::global();
  Counter& hits = registry.counter("db.cache_hits");
  Counter& misses = registry.counter("db.cache_misses");
  Counter& evictions = registry.counter("db.cache_evictions");
  Counter& issued = registry.counter("db.challenges_issued");
  Counter& mmap_hits = registry.counter("db.mmap_hits");
  const std::uint64_t hits0 = hits.total();
  const std::uint64_t misses0 = misses.total();
  const std::uint64_t evictions0 = evictions.total();
  const std::uint64_t issued0 = issued.total();
  const std::uint64_t mmap0 = mmap_hits.total();

  // --- phase 1: enrollment -------------------------------------------------
  puf::ServerDatabase db = puf::ServerDatabase::open(dir, cfg, opts);
  Timer timer;
  for (std::uint64_t id = 0; id < devices; ++id)
    db.register_device(make_device(id, n_pufs, stages));
  const double enroll_seconds = timer.seconds();
  const double devices_per_sec = static_cast<double>(devices) / enroll_seconds;
  XPUF_REQUIRE(db.device_count() == devices, "fleet went missing during enrollment");
  const double rss_enrolled = max_rss_mb();

  // --- phase 2: sustained authentication, flat-RSS probe -------------------
  // Uniformly scattered device ids: with the cache at cache_pct% of the
  // fleet nearly every request decodes from the log, which is exactly the
  // bounded-memory path the probe must stress. The walk runs --auth-reps
  // times over the same scattered sequence and auth_seconds is the
  // min-of-reps (load spikes inflate a mean, never a min); per-auth wall
  // latency feeds the auth.latency_ms histogram across every rep so the
  // p50/p99 fields cover the steady state, not one cold pass.
  Rng auth_rng(20260808);
  Histogram& auth_latency = registry.histogram(
      "auth.latency_ms",
      {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
       50.0, 100.0});
  std::uint64_t approved = 0;
  std::uint64_t auths_done = 0;
  const auto authenticate_one = [&](std::uint64_t i) {
    const auto id = static_cast<std::size_t>(scatter(i, devices));
    Timer one;
    const puf::ChallengeBatch batch = db.issue(id, auth_rng);
    const puf::AuthenticationOutcome out = db.verify(id, batch, batch.expected);
    auth_latency.observe(one.seconds() * 1e3);
    if (out.approved) ++approved;
    ++auths_done;
  };
  const auto auth_reps =
      static_cast<std::uint64_t>(bench.cli().get_int("auth-reps", 3));
  XPUF_REQUIRE(auth_reps >= 1, "the auth phase needs at least one rep");
  double auth_seconds = std::numeric_limits<double>::infinity();
  double rss_quarter = 0.0;
  double rss_full = 0.0;
  const std::uint64_t quarter = auths / 4;
  for (std::uint64_t rep = 0; rep < auth_reps; ++rep) {
    timer.reset();
    for (std::uint64_t i = 0; i < quarter; ++i) authenticate_one(i);
    // The flat-RSS probe brackets the first rep: the cold pass is where an
    // O(fleet) buffer would grow, later reps only re-walk resident state.
    if (rep == 0) rss_quarter = max_rss_mb();
    for (std::uint64_t i = quarter; i < auths; ++i) authenticate_one(i);
    auth_seconds = std::min(auth_seconds, timer.seconds());
    if (rep == 0) rss_full = max_rss_mb();
  }
  const double rss_delta = rss_full - rss_quarter;
  const bool memory_flat = rss_delta <= rss_slack_mb;
  const double auths_per_sec = static_cast<double>(auths) / auth_seconds;
  const double auth_p50_ms = auth_latency.quantile(0.5);
  const double auth_p99_ms = auth_latency.quantile(0.99);
  XPUF_REQUIRE(approved == auths_done, "model-consistent responses must authenticate");
  XPUF_REQUIRE(auth_latency.total() == auths_done,
               "latency histogram drifted from the auth count");

  // --- phase 3: zero metrics drift -----------------------------------------
  const puf::store::EnrollmentStore& store = db.store();
  // verify() is pure policy since the screening rework — only the issue
  // path resolves a model, through exactly one of the LRU (hit/miss) or the
  // mapped-snapshot fast path.
  const std::uint64_t resolutions = (hits.total() - hits0) +
                                    (misses.total() - misses0) +
                                    (mmap_hits.total() - mmap0);
  const std::uint64_t inserts = devices + (misses.total() - misses0);
  std::uint64_t shard_sum = 0;
  for (std::uint32_t k = 0; k < store.n_shards(); ++k)
    shard_sum += store.shard_issued_total(k);
  XPUF_REQUIRE(resolutions == auths_done,
               "cache accounting drifted: each auth resolves its model exactly once");
  XPUF_REQUIRE(inserts == store.cache_size() + (evictions.total() - evictions0),
               "eviction accounting drifted from cache occupancy");
  XPUF_REQUIRE(store.cache_size() <= cache_capacity, "LRU exceeded its capacity");
  XPUF_REQUIRE(shard_sum == store.issued_total(),
               "per-shard ledger totals drifted from the fleet total");
  XPUF_REQUIRE(issued.total() - issued0 == store.issued_total(),
               "db.challenges_issued drifted from the durable ledger total");
  XPUF_REQUIRE(registry.gauge("db.ledger_size").get() ==
                   static_cast<double>(store.issued_total()),
               "db.ledger_size gauge drifted from the fleet ledger total");
  XPUF_REQUIRE(registry.gauge("db.devices").get() == static_cast<double>(devices),
               "db.devices gauge drifted from the registry");
  const double hit_rate =
      static_cast<double>(hits.total() - hits0) / static_cast<double>(resolutions);

  // --- phase 4: hot-set serving A/B ----------------------------------------
  // A working set that fits the cache, served from the warm store (cached)
  // vs a cache_capacity=1 replica of the same directory (uncached: every
  // request re-decodes its REGISTER record).
  const std::uint64_t hot_count = std::min<std::uint64_t>(256, cache_capacity);
  std::vector<std::size_t> hot_ids;
  for (std::uint64_t i = 0; i < hot_count; ++i)
    hot_ids.push_back(static_cast<std::size_t>(scatter(i + 17, devices)));
  double cached_seconds = std::numeric_limits<double>::infinity();
  double uncached_seconds = std::numeric_limits<double>::infinity();
  timer.reset();
  puf::store::StoreOptions cold_opts;
  cold_opts.n_shards = n_shards;
  cold_opts.cache_capacity = 1;
  const puf::store::EnrollmentStore cold =
      puf::store::EnrollmentStore::open(dir, cold_opts);
  const double recovery_seconds = timer.seconds();
  XPUF_REQUIRE(cold.device_count() == devices, "replay lost devices");
  XPUF_REQUIRE(cold.issued_total() == store.issued_total(), "replay lost ledger entries");
  for (int rep = 0; rep < 3; ++rep) {
    timer.reset();
    for (std::uint64_t round = 0; round < hot_rounds; ++round)
      for (const std::size_t id : hot_ids) (void)store.model(id);
    cached_seconds = std::min(cached_seconds, timer.seconds());
    timer.reset();
    for (std::uint64_t round = 0; round < hot_rounds; ++round)
      for (const std::size_t id : hot_ids) (void)cold.model(id);
    uncached_seconds = std::min(uncached_seconds, timer.seconds());
  }
  const double speedup =
      cached_seconds > 0.0 ? uncached_seconds / cached_seconds : 0.0;

  // --- phase 5: compaction -------------------------------------------------
  const std::uint64_t issued_before_compact = store.issued_total();
  const auto spot_id = static_cast<std::size_t>(devices / 2);
  const auto spot_before = db.model_snapshot(spot_id);
  timer.reset();
  db.save(dir);  // backed mode: compacts the log in place
  const double compact_seconds = timer.seconds();
  const auto spot_after = db.model_snapshot(spot_id);
  XPUF_REQUIRE(db.device_count() == devices, "compaction lost devices");
  XPUF_REQUIRE(store.issued_total() == issued_before_compact,
               "compaction lost ledger entries");
  for (std::size_t p = 0; p < n_pufs; ++p)
    XPUF_REQUIRE(spot_before->puf(p).model.weights() == spot_after->puf(p).model.weights(),
                 "compaction altered a stored model");

  bench.set_field("enroll_seconds", enroll_seconds);
  bench.set_field("devices_per_sec", devices_per_sec);
  bench.set_field("auth_seconds", auth_seconds);
  bench.set_field("auths_per_sec", auths_per_sec);
  bench.set_field("auth_p50_ms", auth_p50_ms);
  bench.set_field("auth_p99_ms", auth_p99_ms);
  bench.set_field("rss_quarter_mb", rss_quarter);
  bench.set_field("rss_full_mb", rss_full);
  bench.set_field("cache_hit_rate", hit_rate);
  bench.set_field("uncached_seconds", uncached_seconds);
  bench.set_field("cached_seconds", cached_seconds);
  bench.set_field("recovery_seconds", recovery_seconds);
  bench.set_field("compact_seconds", compact_seconds);

  Table t("enrollment store at scale");
  t.set_header({"metric", "value"});
  t.add_row({"devices", std::to_string(devices)});
  t.add_row({"shards", std::to_string(n_shards)});
  t.add_row({"cache capacity (" + std::to_string(static_cast<int>(cache_pct)) + "% fleet)",
             std::to_string(cache_capacity)});
  t.add_row({"enroll [s]", Table::num(enroll_seconds, 3)});
  t.add_row({"devices/sec", Table::num(devices_per_sec, 0)});
  t.add_row({"authentications", std::to_string(auths) + " x " +
                                    std::to_string(auth_reps) + " reps"});
  t.add_row({"auth [s] (min of reps)", Table::num(auth_seconds, 3)});
  t.add_row({"auths/sec", Table::num(auths_per_sec, 0)});
  t.add_row({"auth p50 [ms]", Table::num(auth_p50_ms, 4)});
  t.add_row({"auth p99 [ms]", Table::num(auth_p99_ms, 4)});
  t.add_row({"cache hit rate", Table::num(hit_rate, 4)});
  t.add_row({"peak RSS enrolled [MiB]", Table::num(rss_enrolled, 1)});
  t.add_row({"peak RSS @ quarter traffic [MiB]", Table::num(rss_quarter, 1)});
  t.add_row({"peak RSS @ full traffic [MiB]", Table::num(rss_full, 1)});
  t.add_row({"RSS delta [MiB]", Table::num(rss_delta, 1)});
  t.add_row({"RSS flat (delta <= slack)", memory_flat ? "yes" : "NO"});
  t.add_row({"hot-set uncached [s]", Table::num(uncached_seconds, 4)});
  t.add_row({"hot-set cached [s]", Table::num(cached_seconds, 4)});
  t.add_row({"LRU speedup", Table::num(speedup, 2)});
  t.add_row({"log replay (reopen) [s]", Table::num(recovery_seconds, 3)});
  t.add_row({"compaction [s]", Table::num(compact_seconds, 3)});
  t.print();

  std::filesystem::remove_all(dir);
  if (!memory_flat) {
    std::fprintf(stderr,
                 "ERROR: peak RSS grew %.1f MiB between quarter- and full-traffic "
                 "readings (slack %.1f MiB) — serving is not bounded-memory\n",
                 rss_delta, rss_slack_mb);
    return 1;
  }
  return 0;
}
