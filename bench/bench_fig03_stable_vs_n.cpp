// Reproduces paper Fig 3: percentage of 100%-stable CRPs versus the number
// of parallel PUFs n in an XOR PUF.
//
// Paper result: the fraction follows ~0.800^n (negligible inter-PUF
// correlation); at n = 10 only 10.9% of measured CRPs are stable.
#include <cmath>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig03_stable_vs_n",
                                "Fig 3: stable-CRP fraction vs XOR width n, 0.9V/25C");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const std::size_t max_n = 10;
  const auto fractions = analysis::measured_stable_vs_n(
      pop.chip(0), max_n, scale.challenges, scale.trials, sim::Environment::nominal(),
      rng);
  const double base = analysis::fit_exponential_base(fractions);

  Table t("Fig 3: % stable CRPs vs n (paper: ~0.800^n, 10.9% at n=10)");
  t.set_header({"n", "measured stable", "fit " + Table::num(base, 3) + "^n",
                "paper 0.800^n"});
  for (std::size_t n = 1; n <= max_n; ++n) {
    t.add_row({std::to_string(n), Table::pct(fractions[n - 1], 2),
               Table::pct(std::pow(base, static_cast<double>(n)), 2),
               Table::pct(std::pow(0.800, static_cast<double>(n)), 2)});
  }
  t.print();
  std::printf("\nfitted exponential base: %.3f (paper: 0.800)\n", base);
  std::printf("stable fraction at n=10: %.1f%% (paper: 10.9%%)\n",
              100.0 * fractions[max_n - 1]);

  CsvWriter csv(benchutil::out_dir() + "/fig03_stable_vs_n.csv",
                {"n", "measured_stable_fraction"});
  for (std::size_t n = 1; n <= max_n; ++n)
    csv.write_row(std::vector<double>{static_cast<double>(n), fractions[n - 1]});
  std::printf("CSV written: %s\n", csv.path().c_str());
  return 0;
}
