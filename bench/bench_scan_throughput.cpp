// Scan-throughput harness for the batched linear-view evaluation core.
//
// Times ChipTester::scan_individual in both evaluation modes over the
// acceptance workload (default 4096 challenges x 6 PUFs x 64 stages):
//
//   scalar    the legacy per-cell path — a recursive stage walk plus
//             environment derivation for every (PUF, challenge) cell
//   batched   one FeatureBlock + one GEMM tile per chunk (sim/linear.hpp)
//
// Default --mode both runs scalar then batched on the same seeded workload,
// proves on the spot that the two scans are bit-identical, and records
// scalar_seconds / batched_seconds / speedup into the timing JSON
// (bench_out/scan_throughput_timing.json) that tools/check_bench_regression.py
// gates CI on. The original determinism check remains: the timed mode is
// repeated on one lane and compared bit-for-bit.
//
//   ./bench_scan_throughput --threads 1              # acceptance A/B run
//   ./bench_scan_throughput --mode batched           # one mode only
//   ./bench_scan_throughput --stages 32 --pufs 4     # other silicon shapes
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "sim/tester.hpp"

namespace {

/// One full scan with a fresh, identically seeded tester, so every timed run
/// draws the same challenges and the same measurement streams. Writes into
/// `out` through the storage-reusing entry point — repeated scans into one
/// result object are the steady state of a measurement campaign.
void run_scan(const xpuf::sim::ChipPopulation& pop, const xpuf::sim::FeatureBlock& block,
              std::uint64_t trials, xpuf::sim::ScanMode mode,
              xpuf::sim::ChipSoftScan& out) {
  xpuf::Rng rng = pop.measurement_rng();
  xpuf::sim::ChipTester tester(xpuf::sim::Environment::nominal(), trials, rng.fork(),
                               mode);
  tester.scan_individual_into(pop.chip(0), block, out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpuf;
  // The acceptance workload: 4096 challenges x 6 PUFs x 64 stages at a
  // modest trial count — large enough that evaluation (not binomial
  // sampling) dominates, small enough for a CI lane.
  benchutil::BenchHarness bench(
      argc, argv, "scan_throughput",
      "Scan throughput: scalar vs batched scan_individual",
      [](const Cli& cli, BenchScale& s) {
        if (!cli.has("challenges") && !s.full) s.challenges = 4'096;
        if (!cli.has("trials") && !s.full) s.trials = 1'000;
      });
  const BenchScale& scale = bench.scale();
  const auto n_pufs = static_cast<std::size_t>(bench.cli().get_int("pufs", 6));
  const auto stages = static_cast<std::size_t>(bench.cli().get_int("stages", 64));
  // Each mode repeats the identical scan --reps times; the reported time is
  // the per-rep minimum, so a single scheduler hiccup cannot dominate the
  // millisecond scans this workload produces.
  const auto reps = static_cast<std::uint64_t>(bench.cli().get_int("reps", 5));
  XPUF_REQUIRE(reps > 0, "--reps must be positive");
  const std::string mode = bench.cli().get("mode", "both");
  XPUF_REQUIRE(mode == "scalar" || mode == "batched" || mode == "both",
               "--mode must be scalar, batched, or both");
  bench.set_items(scale.challenges * n_pufs);

  sim::PopulationConfig pop_cfg = benchutil::population_config(scale, n_pufs);
  pop_cfg.device.stages = stages;
  sim::ChipPopulation pop(pop_cfg);
  // The challenge batch (and its Phi matrix) is built once and shared by
  // every run; challenge drawing is excluded from all timed sections.
  Rng challenge_rng = pop.measurement_rng();
  sim::ChipTester challenge_tester(sim::Environment::nominal(), scale.trials,
                                   challenge_rng.fork());
  const sim::FeatureBlock block(challenge_tester.random_challenges(
      pop.chip(0), static_cast<std::size_t>(scale.challenges)));

  // Per-rep minimum, with the modes interleaved: on a shared box scheduler
  // noise is strictly additive, so the minimum estimates the true scan cost,
  // and interleaving exposes both modes to the same load phases instead of
  // letting one hiccup land entirely on one side of the ratio.
  Timer timer;
  const double kInf = std::numeric_limits<double>::infinity();
  double scalar_seconds = kInf, batched_seconds = kInf;
  sim::ChipSoftScan scan, batched_scan;
  for (std::uint64_t i = 0; i < reps; ++i) {
    if (mode == "scalar" || mode == "both") {
      timer.reset();
      run_scan(pop, block, scale.trials, sim::ScanMode::kScalar, scan);
      scalar_seconds = std::min(scalar_seconds, timer.seconds());
    }
    if (mode == "batched" || mode == "both") {
      timer.reset();
      run_scan(pop, block, scale.trials, sim::ScanMode::kBatched, batched_scan);
      batched_seconds = std::min(batched_seconds, timer.seconds());
    }
  }
  bool modes_identical = true;
  if (mode == "both")
    modes_identical =
        scan.soft == batched_scan.soft && scan.stable == batched_scan.stable;
  else if (mode == "batched")
    scan = std::move(batched_scan);
  if (mode == "scalar" || mode == "both")
    bench.set_field("scalar_seconds", scalar_seconds);
  if (mode == "batched" || mode == "both")
    bench.set_field("batched_seconds", batched_seconds);
  const sim::ScanMode timed_mode =
      mode == "scalar" ? sim::ScanMode::kScalar : sim::ScanMode::kBatched;

  // Determinism check: the timed mode repeated on one lane must reproduce
  // the multi-lane result bit for bit.
  const std::uint64_t lanes = ThreadPool::global_threads();
  ThreadPool::set_global_threads(1);
  timer.reset();
  sim::ChipSoftScan serial_scan;
  run_scan(pop, block, scale.trials, timed_mode, serial_scan);
  const double serial_seconds = timer.seconds();
  ThreadPool::set_global_threads(lanes);
  const bool lanes_identical =
      scan.soft == serial_scan.soft && scan.stable == serial_scan.stable;

  Table t("scan_individual throughput");
  t.set_header({"metric", "value"});
  t.add_row({"mode", mode});
  t.add_row({"challenges", std::to_string(block.size())});
  t.add_row({"pufs", std::to_string(n_pufs)});
  t.add_row({"stages", std::to_string(stages)});
  t.add_row({"trials/challenge", std::to_string(scale.trials)});
  t.add_row({"reps", std::to_string(reps)});
  t.add_row({"threads", std::to_string(lanes)});
  if (mode == "scalar" || mode == "both")
    t.add_row({"scalar scan [s]", Table::num(scalar_seconds, 3)});
  if (mode == "batched" || mode == "both")
    t.add_row({"batched scan [s]", Table::num(batched_seconds, 3)});
  if (mode == "both") {
    const double speedup = batched_seconds > 0.0 ? scalar_seconds / batched_seconds : 0.0;
    bench.set_field("speedup", speedup);
    t.add_row({"batched speedup over scalar", Table::num(speedup, 2)});
    t.add_row({"modes bit-identical", modes_identical ? "yes" : "NO"});
  }
  t.add_row({"1-thread rerun [s]", Table::num(serial_seconds, 3)});
  t.add_row({"bit-identical across thread counts", lanes_identical ? "yes" : "NO"});
  t.print();

  if (!modes_identical) {
    std::fprintf(stderr, "ERROR: batched scan diverged from the scalar scan\n");
    return 1;
  }
  if (!lanes_identical) {
    std::fprintf(stderr, "ERROR: parallel scan diverged from the serial scan\n");
    return 1;
  }
  return 0;
}
