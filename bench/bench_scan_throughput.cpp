// Scan-throughput harness for the parallel execution layer.
//
// Times ChipTester::scan_individual over the acceptance workload (default
// 100,000 challenges x 4 PUFs) at the requested thread count and proves the
// determinism contract on the spot: the scan is repeated with a single
// lane and the two ChipSoftScan results are compared bit-for-bit. The
// timing JSON (bench_out/scan_throughput_timing.json) is the perf record
// compared across PRs and thread counts.
//
//   ./bench_scan_throughput --threads 8
//   ./bench_scan_throughput --threads 1   # serial baseline
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "sim/tester.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  // The acceptance workload: 100k challenges x 4 PUFs at a modest trial
  // count keeps the run minutes-scale while still dominated by the
  // binomial counter sampling the scan parallelizes over.
  benchutil::BenchHarness bench(
      argc, argv, "scan_throughput", "Scan throughput: parallel scan_individual",
      [](const Cli& cli, BenchScale& s) {
        if (!cli.has("trials") && !s.full) s.trials = 1'000;
      });
  const BenchScale& scale = bench.scale();
  const auto n_pufs = static_cast<std::size_t>(bench.cli().get_int("pufs", 4));
  bench.set_items(scale.challenges * n_pufs);

  sim::ChipPopulation pop(benchutil::population_config(scale, n_pufs));
  Rng rng = pop.measurement_rng();
  sim::ChipTester tester(sim::Environment::nominal(), scale.trials, rng.fork());
  const auto challenges =
      tester.random_challenges(pop.chip(0), static_cast<std::size_t>(scale.challenges));

  Timer scan_timer;
  const sim::ChipSoftScan scan = tester.scan_individual(pop.chip(0), challenges);
  const double parallel_seconds = scan_timer.seconds();

  // Determinism check: the same scan on one lane must be bit-identical.
  // Re-seed an identical tester so both scans draw the same stream base.
  ThreadPool::set_global_threads(1);
  Rng rng2 = pop.measurement_rng();
  sim::ChipTester serial_tester(sim::Environment::nominal(), scale.trials, rng2.fork());
  const auto challenges2 =
      serial_tester.random_challenges(pop.chip(0), static_cast<std::size_t>(scale.challenges));
  scan_timer.reset();
  const sim::ChipSoftScan serial_scan = serial_tester.scan_individual(pop.chip(0), challenges2);
  const double serial_seconds = scan_timer.seconds();
  ThreadPool::set_global_threads(scale.threads);

  const bool identical =
      scan.soft == serial_scan.soft && scan.stable == serial_scan.stable;

  Table t("scan_individual throughput");
  t.set_header({"metric", "value"});
  t.add_row({"challenges", std::to_string(challenges.size())});
  t.add_row({"pufs", std::to_string(n_pufs)});
  t.add_row({"trials/challenge", std::to_string(scale.trials)});
  t.add_row({"threads", std::to_string(scale.threads)});
  t.add_row({"parallel scan [s]", Table::num(parallel_seconds, 3)});
  t.add_row({"1-thread scan [s]", Table::num(serial_seconds, 3)});
  t.add_row({"speedup", Table::num(serial_seconds / parallel_seconds, 2)});
  t.add_row({"bit-identical across thread counts", identical ? "yes" : "NO"});
  t.print();

  if (!identical) {
    std::fprintf(stderr, "ERROR: parallel scan diverged from the serial scan\n");
    return 1;
  }
  return 0;
}
