// Service load: closed-loop multi-client authentication, two transports.
//
// --transport pipe (default): a fleet of simulated devices is enrolled in
// parallel (stream-keyed, so the models are independent of the thread
// count), provisioned into a sharded lockstep ServiceEngine, and driven
// through enroll -> authenticate (-> revoke) session plans over
// FaultyTransport pairs injecting drops, duplicates, reorders, truncations
// and bit-flips. The bench is an end-to-end accounting audit as much as a
// load generator: it fails (non-zero exit) unless every session lands in
// exactly one terminal state, the frame conservation invariants hold, and
// the global net.* counters reconcile with the per-session outcome ledgers
// — zero drift, at any --threads.
//
// --transport socket: the same fleet runs over REAL nonblocking localhost
// TCP (or Unix-domain, --unix 1) sockets on the epoll event loop
// (net/async/service_engine.hpp), multiplexing >= 1000 concurrent
// connections. Three phases:
//   1. lockstep ORACLE — the clean-wire deterministic engine on the same
//      seed and workload, whose per-device ledgers and outcome fingerprint
//      the socket run must reproduce bit-for-bit;
//   2. socket STEADY — the event-loop run, reconciled device-by-device
//      against the oracle plus a byte-conservation and counter drift audit,
//      with p50/p99 session latency from the net.async.session_latency_ms
//      histogram;
//   3. OVERLOAD — a starved request queue (bounded, typed) must degrade
//      into retryable busy NACKs absorbed by client backoff: zero failed
//      sessions, nonzero net.async.request_overflow, never a silent drop.
//
// Both transports issue through the database's per-device stable-challenge
// pool by default (--pool-target N, 0 = live screening); the zero-drift
// audit additionally reconciles db.issue_requests against the per-handler
// batches_issued ledgers and requires at least one pool hit when enabled.
//
// Artifacts: bench_out/service_load_timing.json (pipe) or
// bench_out/service_socket_timing.json (socket; extra fields
// lockstep_seconds/socket_seconds/overload_seconds/p50_ms/p99_ms) and, with
// --metrics-out, the counter snapshot the schema checker validates
// (tools/check_metrics_schema.py --expect-net / --expect-net-socket).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "net/async/service_engine.hpp"
#include "net/service.hpp"
#include "puf/enrollment.hpp"

namespace {

/// The harness name decides the timing-artifact file, so the transport mode
/// must be known before the harness exists — a pre-parse, not a Cli lookup.
bool socket_mode_requested(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--transport") == 0 &&
        std::strcmp(argv[i + 1], "socket") == 0)
      return true;
  return false;
}

struct Workload {
  xpuf::sim::ChipPopulation pop;
  std::vector<xpuf::puf::ServerModel> models;
  std::uint32_t auth_sessions = 3;
};

template <typename Engine>
void provision_fleet(Engine& engine, const Workload& fleet,
                     std::size_t devices) {
  for (std::size_t i = 0; i < devices; ++i) {
    // Every 4th device also exercises the revocation path.
    engine.provision(fleet.pop.chip(i), fleet.models[i],
                     xpuf::sim::Environment::nominal(), fleet.auth_sessions,
                     /*enroll_first=*/true, /*revoke_at_end=*/i % 4 == 3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpuf;
  const bool socket_mode = socket_mode_requested(argc, argv);
  benchutil::BenchHarness bench(
      argc, argv, socket_mode ? "service_socket" : "service_load",
      socket_mode ? "Service load: fleet auth over localhost sockets"
                  : "Service load: fleet auth over a faulty wire");
  const BenchScale& scale = bench.scale();
  MetricsRegistry::global().reset();

  // The socket mode's acceptance floor is 1000 concurrent connections, so
  // its default fleet is 1000 devices with lighter 2-PUF enrollment; the
  // pipe mode keeps the historical 4-PUF workload.
  const auto devices = static_cast<std::size_t>(bench.cli().get_int(
      "devices", socket_mode ? 1000 : (scale.full ? 256 : 24)));
  const auto auth_sessions = static_cast<std::uint32_t>(
      bench.cli().get_int("sessions", socket_mode ? 2 : 3));
  // Per-band fault probability; five bands, so the default injects ~5% of
  // frames with exactly one fault each (>= the 1% acceptance floor).
  const double fault_rate = bench.cli().get_double("fault-rate", 0.01);
  const bool unix_socket = bench.cli().get_int("unix", 0) != 0;
  const std::size_t n_pufs = socket_mode ? 2 : 4;

  constexpr std::uint64_t kSeed = 7411;
  puf::DatabaseConfig db_config;
  db_config.n_pufs = n_pufs;
  db_config.policy.challenge_count = socket_mode ? 8 : 16;
  // Issuance pooling (--pool-target 0 restores live screening). Pooled
  // batches are a pure per-device drain, so the lockstep oracle and the
  // socket engine still reconcile bit-for-bit; the audit below pins the
  // pooled path's accounting either way.
  const auto pool_target = static_cast<std::size_t>(
      bench.cli().get_int("pool-target", 4 * db_config.policy.challenge_count));
  db_config.pool.target = pool_target;

  // One fab lot for the whole fleet; small chips keep enrollment and
  // challenge selection minutes-scale at the full device count.
  sim::PopulationConfig pop_cfg;
  pop_cfg.n_chips = devices;
  pop_cfg.n_pufs_per_chip = n_pufs;
  pop_cfg.seed = 40917;

  puf::EnrollmentConfig enroll_cfg;
  enroll_cfg.training_challenges = socket_mode ? 600 : 1200;
  enroll_cfg.trials = socket_mode ? 800 : 2000;
  const puf::Enroller enroller(enroll_cfg);
  const puf::BetaFactors betas{0.9, 1.1};

  Workload fleet{sim::ChipPopulation(pop_cfg), {}, auth_sessions};

  // Parallel enrollment: chunk ownership over disjoint vector slots, one
  // private RNG stream per device — bit-identical at any thread count.
  std::printf("enrolling %zu devices (%zu-PUF chips, %zu training CRPs)...\n",
              devices, pop_cfg.n_pufs_per_chip, enroll_cfg.training_challenges);
  const StreamFamily enroll_family(Rng(9406).fork_base());
  fleet.models.resize(devices);
  parallel_for(devices, 1,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) {
                   Rng rng = enroll_family.stream(i);
                   fleet.models[i] = enroller.enroll(fleet.pop.chip(i), rng);
                   fleet.models[i].set_betas(betas);
                 }
               });

  std::vector<std::string> drift;
  auto& reg = MetricsRegistry::global();
  const auto expect = [&](const char* counter, std::uint64_t ledger) {
    const std::uint64_t value = reg.counter(counter).total();
    if (value != ledger)
      drift.push_back(std::string(counter) + ": counter=" +
                      std::to_string(value) + " ledger=" +
                      std::to_string(ledger));
  };

  if (!socket_mode) {
    net::ServiceConfig config;
    config.seed = kSeed;
    config.database = db_config;
    config.faults = net::FaultProfile::uniform(fault_rate);
    config.max_rounds = 8192;
    net::ServiceEngine engine(config);
    provision_fleet(engine, fleet, devices);

    const net::ServiceReport report = engine.run();
    bench.set_items(report.frames_sent);

    std::printf("\nrounds=%u devices=%llu sessions=%llu\n", report.rounds,
                static_cast<unsigned long long>(report.devices),
                static_cast<unsigned long long>(report.sessions_total));
    std::printf(
        "terminals: approved=%llu denied=%llu rejected=%llu failed=%llu "
        "(retries=%llu expired=%llu nacks=%llu revocations=%llu)\n",
        static_cast<unsigned long long>(report.approved),
        static_cast<unsigned long long>(report.denied),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(report.failed),
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(report.sessions_expired),
        static_cast<unsigned long long>(report.nacks_sent),
        static_cast<unsigned long long>(report.revocations));
    std::printf("wire: sent=%llu delivered=%llu corrupt=%llu | faults: "
                "drop=%llu dup=%llu reorder=%llu trunc=%llu flip=%llu\n",
                static_cast<unsigned long long>(report.frames_sent),
                static_cast<unsigned long long>(report.frames_delivered),
                static_cast<unsigned long long>(report.frames_corrupt),
                static_cast<unsigned long long>(report.faults.dropped),
                static_cast<unsigned long long>(report.faults.duplicated),
                static_cast<unsigned long long>(report.faults.reordered),
                static_cast<unsigned long long>(report.faults.truncated),
                static_cast<unsigned long long>(report.faults.bitflipped));
    std::printf("fingerprint: %016llx\n",
                static_cast<unsigned long long>(report.fingerprint));

    // --- zero-drift audit --------------------------------------------------
    drift.insert(drift.end(), report.violations.begin(),
                 report.violations.end());
    expect("net.session_approved", report.approved);
    expect("net.session_denied", report.denied);
    expect("net.session_rejected", report.rejected);
    expect("net.session_failed", report.failed);
    expect("net.sessions_opened", report.sessions_total);
    expect("net.retries", report.retries);
    expect("net.frames_sent", report.frames_sent);
    expect("net.frames_delivered", report.frames_delivered);
    expect("net.frames_corrupt", report.frames_corrupt);
    expect("net.frames_dropped", report.faults.dropped);
    expect("net.frames_duplicated", report.faults.duplicated);
    expect("net.frames_reordered", report.faults.reordered);
    expect("net.frames_truncated", report.faults.truncated);
    expect("net.frames_bitflipped", report.faults.bitflipped);
    expect("db.issue_requests", report.batches_issued);
    std::printf("issuance: batches=%llu pool_hits=%llu pool_misses=%llu "
                "refills=%llu\n",
                static_cast<unsigned long long>(report.batches_issued),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_hits").total()),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_misses").total()),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_refills").total()));
    if (pool_target > 0 && reg.counter("auth.pool_hits").total() == 0)
      drift.push_back("pooling enabled but every issue missed the pool");
    if (fault_rate > 0.0 && report.faults.faults() * 100 < report.faults.sent)
      drift.push_back("injected fault fraction fell below the 1% floor");
  } else {
    // --- phase 1: lockstep oracle (clean wire, same seed + workload) -------
    std::printf("\n[oracle] lockstep clean-wire run, %zu devices...\n",
                devices);
    Timer lockstep_timer;
    net::ServiceConfig oracle_config;
    oracle_config.seed = kSeed;
    oracle_config.database = db_config;
    oracle_config.max_rounds = 8192;
    net::ServiceEngine oracle(oracle_config);
    provision_fleet(oracle, fleet, devices);
    const net::ServiceReport oracle_report = oracle.run();
    const double lockstep_seconds = lockstep_timer.seconds();
    drift.insert(drift.end(), oracle_report.violations.begin(),
                 oracle_report.violations.end());

    // --- phase 2: socket steady state --------------------------------------
    std::printf("[socket] event-loop run over %s, %zu connections...\n",
                unix_socket ? "unix-domain sockets" : "localhost TCP",
                devices);
    MetricsRegistry::global().reset();
    Timer socket_timer;
    net::async::AsyncServiceConfig config;
    config.seed = kSeed;
    config.database = db_config;
    config.unix_socket = unix_socket;
    config.unix_path = "bench_async.sock";
    config.max_connections =
        devices + 64;  // accept overflow would fail provisioned clients
    config.request_queue_cap = devices * 8 + 1024;
    net::async::AsyncServiceEngine engine(config);
    provision_fleet(engine, fleet, devices);
    const net::async::AsyncServiceReport report = engine.run();
    const double socket_seconds = socket_timer.seconds();
    bench.set_items(report.frames_sent);
    drift.insert(drift.end(), report.violations.begin(),
                 report.violations.end());

    std::printf("\nticks=%llu connections=%llu sessions=%llu\n",
                static_cast<unsigned long long>(report.ticks),
                static_cast<unsigned long long>(report.connections_accepted),
                static_cast<unsigned long long>(report.sessions_total));
    std::printf(
        "terminals: approved=%llu denied=%llu rejected=%llu failed=%llu "
        "(retries=%llu expired=%llu nacks=%llu revocations=%llu)\n",
        static_cast<unsigned long long>(report.approved),
        static_cast<unsigned long long>(report.denied),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(report.failed),
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(report.sessions_expired),
        static_cast<unsigned long long>(report.nacks_sent),
        static_cast<unsigned long long>(report.revocations));
    std::printf("wire: sent=%llu delivered=%llu corrupt=%llu | bytes: "
                "read=%llu written=%llu resync=%llu\n",
                static_cast<unsigned long long>(report.frames_sent),
                static_cast<unsigned long long>(report.frames_delivered),
                static_cast<unsigned long long>(report.frames_corrupt),
                static_cast<unsigned long long>(report.bytes_read),
                static_cast<unsigned long long>(report.bytes_written),
                static_cast<unsigned long long>(
                    reg.counter("net.async.resync_bytes").total()));
    std::printf("fingerprint: %016llx (oracle %016llx)\n",
                static_cast<unsigned long long>(report.outcome_fingerprint),
                static_cast<unsigned long long>(
                    oracle_report.outcome_fingerprint));

    // --- oracle reconciliation ---------------------------------------------
    if (!report.all_finished)
      drift.push_back("socket run did not finish every session");
    if (report.outcome_fingerprint != oracle_report.outcome_fingerprint)
      drift.push_back("outcome fingerprint diverged from the lockstep oracle");
    if (report.connections_accepted < devices)
      drift.push_back("fewer connections accepted than devices provisioned");
    std::size_t mismatched_devices = 0;
    for (const std::uint64_t id : engine.device_ids()) {
      const auto& mine = engine.device_records(id);
      const auto& oracle_records = oracle.device_records(id);
      if (mine.size() != oracle_records.size()) {
        ++mismatched_devices;
        continue;
      }
      for (std::size_t s = 0; s < mine.size(); ++s) {
        // Retries are transport-variant by design; everything else in the
        // ledger must match the oracle exactly.
        if (mine[s].session_id != oracle_records[s].session_id ||
            mine[s].opened_with != oracle_records[s].opened_with ||
            mine[s].terminal != oracle_records[s].terminal ||
            mine[s].mismatches != oracle_records[s].mismatches ||
            mine[s].challenges_used != oracle_records[s].challenges_used) {
          ++mismatched_devices;
          break;
        }
      }
    }
    if (mismatched_devices > 0)
      drift.push_back(std::to_string(mismatched_devices) +
                      " device ledgers diverged from the lockstep oracle");

    // --- zero-drift audit (global counters vs the engine's ledgers) --------
    expect("net.session_approved", report.approved);
    expect("net.session_denied", report.denied);
    expect("net.session_rejected", report.rejected);
    expect("net.session_failed", report.failed);
    expect("net.sessions_opened", report.sessions_total);
    expect("net.retries", report.retries);
    expect("net.frames_sent", report.frames_sent);
    expect("net.frames_delivered", report.frames_delivered);
    expect("net.frames_corrupt", report.frames_corrupt);
    expect("net.async.bytes_read", report.bytes_read);
    expect("net.async.bytes_written", report.bytes_written);
    expect("net.async.connections_accepted", report.connections_accepted);
    expect("net.async.accept_overflow", report.accept_overflow);
    expect("net.async.request_overflow", report.request_overflow);
    // Teardown closes every accepted server conn and every client socket.
    expect("net.async.connections_closed",
           report.connections_accepted + devices);
    expect("net.async.resync_bytes", 0);    // TCP never corrupts localhost
    expect("net.async.write_overflow", 0);  // steady state never backlogs
    expect("db.issue_requests", report.batches_issued);
    std::printf("issuance: batches=%llu pool_hits=%llu pool_misses=%llu "
                "refills=%llu\n",
                static_cast<unsigned long long>(report.batches_issued),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_hits").total()),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_misses").total()),
                static_cast<unsigned long long>(
                    reg.counter("auth.pool_refills").total()));
    if (pool_target > 0 && reg.counter("auth.pool_hits").total() == 0)
      drift.push_back("pooling enabled but every issue missed the pool");
    if (report.bytes_read != report.bytes_written)
      drift.push_back("byte conservation failed: read " +
                      std::to_string(report.bytes_read) + " != written " +
                      std::to_string(report.bytes_written));
    const Histogram& latency = reg.histogram(
        "net.async.session_latency_ms",
        {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
         500.0, 1000.0, 5000.0});
    if (latency.total() != report.sessions_total)
      drift.push_back("latency histogram holds " +
                      std::to_string(latency.total()) + " sessions, ledger " +
                      std::to_string(report.sessions_total));
    const double p50 = latency.quantile(0.5);
    const double p99 = latency.quantile(0.99);
    std::printf("latency: p50=%.3f ms p99=%.3f ms (%llu sessions)\n", p50, p99,
                static_cast<unsigned long long>(latency.total()));

    // --- phase 3: overload — typed backpressure, no silent drops -----------
    const auto overload_devices = std::min<std::size_t>(devices, 64);
    std::printf("\n[overload] starved queue, %zu devices...\n",
                overload_devices);
    Timer overload_timer;
    net::async::AsyncServiceConfig overload_config;
    overload_config.seed = kSeed;
    overload_config.database = db_config;
    overload_config.unix_socket = unix_socket;
    overload_config.unix_path = "bench_async.sock";
    overload_config.request_queue_cap = 2;
    overload_config.serve_budget_per_poll = 2;
    overload_config.client_max_retries = 40;
    net::async::AsyncServiceEngine overload_engine(overload_config);
    provision_fleet(overload_engine, fleet, overload_devices);
    const net::async::AsyncServiceReport overload_report =
        overload_engine.run();
    const double overload_seconds = overload_timer.seconds();
    drift.insert(drift.end(), overload_report.violations.begin(),
                 overload_report.violations.end());
    std::printf("overload: busy_nacks=%llu request_overflow=%llu "
                "retries=%llu failed=%llu timers_fired=%llu\n",
                static_cast<unsigned long long>(overload_report.busy_nacks),
                static_cast<unsigned long long>(
                    overload_report.request_overflow),
                static_cast<unsigned long long>(overload_report.retries),
                static_cast<unsigned long long>(overload_report.failed),
                static_cast<unsigned long long>(
                    reg.counter("net.async.timers_fired").total()));
    if (!overload_report.all_finished)
      drift.push_back("overload run did not finish every session");
    if (overload_report.request_overflow == 0)
      drift.push_back("overload produced no request-queue overflow — the "
                      "backpressure path went unexercised");
    if (overload_report.failed != 0)
      drift.push_back("overload failed sessions: backpressure must degrade "
                      "into retries, never terminal failures");
    if (overload_report.busy_nacks <
        overload_report.request_overflow + overload_report.accept_overflow)
      drift.push_back("busy NACKs under-count the queue overflows");
    if (reg.counter("net.async.timers_fired").total() == 0)
      drift.push_back("no timers fired under overload — retry deadlines "
                      "cannot have been armed");

    bench.set_field("connections", static_cast<double>(devices));
    bench.set_field("lockstep_seconds", lockstep_seconds);
    bench.set_field("socket_seconds", socket_seconds);
    bench.set_field("overload_seconds", overload_seconds);
    bench.set_field("p50_ms", p50);
    bench.set_field("p99_ms", p99);
  }

  if (!drift.empty()) {
    std::printf("\nACCOUNTING DRIFT (%zu):\n", drift.size());
    for (const auto& v : drift) std::printf("  %s\n", v.c_str());
    return 1;
  }
  std::printf("\nzero accounting drift: every session terminal, counters "
              "reconcile with ledgers\n");
  return 0;
}
