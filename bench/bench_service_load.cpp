// Service load: closed-loop multi-client authentication over a faulty wire.
//
// A fleet of simulated devices is enrolled in parallel (stream-keyed, so the
// models are independent of the thread count), provisioned into a sharded
// ServiceEngine, and driven through enroll -> authenticate (-> revoke)
// session plans over FaultyTransport pairs injecting drops, duplicates,
// reorders, truncations and bit-flips. The bench is an end-to-end
// accounting audit as much as a load generator: it fails (non-zero exit)
// unless every session lands in exactly one terminal state, the frame
// conservation invariants hold, and the global net.* counters reconcile
// with the per-session outcome ledgers — zero drift, at any --threads.
//
// Artifacts: bench_out/service_load_timing.json (items = frames sent) and,
// with --metrics-out, the net.* counter snapshot the schema checker
// validates (tools/check_metrics_schema.py --expect-net).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "net/service.hpp"
#include "puf/enrollment.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "service_load",
                                "Service load: fleet auth over a faulty wire");
  const BenchScale& scale = bench.scale();
  MetricsRegistry::global().reset();

  const auto devices = static_cast<std::size_t>(
      bench.cli().get_int("devices", scale.full ? 256 : 24));
  const auto auth_sessions = static_cast<std::uint32_t>(
      bench.cli().get_int("sessions", 3));
  // Per-band fault probability; five bands, so the default injects ~5% of
  // frames with exactly one fault each (>= the 1% acceptance floor).
  const double fault_rate = bench.cli().get_double("fault-rate", 0.01);

  net::ServiceConfig config;
  config.seed = 7411;
  config.database.n_pufs = 4;
  config.database.policy.challenge_count = 16;
  config.faults = net::FaultProfile::uniform(fault_rate);
  config.max_rounds = 8192;

  // One fab lot for the whole fleet; 4-PUF chips keep enrollment and
  // challenge selection minutes-scale at the full device count.
  sim::PopulationConfig pop_cfg;
  pop_cfg.n_chips = devices;
  pop_cfg.n_pufs_per_chip = config.database.n_pufs;
  pop_cfg.seed = 40917;
  sim::ChipPopulation pop(pop_cfg);

  puf::EnrollmentConfig enroll_cfg;
  enroll_cfg.training_challenges = 1200;
  enroll_cfg.trials = 2000;
  const puf::Enroller enroller(enroll_cfg);
  const puf::BetaFactors betas{0.9, 1.1};

  // Parallel enrollment: chunk ownership over disjoint vector slots, one
  // private RNG stream per device — bit-identical at any thread count.
  std::printf("enrolling %zu devices (%zu-PUF chips, %zu training CRPs)...\n",
              devices, pop_cfg.n_pufs_per_chip, enroll_cfg.training_challenges);
  const StreamFamily enroll_family(Rng(9406).fork_base());
  std::vector<puf::ServerModel> models(devices);
  parallel_for(devices, 1,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 for (std::size_t i = begin; i < end; ++i) {
                   Rng rng = enroll_family.stream(i);
                   models[i] = enroller.enroll(pop.chip(i), rng);
                   models[i].set_betas(betas);
                 }
               });

  net::ServiceEngine engine(config);
  for (std::size_t i = 0; i < devices; ++i) {
    // Every 4th device also exercises the revocation path.
    engine.provision(pop.chip(i), std::move(models[i]),
                     sim::Environment::nominal(), auth_sessions,
                     /*enroll_first=*/true, /*revoke_at_end=*/i % 4 == 3);
  }

  const net::ServiceReport report = engine.run();
  bench.set_items(report.frames_sent);

  std::printf("\nrounds=%u devices=%llu sessions=%llu\n", report.rounds,
              static_cast<unsigned long long>(report.devices),
              static_cast<unsigned long long>(report.sessions_total));
  std::printf("terminals: approved=%llu denied=%llu rejected=%llu failed=%llu "
              "(retries=%llu expired=%llu nacks=%llu revocations=%llu)\n",
              static_cast<unsigned long long>(report.approved),
              static_cast<unsigned long long>(report.denied),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.failed),
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.sessions_expired),
              static_cast<unsigned long long>(report.nacks_sent),
              static_cast<unsigned long long>(report.revocations));
  std::printf("wire: sent=%llu delivered=%llu corrupt=%llu | faults: "
              "drop=%llu dup=%llu reorder=%llu trunc=%llu flip=%llu\n",
              static_cast<unsigned long long>(report.frames_sent),
              static_cast<unsigned long long>(report.frames_delivered),
              static_cast<unsigned long long>(report.frames_corrupt),
              static_cast<unsigned long long>(report.faults.dropped),
              static_cast<unsigned long long>(report.faults.duplicated),
              static_cast<unsigned long long>(report.faults.reordered),
              static_cast<unsigned long long>(report.faults.truncated),
              static_cast<unsigned long long>(report.faults.bitflipped));
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(report.fingerprint));

  // --- zero-drift audit -----------------------------------------------------
  std::vector<std::string> drift = report.violations;
  auto& reg = MetricsRegistry::global();
  const auto expect = [&](const char* counter, std::uint64_t ledger) {
    const std::uint64_t value = reg.counter(counter).total();
    if (value != ledger)
      drift.push_back(std::string(counter) + ": counter=" +
                      std::to_string(value) + " ledger=" +
                      std::to_string(ledger));
  };
  expect("net.session_approved", report.approved);
  expect("net.session_denied", report.denied);
  expect("net.session_rejected", report.rejected);
  expect("net.session_failed", report.failed);
  expect("net.sessions_opened", report.sessions_total);
  expect("net.retries", report.retries);
  expect("net.frames_sent", report.frames_sent);
  expect("net.frames_delivered", report.frames_delivered);
  expect("net.frames_corrupt", report.frames_corrupt);
  expect("net.frames_dropped", report.faults.dropped);
  expect("net.frames_duplicated", report.faults.duplicated);
  expect("net.frames_reordered", report.faults.reordered);
  expect("net.frames_truncated", report.faults.truncated);
  expect("net.frames_bitflipped", report.faults.bitflipped);
  if (fault_rate > 0.0 && report.faults.faults() * 100 < report.faults.sent)
    drift.push_back("injected fault fraction fell below the 1% floor");

  if (!drift.empty()) {
    std::printf("\nACCOUNTING DRIFT (%zu):\n", drift.size());
    for (const auto& v : drift) std::printf("  %s\n", v.c_str());
    return 1;
  }
  std::printf("\nzero accounting drift: every session terminal, counters "
              "reconcile with ledgers\n");
  return 0;
}
