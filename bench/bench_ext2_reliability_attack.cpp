// Extension 2: reliability-based CMA-ES attack (Becker [9]) vs the
// reproduced paper's stable-challenge-selection defense.
//
// After fuse burn, the XOR output remains queryable, so an attacker who can
// query freely measures soft responses and mounts the reliability attack —
// recovering constituent PUFs one by one regardless of the XOR width's
// protection against classical (response-only) modeling. The paper's
// protocol closes this side channel structurally: servers only exchange
// CRPs predicted 100% stable, whose reliability is identically 1.
//
// This bench quantifies both sides:
//   (a) attack success on freely-queried random challenges vs observed
//       stable-only protocol transcripts, per XOR width;
//   (b) the query budget the attack needs.
#include <cmath>
#include <cstdio>
#include <span>

#include "bench_common.hpp"
#include "common/math.hpp"
#include "puf/attack.hpp"
#include "puf/attack_reliability.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "ext2_reliability_attack",
                                "Ext 2: reliability attack (Becker [9]) vs stable-only transcripts");
  const BenchScale& scale = bench.scale();

  Table t("Reliability CMA-ES attack outcome per XOR width "
          "(free queries vs stable-only protocol transcripts)");
  t.set_header({"n", "observation source", "CRPs", "constituents found",
                "best weight corr", "XOR accuracy"});
  CsvWriter csv(benchutil::out_dir() + "/ext2_reliability_attack.csv",
                {"n", "source", "crps", "found", "accuracy"});

  const std::uint64_t rel_trials = 1'000;  // queries per challenge
  for (std::size_t n : {2u, 3u}) {
    sim::PopulationConfig pcfg = benchutil::population_config(scale, n);
    pcfg.seed = 404 + n;
    sim::ChipPopulation pop(pcfg);
    auto& chip = pop.chip(0);
    Rng rng = pop.measurement_rng();

    // Holdout of clean stable CRPs for accuracy scoring / calibration.
    puf::AttackDatasetConfig dcfg;
    dcfg.n_pufs = n;
    dcfg.challenges = 6'000;
    dcfg.trials = rel_trials;
    const puf::AttackDataset holdout = puf::build_stable_attack_dataset(chip, dcfg, rng);

    // Server model for the protocol-transcript scenario.
    puf::EnrollmentConfig ecfg;
    ecfg.training_challenges = 3'000;
    ecfg.trials = 2'000;
    puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
    model.set_betas(puf::BetaFactors{0.8, 1.2});

    const std::size_t n_obs = scale.full ? 10'000 : 3'000 * n;

    for (const bool stable_only : {false, true}) {
      std::vector<puf::ReliabilityCrp> obs;
      if (!stable_only) {
        obs = puf::collect_xor_reliability_crps(chip, n_obs, rel_trials,
                                                sim::Environment::nominal(), rng);
      } else {
        puf::ModelBasedSelector selector(model, n);
        const puf::SelectionResult sel = selector.select(n_obs, rng);
        for (const auto& c : sel.challenges) {
          puf::ReliabilityCrp crp;
          crp.challenge = c;
          crp.soft = chip.measure_xor_soft_response(c, sim::Environment::nominal(),
                                                    rel_trials, rng)
                         .soft_response();
          obs.push_back(std::move(crp));
        }
      }

      puf::ReliabilityAttackConfig acfg;
      acfg.n_pufs = n;
      acfg.max_restarts = stable_only ? 4 : 4 * n;  // bound the doomed search
      const puf::ReliabilityAttackResult res =
          puf::run_reliability_attack(obs, holdout.train, acfg);

      // Best |corr| of any recovered vector against any true constituent.
      double best_corr = 0.0;
      for (const auto& w : res.recovered) {
        for (std::size_t p = 0; p < n; ++p) {
          const linalg::Vector wt = chip.device_for_analysis(p).reduced_weights(
              sim::Environment::nominal());
          best_corr = std::max(best_corr,
                               std::fabs(pearson_correlation(
                                   std::span<const double>(w.data(), wt.size()),
                                   std::span<const double>(wt.data(), wt.size()))));
        }
      }
      const double accuracy = holdout.test.empty()
                                  ? 0.0
                                  : puf::reliability_attack_accuracy(res, holdout.test);
      t.add_row({std::to_string(n),
                 stable_only ? "stable-only transcript" : "free queries",
                 std::to_string(obs.size()),
                 std::to_string(res.recovered.size()) + "/" + std::to_string(n),
                 Table::num(best_corr, 3), Table::pct(accuracy, 1)});
      csv.write_row(std::vector<std::string>{
          std::to_string(n), stable_only ? "stable_only" : "free",
          std::to_string(obs.size()), std::to_string(res.recovered.size()),
          Table::num(accuracy, 4)});
      std::fprintf(stderr, "  [ext2] n=%zu %s: found=%zu acc=%.3f\n", n,
                   stable_only ? "stable-only" : "free", res.recovered.size(), accuracy);
    }
  }
  t.print();
  std::printf("\ntakeaway: free repeated queries leak per-constituent reliability and "
              "the CMA-ES attack shreds small XOR widths; restricting the protocol to "
              "predicted-100%%-stable CRPs flattens the reliability signal to 1.0 and "
              "starves the attack — a security property of the paper's scheme beyond "
              "its stability motivation.\n");
  return 0;
}
