// Extension 3: PUF key generation — BCH strength needed with and without
// the paper's stable-challenge selection.
//
// The code-offset fuzzy extractor must absorb the key-challenge response
// error rate. Random challenges on a 10-XOR PUF flip ~10-20% of bits per
// read (worse at corners); the paper's model-selected 100%-stable
// challenges flip essentially none. The bench sweeps BCH t and reports the
// key-reproduction failure rate for both policies across corners — showing
// the selection scheme converting an infeasible code budget into a trivial
// one (and shrinking helper-data leakage, which grows with n - k).
#include <cstdio>

#include "bench_common.hpp"
#include "puf/key_generation.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "ext3_key_generation",
                                "Ext 3: fuzzy-extractor code budget vs challenge selection");
  const BenchScale& scale = bench.scale();

  const std::size_t n_pufs = 10;
  sim::PopulationConfig pcfg = benchutil::population_config(scale, n_pufs);
  pcfg.seed = 9009;
  sim::ChipPopulation pop(pcfg);
  auto& chip = pop.chip(0);
  Rng rng = pop.measurement_rng();
  const std::uint64_t trials = std::min<std::uint64_t>(scale.trials, 10'000);

  // Enrollment + V/T betas for the stable-selection policy.
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const auto eval = puf::random_challenges(chip.stages(), 3'000, rng);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(puf::measure_evaluation_block(chip, eval, env, trials, rng));
  model.set_betas(puf::find_betas(model, blocks).betas);

  const int rounds = scale.full ? 40 : 15;
  Table t("Key-reproduction failure rate over " + std::to_string(rounds) +
          " reads per corner set, BCH(127, k, t), 10-XOR PUF");
  t.set_header({"challenge policy", "BCH t", "code rate k/n", "fail @ nominal",
                "fail @ worst corner (0.8V/60C)"});
  CsvWriter csv(benchutil::out_dir() + "/ext3_key_generation.csv",
                {"policy", "t", "k", "fail_nominal", "fail_corner"});

  for (const bool stable_policy : {false, true}) {
    std::vector<puf::Challenge> key_challenges;
    if (stable_policy) {
      puf::ModelBasedSelector selector(model, n_pufs);
      const puf::SelectionResult sel = selector.select(127, rng);
      if (!sel.filled) {
        std::printf("stable selection could not fill 127 challenges — aborting row\n");
        continue;
      }
      key_challenges = sel.challenges;
    } else {
      key_challenges = puf::random_challenges(chip.stages(), 127, rng);
    }

    for (unsigned bch_t : {2u, 5u, 10u, 15u}) {
      const puf::FuzzyExtractor fx(puf::KeyGenConfig{.bch_m = 7, .bch_t = bch_t});
      const puf::KeyGenResult gen =
          fx.generate(chip, key_challenges, sim::Environment::nominal(), rng);

      auto failure_rate = [&](const sim::Environment& env) {
        int failures = 0;
        for (int r = 0; r < rounds; ++r) {
          const puf::KeyRepResult rep = fx.reproduce(chip, gen.helper, env, rng);
          if (!rep.ok || rep.key != gen.key) ++failures;
        }
        return static_cast<double>(failures) / rounds;
      };
      const double fail_nom = failure_rate(sim::Environment::nominal());
      const double fail_corner = failure_rate({0.8, 60.0});

      t.add_row({stable_policy ? "model-selected stable" : "random",
                 std::to_string(bch_t),
                 Table::num(static_cast<double>(fx.code().k()) / 127.0, 3),
                 Table::pct(fail_nom, 1), Table::pct(fail_corner, 1)});
      csv.write_row(std::vector<std::string>{
          stable_policy ? "stable" : "random", std::to_string(bch_t),
          std::to_string(fx.code().k()), Table::num(fail_nom, 4),
          Table::num(fail_corner, 4)});
      std::fprintf(stderr, "  [ext3] %s t=%u done\n",
                   stable_policy ? "stable" : "random", bch_t);
    }
  }
  t.print();
  std::printf("\ntakeaway: with random challenges even BCH t=15 (k=36, rate 0.28) "
              "cannot reliably reproduce a key from a 10-XOR PUF; model-selected "
              "stable challenges make t=2 (k=113, rate 0.89) error-free across "
              "corners — the paper's selection scheme is a key-generation enabler, "
              "not just an authentication trick.\n");
  return 0;
}
