// Ablation 1 (paper Sec 4, difference (1)): linear regression on fractional
// soft responses vs logistic regression on binarized hard responses for
// enrollment-model extraction.
//
// The paper argues soft responses carry delay-magnitude information that a
// hard-response logistic fit discards. This bench quantifies that: weight-
// vector fidelity against the (simulation-only) ground truth, hard-response
// prediction accuracy, and the usable-stable-CRP yield at matched safety.
#include <cmath>
#include <cstdio>
#include <span>

#include "bench_common.hpp"
#include "common/math.hpp"
#include "ml/logistic_regression.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "abl1_regression_choice",
                                "Ablation 1: linear-on-soft vs logistic-on-hard enrollment");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);
  const auto env = sim::Environment::nominal();

  const std::vector<std::size_t> train_sizes{500, 2'000, 5'000};
  Table t("Enrollment-model quality, PUF 0 (ground-truth access is simulation-only)");
  t.set_header({"train size", "method", "weight corr", "hard accuracy",
                "stable yield @0 violations"});
  CsvWriter csv(benchutil::out_dir() + "/abl1_regression_choice.csv",
                {"train_size", "method", "weight_corr", "hard_accuracy", "yield"});

  const linalg::Vector w_true = chip.device_for_analysis(0).reduced_weights(env);
  const std::size_t k = w_true.size() - 1;

  // Shared evaluation artifacts.
  const std::size_t test_n = std::min<std::size_t>(scale.challenges, 20'000);
  Rng test_rng(404);
  const auto test_challenges = puf::random_challenges(chip.stages(), test_n, test_rng);
  const auto eval_block =
      puf::measure_evaluation_block(chip, test_challenges, env, scale.trials, rng);

  for (std::size_t train_n : train_sizes) {
    sim::ChipTester tester(env, scale.trials, rng.fork());
    const auto challenges = tester.random_challenges(chip, train_n);
    const auto scan = tester.scan_individual(chip, challenges);
    const linalg::Matrix phi = puf::feature_matrix(challenges);

    struct Candidate {
      std::string name;
      linalg::Vector weights;   // prediction = phi . weights (+ center shift)
      std::vector<double> predictions;  // on the training set
    };
    std::vector<Candidate> candidates;

    {  // Linear regression on soft responses (the paper's choice).
      ml::Dataset data;
      data.x = phi;
      data.y = linalg::Vector(std::vector<double>(scan.soft[0].begin(), scan.soft[0].end()));
      ml::LinearRegression reg;
      reg.fit(data);
      Candidate c{"linear (soft)", reg.coefficients(), {}};
      const linalg::Vector preds = reg.predict(phi);
      c.predictions.assign(preds.begin(), preds.end());
      candidates.push_back(std::move(c));
    }
    {  // Logistic regression on hard responses (the conventional choice).
      ml::Dataset data;
      data.x = phi;
      data.y = linalg::Vector(train_n);
      for (std::size_t i = 0; i < train_n; ++i) data.y[i] = scan.soft[0][i] >= 0.5;
      ml::LogisticRegression reg;
      reg.fit(data);
      Candidate c{"logistic (hard)", reg.weights(), {}};
      const linalg::Vector probs = reg.predict_probability(phi);
      c.predictions.assign(probs.begin(), probs.end());
      candidates.push_back(std::move(c));
    }

    for (const auto& cand : candidates) {
      const double corr = pearson_correlation(
          std::span<const double>(w_true.data(), k),
          std::span<const double>(cand.weights.data(), k));

      // Hard-response accuracy against the noise-free device sign.
      const bool logistic = cand.name[0] == 'l' && cand.name[2] == 'g';
      std::size_t hits = 0;
      for (const auto& ch : test_challenges) {
        double pred = 0.0;
        const linalg::Vector f = puf::feature_vector(ch);
        for (std::size_t i = 0; i < f.size(); ++i) pred += cand.weights[i] * f[i];
        const bool bit = logistic ? pred > 0.0 : pred > 0.5;
        if (bit == (chip.device_for_analysis(0).delay_difference(ch, env) > 0.0)) ++hits;
      }
      const double accuracy = static_cast<double>(hits) / static_cast<double>(test_n);

      // Stable-CRP yield at zero violations: derive thresholds from the
      // training predictions, then tighten on the evaluation block until no
      // selected CRP is unstable, and report the surviving yield.
      const puf::ThresholdPair thr = puf::derive_thresholds(
          cand.predictions, std::span<const double>(scan.soft[0]));
      std::vector<double> eval_preds(test_n);
      for (std::size_t i = 0; i < test_n; ++i) {
        double pred = logistic ? 0.0 : 0.0;
        const linalg::Vector f = puf::feature_vector(test_challenges[i]);
        for (std::size_t j = 0; j < f.size(); ++j) pred += cand.weights[j] * f[j];
        if (logistic) pred = sigmoid(pred);
        eval_preds[i] = pred;
      }
      puf::BetaFactors betas{1.0, 1.0};
      auto violations = [&](const puf::BetaFactors& b) {
        const puf::ThresholdPair tt = puf::tighten(thr, b);
        std::size_t v = 0;
        for (std::size_t i = 0; i < test_n; ++i) {
          if (eval_preds[i] < tt.thr0 && eval_block.soft[0][i] != 0.0) ++v;
          else if (eval_preds[i] > tt.thr1 && eval_block.soft[0][i] != 1.0) ++v;
        }
        return v;
      };
      while (violations({betas.beta0, 1.0}) > 0 && betas.beta0 > 0.06) betas.beta0 -= 0.01;
      while (violations({1.0, betas.beta1}) - violations({1.0, 1e9}) > 0 &&
             betas.beta1 < 4.0)
        betas.beta1 += 0.01;
      const puf::ThresholdPair tt = puf::tighten(thr, betas);
      std::size_t yield = 0;
      for (std::size_t i = 0; i < test_n; ++i)
        if (tt.is_stable(eval_preds[i])) ++yield;

      t.add_row({std::to_string(train_n), cand.name, Table::num(corr, 4),
                 Table::pct(accuracy, 2),
                 Table::pct(static_cast<double>(yield) / static_cast<double>(test_n), 2)});
      csv.write_row(std::vector<std::string>{
          std::to_string(train_n), cand.name, Table::num(corr, 5),
          Table::num(accuracy, 5), Table::num(static_cast<double>(yield) / static_cast<double>(test_n), 5)});
    }
  }
  t.print();
  std::printf("\npaper rationale: soft responses are fractional, so a linear fit "
              "extracts magnitude information a hard-response logistic fit cannot; "
              "expect higher yield at equal safety for 'linear (soft)'.\n");
  return 0;
}
