// Reproduces paper Fig 9: determining the threshold scaling factors beta0
// and beta1 under nominal conditions (0.9 V / 25 C).
//
// Paper procedure: train on 5,000 CRPs, evaluate on 1,000,000; start both
// betas at 1.00 and step until every model-selected CRP is stable. Paper
// result across 10 chips: beta0 in 0.74..0.93 and beta1 in 1.04..1.08; the
// deployment values are the most conservative (0.74 / 1.08).
#include <cstdio>

#include "bench_common.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig09_beta_nominal",
                                "Fig 9: beta threshold scaling at nominal corner");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto env = sim::Environment::nominal();
  const std::size_t train_n = 5'000;
  // The evaluation sweep dominates runtime; cap it in reduced mode.
  const std::size_t eval_n =
      scale.full ? scale.challenges : std::min<std::size_t>(scale.challenges, 30'000);

  Table t("Fig 9: per-chip betas (train 5,000 / evaluate " + std::to_string(eval_n) +
          " CRPs at 0.9V, 25C)");
  t.set_header({"chip", "Thr(0) train", "Thr(1) train", "beta0", "beta1",
                "Thr(0) adj", "Thr(1) adj", "violations@1.0"});

  CsvWriter csv(benchutil::out_dir() + "/fig09_beta_nominal.csv",
                {"chip", "thr0", "thr1", "beta0", "beta1"});

  std::vector<puf::BetaFactors> per_chip;
  for (std::size_t chip_idx = 0; chip_idx < pop.size(); ++chip_idx) {
    const auto& chip = pop.chip(chip_idx);
    puf::EnrollmentConfig ecfg;
    ecfg.training_challenges = train_n;
    ecfg.trials = scale.trials;
    puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

    const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);
    const auto block =
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng);
    const puf::BetaSearchResult res = puf::find_betas(model, {block});
    per_chip.push_back(res.betas);

    const auto raw = model.puf(0).thresholds;
    const auto adj = puf::tighten(raw, res.betas);
    t.add_row({std::to_string(chip_idx), Table::num(raw.thr0, 3), Table::num(raw.thr1, 3),
               Table::num(res.betas.beta0, 2), Table::num(res.betas.beta1, 2),
               Table::num(adj.thr0, 3), Table::num(adj.thr1, 3),
               std::to_string(res.violations_before)});
    csv.write_row(std::vector<double>{static_cast<double>(chip_idx), raw.thr0, raw.thr1,
                                      res.betas.beta0, res.betas.beta1});
    std::fprintf(stderr, "  [fig09] chip %zu: beta0=%.2f beta1=%.2f (converged=%d)\n",
                 chip_idx, res.betas.beta0, res.betas.beta1, res.converged ? 1 : 0);
  }
  t.print();

  const puf::BetaFactors lot = puf::conservative_betas(per_chip);
  double b0lo = 1.0, b0hi = 0.0, b1lo = 9.0, b1hi = 0.0;
  for (const auto& b : per_chip) {
    b0lo = std::min(b0lo, b.beta0);
    b0hi = std::max(b0hi, b.beta0);
    b1lo = std::min(b1lo, b.beta1);
    b1hi = std::max(b1hi, b.beta1);
  }
  std::printf("\nbeta0 range over chips: %.2f..%.2f (paper: 0.74..0.93)\n", b0lo, b0hi);
  std::printf("beta1 range over chips: %.2f..%.2f (paper: 1.04..1.08)\n", b1lo, b1hi);
  std::printf("lot deployment betas (most conservative): beta0=%.2f beta1=%.2f "
              "(paper: 0.74 / 1.08)\n",
              lot.beta0, lot.beta1);
  return 0;
}
