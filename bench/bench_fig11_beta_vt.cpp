// Reproduces paper Fig 11: beta threshold adjustment when the evaluation
// set spans the full voltage/temperature grid (0.8-1.0 V x 0-60 C).
//
// Paper result: the test-set soft-response distribution widens under V/T
// variation, but unstable CRPs remain concentrated in the middle, so the
// same adjustment scheme works with more stringent betas than the nominal
// case — without ever measuring the chip at the extreme corners per-CRP.
#include <cstdio>

#include "analysis/histogram.hpp"
#include "bench_common.hpp"
#include "puf/threshold_adjust.hpp"

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(argc, argv, "fig11_beta_vt",
                                "Fig 11: beta adjustment across the 9-corner V/T grid");
  const BenchScale& scale = bench.scale();

  sim::ChipPopulation pop(benchutil::population_config(scale));
  Rng rng = pop.measurement_rng();
  const auto& chip = pop.chip(0);

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 5'000;
  ecfg.trials = scale.trials;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);

  const std::size_t eval_n =
      scale.full ? scale.challenges : std::min<std::size_t>(scale.challenges, 10'000);
  const auto eval_challenges = puf::random_challenges(chip.stages(), eval_n, rng);

  // Nominal-only betas for reference, then the full 9-corner search.
  const auto nominal_block = puf::measure_evaluation_block(
      chip, eval_challenges, sim::Environment::nominal(), scale.trials, rng);
  const puf::BetaSearchResult nominal = puf::find_betas(model, {nominal_block});

  std::vector<puf::EvaluationBlock> blocks;
  analysis::Histogram corner_unstable_preds(-0.6, 1.6, 44);
  for (const auto& env : sim::paper_corner_grid()) {
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, scale.trials, rng));
    std::fprintf(stderr, "  [fig11] measured corner %s\n", env.label().c_str());
  }
  const puf::BetaSearchResult grid = puf::find_betas(model, blocks);

  // Where do the unstable CRPs sit in prediction space? (Paper: still
  // concentrated in the middle, which is why beta scaling keeps working.)
  for (const auto& block : blocks)
    for (std::size_t c = 0; c < block.challenges.size(); ++c)
      for (std::size_t p = 0; p < model.puf_count(); ++p)
        if (!puf::measured_stable(block.soft[p][c]))
          corner_unstable_preds.add(model.predict_soft(p, block.challenges[c]));

  std::printf("model predictions of CRPs that were UNSTABLE at some corner "
              "(concentrated near 0.5):\n%s\n",
              corner_unstable_preds.render(50, 11).c_str());

  Table t("Fig 11: betas under V/T variation vs nominal (train: 5,000 CRPs at 0.9V/25C)");
  t.set_header({"evaluation set", "beta0", "beta1", "violations@1.0", "converged"});
  t.add_row({"nominal corner only", Table::num(nominal.betas.beta0, 2),
             Table::num(nominal.betas.beta1, 2),
             std::to_string(nominal.violations_before),
             nominal.converged ? "yes" : "no"});
  t.add_row({"all 9 V/T corners", Table::num(grid.betas.beta0, 2),
             Table::num(grid.betas.beta1, 2), std::to_string(grid.violations_before),
             grid.converged ? "yes" : "no"});
  t.print();

  std::printf("\npaper: V/T betas are more stringent than nominal "
              "(nominal 0.74/1.08 -> V/T-adjusted values tighten further)\n");
  std::printf("observed tightening: beta0 %.2f -> %.2f, beta1 %.2f -> %.2f\n",
              nominal.betas.beta0, grid.betas.beta0, nominal.betas.beta1,
              grid.betas.beta1);

  CsvWriter csv(benchutil::out_dir() + "/fig11_beta_vt.csv",
                {"evaluation", "beta0", "beta1"});
  csv.write_row(std::vector<std::string>{"nominal", Table::num(nominal.betas.beta0, 4),
                                         Table::num(nominal.betas.beta1, 4)});
  csv.write_row(std::vector<std::string>{"all_vt", Table::num(grid.betas.beta0, 4),
                                         Table::num(grid.betas.beta1, 4)});
  std::printf("CSV written: %s\n", csv.path().c_str());
  return 0;
}
