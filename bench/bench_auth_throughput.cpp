// Authentication hot path at fleet scale: screening + issuance A/B harness.
//
// The paper's issuance is rejection sampling — draw random challenges, keep
// the ones predicted stable on ALL n XOR'd PUFs (acceptance ~0.800^n, about
// 10.7% at the paper's n = 10) — so a naive server burns ~challenge_count /
// 0.800^n model evaluations per authentication. This bench measures the two
// optimizations that remove that cost from the hot path, each against its
// reference implementation on the same workload, with bit-identity and
// zero-metrics-drift audits run in-process (the exit code IS the audit):
//
//   screening A/B — ChallengeScreener serial (per-candidate reference walk)
//       vs batched (sim::FeatureBlock + ChipLinearView tile kernels, one Phi
//       build + one register-blocked weight product per block). The issued
//       challenge sequence, expected-response bits and exact
//       candidates_tried are asserted bit-identical per sampled device
//       before either side is timed.
//
//   issuance A/B — issue_live (screens candidates at request time, the
//       reference) vs issue (drains the device's pre-screened persistent
//       pool, refilled off the hot path). Disjoint scattered device slices
//       keep the replay ledgers independent; a purity audit re-derives a
//       pooled batch from a fresh in-memory twin database and asserts the
//       store-backed drain issued the identical challenges — the pooled
//       sequence is a pure function of (pool seed, device id), not of
//       serving mode, caller RNG, or fleet history.
//
// The fleet is store-backed (durable sharded op log) with the model LRU
// capped at --cache-pct of the fleet and the log compacted before traffic,
// so cold model resolutions during the issuance phase exercise the
// zero-copy mmap path (db.mmap_hits) rather than record re-decoding.
//
// In-run audits (any failure exits non-zero):
//   bit-identity  — serial == batched screening walks per sampled device;
//                   store-backed pooled drain == fresh-twin pooled drain.
//   zero drift    — auth.pool_hits + auth.pool_misses == db.issue_requests,
//                   zero pool misses on the pooled slice, model resolutions
//                   (LRU hits + misses + mmap hits) == live-side auths,
//                   db.challenges_issued == both sides' batch totals,
//                   zero replay rejections, mmap hits > 0 post-compaction.
//   flat RSS      — peak RSS after the first timed rep vs after the last;
//                   growth beyond --rss-slack-mb plus the accounted
//                   replay-ledger growth (every issued challenge is
//                   remembered, O(issued) by design) fails the run.
//
// Timing JSON fields (bench_out/auth_throughput_timing.json), all min-of-
// --reps with the A/B sides interleaved inside each rep so drift hits both:
//   enroll_seconds, devices_per_sec          pool-enabled registration
//   compact_seconds                          log compaction (enables mmap)
//   screen_serial_seconds, screen_batched_seconds, screen_speedup
//   issue_live_seconds, issue_pooled_seconds, pool_speedup
//   auths_per_sec                            pooled side (the headline)
//   auths_per_sec_live                       reference side
//   rss_first_rep_mb, rss_full_mb            flat-RSS probe
//
// tools/check_bench_regression.py gates both pairs; --require-speedup N
// additionally asserts the pooled side is at least N× live in-process (the
// acceptance run uses --require-speedup 3 at --devices 1000000).
//
//   ./bench_auth_throughput --devices 1000000 --require-speedup 3   # acceptance
//   ./bench_auth_throughput                                         # reduced CI
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "puf/database.hpp"
#include "puf/model_view.hpp"
#include "puf/screening.hpp"
#include "puf/store/store.hpp"

namespace {

/// Peak resident set of the process in MiB (ru_maxrss is KiB on Linux).
double max_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Deterministic synthetic enrollment with the PAPER's screening cost:
/// weights are drawn from the device-id seed, and each PUF's thresholds are
/// sized against its own response spread so the predicted-stable fraction
/// is Fig. 3's ~0.800 per PUF — i.e. XOR acceptance ~0.800^n, about 10.7 %
/// at n = 10. (Responses over random ±1 feature rows are ~N(0, Σw²), and
/// P(|Z| < 0.2533) ≈ 0.2.) That is what makes request-time screening
/// expensive and pooling worth having; a looser band would quietly shrink
/// the live side's cost and overstate parity. Regenerating the same id
/// yields a bit-identical model — the property the pooled purity audit
/// relies on.
xpuf::puf::ServerModel make_device(std::uint64_t id, std::size_t n_pufs,
                                   std::size_t stages) {
  xpuf::Rng rng(0x5eed0000u + id);
  std::vector<xpuf::puf::PufEnrollment> pufs;
  pufs.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) {
    xpuf::puf::PufEnrollment e;
    xpuf::linalg::Vector w(stages + 1);
    double sum_sq = 0.0;
    for (std::size_t i = 0; i <= stages; ++i) {
      w[i] = rng.uniform(-2.0, 2.0);
      sum_sq += w[i] * w[i];
    }
    const double thr = 0.2533 * std::sqrt(sum_sq);
    e.model = xpuf::puf::ArbiterPufModel(std::move(w));
    e.thresholds.thr0 = -thr;
    e.thresholds.thr1 = thr;
    e.train_r_squared = 0.99;
    e.fit_time_ms = 0.0;
    pufs.push_back(std::move(e));
  }
  return xpuf::puf::ServerModel(static_cast<std::size_t>(id), std::move(pufs));
}

/// Knuth multiplicative stride over [0, n): visits every id once before
/// repeating, in an order that defeats both the LRU cache and readahead.
std::uint64_t scatter(std::uint64_t i, std::uint64_t n) {
  return (i * 2654435761ull) % n;
}

/// One recorded screening walk: everything the determinism contract pins.
struct ScreenWalk {
  std::vector<xpuf::puf::Challenge> challenges;
  std::vector<bool> bits;
  xpuf::puf::ChallengeScreener::Outcome out;
};

/// Runs one accept-all screening walk over `view` and records the full
/// issued sequence (used for the serial-vs-batched bit-identity audit and
/// as the timed kernel of the screening A/B).
ScreenWalk run_screen(const xpuf::puf::ModelView& view, std::size_t n_pufs,
                      const xpuf::puf::ScreeningOptions& opts,
                      std::uint64_t family_base, std::size_t count,
                      std::size_t max_attempts) {
  using xpuf::puf::Challenge;
  ScreenWalk walk;
  xpuf::puf::ChallengeScreener screener(view, n_pufs, opts);
  const xpuf::StreamFamily family(family_base);
  walk.out = screener.screen(
      family, 0, count, max_attempts, [&](Challenge&& c, bool bit) {
        walk.challenges.push_back(std::move(c));
        walk.bits.push_back(bit);
        return true;
      });
  return walk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpuf;
  benchutil::BenchHarness bench(
      argc, argv, "auth_throughput",
      "Authentication hot path: batched screening + pooled issuance A/B");
  const BenchScale& scale = bench.scale();

  const auto devices = static_cast<std::uint64_t>(
      bench.cli().get_int("devices", scale.full ? 1'000'000 : 20'000));
  const auto auths = static_cast<std::uint64_t>(
      bench.cli().get_int("auths", scale.full ? 20'000 : 2'000));
  const auto n_pufs = static_cast<std::size_t>(bench.cli().get_int("pufs", 10));
  const auto stages = static_cast<std::size_t>(bench.cli().get_int("stages", 64));
  const auto cache_pct = static_cast<double>(bench.cli().get_int("cache-pct", 1));
  const auto n_shards = static_cast<std::uint32_t>(bench.cli().get_int("shards", 64));
  const auto pool_target =
      static_cast<std::size_t>(bench.cli().get_int("pool-target", 96));
  const auto reps = static_cast<std::uint64_t>(bench.cli().get_int("reps", 5));
  const auto screen_devices =
      static_cast<std::uint64_t>(bench.cli().get_int("screen-devices", 16));
  const auto screen_count =
      static_cast<std::size_t>(bench.cli().get_int("screen-count", 256));
  const double rss_slack_mb =
      static_cast<double>(bench.cli().get_int("rss-slack-mb", 64));
  const double require_speedup =
      static_cast<double>(bench.cli().get_int("require-speedup", 0));

  XPUF_REQUIRE(devices >= 100, "auth bench needs at least 100 devices");
  XPUF_REQUIRE(auths >= 8 && 2 * auths <= devices,
               "need 8 <= auths and 2*auths <= devices (disjoint A/B slices)");
  XPUF_REQUIRE(reps >= 1, "need at least one timing rep");
  XPUF_REQUIRE(pool_target >= 1, "the pooled side needs pooling enabled");
  const auto cache_capacity = static_cast<std::size_t>(std::max<double>(
      1.0, static_cast<double>(devices) * cache_pct / 100.0));
  bench.set_items(2 * reps * auths);

  const std::string dir =
      bench.cli().get("dir", benchutil::out_dir() + "/auth_throughput_store");
  std::filesystem::remove_all(dir);

  puf::DatabaseConfig cfg;
  cfg.n_pufs = n_pufs;
  cfg.policy.challenge_count = 16;
  cfg.pool.target = pool_target;
  // Default reps (5) drain 5 x 16 = 80 of the 96 pooled entries per touched
  // device, staying above the low-water mark: the timed pooled slice is a
  // pure drain, which is precisely the deployment steady state enrollment
  // pre-screening buys. min-of-5 also rides out bursty neighbor noise on
  // shared single-core CI hosts, which showed up as 2x swings on one rep.
  XPUF_REQUIRE(cfg.pool.target >= cfg.policy.challenge_count,
               "pool must hold at least one full batch");
  puf::store::StoreOptions opts;
  opts.n_shards = n_shards;
  opts.cache_capacity = cache_capacity;

  auto& registry = MetricsRegistry::global();
  std::vector<std::string> drift;
  const auto audit = [&](bool ok, const std::string& what) {
    if (!ok) drift.push_back(what);
  };
  const auto audit_eq = [&](std::uint64_t got, std::uint64_t want,
                            const std::string& what) {
    if (got != want)
      drift.push_back(what + ": got " + std::to_string(got) + ", want " +
                      std::to_string(want));
  };

  // --- phase 1: pool-enabled enrollment ------------------------------------
  // Every REGISTER is durably appended and immediately followed by the
  // device's POOL record: registration pre-screens `pool_target` stable
  // challenges through the batched screener, which is exactly the work the
  // issuance hot path no longer has to do.
  std::printf("enrolling %llu devices (%zu-PUF, %zu stages, pool %zu)...\n",
              static_cast<unsigned long long>(devices), n_pufs, stages,
              pool_target);
  puf::ServerDatabase db = puf::ServerDatabase::open(dir, cfg, opts);
  Timer timer;
  for (std::uint64_t id = 0; id < devices; ++id)
    db.register_device(make_device(id, n_pufs, stages));
  const double enroll_seconds = timer.seconds();
  const double devices_per_sec = static_cast<double>(devices) / enroll_seconds;
  XPUF_REQUIRE(db.device_count() == devices, "fleet went missing during enrollment");

  // --- phase 2: compaction — arms the zero-copy serving path ---------------
  // save() on a backed database compacts the log in place and the store
  // maps the compacted shards, so every cold model resolution below can
  // hand out weight views pointing straight into the mapped files.
  timer.reset();
  db.save(dir);
  const double compact_seconds = timer.seconds();
  XPUF_REQUIRE(db.device_count() == devices, "compaction lost devices");

  // --- phase 3: screening A/B (serial reference vs batched core) -----------
  // Sampled devices get one full accept-all walk per mode; bit-identity of
  // the issued sequence, the expected bits and the exact tried/accepted
  // accounting is asserted BEFORE either side is timed, so the timing
  // compares two provably equivalent kernels. Walks run on snapshot-backed
  // views (the screener needs the model resident either way); the A/B delta
  // is purely the evaluation strategy.
  std::printf("screening A/B: %llu devices x %zu challenges/walk...\n",
              static_cast<unsigned long long>(screen_devices), screen_count);
  const std::size_t screen_attempts = screen_count * 1000;
  puf::ScreeningOptions serial_opts;
  serial_opts.batched = false;
  puf::ScreeningOptions batched_opts;
  batched_opts.batched = true;
  std::vector<std::shared_ptr<const puf::ServerModel>> screen_models;
  std::vector<std::uint64_t> screen_bases;
  for (std::uint64_t i = 0; i < screen_devices; ++i) {
    const auto id = static_cast<std::size_t>(scatter(31 * i + 7, devices));
    screen_models.push_back(db.model_snapshot(id));
    screen_bases.push_back(0x5c4ee000ull + id);
  }
  std::uint64_t screen_candidates = 0;
  for (std::uint64_t i = 0; i < screen_devices; ++i) {
    const puf::ModelView view = puf::ModelView::of(*screen_models[i]);
    const ScreenWalk serial = run_screen(view, n_pufs, serial_opts,
                                         screen_bases[i], screen_count,
                                         screen_attempts);
    const ScreenWalk batched = run_screen(view, n_pufs, batched_opts,
                                          screen_bases[i], screen_count,
                                          screen_attempts);
    audit(serial.out.filled && batched.out.filled,
          "screening walk exhausted its attempt budget");
    audit(serial.challenges == batched.challenges &&
              serial.bits == batched.bits,
          "serial and batched screening issued different sequences");
    audit(serial.out.tried == batched.out.tried &&
              serial.out.stable == batched.out.stable &&
              serial.out.accepted == batched.out.accepted &&
              serial.out.next_index == batched.out.next_index,
          "serial and batched screening accounting diverged");
    screen_candidates += serial.out.tried;
  }
  double screen_serial_seconds = std::numeric_limits<double>::infinity();
  double screen_batched_seconds = std::numeric_limits<double>::infinity();
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    timer.reset();
    for (std::uint64_t i = 0; i < screen_devices; ++i)
      (void)run_screen(puf::ModelView::of(*screen_models[i]), n_pufs,
                       serial_opts, screen_bases[i], screen_count,
                       screen_attempts);
    screen_serial_seconds = std::min(screen_serial_seconds, timer.seconds());
    timer.reset();
    for (std::uint64_t i = 0; i < screen_devices; ++i)
      (void)run_screen(puf::ModelView::of(*screen_models[i]), n_pufs,
                       batched_opts, screen_bases[i], screen_count,
                       screen_attempts);
    screen_batched_seconds = std::min(screen_batched_seconds, timer.seconds());
  }
  const double screen_speedup =
      screen_batched_seconds > 0.0 ? screen_serial_seconds / screen_batched_seconds
                                   : 0.0;

  // --- phase 4: issuance A/B (live screening vs pooled drain) --------------
  // Disjoint scattered slices: live authenticates ids scatter(0..auths),
  // pooled authenticates ids scatter(auths..2*auths) — scatter is a
  // bijection over one period, so no device appears in both slices and the
  // replay ledgers stay independent. Each timed op is the full server-side
  // request: issue + verify (verify is pure policy since the screening
  // rework — it resolves no model).
  std::printf("issuance A/B: %llu live + %llu pooled auths x %llu reps...\n",
              static_cast<unsigned long long>(auths),
              static_cast<unsigned long long>(auths),
              static_cast<unsigned long long>(reps));
  Counter& issue_requests = registry.counter("db.issue_requests");
  Counter& pool_hits = registry.counter("auth.pool_hits");
  Counter& pool_misses = registry.counter("auth.pool_misses");
  Counter& pool_refills = registry.counter("auth.pool_refills");
  Counter& cache_hits = registry.counter("db.cache_hits");
  Counter& cache_misses = registry.counter("db.cache_misses");
  Counter& mmap_hits = registry.counter("db.mmap_hits");
  Counter& mmap_bytes = registry.counter("db.mmap_bytes");
  Counter& challenges_issued = registry.counter("db.challenges_issued");
  Counter& replay_rejected = registry.counter("auth.replay_rejected");
  const std::uint64_t requests0 = issue_requests.total();
  const std::uint64_t hits0 = pool_hits.total();
  const std::uint64_t misses0 = pool_misses.total();
  const std::uint64_t refills0 = pool_refills.total();
  const std::uint64_t cache0 = cache_hits.total() + cache_misses.total();
  const std::uint64_t mmap0 = mmap_hits.total();
  const std::uint64_t mmap_bytes0 = mmap_bytes.total();
  const std::uint64_t issued0 = challenges_issued.total();
  const std::uint64_t replay0 = replay_rejected.total();

  Rng live_rng(0x11fe0001u);
  Rng pooled_rng(0x900d0002u);
  std::uint64_t live_approved = 0;
  std::uint64_t pooled_approved = 0;
  double issue_live_seconds = std::numeric_limits<double>::infinity();
  double issue_pooled_seconds = std::numeric_limits<double>::infinity();
  double rss_first_rep = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    timer.reset();
    for (std::uint64_t i = 0; i < auths; ++i) {
      const auto id = static_cast<std::size_t>(scatter(i, devices));
      const puf::ChallengeBatch batch = db.issue_live(id, live_rng);
      if (db.verify(id, batch, batch.expected).approved) ++live_approved;
    }
    const double live_rep = timer.seconds();
    issue_live_seconds = std::min(issue_live_seconds, live_rep);
    timer.reset();
    for (std::uint64_t i = 0; i < auths; ++i) {
      const auto id = static_cast<std::size_t>(scatter(auths + i, devices));
      const puf::ChallengeBatch batch = db.issue(id, pooled_rng);
      if (db.verify(id, batch, batch.expected).approved) ++pooled_approved;
    }
    const double pooled_rep = timer.seconds();
    issue_pooled_seconds = std::min(issue_pooled_seconds, pooled_rep);
    // Per-rep trace: on shared hosts neighbor noise shows up as outlier
    // reps; printing them makes a weak min-of-reps diagnosable from the log.
    std::printf("  rep %llu: live %.4fs, pooled %.4fs\n",
                static_cast<unsigned long long>(rep), live_rep, pooled_rep);
    if (rep == 0) rss_first_rep = max_rss_mb();
  }
  const double rss_full = max_rss_mb();
  const double rss_delta = rss_full - rss_first_rep;
  // The flat-RSS audit targets O(fleet) buffering, not the replay defense:
  // every issued challenge is durably remembered in the in-memory ledger
  // (a packed key in a per-device std::set), so RSS legitimately grows
  // O(issued) across the post-probe reps. Budget that growth at 128 bytes
  // per key (8 packed + node overhead; ~76 observed) and apply the slack
  // on top — anything beyond it is real buffering.
  const double ledger_growth_mb =
      static_cast<double>(2 * auths * (reps - 1) * cfg.policy.challenge_count) *
      128.0 / (1024.0 * 1024.0);
  const bool memory_flat = rss_delta <= rss_slack_mb + ledger_growth_mb;
  const double auths_per_sec_live =
      static_cast<double>(auths) / issue_live_seconds;
  const double auths_per_sec_pooled =
      static_cast<double>(auths) / issue_pooled_seconds;
  const double pool_speedup =
      issue_pooled_seconds > 0.0 ? issue_live_seconds / issue_pooled_seconds
                                 : 0.0;

  // --- phase 5: zero metrics drift -----------------------------------------
  const std::uint64_t total_auths = reps * auths;
  audit_eq(live_approved, total_auths, "live-side approvals");
  audit_eq(pooled_approved, total_auths, "pooled-side approvals");
  // The pool/issue identity: every issue() is exactly one hit or miss, and
  // on a pure-drain workload (reps * challenge_count <= target - low_water)
  // no pooled request ever misses or refills.
  audit_eq(issue_requests.total() - requests0, total_auths,
           "db.issue_requests vs pooled-side auths");
  audit_eq((pool_hits.total() - hits0) + (pool_misses.total() - misses0),
           issue_requests.total() - requests0,
           "pool hit/miss partition of db.issue_requests");
  audit_eq(pool_misses.total() - misses0, 0, "pooled-slice pool misses");
  if (reps * cfg.policy.challenge_count <= pool_target - cfg.pool.low_water)
    audit_eq(pool_refills.total() - refills0, 0,
             "low-water refills on a pure-drain workload");
  // Model resolution: only the LIVE side resolves models (pooled drains
  // bypass the model entirely; verify is pure policy on both). Exactly one
  // resolution per live auth, through the LRU or the mapped snapshot.
  audit_eq((cache_hits.total() + cache_misses.total() - cache0) +
               (mmap_hits.total() - mmap0),
           total_auths, "model resolutions vs live-side auths");
  audit(mmap_hits.total() - mmap0 > 0,
        "compacted store served no mmap view — zero-copy path unexercised");
  audit((mmap_hits.total() - mmap0 > 0) == (mmap_bytes.total() - mmap_bytes0 > 0),
        "db.mmap_hits and db.mmap_bytes disagree about mapped serving");
  audit_eq(challenges_issued.total() - issued0,
           2 * total_auths * cfg.policy.challenge_count,
           "db.challenges_issued vs both sides' batch totals");
  audit_eq(replay_rejected.total() - replay0, 0,
           "replay rejections on disjoint fresh slices");
  audit_eq(static_cast<std::uint64_t>(registry.gauge("db.devices").get()),
           devices, "db.devices gauge");
  audit(memory_flat, "peak RSS grew " + std::to_string(rss_delta) +
                         " MiB across timed reps (allowed " +
                         std::to_string(rss_slack_mb) + " slack + " +
                         std::to_string(ledger_growth_mb) +
                         " replay-ledger growth)");

  // --- phase 6: pooled purity — drain == fresh-twin drain ------------------
  // A fresh in-memory database with the same DatabaseConfig, fed the same
  // synthetic enrollment, must issue the identical first batch for a device
  // as the store-backed fleet does: the pooled sequence depends on nothing
  // but (pool seed, device id) and the drain history. The sampled ids sit
  // past both timed slices so their store-backed pools are undrained.
  for (std::uint64_t j = 0; j < 4; ++j) {
    const auto id = static_cast<std::size_t>(scatter(2 * auths + j, devices));
    puf::ServerDatabase twin(cfg);
    twin.register_device(make_device(id, n_pufs, stages));
    Rng backed_rng(0xabcd0000u + j);
    Rng twin_rng(0x1234ffffu + 977 * j);  // deliberately different caller RNG
    const puf::ChallengeBatch backed = db.issue(id, backed_rng);
    const puf::ChallengeBatch fresh = twin.issue(id, twin_rng);
    audit(backed.challenges == fresh.challenges &&
              backed.expected == fresh.expected,
          "pooled drain diverged between the backed fleet and a fresh twin "
          "(device " + std::to_string(id) + ")");
  }

  bench.set_field("enroll_seconds", enroll_seconds);
  bench.set_field("devices_per_sec", devices_per_sec);
  bench.set_field("compact_seconds", compact_seconds);
  bench.set_field("screen_serial_seconds", screen_serial_seconds);
  bench.set_field("screen_batched_seconds", screen_batched_seconds);
  bench.set_field("screen_speedup", screen_speedup);
  bench.set_field("issue_live_seconds", issue_live_seconds);
  bench.set_field("issue_pooled_seconds", issue_pooled_seconds);
  bench.set_field("pool_speedup", pool_speedup);
  bench.set_field("auths_per_sec", auths_per_sec_pooled);
  bench.set_field("auths_per_sec_live", auths_per_sec_live);
  bench.set_field("rss_first_rep_mb", rss_first_rep);
  bench.set_field("rss_full_mb", rss_full);

  Table t("authentication hot path A/B");
  t.set_header({"metric", "value"});
  t.add_row({"devices", std::to_string(devices)});
  t.add_row({"pool target / low water",
             std::to_string(pool_target) + " / " +
                 std::to_string(cfg.pool.low_water)});
  t.add_row({"cache capacity (" + std::to_string(static_cast<int>(cache_pct)) +
                 "% fleet)",
             std::to_string(cache_capacity)});
  t.add_row({"enroll [s] (pools pre-screened)", Table::num(enroll_seconds, 3)});
  t.add_row({"devices/sec", Table::num(devices_per_sec, 0)});
  t.add_row({"compaction [s]", Table::num(compact_seconds, 3)});
  t.add_row({"screening candidates/walk-set", std::to_string(screen_candidates)});
  t.add_row({"screen serial [s] (min of reps)",
             Table::num(screen_serial_seconds, 4)});
  t.add_row({"screen batched [s] (min of reps)",
             Table::num(screen_batched_seconds, 4)});
  t.add_row({"screening speedup", Table::num(screen_speedup, 2)});
  t.add_row({"auths per side x reps", std::to_string(auths) + " x " +
                                          std::to_string(reps)});
  t.add_row({"issue live [s] (min of reps)", Table::num(issue_live_seconds, 4)});
  t.add_row({"issue pooled [s] (min of reps)",
             Table::num(issue_pooled_seconds, 4)});
  t.add_row({"auths/sec live", Table::num(auths_per_sec_live, 0)});
  t.add_row({"auths/sec pooled", Table::num(auths_per_sec_pooled, 0)});
  t.add_row({"pooled speedup", Table::num(pool_speedup, 2)});
  t.add_row({"mmap hits (issue phase)",
             std::to_string(mmap_hits.total() - mmap0)});
  t.add_row({"peak RSS @ first rep [MiB]", Table::num(rss_first_rep, 1)});
  t.add_row({"peak RSS @ full [MiB]", Table::num(rss_full, 1)});
  t.add_row({"RSS flat (delta <= slack + ledger)", memory_flat ? "yes" : "NO"});
  t.print();

  std::filesystem::remove_all(dir);

  if (require_speedup > 0.0 && pool_speedup < require_speedup)
    drift.push_back("pooled speedup " + std::to_string(pool_speedup) +
                    " below the required " + std::to_string(require_speedup) +
                    "x floor");
  if (!drift.empty()) {
    std::printf("\nAUDIT FAILURES (%zu):\n", drift.size());
    for (const auto& v : drift) std::printf("  %s\n", v.c_str());
    return 1;
  }
  std::printf("\nall audits green: bit-identical screening modes, pure pooled "
              "drains, zero metrics drift, flat RSS\n");
  return 0;
}
