# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build_rev/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint_xpuf_tree "/root/repo/build_rev/tools/xpuf_lint" "--root" "/root/repo")
set_tests_properties(lint_xpuf_tree PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint_tidy_config "/root/repo/build_rev/tools/xpuf_lint" "--check-tidy-config" "/root/repo/.clang-tidy")
set_tests_properties(lint_tidy_config PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
