
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/xpuf_lint/engine.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/engine.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/engine.cpp.o.d"
  "/root/repo/tools/xpuf_lint/index/index.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/index/index.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/index/index.cpp.o.d"
  "/root/repo/tools/xpuf_lint/lexer/lexer.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lexer/lexer.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lexer/lexer.cpp.o.d"
  "/root/repo/tools/xpuf_lint/lint.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lint.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lint.cpp.o.d"
  "/root/repo/tools/xpuf_lint/passes/determinism.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/determinism.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/determinism.cpp.o.d"
  "/root/repo/tools/xpuf_lint/passes/layering.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/layering.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/layering.cpp.o.d"
  "/root/repo/tools/xpuf_lint/passes/metrics_accounting.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/metrics_accounting.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/metrics_accounting.cpp.o.d"
  "/root/repo/tools/xpuf_lint/passes/wire_pairing.cpp" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/wire_pairing.cpp.o" "gcc" "tools/CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/wire_pairing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
