# Empty dependencies file for xpuf_lint_lib.
# This may be replaced when dependencies are built.
