file(REMOVE_RECURSE
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/engine.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/engine.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/index/index.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/index/index.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lexer/lexer.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lexer/lexer.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lint.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/lint.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/determinism.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/determinism.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/layering.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/layering.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/metrics_accounting.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/metrics_accounting.cpp.o.d"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/wire_pairing.cpp.o"
  "CMakeFiles/xpuf_lint_lib.dir/xpuf_lint/passes/wire_pairing.cpp.o.d"
  "libxpuf_lint_lib.a"
  "libxpuf_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
