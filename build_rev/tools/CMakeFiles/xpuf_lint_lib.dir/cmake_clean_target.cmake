file(REMOVE_RECURSE
  "libxpuf_lint_lib.a"
)
