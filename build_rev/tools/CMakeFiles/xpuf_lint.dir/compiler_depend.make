# Empty compiler generated dependencies file for xpuf_lint.
# This may be replaced when dependencies are built.
