file(REMOVE_RECURSE
  "CMakeFiles/xpuf_lint.dir/xpuf_lint/main.cpp.o"
  "CMakeFiles/xpuf_lint.dir/xpuf_lint/main.cpp.o.d"
  "xpuf_lint"
  "xpuf_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
