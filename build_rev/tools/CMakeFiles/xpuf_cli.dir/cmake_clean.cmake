file(REMOVE_RECURSE
  "CMakeFiles/xpuf_cli.dir/xpuf_cli.cpp.o"
  "CMakeFiles/xpuf_cli.dir/xpuf_cli.cpp.o.d"
  "xpuf_cli"
  "xpuf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
