# Empty compiler generated dependencies file for xpuf_cli.
# This may be replaced when dependencies are built.
