# Empty compiler generated dependencies file for bench_fig02_soft_response.
# This may be replaced when dependencies are built.
