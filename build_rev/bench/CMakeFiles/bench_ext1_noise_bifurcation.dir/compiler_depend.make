# Empty compiler generated dependencies file for bench_ext1_noise_bifurcation.
# This may be replaced when dependencies are built.
