file(REMOVE_RECURSE
  "CMakeFiles/bench_ext1_noise_bifurcation.dir/bench_ext1_noise_bifurcation.cpp.o"
  "CMakeFiles/bench_ext1_noise_bifurcation.dir/bench_ext1_noise_bifurcation.cpp.o.d"
  "bench_ext1_noise_bifurcation"
  "bench_ext1_noise_bifurcation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext1_noise_bifurcation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
