# Empty dependencies file for bench_fig10_training_size.
# This may be replaced when dependencies are built.
