# Empty dependencies file for bench_tabB_authentication.
# This may be replaced when dependencies are built.
