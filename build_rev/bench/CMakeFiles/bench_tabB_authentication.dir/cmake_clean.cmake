file(REMOVE_RECURSE
  "CMakeFiles/bench_tabB_authentication.dir/bench_tabB_authentication.cpp.o"
  "CMakeFiles/bench_tabB_authentication.dir/bench_tabB_authentication.cpp.o.d"
  "bench_tabB_authentication"
  "bench_tabB_authentication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tabB_authentication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
