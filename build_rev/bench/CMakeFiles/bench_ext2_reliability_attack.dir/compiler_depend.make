# Empty compiler generated dependencies file for bench_ext2_reliability_attack.
# This may be replaced when dependencies are built.
