file(REMOVE_RECURSE
  "CMakeFiles/bench_ext2_reliability_attack.dir/bench_ext2_reliability_attack.cpp.o"
  "CMakeFiles/bench_ext2_reliability_attack.dir/bench_ext2_reliability_attack.cpp.o.d"
  "bench_ext2_reliability_attack"
  "bench_ext2_reliability_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext2_reliability_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
