# Empty dependencies file for bench_fig04_modeling_attack.
# This may be replaced when dependencies are built.
