# Empty dependencies file for bench_scan_throughput.
# This may be replaced when dependencies are built.
