file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_throughput.dir/bench_scan_throughput.cpp.o"
  "CMakeFiles/bench_scan_throughput.dir/bench_scan_throughput.cpp.o.d"
  "bench_scan_throughput"
  "bench_scan_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
