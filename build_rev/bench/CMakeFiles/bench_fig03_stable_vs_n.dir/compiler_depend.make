# Empty compiler generated dependencies file for bench_fig03_stable_vs_n.
# This may be replaced when dependencies are built.
