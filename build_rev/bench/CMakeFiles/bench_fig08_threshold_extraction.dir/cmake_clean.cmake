file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_threshold_extraction.dir/bench_fig08_threshold_extraction.cpp.o"
  "CMakeFiles/bench_fig08_threshold_extraction.dir/bench_fig08_threshold_extraction.cpp.o.d"
  "bench_fig08_threshold_extraction"
  "bench_fig08_threshold_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_threshold_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
