# Empty compiler generated dependencies file for bench_fig08_threshold_extraction.
# This may be replaced when dependencies are built.
