file(REMOVE_RECURSE
  "CMakeFiles/bench_abl1_regression_choice.dir/bench_abl1_regression_choice.cpp.o"
  "CMakeFiles/bench_abl1_regression_choice.dir/bench_abl1_regression_choice.cpp.o.d"
  "bench_abl1_regression_choice"
  "bench_abl1_regression_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl1_regression_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
