# Empty dependencies file for bench_abl1_regression_choice.
# This may be replaced when dependencies are built.
