# Empty compiler generated dependencies file for bench_abl4_aging.
# This may be replaced when dependencies are built.
