file(REMOVE_RECURSE
  "CMakeFiles/bench_abl4_aging.dir/bench_abl4_aging.cpp.o"
  "CMakeFiles/bench_abl4_aging.dir/bench_abl4_aging.cpp.o.d"
  "bench_abl4_aging"
  "bench_abl4_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl4_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
