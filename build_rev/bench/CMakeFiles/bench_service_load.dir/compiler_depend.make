# Empty compiler generated dependencies file for bench_service_load.
# This may be replaced when dependencies are built.
