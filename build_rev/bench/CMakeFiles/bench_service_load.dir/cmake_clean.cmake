file(REMOVE_RECURSE
  "CMakeFiles/bench_service_load.dir/bench_service_load.cpp.o"
  "CMakeFiles/bench_service_load.dir/bench_service_load.cpp.o.d"
  "bench_service_load"
  "bench_service_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
