# Empty compiler generated dependencies file for bench_enroll_throughput.
# This may be replaced when dependencies are built.
