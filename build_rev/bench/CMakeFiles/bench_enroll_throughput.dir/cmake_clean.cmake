file(REMOVE_RECURSE
  "CMakeFiles/bench_enroll_throughput.dir/bench_enroll_throughput.cpp.o"
  "CMakeFiles/bench_enroll_throughput.dir/bench_enroll_throughput.cpp.o.d"
  "bench_enroll_throughput"
  "bench_enroll_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enroll_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
