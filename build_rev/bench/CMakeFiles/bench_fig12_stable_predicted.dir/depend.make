# Empty dependencies file for bench_fig12_stable_predicted.
# This may be replaced when dependencies are built.
