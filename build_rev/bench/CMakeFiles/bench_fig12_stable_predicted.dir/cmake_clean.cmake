file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stable_predicted.dir/bench_fig12_stable_predicted.cpp.o"
  "CMakeFiles/bench_fig12_stable_predicted.dir/bench_fig12_stable_predicted.cpp.o.d"
  "bench_fig12_stable_predicted"
  "bench_fig12_stable_predicted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stable_predicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
