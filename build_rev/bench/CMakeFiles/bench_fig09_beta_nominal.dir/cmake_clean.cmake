file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_beta_nominal.dir/bench_fig09_beta_nominal.cpp.o"
  "CMakeFiles/bench_fig09_beta_nominal.dir/bench_fig09_beta_nominal.cpp.o.d"
  "bench_fig09_beta_nominal"
  "bench_fig09_beta_nominal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_beta_nominal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
