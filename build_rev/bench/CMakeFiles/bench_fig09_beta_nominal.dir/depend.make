# Empty dependencies file for bench_fig09_beta_nominal.
# This may be replaced when dependencies are built.
