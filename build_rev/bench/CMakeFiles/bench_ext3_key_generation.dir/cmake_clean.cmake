file(REMOVE_RECURSE
  "CMakeFiles/bench_ext3_key_generation.dir/bench_ext3_key_generation.cpp.o"
  "CMakeFiles/bench_ext3_key_generation.dir/bench_ext3_key_generation.cpp.o.d"
  "bench_ext3_key_generation"
  "bench_ext3_key_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext3_key_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
