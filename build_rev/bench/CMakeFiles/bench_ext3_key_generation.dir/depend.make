# Empty dependencies file for bench_ext3_key_generation.
# This may be replaced when dependencies are built.
