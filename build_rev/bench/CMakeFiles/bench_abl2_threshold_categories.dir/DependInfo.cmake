
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl2_threshold_categories.cpp" "bench/CMakeFiles/bench_abl2_threshold_categories.dir/bench_abl2_threshold_categories.cpp.o" "gcc" "bench/CMakeFiles/bench_abl2_threshold_categories.dir/bench_abl2_threshold_categories.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/analysis/CMakeFiles/xpuf_analysis.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/puf/CMakeFiles/xpuf_puf.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/sim/CMakeFiles/xpuf_sim.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/ml/CMakeFiles/xpuf_ml.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/crypto/CMakeFiles/xpuf_crypto.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/linalg/CMakeFiles/xpuf_linalg.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/xpuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
