file(REMOVE_RECURSE
  "CMakeFiles/bench_abl2_threshold_categories.dir/bench_abl2_threshold_categories.cpp.o"
  "CMakeFiles/bench_abl2_threshold_categories.dir/bench_abl2_threshold_categories.cpp.o.d"
  "bench_abl2_threshold_categories"
  "bench_abl2_threshold_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl2_threshold_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
