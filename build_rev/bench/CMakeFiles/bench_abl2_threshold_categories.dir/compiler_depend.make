# Empty compiler generated dependencies file for bench_abl2_threshold_categories.
# This may be replaced when dependencies are built.
