# Empty dependencies file for bench_fig11_beta_vt.
# This may be replaced when dependencies are built.
