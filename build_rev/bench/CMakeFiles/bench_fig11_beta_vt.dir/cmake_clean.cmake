file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_beta_vt.dir/bench_fig11_beta_vt.cpp.o"
  "CMakeFiles/bench_fig11_beta_vt.dir/bench_fig11_beta_vt.cpp.o.d"
  "bench_fig11_beta_vt"
  "bench_fig11_beta_vt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_beta_vt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
