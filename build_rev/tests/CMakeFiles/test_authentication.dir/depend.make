# Empty dependencies file for test_authentication.
# This may be replaced when dependencies are built.
