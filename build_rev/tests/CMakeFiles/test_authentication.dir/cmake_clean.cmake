file(REMOVE_RECURSE
  "CMakeFiles/test_authentication.dir/test_authentication.cpp.o"
  "CMakeFiles/test_authentication.dir/test_authentication.cpp.o.d"
  "test_authentication"
  "test_authentication.pdb"
  "test_authentication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_authentication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
