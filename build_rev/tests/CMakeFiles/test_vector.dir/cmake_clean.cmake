file(REMOVE_RECURSE
  "CMakeFiles/test_vector.dir/test_vector.cpp.o"
  "CMakeFiles/test_vector.dir/test_vector.cpp.o.d"
  "test_vector"
  "test_vector.pdb"
  "test_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
