file(REMOVE_RECURSE
  "CMakeFiles/test_feedforward.dir/test_feedforward.cpp.o"
  "CMakeFiles/test_feedforward.dir/test_feedforward.cpp.o.d"
  "test_feedforward"
  "test_feedforward.pdb"
  "test_feedforward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feedforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
