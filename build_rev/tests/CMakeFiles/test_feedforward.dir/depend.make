# Empty dependencies file for test_feedforward.
# This may be replaced when dependencies are built.
