file(REMOVE_RECURSE
  "CMakeFiles/test_stabilization.dir/test_stabilization.cpp.o"
  "CMakeFiles/test_stabilization.dir/test_stabilization.cpp.o.d"
  "test_stabilization"
  "test_stabilization.pdb"
  "test_stabilization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
