# Empty compiler generated dependencies file for test_stabilization.
# This may be replaced when dependencies are built.
