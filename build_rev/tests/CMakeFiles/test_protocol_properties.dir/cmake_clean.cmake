file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_properties.dir/test_protocol_properties.cpp.o"
  "CMakeFiles/test_protocol_properties.dir/test_protocol_properties.cpp.o.d"
  "test_protocol_properties"
  "test_protocol_properties.pdb"
  "test_protocol_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
