# Empty dependencies file for test_protocol_properties.
# This may be replaced when dependencies are built.
