# Empty compiler generated dependencies file for test_key_generation.
# This may be replaced when dependencies are built.
