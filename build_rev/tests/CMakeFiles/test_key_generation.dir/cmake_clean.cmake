file(REMOVE_RECURSE
  "CMakeFiles/test_key_generation.dir/test_key_generation.cpp.o"
  "CMakeFiles/test_key_generation.dir/test_key_generation.cpp.o.d"
  "test_key_generation"
  "test_key_generation.pdb"
  "test_key_generation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
