# Empty dependencies file for test_model_store.
# This may be replaced when dependencies are built.
