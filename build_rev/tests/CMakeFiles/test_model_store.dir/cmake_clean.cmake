file(REMOVE_RECURSE
  "CMakeFiles/test_model_store.dir/test_model_store.cpp.o"
  "CMakeFiles/test_model_store.dir/test_model_store.cpp.o.d"
  "test_model_store"
  "test_model_store.pdb"
  "test_model_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
