# Empty dependencies file for test_lint_semantic.
# This may be replaced when dependencies are built.
