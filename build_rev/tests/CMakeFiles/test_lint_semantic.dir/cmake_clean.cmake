file(REMOVE_RECURSE
  "CMakeFiles/test_lint_semantic.dir/test_lint_semantic.cpp.o"
  "CMakeFiles/test_lint_semantic.dir/test_lint_semantic.cpp.o.d"
  "test_lint_semantic"
  "test_lint_semantic.pdb"
  "test_lint_semantic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lint_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
