file(REMOVE_RECURSE
  "CMakeFiles/test_puf_metrics.dir/test_puf_metrics.cpp.o"
  "CMakeFiles/test_puf_metrics.dir/test_puf_metrics.cpp.o.d"
  "test_puf_metrics"
  "test_puf_metrics.pdb"
  "test_puf_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
