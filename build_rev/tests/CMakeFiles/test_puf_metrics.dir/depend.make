# Empty dependencies file for test_puf_metrics.
# This may be replaced when dependencies are built.
