# Empty dependencies file for test_tester.
# This may be replaced when dependencies are built.
