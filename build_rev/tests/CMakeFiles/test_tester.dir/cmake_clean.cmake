file(REMOVE_RECURSE
  "CMakeFiles/test_tester.dir/test_tester.cpp.o"
  "CMakeFiles/test_tester.dir/test_tester.cpp.o.d"
  "test_tester"
  "test_tester.pdb"
  "test_tester[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
