file(REMOVE_RECURSE
  "CMakeFiles/test_enrollment.dir/test_enrollment.cpp.o"
  "CMakeFiles/test_enrollment.dir/test_enrollment.cpp.o.d"
  "test_enrollment"
  "test_enrollment.pdb"
  "test_enrollment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
