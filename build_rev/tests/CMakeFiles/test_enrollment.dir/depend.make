# Empty dependencies file for test_enrollment.
# This may be replaced when dependencies are built.
