# Empty compiler generated dependencies file for test_interpose.
# This may be replaced when dependencies are built.
