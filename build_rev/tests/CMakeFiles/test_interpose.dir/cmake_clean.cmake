file(REMOVE_RECURSE
  "CMakeFiles/test_interpose.dir/test_interpose.cpp.o"
  "CMakeFiles/test_interpose.dir/test_interpose.cpp.o.d"
  "test_interpose"
  "test_interpose.pdb"
  "test_interpose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
