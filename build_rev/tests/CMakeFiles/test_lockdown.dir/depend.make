# Empty dependencies file for test_lockdown.
# This may be replaced when dependencies are built.
