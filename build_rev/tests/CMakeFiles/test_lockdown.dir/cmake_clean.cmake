file(REMOVE_RECURSE
  "CMakeFiles/test_lockdown.dir/test_lockdown.cpp.o"
  "CMakeFiles/test_lockdown.dir/test_lockdown.cpp.o.d"
  "test_lockdown"
  "test_lockdown.pdb"
  "test_lockdown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
