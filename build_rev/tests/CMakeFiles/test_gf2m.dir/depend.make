# Empty dependencies file for test_gf2m.
# This may be replaced when dependencies are built.
