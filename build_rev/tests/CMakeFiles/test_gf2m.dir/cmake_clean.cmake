file(REMOVE_RECURSE
  "CMakeFiles/test_gf2m.dir/test_gf2m.cpp.o"
  "CMakeFiles/test_gf2m.dir/test_gf2m.cpp.o.d"
  "test_gf2m"
  "test_gf2m.pdb"
  "test_gf2m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
