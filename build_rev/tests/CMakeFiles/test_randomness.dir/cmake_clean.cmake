file(REMOVE_RECURSE
  "CMakeFiles/test_randomness.dir/test_randomness.cpp.o"
  "CMakeFiles/test_randomness.dir/test_randomness.cpp.o.d"
  "test_randomness"
  "test_randomness.pdb"
  "test_randomness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
