# Empty compiler generated dependencies file for test_randomness.
# This may be replaced when dependencies are built.
