file(REMOVE_RECURSE
  "CMakeFiles/test_least_squares.dir/test_least_squares.cpp.o"
  "CMakeFiles/test_least_squares.dir/test_least_squares.cpp.o.d"
  "test_least_squares"
  "test_least_squares.pdb"
  "test_least_squares[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_least_squares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
