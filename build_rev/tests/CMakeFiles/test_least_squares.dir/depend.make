# Empty dependencies file for test_least_squares.
# This may be replaced when dependencies are built.
