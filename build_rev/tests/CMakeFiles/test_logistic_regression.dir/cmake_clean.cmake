file(REMOVE_RECURSE
  "CMakeFiles/test_logistic_regression.dir/test_logistic_regression.cpp.o"
  "CMakeFiles/test_logistic_regression.dir/test_logistic_regression.cpp.o.d"
  "test_logistic_regression"
  "test_logistic_regression.pdb"
  "test_logistic_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logistic_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
