file(REMOVE_RECURSE
  "CMakeFiles/test_linear_regression.dir/test_linear_regression.cpp.o"
  "CMakeFiles/test_linear_regression.dir/test_linear_regression.cpp.o.d"
  "test_linear_regression"
  "test_linear_regression.pdb"
  "test_linear_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
