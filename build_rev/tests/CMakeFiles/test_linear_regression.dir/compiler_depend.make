# Empty compiler generated dependencies file for test_linear_regression.
# This may be replaced when dependencies are built.
