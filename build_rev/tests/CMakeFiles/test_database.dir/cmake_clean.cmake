file(REMOVE_RECURSE
  "CMakeFiles/test_database.dir/test_database.cpp.o"
  "CMakeFiles/test_database.dir/test_database.cpp.o.d"
  "test_database"
  "test_database.pdb"
  "test_database[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
