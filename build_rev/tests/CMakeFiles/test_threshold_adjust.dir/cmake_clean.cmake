file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_adjust.dir/test_threshold_adjust.cpp.o"
  "CMakeFiles/test_threshold_adjust.dir/test_threshold_adjust.cpp.o.d"
  "test_threshold_adjust"
  "test_threshold_adjust.pdb"
  "test_threshold_adjust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_adjust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
