# Empty dependencies file for test_threshold_adjust.
# This may be replaced when dependencies are built.
