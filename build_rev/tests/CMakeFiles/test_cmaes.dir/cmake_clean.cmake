file(REMOVE_RECURSE
  "CMakeFiles/test_cmaes.dir/test_cmaes.cpp.o"
  "CMakeFiles/test_cmaes.dir/test_cmaes.cpp.o.d"
  "test_cmaes"
  "test_cmaes.pdb"
  "test_cmaes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmaes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
