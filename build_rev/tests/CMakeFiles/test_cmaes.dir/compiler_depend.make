# Empty compiler generated dependencies file for test_cmaes.
# This may be replaced when dependencies are built.
