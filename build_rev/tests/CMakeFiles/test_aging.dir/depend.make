# Empty dependencies file for test_aging.
# This may be replaced when dependencies are built.
