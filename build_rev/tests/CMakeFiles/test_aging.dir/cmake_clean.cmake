file(REMOVE_RECURSE
  "CMakeFiles/test_aging.dir/test_aging.cpp.o"
  "CMakeFiles/test_aging.dir/test_aging.cpp.o.d"
  "test_aging"
  "test_aging.pdb"
  "test_aging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
