# Empty dependencies file for test_attack_reliability.
# This may be replaced when dependencies are built.
