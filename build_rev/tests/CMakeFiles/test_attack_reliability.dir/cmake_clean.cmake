file(REMOVE_RECURSE
  "CMakeFiles/test_attack_reliability.dir/test_attack_reliability.cpp.o"
  "CMakeFiles/test_attack_reliability.dir/test_attack_reliability.cpp.o.d"
  "test_attack_reliability"
  "test_attack_reliability.pdb"
  "test_attack_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
