# Empty dependencies file for test_enrollment_sweep.
# This may be replaced when dependencies are built.
