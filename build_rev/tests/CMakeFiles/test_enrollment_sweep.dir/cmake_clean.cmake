file(REMOVE_RECURSE
  "CMakeFiles/test_enrollment_sweep.dir/test_enrollment_sweep.cpp.o"
  "CMakeFiles/test_enrollment_sweep.dir/test_enrollment_sweep.cpp.o.d"
  "test_enrollment_sweep"
  "test_enrollment_sweep.pdb"
  "test_enrollment_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enrollment_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
