file(REMOVE_RECURSE
  "CMakeFiles/test_noise_bifurcation.dir/test_noise_bifurcation.cpp.o"
  "CMakeFiles/test_noise_bifurcation.dir/test_noise_bifurcation.cpp.o.d"
  "test_noise_bifurcation"
  "test_noise_bifurcation.pdb"
  "test_noise_bifurcation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_bifurcation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
