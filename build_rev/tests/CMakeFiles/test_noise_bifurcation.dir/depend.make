# Empty dependencies file for test_noise_bifurcation.
# This may be replaced when dependencies are built.
