file(REMOVE_RECURSE
  "libxpuf_analysis.a"
)
