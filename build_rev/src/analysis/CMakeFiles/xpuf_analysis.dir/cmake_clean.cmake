file(REMOVE_RECURSE
  "CMakeFiles/xpuf_analysis.dir/experiment.cpp.o"
  "CMakeFiles/xpuf_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/xpuf_analysis.dir/histogram.cpp.o"
  "CMakeFiles/xpuf_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/xpuf_analysis.dir/puf_metrics.cpp.o"
  "CMakeFiles/xpuf_analysis.dir/puf_metrics.cpp.o.d"
  "CMakeFiles/xpuf_analysis.dir/randomness.cpp.o"
  "CMakeFiles/xpuf_analysis.dir/randomness.cpp.o.d"
  "libxpuf_analysis.a"
  "libxpuf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
