# Empty dependencies file for xpuf_analysis.
# This may be replaced when dependencies are built.
