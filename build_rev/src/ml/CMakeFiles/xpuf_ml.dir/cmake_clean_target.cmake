file(REMOVE_RECURSE
  "libxpuf_ml.a"
)
