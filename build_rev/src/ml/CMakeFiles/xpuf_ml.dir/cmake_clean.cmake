file(REMOVE_RECURSE
  "CMakeFiles/xpuf_ml.dir/adam.cpp.o"
  "CMakeFiles/xpuf_ml.dir/adam.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/cmaes.cpp.o"
  "CMakeFiles/xpuf_ml.dir/cmaes.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/dataset.cpp.o"
  "CMakeFiles/xpuf_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/lbfgs.cpp.o"
  "CMakeFiles/xpuf_ml.dir/lbfgs.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/linear_regression.cpp.o"
  "CMakeFiles/xpuf_ml.dir/linear_regression.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/xpuf_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/metrics.cpp.o"
  "CMakeFiles/xpuf_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/mlp.cpp.o"
  "CMakeFiles/xpuf_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/scaler.cpp.o"
  "CMakeFiles/xpuf_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/xpuf_ml.dir/streaming.cpp.o"
  "CMakeFiles/xpuf_ml.dir/streaming.cpp.o.d"
  "libxpuf_ml.a"
  "libxpuf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
