# Empty dependencies file for xpuf_ml.
# This may be replaced when dependencies are built.
