
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adam.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/adam.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/adam.cpp.o.d"
  "/root/repo/src/ml/cmaes.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/cmaes.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/cmaes.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/lbfgs.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/lbfgs.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/lbfgs.cpp.o.d"
  "/root/repo/src/ml/linear_regression.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/linear_regression.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/linear_regression.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/streaming.cpp" "src/ml/CMakeFiles/xpuf_ml.dir/streaming.cpp.o" "gcc" "src/ml/CMakeFiles/xpuf_ml.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/linalg/CMakeFiles/xpuf_linalg.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/xpuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
