
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bch.cpp" "src/crypto/CMakeFiles/xpuf_crypto.dir/bch.cpp.o" "gcc" "src/crypto/CMakeFiles/xpuf_crypto.dir/bch.cpp.o.d"
  "/root/repo/src/crypto/gf2m.cpp" "src/crypto/CMakeFiles/xpuf_crypto.dir/gf2m.cpp.o" "gcc" "src/crypto/CMakeFiles/xpuf_crypto.dir/gf2m.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/xpuf_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/xpuf_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/common/CMakeFiles/xpuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
