file(REMOVE_RECURSE
  "CMakeFiles/xpuf_crypto.dir/bch.cpp.o"
  "CMakeFiles/xpuf_crypto.dir/bch.cpp.o.d"
  "CMakeFiles/xpuf_crypto.dir/gf2m.cpp.o"
  "CMakeFiles/xpuf_crypto.dir/gf2m.cpp.o.d"
  "CMakeFiles/xpuf_crypto.dir/sha256.cpp.o"
  "CMakeFiles/xpuf_crypto.dir/sha256.cpp.o.d"
  "libxpuf_crypto.a"
  "libxpuf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
