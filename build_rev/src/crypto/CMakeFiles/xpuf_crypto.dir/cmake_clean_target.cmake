file(REMOVE_RECURSE
  "libxpuf_crypto.a"
)
