# Empty dependencies file for xpuf_crypto.
# This may be replaced when dependencies are built.
