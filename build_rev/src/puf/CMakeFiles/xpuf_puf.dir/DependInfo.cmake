
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/attack.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/attack.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/attack.cpp.o.d"
  "/root/repo/src/puf/attack_reliability.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/attack_reliability.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/attack_reliability.cpp.o.d"
  "/root/repo/src/puf/authentication.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/authentication.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/authentication.cpp.o.d"
  "/root/repo/src/puf/database.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/database.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/database.cpp.o.d"
  "/root/repo/src/puf/enrollment.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/enrollment.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/enrollment.cpp.o.d"
  "/root/repo/src/puf/extensions/lockdown.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/extensions/lockdown.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/extensions/lockdown.cpp.o.d"
  "/root/repo/src/puf/extensions/noise_bifurcation.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/extensions/noise_bifurcation.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/extensions/noise_bifurcation.cpp.o.d"
  "/root/repo/src/puf/key_generation.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/key_generation.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/key_generation.cpp.o.d"
  "/root/repo/src/puf/model.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/model.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/model.cpp.o.d"
  "/root/repo/src/puf/model_store.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/model_store.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/model_store.cpp.o.d"
  "/root/repo/src/puf/selection.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/selection.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/selection.cpp.o.d"
  "/root/repo/src/puf/stability.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/stability.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/stability.cpp.o.d"
  "/root/repo/src/puf/stabilization.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/stabilization.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/stabilization.cpp.o.d"
  "/root/repo/src/puf/threshold_adjust.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/threshold_adjust.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/threshold_adjust.cpp.o.d"
  "/root/repo/src/puf/transform.cpp" "src/puf/CMakeFiles/xpuf_puf.dir/transform.cpp.o" "gcc" "src/puf/CMakeFiles/xpuf_puf.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/sim/CMakeFiles/xpuf_sim.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/ml/CMakeFiles/xpuf_ml.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/crypto/CMakeFiles/xpuf_crypto.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/linalg/CMakeFiles/xpuf_linalg.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/xpuf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
