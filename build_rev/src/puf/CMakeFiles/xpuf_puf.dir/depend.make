# Empty dependencies file for xpuf_puf.
# This may be replaced when dependencies are built.
