file(REMOVE_RECURSE
  "CMakeFiles/xpuf_puf.dir/attack.cpp.o"
  "CMakeFiles/xpuf_puf.dir/attack.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/attack_reliability.cpp.o"
  "CMakeFiles/xpuf_puf.dir/attack_reliability.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/authentication.cpp.o"
  "CMakeFiles/xpuf_puf.dir/authentication.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/database.cpp.o"
  "CMakeFiles/xpuf_puf.dir/database.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/enrollment.cpp.o"
  "CMakeFiles/xpuf_puf.dir/enrollment.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/extensions/lockdown.cpp.o"
  "CMakeFiles/xpuf_puf.dir/extensions/lockdown.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/extensions/noise_bifurcation.cpp.o"
  "CMakeFiles/xpuf_puf.dir/extensions/noise_bifurcation.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/key_generation.cpp.o"
  "CMakeFiles/xpuf_puf.dir/key_generation.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/model.cpp.o"
  "CMakeFiles/xpuf_puf.dir/model.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/model_store.cpp.o"
  "CMakeFiles/xpuf_puf.dir/model_store.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/selection.cpp.o"
  "CMakeFiles/xpuf_puf.dir/selection.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/stability.cpp.o"
  "CMakeFiles/xpuf_puf.dir/stability.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/stabilization.cpp.o"
  "CMakeFiles/xpuf_puf.dir/stabilization.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/threshold_adjust.cpp.o"
  "CMakeFiles/xpuf_puf.dir/threshold_adjust.cpp.o.d"
  "CMakeFiles/xpuf_puf.dir/transform.cpp.o"
  "CMakeFiles/xpuf_puf.dir/transform.cpp.o.d"
  "libxpuf_puf.a"
  "libxpuf_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
