file(REMOVE_RECURSE
  "libxpuf_puf.a"
)
