file(REMOVE_RECURSE
  "libxpuf_common.a"
)
