file(REMOVE_RECURSE
  "CMakeFiles/xpuf_common.dir/cli.cpp.o"
  "CMakeFiles/xpuf_common.dir/cli.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/csv.cpp.o"
  "CMakeFiles/xpuf_common.dir/csv.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/log.cpp.o"
  "CMakeFiles/xpuf_common.dir/log.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/math.cpp.o"
  "CMakeFiles/xpuf_common.dir/math.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/metrics.cpp.o"
  "CMakeFiles/xpuf_common.dir/metrics.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/parallel.cpp.o"
  "CMakeFiles/xpuf_common.dir/parallel.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/rng.cpp.o"
  "CMakeFiles/xpuf_common.dir/rng.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/table.cpp.o"
  "CMakeFiles/xpuf_common.dir/table.cpp.o.d"
  "CMakeFiles/xpuf_common.dir/trace.cpp.o"
  "CMakeFiles/xpuf_common.dir/trace.cpp.o.d"
  "libxpuf_common.a"
  "libxpuf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
