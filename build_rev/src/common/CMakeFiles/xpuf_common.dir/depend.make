# Empty dependencies file for xpuf_common.
# This may be replaced when dependencies are built.
