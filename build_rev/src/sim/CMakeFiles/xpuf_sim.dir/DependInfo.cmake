
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chip.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/chip.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/chip.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/feedforward.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/feedforward.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/feedforward.cpp.o.d"
  "/root/repo/src/sim/fuse.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/fuse.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/fuse.cpp.o.d"
  "/root/repo/src/sim/interpose.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/interpose.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/interpose.cpp.o.d"
  "/root/repo/src/sim/linear.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/linear.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/linear.cpp.o.d"
  "/root/repo/src/sim/population.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/population.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/population.cpp.o.d"
  "/root/repo/src/sim/tester.cpp" "src/sim/CMakeFiles/xpuf_sim.dir/tester.cpp.o" "gcc" "src/sim/CMakeFiles/xpuf_sim.dir/tester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/common/CMakeFiles/xpuf_common.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/linalg/CMakeFiles/xpuf_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
