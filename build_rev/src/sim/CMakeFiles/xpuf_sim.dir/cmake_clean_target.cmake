file(REMOVE_RECURSE
  "libxpuf_sim.a"
)
