file(REMOVE_RECURSE
  "CMakeFiles/xpuf_sim.dir/chip.cpp.o"
  "CMakeFiles/xpuf_sim.dir/chip.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/device.cpp.o"
  "CMakeFiles/xpuf_sim.dir/device.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/environment.cpp.o"
  "CMakeFiles/xpuf_sim.dir/environment.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/feedforward.cpp.o"
  "CMakeFiles/xpuf_sim.dir/feedforward.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/fuse.cpp.o"
  "CMakeFiles/xpuf_sim.dir/fuse.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/interpose.cpp.o"
  "CMakeFiles/xpuf_sim.dir/interpose.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/linear.cpp.o"
  "CMakeFiles/xpuf_sim.dir/linear.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/population.cpp.o"
  "CMakeFiles/xpuf_sim.dir/population.cpp.o.d"
  "CMakeFiles/xpuf_sim.dir/tester.cpp.o"
  "CMakeFiles/xpuf_sim.dir/tester.cpp.o.d"
  "libxpuf_sim.a"
  "libxpuf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
