# Empty dependencies file for xpuf_sim.
# This may be replaced when dependencies are built.
