file(REMOVE_RECURSE
  "CMakeFiles/xpuf_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/xpuf_linalg.dir/eigen.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/xpuf_linalg.dir/least_squares.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/least_squares.cpp.o.d"
  "CMakeFiles/xpuf_linalg.dir/matrix.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/xpuf_linalg.dir/qr.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/xpuf_linalg.dir/vector.cpp.o"
  "CMakeFiles/xpuf_linalg.dir/vector.cpp.o.d"
  "libxpuf_linalg.a"
  "libxpuf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
