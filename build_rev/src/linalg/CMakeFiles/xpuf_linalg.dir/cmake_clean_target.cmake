file(REMOVE_RECURSE
  "libxpuf_linalg.a"
)
