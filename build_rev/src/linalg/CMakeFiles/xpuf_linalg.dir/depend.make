# Empty dependencies file for xpuf_linalg.
# This may be replaced when dependencies are built.
