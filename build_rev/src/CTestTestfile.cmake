# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build_rev/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("ml")
subdirs("crypto")
subdirs("sim")
subdirs("puf")
subdirs("net")
subdirs("analysis")
