file(REMOVE_RECURSE
  "CMakeFiles/xpuf_net.dir/service.cpp.o"
  "CMakeFiles/xpuf_net.dir/service.cpp.o.d"
  "CMakeFiles/xpuf_net.dir/session.cpp.o"
  "CMakeFiles/xpuf_net.dir/session.cpp.o.d"
  "CMakeFiles/xpuf_net.dir/transport.cpp.o"
  "CMakeFiles/xpuf_net.dir/transport.cpp.o.d"
  "CMakeFiles/xpuf_net.dir/wire.cpp.o"
  "CMakeFiles/xpuf_net.dir/wire.cpp.o.d"
  "libxpuf_net.a"
  "libxpuf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpuf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
