file(REMOVE_RECURSE
  "libxpuf_net.a"
)
