# Empty dependencies file for xpuf_net.
# This may be replaced when dependencies are built.
