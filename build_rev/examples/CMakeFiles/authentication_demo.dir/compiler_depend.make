# Empty compiler generated dependencies file for authentication_demo.
# This may be replaced when dependencies are built.
