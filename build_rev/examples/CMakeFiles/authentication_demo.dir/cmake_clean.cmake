file(REMOVE_RECURSE
  "CMakeFiles/authentication_demo.dir/authentication_demo.cpp.o"
  "CMakeFiles/authentication_demo.dir/authentication_demo.cpp.o.d"
  "authentication_demo"
  "authentication_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authentication_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
