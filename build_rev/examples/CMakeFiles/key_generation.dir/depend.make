# Empty dependencies file for key_generation.
# This may be replaced when dependencies are built.
