file(REMOVE_RECURSE
  "CMakeFiles/key_generation.dir/key_generation.cpp.o"
  "CMakeFiles/key_generation.dir/key_generation.cpp.o.d"
  "key_generation"
  "key_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
