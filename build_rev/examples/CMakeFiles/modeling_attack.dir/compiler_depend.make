# Empty compiler generated dependencies file for modeling_attack.
# This may be replaced when dependencies are built.
