file(REMOVE_RECURSE
  "CMakeFiles/modeling_attack.dir/modeling_attack.cpp.o"
  "CMakeFiles/modeling_attack.dir/modeling_attack.cpp.o.d"
  "modeling_attack"
  "modeling_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modeling_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
