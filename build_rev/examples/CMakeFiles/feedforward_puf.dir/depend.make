# Empty dependencies file for feedforward_puf.
# This may be replaced when dependencies are built.
