file(REMOVE_RECURSE
  "CMakeFiles/feedforward_puf.dir/feedforward_puf.cpp.o"
  "CMakeFiles/feedforward_puf.dir/feedforward_puf.cpp.o.d"
  "feedforward_puf"
  "feedforward_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedforward_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
