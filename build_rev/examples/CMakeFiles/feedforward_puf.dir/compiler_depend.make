# Empty compiler generated dependencies file for feedforward_puf.
# This may be replaced when dependencies are built.
