file(REMOVE_RECURSE
  "CMakeFiles/reliability_attack.dir/reliability_attack.cpp.o"
  "CMakeFiles/reliability_attack.dir/reliability_attack.cpp.o.d"
  "reliability_attack"
  "reliability_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
