# Empty compiler generated dependencies file for reliability_attack.
# This may be replaced when dependencies are built.
