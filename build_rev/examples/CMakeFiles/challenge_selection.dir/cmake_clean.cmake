file(REMOVE_RECURSE
  "CMakeFiles/challenge_selection.dir/challenge_selection.cpp.o"
  "CMakeFiles/challenge_selection.dir/challenge_selection.cpp.o.d"
  "challenge_selection"
  "challenge_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/challenge_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
