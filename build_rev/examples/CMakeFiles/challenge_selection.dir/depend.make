# Empty dependencies file for challenge_selection.
# This may be replaced when dependencies are built.
