# Empty compiler generated dependencies file for vt_stability.
# This may be replaced when dependencies are built.
