file(REMOVE_RECURSE
  "CMakeFiles/vt_stability.dir/vt_stability.cpp.o"
  "CMakeFiles/vt_stability.dir/vt_stability.cpp.o.d"
  "vt_stability"
  "vt_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vt_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
