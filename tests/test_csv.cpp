// Tests for CSV writing/reading round trips (bench artifact format).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace xpuf {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("xpuf_csv_test_" + std::to_string(::getpid()) + ".csv"))
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"n", "value"});
    w.write_row(std::vector<std::string>{"1", "0.5"});
    w.write_row(std::vector<double>{2.0, 0.25});
  }
  const CsvData data = read_csv(path_);
  ASSERT_EQ(data.header.size(), 2u);
  EXPECT_EQ(data.header[0], "n");
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][0], "1");
  EXPECT_EQ(data.rows[1][0], "2");
  EXPECT_EQ(data.rows[1][1], "0.25");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_, {"text"});
    w.write_row(std::vector<std::string>{"a,b"});
    w.write_row(std::vector<std::string>{"say \"hi\""});
    w.write_row(std::vector<std::string>{"line\nbreak"});
  }
  const CsvData data = read_csv(path_);
  ASSERT_EQ(data.rows.size(), 3u);
  EXPECT_EQ(data.rows[0][0], "a,b");
  EXPECT_EQ(data.rows[1][0], "say \"hi\"");
  EXPECT_EQ(data.rows[2][0], "line\nbreak");
}

TEST_F(CsvTest, ColumnLookupByName) {
  {
    CsvWriter w(path_, {"alpha", "beta", "gamma"});
    w.write_row(std::vector<std::string>{"1", "2", "3"});
  }
  const CsvData data = read_csv(path_);
  EXPECT_EQ(data.column("beta"), 1u);
  EXPECT_THROW(data.column("delta"), ParseError);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/missing.csv"), ParseError);
}

TEST_F(CsvTest, WriteToUnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/out.csv", {"a"}), ParseError);
}

TEST_F(CsvTest, HandlesCrlfLineEndings) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "a,b\r\n1,2\r\n";
  }
  const CsvData data = read_csv(path_);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][1], "2");
}

TEST_F(CsvTest, EmptyCellsSurvive) {
  {
    CsvWriter w(path_, {"a", "b", "c"});
    w.write_row(std::vector<std::string>{"", "x", ""});
  }
  const CsvData data = read_csv(path_);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "");
  EXPECT_EQ(data.rows[0][1], "x");
  EXPECT_EQ(data.rows[0][2], "");
}

TEST(EnsureDirectory, CreatesNestedDirectories) {
  const auto base = std::filesystem::temp_directory_path() / "xpuf_dir_test";
  std::filesystem::remove_all(base);
  const std::string made = ensure_directory((base / "a" / "b").string());
  EXPECT_TRUE(std::filesystem::is_directory(made));
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace xpuf
