// Tests for the voltage/temperature environment model.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/environment.hpp"

namespace xpuf::sim {
namespace {

TEST(Environment, NominalIsPaperEnrollmentCorner) {
  const Environment e = Environment::nominal();
  EXPECT_DOUBLE_EQ(e.voltage, 0.9);
  EXPECT_DOUBLE_EQ(e.temperature, 25.0);
}

TEST(Environment, LabelIsReadable) {
  const Environment e{0.8, 60.0};
  EXPECT_EQ(e.label(), "0.8V/60C");
}

TEST(Environment, GridHasNineUniqueCorners) {
  const auto grid = paper_corner_grid();
  ASSERT_EQ(grid.size(), 9u);
  for (std::size_t i = 0; i < grid.size(); ++i)
    for (std::size_t j = i + 1; j < grid.size(); ++j) EXPECT_FALSE(grid[i] == grid[j]);
  // Must contain the nominal corner.
  bool has_nominal = false;
  for (const auto& e : grid)
    if (e == Environment::nominal()) has_nominal = true;
  EXPECT_TRUE(has_nominal);
}

TEST(EnvironmentModel, NominalIsIdentity) {
  const EnvironmentModel m;
  const Environment e = Environment::nominal();
  EXPECT_DOUBLE_EQ(m.delay_scale(e), 1.0);
  EXPECT_DOUBLE_EQ(m.sensitivity_shift(e), 0.0);
  EXPECT_DOUBLE_EQ(m.noise_scale(e), 1.0);
}

TEST(EnvironmentModel, NoiseGrowsAwayFromNominal) {
  const EnvironmentModel m;
  const double nominal = m.noise_scale(Environment::nominal());
  for (const auto& e : paper_corner_grid()) {
    if (e == Environment::nominal()) continue;
    EXPECT_GT(m.noise_scale(e), nominal) << e.label();
  }
}

TEST(EnvironmentModel, NoiseIsSymmetricInVoltageDeviation) {
  const EnvironmentModel m;
  EXPECT_DOUBLE_EQ(m.noise_scale({0.8, 25.0}), m.noise_scale({1.0, 25.0}));
}

TEST(EnvironmentModel, DelayScaleRespondsToVoltage) {
  const EnvironmentModel m;
  // Default coefficients: delays stretch at low VDD.
  EXPECT_GT(m.delay_scale({0.8, 25.0}), m.delay_scale({1.0, 25.0}));
}

TEST(EnvironmentModel, DelayScaleIsFloored) {
  EnvironmentModel m;
  m.scale_voltage = 100.0;  // absurd coefficient
  EXPECT_GE(m.delay_scale({0.0, 25.0}), 0.1);
}

TEST(EnvironmentModel, ShiftIsSignedAndZeroAtNominal) {
  const EnvironmentModel m;
  EXPECT_DOUBLE_EQ(m.sensitivity_shift(Environment::nominal()), 0.0);
  const double lo = m.sensitivity_shift({0.8, 25.0});
  const double hi = m.sensitivity_shift({1.0, 25.0});
  EXPECT_LT(lo * hi, 0.0);  // opposite signs around nominal
}

TEST(EnvironmentModel, ShiftGrowsWithTemperatureSpan) {
  const EnvironmentModel m;
  EXPECT_GT(std::fabs(m.sensitivity_shift({0.9, 60.0})),
            std::fabs(m.sensitivity_shift({0.9, 40.0})));
}

TEST(EnvironmentModel, CoefficientsAreHonored) {
  EnvironmentModel m;
  m.scale_voltage = 0.0;
  m.scale_temperature = 0.0;
  m.shift_voltage = 0.0;
  m.shift_temperature = 0.0;
  m.noise_voltage = 0.0;
  m.noise_temperature = 0.0;
  for (const auto& e : paper_corner_grid()) {
    EXPECT_DOUBLE_EQ(m.delay_scale(e), 1.0);
    EXPECT_DOUBLE_EQ(m.sensitivity_shift(e), 0.0);
    EXPECT_DOUBLE_EQ(m.noise_scale(e), 1.0);
  }
}

}  // namespace
}  // namespace xpuf::sim
