// Tests for the response-stream randomness screeners.
#include <gtest/gtest.h>

#include "analysis/randomness.hpp"
#include "common/rng.hpp"
#include "sim/population.hpp"

namespace xpuf::analysis {
namespace {

TEST(Randomness, RequiresEnoughBits) {
  EXPECT_THROW(assess_randomness(std::vector<bool>(50, false)), std::invalid_argument);
}

TEST(Randomness, FairCoinPasses) {
  Rng rng(1);
  std::vector<bool> bits(20'000);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = rng.bernoulli();
  const RandomnessReport r = assess_randomness(bits);
  EXPECT_TRUE(r.passes()) << "monobit=" << r.monobit_p << " runs=" << r.runs_p
                          << " ac=" << r.serial_correlation;
  EXPECT_NEAR(r.ones_fraction, 0.5, 0.02);
}

TEST(Randomness, ConstantStreamFailsEverything) {
  const std::vector<bool> bits(1'000, true);
  const RandomnessReport r = assess_randomness(bits);
  EXPECT_FALSE(r.passes());
  EXPECT_LT(r.monobit_p, 1e-6);
  EXPECT_DOUBLE_EQ(r.ones_fraction, 1.0);
}

TEST(Randomness, BiasedStreamFailsMonobit) {
  Rng rng(2);
  std::vector<bool> bits(5'000);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = rng.bernoulli(0.6);
  const RandomnessReport r = assess_randomness(bits);
  EXPECT_LT(r.monobit_p, 0.01);
  EXPECT_FALSE(r.passes());
}

TEST(Randomness, AlternatingStreamFailsRunsAndCorrelation) {
  std::vector<bool> bits(2'000);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i % 2 == 0);
  const RandomnessReport r = assess_randomness(bits);
  // Perfect balance passes monobit, but runs/correlation scream.
  EXPECT_GT(r.monobit_p, 0.5);
  EXPECT_LT(r.runs_p, 1e-6);
  EXPECT_NEAR(r.serial_correlation, -1.0, 1e-6);
  EXPECT_FALSE(r.passes());
}

TEST(Randomness, StickyStreamFailsCorrelation) {
  // Markov chain with strong persistence.
  Rng rng(3);
  std::vector<bool> bits(5'000);
  bool state = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (rng.bernoulli(0.1)) state = !state;
    bits[i] = state;
  }
  const RandomnessReport r = assess_randomness(bits);
  EXPECT_GT(r.serial_correlation, 0.5);
  EXPECT_FALSE(r.passes());
}

TEST(Randomness, XorPufResponsesPassTheScreeners) {
  // Responses of a 4-XOR PUF over random challenges look like coin flips
  // (the XOR washes out per-device bias).
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 4;
  cfg.seed = 88;
  sim::ChipPopulation pop(cfg);
  Rng rng(4);
  std::vector<bool> bits;
  bits.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    const auto c = sim::random_challenge(32, rng);
    bits.push_back(pop.chip(0).xor_response(c, sim::Environment::nominal(), rng));
  }
  const RandomnessReport r = assess_randomness(bits);
  EXPECT_TRUE(r.passes(0.001)) << "monobit=" << r.monobit_p << " runs=" << r.runs_p
                               << " ac=" << r.serial_correlation;
}

TEST(Randomness, SingleArbiterPufShowsItsBias) {
  // A single arbiter PUF carries a per-device bias (the constant weight
  // term); the monobit screener should flag a strongly-biased device.
  sim::PopulationConfig cfg;
  cfg.n_chips = 8;
  cfg.n_pufs_per_chip = 1;
  cfg.seed = 89;
  sim::ChipPopulation pop(cfg);
  Rng rng(5);
  double worst_monobit = 1.0;
  for (std::size_t k = 0; k < pop.size(); ++k) {
    std::vector<bool> bits;
    for (int i = 0; i < 5'000; ++i) {
      const auto c = sim::random_challenge(32, rng);
      bits.push_back(pop.chip(k).xor_response(c, sim::Environment::nominal(), rng));
    }
    worst_monobit = std::min(worst_monobit, assess_randomness(bits).monobit_p);
  }
  EXPECT_LT(worst_monobit, 0.01);  // at least one chip in 8 is visibly biased
}

}  // namespace
}  // namespace xpuf::analysis
