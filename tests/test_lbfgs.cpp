// Tests for the L-BFGS minimizer: convergence on convex and non-convex
// benchmarks, tolerance behavior, and robustness to bad objectives.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ml/lbfgs.hpp"

namespace xpuf::ml {
namespace {

using linalg::Vector;

TEST(Lbfgs, MinimizesSeparableQuadratic) {
  // f(x) = sum_i i * (x_i - i)^2; minimum at x_i = i.
  Objective f = [](const Vector& x, Vector& g) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double w = static_cast<double>(i + 1);
      const double d = x[i] - w;
      v += w * d * d;
      g[i] = 2.0 * w * d;
    }
    return v;
  };
  const LbfgsResult res = minimize_lbfgs(f, Vector(5));
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(res.x[i], static_cast<double>(i + 1), 1e-5);
  EXPECT_LT(res.value, 1e-9);
}

TEST(Lbfgs, SolvesIllConditionedQuadratic) {
  // Condition number 1e4.
  Objective f = [](const Vector& x, Vector& g) {
    const double a = 1.0, b = 1e4;
    g[0] = 2.0 * a * x[0];
    g[1] = 2.0 * b * x[1];
    return a * x[0] * x[0] + b * x[1] * x[1];
  };
  const LbfgsResult res = minimize_lbfgs(f, Vector{3.0, 3.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 0.0, 1e-4);
  EXPECT_NEAR(res.x[1], 0.0, 1e-4);
}

TEST(Lbfgs, MinimizesRosenbrock) {
  Objective f = [](const Vector& x, Vector& g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opts;
  opts.max_iterations = 500;
  const LbfgsResult res = minimize_lbfgs(f, Vector{-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-4);
  EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, RespectsIterationCap) {
  Objective f = [](const Vector& x, Vector& g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opts;
  opts.max_iterations = 3;
  const LbfgsResult res = minimize_lbfgs(f, Vector{-1.2, 1.0}, opts);
  EXPECT_LE(res.iterations, 3u);
  EXPECT_FALSE(res.converged);
}

TEST(Lbfgs, AlreadyAtMinimumConvergesImmediately) {
  Objective f = [](const Vector& x, Vector& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  const LbfgsResult res = minimize_lbfgs(f, Vector{0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1u);
}

TEST(Lbfgs, ThrowsOnNonFiniteStart) {
  Objective f = [](const Vector& x, Vector& g) {
    g[0] = 0.0;
    return x[0] * 0.0 + std::nan("");
  };
  EXPECT_THROW(minimize_lbfgs(f, Vector{1.0}), NumericalError);
}

TEST(Lbfgs, RejectsEmptyStart) {
  Objective f = [](const Vector&, Vector&) { return 0.0; };
  EXPECT_THROW(minimize_lbfgs(f, Vector{}), std::invalid_argument);
}

TEST(Lbfgs, SurvivesNonFiniteRegionsAwayFromStart) {
  // f = -log(1 - x^2): infinite outside (-1, 1). Start inside; the line
  // search must shrink steps that leave the domain.
  Objective f = [](const Vector& x, Vector& g) {
    const double v = 1.0 - x[0] * x[0];
    if (v <= 0.0) {
      g[0] = 0.0;
      return std::numeric_limits<double>::infinity();
    }
    g[0] = 2.0 * x[0] / v;
    return -std::log(v);
  };
  const LbfgsResult res = minimize_lbfgs(f, Vector{0.9});
  EXPECT_NEAR(res.x[0], 0.0, 1e-5);
}

TEST(Lbfgs, CountsEvaluations) {
  Objective f = [](const Vector& x, Vector& g) {
    g[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  const LbfgsResult res = minimize_lbfgs(f, Vector{5.0});
  EXPECT_GE(res.evaluations, 2u);
}

// Dimension sweep: convergence on random convex quadratics of increasing
// size, including the MLP-scale parameter counts used by the attack.
class LbfgsDimensionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LbfgsDimensionSweep, ConvergesOnRandomConvexQuadratic) {
  const std::size_t n = GetParam();
  // f(x) = sum (x_i - t_i)^2 * s_i with deterministic pseudo-random t, s.
  std::vector<double> t(n), s(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = std::sin(static_cast<double>(i) * 1.7) * 3.0;
    s[i] = 1.0 + std::fmod(static_cast<double>(i) * 0.37, 4.0);
  }
  Objective f = [&](const Vector& x, Vector& g) {
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = x[i] - t[i];
      v += s[i] * d * d;
      g[i] = 2.0 * s[i] * d;
    }
    return v;
  };
  LbfgsOptions opts;
  opts.max_iterations = 400;
  const LbfgsResult res = minimize_lbfgs(f, Vector(n), opts);
  EXPECT_TRUE(res.converged) << res.message;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], t[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Dims, LbfgsDimensionSweep,
                         ::testing::Values(1u, 2u, 10u, 33u, 330u, 2800u));

}  // namespace
}  // namespace xpuf::ml
