// Tests for the noise-bifurcation baseline extension.
#include <gtest/gtest.h>

#include <cmath>

#include "puf/enrollment.hpp"
#include "puf/extensions/noise_bifurcation.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class BifurcationTest : public ::testing::Test {
 protected:
  BifurcationTest() : pop_(make_config()), rng_(77) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'000;
    cfg.trials = 5'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = 2;
    cfg.seed = 888;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(BifurcationTest, ExchangeShapesMatchConfig) {
  NoiseBifurcationConfig cfg;
  cfg.group_size = 3;
  cfg.groups = 20;
  const BifurcationTranscript t =
      run_bifurcation_exchange(pop_.chip(0), cfg, sim::Environment::nominal(), rng_);
  ASSERT_EQ(t.groups.size(), 20u);
  for (const auto& g : t.groups) {
    ASSERT_EQ(g.challenges.size(), 3u);
    for (const auto& c : g.challenges) EXPECT_EQ(c.size(), pop_.chip(0).stages());
  }
}

TEST_F(BifurcationTest, ConfigIsValidated) {
  NoiseBifurcationConfig bad;
  bad.group_size = 0;
  EXPECT_THROW(
      run_bifurcation_exchange(pop_.chip(0), bad, sim::Environment::nominal(), rng_),
      std::invalid_argument);
  bad = NoiseBifurcationConfig{};
  bad.groups = 0;
  EXPECT_THROW(
      run_bifurcation_exchange(pop_.chip(0), bad, sim::Environment::nominal(), rng_),
      std::invalid_argument);
}

TEST_F(BifurcationTest, GenuineDevicePassesMostGroups) {
  NoiseBifurcationConfig cfg;
  cfg.group_size = 2;
  cfg.groups = 200;
  const auto t =
      run_bifurcation_exchange(pop_.chip(0), cfg, sim::Environment::nominal(), rng_);
  const double pass = verify_bifurcation(model_, 2, t);
  EXPECT_GT(pass, 0.9);
  EXPECT_GT(pass, bifurcation_accept_threshold(2));
}

TEST_F(BifurcationTest, CounterfeitPassesNearTheoreticalRate) {
  NoiseBifurcationConfig cfg;
  cfg.group_size = 2;
  cfg.groups = 600;
  const auto t =
      run_bifurcation_exchange(pop_.chip(1), cfg, sim::Environment::nominal(), rng_);
  const double pass = verify_bifurcation(model_, 2, t);
  // Counterfeit: each group passes when the random-ish bit matches at least
  // one of 2 predictions -> ~1 - 2^-2 = 0.75.
  EXPECT_NEAR(pass, 0.75, 0.07);
  EXPECT_LT(pass, bifurcation_accept_threshold(2));
}

TEST_F(BifurcationTest, ThresholdSeparatesTheTwoPopulations) {
  for (std::size_t d : {1u, 2u, 3u, 5u}) {
    const double thr = bifurcation_accept_threshold(d);
    const double counterfeit = 1.0 - std::pow(0.5, static_cast<double>(d));
    EXPECT_GT(thr, counterfeit);
    EXPECT_LT(thr, 1.0);
  }
  EXPECT_THROW(bifurcation_accept_threshold(0), std::invalid_argument);
}

TEST_F(BifurcationTest, AttackDatasetAttributesBitToEveryMember) {
  NoiseBifurcationConfig cfg;
  cfg.group_size = 4;
  cfg.groups = 25;
  const auto t =
      run_bifurcation_exchange(pop_.chip(0), cfg, sim::Environment::nominal(), rng_);
  const ml::Dataset data = bifurcation_attack_dataset({t});
  EXPECT_EQ(data.size(), 100u);  // 25 groups x 4 members
  EXPECT_EQ(data.features(), pop_.chip(0).stages() + 1);
  // Every member of a group carries the same label.
  for (std::size_t g = 0; g < 25; ++g)
    for (std::size_t m = 1; m < 4; ++m)
      EXPECT_DOUBLE_EQ(data.y[g * 4 + m], data.y[g * 4]);
}

TEST_F(BifurcationTest, AttackDatasetLabelNoiseGrowsWithGroupSize) {
  // Against the true (stable-side) device responses, the transcript labels
  // are exact for d=1 and increasingly wrong for larger d.
  for (std::size_t d : {1u, 4u}) {
    NoiseBifurcationConfig cfg;
    cfg.group_size = d;
    cfg.groups = 2'000 / d;
    const auto t =
        run_bifurcation_exchange(pop_.chip(0), cfg, sim::Environment::nominal(), rng_);
    std::size_t wrong = 0, total = 0;
    for (const auto& g : t.groups) {
      for (const auto& c : g.challenges) {
        // Noise-free ground truth of the XOR (analysis access).
        bool truth = false;
        for (std::size_t p = 0; p < 2; ++p)
          truth ^= pop_.chip(0).device_for_analysis(p).delay_difference(
                       c, sim::Environment::nominal()) > 0.0;
        ++total;
        if (truth != g.response) ++wrong;
      }
    }
    const double noise = static_cast<double>(wrong) / static_cast<double>(total);
    if (d == 1) EXPECT_LT(noise, 0.08);   // only thermal noise
    else EXPECT_NEAR(noise, 0.375, 0.06); // (d-1)/d * 50% label noise
  }
}

TEST_F(BifurcationTest, EmptyInputsAreRejected) {
  EXPECT_THROW(verify_bifurcation(model_, 2, BifurcationTranscript{}),
               std::invalid_argument);
  EXPECT_THROW(bifurcation_attack_dataset({}), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
