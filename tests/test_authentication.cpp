// Tests for the zero-Hamming-distance authentication protocol.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "puf/authentication.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class AuthenticationTest : public ::testing::Test {
 protected:
  AuthenticationTest() : pop_(make_config()), rng_(2718) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 3'000;
    cfg.trials = 5'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
    // Adjust betas against the nominal corner plus two extremes.
    std::vector<EvaluationBlock> blocks;
    const auto challenges = random_challenges(32, 3'000, rng_);
    for (const auto& env :
         {sim::Environment::nominal(), sim::Environment{0.8, 0.0}, sim::Environment{1.0, 60.0}})
      blocks.push_back(
          measure_evaluation_block(pop_.chip(0), challenges, env, 5'000, rng_));
    const BetaSearchResult bs = find_betas(model_, blocks);
    model_.set_betas(bs.betas);
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = 4;
    cfg.seed = 424242;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(AuthenticationTest, IssueProducesRequestedBatch) {
  AuthenticationServer server(model_, 4, {.challenge_count = 32});
  const ChallengeBatch batch = server.issue(rng_);
  EXPECT_EQ(batch.challenges.size(), 32u);
  EXPECT_EQ(batch.expected.size(), 32u);
  for (const auto& c : batch.challenges) EXPECT_TRUE(model_.all_stable(c, 4));
}

TEST_F(AuthenticationTest, GenuineChipPassesAtNominal) {
  AuthenticationServer server(model_, 4, {.challenge_count = 64});
  const AuthenticationOutcome out =
      server.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(out.approved);
  EXPECT_EQ(out.mismatches, 0u);
  EXPECT_EQ(out.challenges_used, 64u);
}

// Regression (ISSUE 3): issue() used to discard SelectionResult::
// candidates_tried, so the outcome's documented "selection cost on the
// server" was always 0. It must be at least one draw per issued challenge
// and travel batch -> verify -> outcome unchanged.
TEST_F(AuthenticationTest, SelectionCostIsAccounted) {
  AuthenticationServer server(model_, 4, {.challenge_count = 32});
  const ChallengeBatch batch = server.issue(rng_);
  EXPECT_GE(batch.candidates_tried, 32u);

  std::vector<bool> responses(batch.expected.begin(), batch.expected.end());
  const AuthenticationOutcome out = server.verify(batch, responses);
  EXPECT_EQ(out.candidates_tried, batch.candidates_tried);

  const AuthenticationOutcome full =
      server.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_GE(full.candidates_tried, full.challenges_used);
  EXPECT_GT(full.candidates_tried, 0u);
}

TEST_F(AuthenticationTest, RandomIssuanceCostsOneCandidatePerChallenge) {
  AuthenticationServer server(model_, 4, {.challenge_count = 16});
  const ChallengeBatch batch = server.issue_random(rng_);
  EXPECT_EQ(batch.candidates_tried, 16u);
  const AuthenticationOutcome out = server.authenticate(
      pop_.chip(0), sim::Environment::nominal(), rng_, /*model_selected=*/false);
  EXPECT_EQ(out.candidates_tried, 16u);
}

TEST_F(AuthenticationTest, GenuineChipPassesAcrossCalibratedCorners) {
  AuthenticationServer server(model_, 4, {.challenge_count = 48});
  for (const auto& env :
       {sim::Environment::nominal(), sim::Environment{0.8, 0.0}, sim::Environment{1.0, 60.0}}) {
    const AuthenticationOutcome out = server.authenticate(pop_.chip(0), env, rng_);
    EXPECT_TRUE(out.approved) << env.label() << " mismatches=" << out.mismatches;
  }
}

TEST_F(AuthenticationTest, WrongChipIsDenied) {
  AuthenticationServer server(model_, 4, {.challenge_count = 64});
  const AuthenticationOutcome out =
      server.authenticate(pop_.chip(1), sim::Environment::nominal(), rng_);
  EXPECT_FALSE(out.approved);
  // An unrelated chip agrees on about half the XOR bits.
  EXPECT_GT(out.mismatches, 16u);
}

TEST_F(AuthenticationTest, RandomChallengeBaselineIsLessReliable) {
  // Without stable-challenge selection, one-shot XOR sampling hits unstable
  // CRPs and the zero-HD criterion rejects the genuine chip most of the time.
  AuthenticationServer server(model_, 4, {.challenge_count = 64});
  std::size_t mismatch_total = 0;
  for (int i = 0; i < 5; ++i) {
    const AuthenticationOutcome out = server.authenticate(
        pop_.chip(0), sim::Environment::nominal(), rng_, /*model_selected=*/false);
    mismatch_total += out.mismatches;
  }
  EXPECT_GT(mismatch_total, 0u);
}

TEST_F(AuthenticationTest, VerifyCountsMismatchesExactly) {
  AuthenticationServer server(model_, 4, {.challenge_count = 8});
  ChallengeBatch batch = server.issue(rng_);
  std::vector<bool> responses(batch.expected.begin(), batch.expected.end());
  responses[2] = !responses[2];
  responses[5] = !responses[5];
  const AuthenticationOutcome out = server.verify(batch, responses);
  EXPECT_EQ(out.mismatches, 2u);
  EXPECT_FALSE(out.approved);
  EXPECT_NEAR(out.mismatch_fraction(), 0.25, 1e-12);
}

TEST_F(AuthenticationTest, RelaxedHammingPolicyTolerates) {
  AuthenticationServer server(model_, 4,
                              {.challenge_count = 8, .max_hamming_distance = 2});
  ChallengeBatch batch = server.issue(rng_);
  std::vector<bool> responses(batch.expected.begin(), batch.expected.end());
  responses[0] = !responses[0];
  EXPECT_TRUE(server.verify(batch, responses).approved);
  responses[1] = !responses[1];
  responses[3] = !responses[3];
  EXPECT_FALSE(server.verify(batch, responses).approved);
}

TEST_F(AuthenticationTest, VerifyValidatesResponseCount) {
  AuthenticationServer server(model_, 4, {.challenge_count = 4});
  const ChallengeBatch batch = server.issue(rng_);
  EXPECT_THROW(server.verify(batch, std::vector<bool>(3)), std::invalid_argument);
}

TEST_F(AuthenticationTest, AuthenticationWorksOnDeployedChip) {
  // Blowing the fuses must not affect authentication (only XOR output used).
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 424242;  // same lot -> same chip 0
  sim::ChipPopulation pop(cfg);
  pop.chip(0).blow_fuses();
  AuthenticationServer server(model_, 4, {.challenge_count = 32});
  const AuthenticationOutcome out =
      server.authenticate(pop.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(out.approved);
}

TEST_F(AuthenticationTest, ConstructionValidates) {
  EXPECT_THROW(AuthenticationServer(model_, 0), std::invalid_argument);
  EXPECT_THROW(AuthenticationServer(model_, 5), std::invalid_argument);
  EXPECT_THROW(AuthenticationServer(model_, 4, {.challenge_count = 0}),
               std::invalid_argument);
}

TEST_F(AuthenticationTest, ChipWidthMismatchIsRejected) {
  // A server enrolled for 4 PUFs cannot authenticate against a different
  // physical XOR width.
  AuthenticationServer server(model_, 3, {.challenge_count = 8});
  EXPECT_THROW(server.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_),
               std::invalid_argument);
}

TEST_F(AuthenticationTest, SelectionExhaustionThrows) {
  AuthenticationServer server(
      model_, 4, {.challenge_count = 1'000, .max_selection_attempts = 50});
  EXPECT_THROW(server.issue(rng_), xpuf::NumericalError);
}

}  // namespace
}  // namespace xpuf::puf
