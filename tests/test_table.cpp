// Tests for the aligned console-table renderer used by all benches.
#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace xpuf {
namespace {

TEST(Table, RendersTitleHeaderAndRows) {
  Table t("My Title");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
  Table t("t");
  t.set_header({"col", "x"});
  t.add_row({"longervalue", "1"});
  t.add_row({"s", "2"});
  std::ostringstream os;
  t.print(os);
  // Both data rows must place the second column at the same offset.
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  // rows: title, rule, header, rule, row1, row2, rule
  ASSERT_GE(lines.size(), 6u);
  const std::string& r1 = lines[4];
  const std::string& r2 = lines[5];
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(Table, RaggedRowsRenderEmptyCells) {
  Table t("t");
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(Table, RowCountTracksAdds) {
  Table t("t");
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableFormat, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 3), "-1.000");
  EXPECT_EQ(Table::num(2.0), "2.0000");
}

TEST(TableFormat, SciFormatsScientific) {
  const std::string s = Table::sci(0.000213, 3);
  EXPECT_NE(s.find("2.130e-04"), std::string::npos);
}

TEST(TableFormat, PctScalesToPercent) {
  EXPECT_EQ(Table::pct(0.109, 1), "10.9%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::pct(0.00238, 3), "0.238%");
}

TEST(Table, EmptyTableStillRenders) {
  Table t("empty");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace xpuf
