// Tests for OLS/ridge linear regression (the paper's enrollment model).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/linear_regression.hpp"

namespace xpuf::ml {
namespace {

Dataset planted(std::size_t n, const std::vector<double>& coef, double intercept,
                double noise, Rng& rng) {
  Dataset data;
  data.x = linalg::Matrix(n, coef.size());
  data.y = linalg::Vector(n);
  for (std::size_t r = 0; r < n; ++r) {
    double y = intercept;
    for (std::size_t c = 0; c < coef.size(); ++c) {
      data.x(r, c) = rng.normal();
      y += coef[c] * data.x(r, c);
    }
    data.y[r] = y + rng.normal(0.0, noise);
  }
  return data;
}

TEST(LinearRegression, RecoversCoefficientsNoIntercept) {
  Rng rng(1);
  const Dataset data = planted(200, {2.0, -1.5, 0.5}, 0.0, 0.0, rng);
  LinearRegression reg;
  reg.fit(data);
  ASSERT_TRUE(reg.fitted());
  EXPECT_NEAR(reg.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(reg.coefficients()[1], -1.5, 1e-9);
  EXPECT_NEAR(reg.coefficients()[2], 0.5, 1e-9);
  EXPECT_NEAR(reg.train_r_squared(), 1.0, 1e-12);
}

TEST(LinearRegression, RecoversInterceptWhenRequested) {
  Rng rng(2);
  const Dataset data = planted(300, {1.0, 2.0}, 5.0, 0.01, rng);
  LinearRegression reg({.fit_intercept = true});
  reg.fit(data);
  EXPECT_NEAR(reg.intercept(), 5.0, 0.01);
  EXPECT_NEAR(reg.coefficients()[0], 1.0, 0.01);
}

TEST(LinearRegression, WithoutInterceptMissesOffset) {
  Rng rng(3);
  const Dataset data = planted(300, {1.0}, 5.0, 0.0, rng);
  LinearRegression reg;  // no intercept
  reg.fit(data);
  // The offset cannot be represented; r^2 must suffer.
  EXPECT_LT(reg.train_r_squared(), 0.9);
}

TEST(LinearRegression, PredictSingleAndBatchAgree) {
  Rng rng(4);
  const Dataset data = planted(100, {0.7, -0.3}, 0.0, 0.05, rng);
  LinearRegression reg;
  reg.fit(data);
  const linalg::Vector batch = reg.predict(data.x);
  for (std::size_t r = 0; r < 5; ++r) {
    const std::vector<double> row{data.x(r, 0), data.x(r, 1)};
    EXPECT_DOUBLE_EQ(reg.predict(row), batch[r]);
  }
}

TEST(LinearRegression, RidgeShrinks) {
  Rng rng(5);
  const Dataset data = planted(50, {3.0, -2.0}, 0.0, 0.1, rng);
  LinearRegression plain;
  plain.fit(data);
  LinearRegression ridged({.ridge = 50.0});
  ridged.fit(data);
  EXPECT_LT(linalg::norm2(ridged.coefficients()), linalg::norm2(plain.coefficients()));
}

TEST(LinearRegression, ErrorsOnMisuse) {
  LinearRegression reg;
  EXPECT_THROW(reg.fit(Dataset{}), std::invalid_argument);
  const std::vector<double> row{1.0};
  EXPECT_THROW(reg.predict(row), std::invalid_argument);
  Rng rng(6);
  const Dataset data = planted(10, {1.0, 2.0}, 0.0, 0.0, rng);
  reg.fit(data);
  const std::vector<double> bad{1.0, 2.0, 3.0};
  EXPECT_THROW(reg.predict(bad), std::invalid_argument);
}

TEST(LinearRegression, SaturatedTargetsKeepDirection) {
  // Mimics enrollment: targets are Phi(w.x / sigma) clipped to mostly 0/1;
  // OLS must still recover the *direction* of w.
  Rng rng(7);
  const std::vector<double> w{1.0, -2.0, 0.5, 3.0};
  Dataset data;
  data.x = linalg::Matrix(2000, 4);
  data.y = linalg::Vector(2000);
  for (std::size_t r = 0; r < 2000; ++r) {
    double z = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      data.x(r, c) = rng.bernoulli() ? 1.0 : -1.0;
      z += w[c] * data.x(r, c);
    }
    data.y[r] = z > 1.0 ? 1.0 : (z < -1.0 ? 0.0 : 0.5 + 0.4 * z);
  }
  LinearRegression reg;
  reg.fit(data);
  // Direction: signs and ordering of magnitudes preserved.
  EXPECT_GT(reg.coefficients()[0], 0.0);
  EXPECT_LT(reg.coefficients()[1], 0.0);
  EXPECT_GT(reg.coefficients()[3], reg.coefficients()[0]);
}

}  // namespace
}  // namespace xpuf::ml
