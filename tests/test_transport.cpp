// Tests for the transport layer (net/transport.hpp): pipe FIFO semantics,
// fault-band accounting, the frame conservation invariants the service
// reconciles, and stream-keyed determinism of fault schedules — the PR 1
// RNG-splitting pattern applied to a hostile network.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/metrics.hpp"
#include "net/transport.hpp"

namespace xpuf::net {
namespace {

Frame make_frame(std::uint32_t seq) {
  Frame frame;
  frame.header.type = FrameType::kAuthBegin;
  frame.header.device_id = 11;
  frame.header.session_id = 1;
  frame.header.seq = seq;
  frame.payload = {static_cast<std::uint8_t>(seq & 0xff), 0x55};
  return frame;
}

TEST(PipeTransport, DeliversInFifoOrderExactlyOnce) {
  PipeTransport pipe;
  EXPECT_TRUE(pipe.idle());
  ChannelStats tx_stats, rx_stats;
  for (std::uint32_t i = 0; i < 5; ++i)
    send_frame(pipe, make_frame(i), tx_stats);
  EXPECT_FALSE(pipe.idle());
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto frame = recv_frame(pipe, rx_stats);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->header.seq, i);
  }
  EXPECT_FALSE(recv_frame(pipe, rx_stats).has_value());
  EXPECT_TRUE(pipe.idle());
  EXPECT_EQ(tx_stats.sent, 5u);
  EXPECT_EQ(rx_stats.delivered, 5u);
  EXPECT_EQ(rx_stats.corrupt, 0u);
}

TEST(FaultyTransport, NoneProfileIsTransparent) {
  PipeTransport pipe;
  const StreamFamily family(Rng(99).fork_base());
  FaultyTransport faulty(pipe, FaultProfile::none(), family, 0);
  ChannelStats tx_stats, rx_stats;
  for (std::uint32_t i = 0; i < 20; ++i)
    send_frame(faulty, make_frame(i), tx_stats);
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto frame = recv_frame(faulty, rx_stats);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->header.seq, i);
  }
  EXPECT_TRUE(faulty.idle());
  EXPECT_EQ(faulty.tally().sent, 20u);
  EXPECT_EQ(faulty.tally().faults(), 0u);
  EXPECT_EQ(rx_stats.corrupt, 0u);
}

TEST(FaultyTransport, RejectsImpossibleProfiles) {
  PipeTransport pipe;
  const StreamFamily family(Rng(99).fork_base());
  FaultProfile over;
  over.drop = 0.5;
  over.duplicate = 0.6;
  EXPECT_THROW(FaultyTransport(pipe, over, family, 0), std::invalid_argument);
  FaultProfile bad_delay;
  bad_delay.reorder_delay_max = 0;
  EXPECT_THROW(FaultyTransport(pipe, bad_delay, family, 0),
               std::invalid_argument);
}

// Pump frames through a faulty link, draining and ticking until idle.
// Returns the receive-side stats.
ChannelStats pump(FaultyTransport& faulty, std::uint32_t frames,
                  std::vector<std::uint32_t>* delivered_seqs = nullptr) {
  ChannelStats tx_stats, rx_stats;
  for (std::uint32_t i = 0; i < frames; ++i)
    send_frame(faulty, make_frame(i), tx_stats);
  // Reordered frames are held for bounded rounds; tick until quiescent.
  for (std::uint32_t guard = 0; guard < 64 && !faulty.idle(); ++guard) {
    while (auto frame = recv_frame(faulty, rx_stats))
      if (delivered_seqs) delivered_seqs->push_back(frame->header.seq);
    faulty.tick();
  }
  while (auto frame = recv_frame(faulty, rx_stats))
    if (delivered_seqs) delivered_seqs->push_back(frame->header.seq);
  EXPECT_TRUE(faulty.idle());
  return rx_stats;
}

TEST(FaultyTransport, TalliesPartitionSentAndConserveFrames) {
  PipeTransport pipe;
  const StreamFamily family(Rng(4242).fork_base());
  FaultyTransport faulty(pipe, FaultProfile::uniform(0.05), family, 3);
  constexpr std::uint32_t kFrames = 2'000;
  const ChannelStats rx = pump(faulty, kFrames);
  const FaultTally& tally = faulty.tally();
  EXPECT_EQ(tally.sent, kFrames);
  EXPECT_GT(tally.faults(), 0u) << "5% per band over 2000 frames";
  // At most one fault per frame: the event classes partition the schedule.
  EXPECT_LE(tally.faults(), tally.sent);
  // Conservation: every frame is delivered or dropped; duplicates add one.
  EXPECT_EQ(rx.delivered + tally.dropped, tally.sent + tally.duplicated);
  // Truncation and bit-flips are the only corruption sources, and the frame
  // codec detects every one of them.
  EXPECT_EQ(rx.corrupt, tally.truncated + tally.bitflipped);
}

TEST(FaultyTransport, ReorderHoldsFramesAcrossTicksThenReleases) {
  PipeTransport pipe;
  const StreamFamily family(Rng(7).fork_base());
  FaultProfile profile;
  profile.reorder = 1.0;  // every frame is held
  profile.reorder_delay_max = 2;
  FaultyTransport faulty(pipe, profile, family, 0);
  ChannelStats tx_stats, rx_stats;
  send_frame(faulty, make_frame(0), tx_stats);
  EXPECT_FALSE(recv_frame(faulty, rx_stats).has_value())
      << "held frame must not be deliverable before its delay elapses";
  EXPECT_FALSE(faulty.idle()) << "held frames keep the link non-idle";
  faulty.tick();
  faulty.tick();
  const auto frame = recv_frame(faulty, rx_stats);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.seq, 0u);
  EXPECT_TRUE(faulty.idle());
  EXPECT_EQ(faulty.tally().reordered, 1u);
}

TEST(FaultyTransport, ScheduleIsAPureFunctionOfTheConnectionKey) {
  const StreamFamily family(Rng(1234).fork_base());
  auto run = [&](std::uint64_t key) {
    PipeTransport pipe;
    FaultyTransport faulty(pipe, FaultProfile::uniform(0.08), family, key);
    std::vector<std::uint32_t> seqs;
    pump(faulty, 500, &seqs);
    return std::make_pair(faulty.tally(), seqs);
  };
  const auto [tally_a1, seqs_a1] = run(5);
  const auto [tally_a2, seqs_a2] = run(5);
  const auto [tally_b, seqs_b] = run(6);
  // Same key: bit-identical fault schedule and delivery order.
  EXPECT_EQ(tally_a1.dropped, tally_a2.dropped);
  EXPECT_EQ(tally_a1.duplicated, tally_a2.duplicated);
  EXPECT_EQ(tally_a1.reordered, tally_a2.reordered);
  EXPECT_EQ(tally_a1.truncated, tally_a2.truncated);
  EXPECT_EQ(tally_a1.bitflipped, tally_a2.bitflipped);
  EXPECT_EQ(seqs_a1, seqs_a2);
  // Distinct keys: decorrelated streams (delivery orders differ).
  EXPECT_NE(seqs_a1, seqs_b);
}

TEST(FaultyTransport, ZeroProfileStreamPositionMatchesNonZero) {
  // The fault draw happens even at zero probabilities, so enabling faults
  // never shifts the stream another consumer would see. Observable here as:
  // a none() run and a uniform(0) run behave identically (trivially), and
  // the schedule under uniform(p) depends only on (family, key, order).
  const StreamFamily family(Rng(31).fork_base());
  PipeTransport pipe_a, pipe_b;
  FaultyTransport a(pipe_a, FaultProfile::none(), family, 9);
  FaultyTransport b(pipe_b, FaultProfile::uniform(0.0), family, 9);
  ChannelStats stats_a, stats_b;
  for (std::uint32_t i = 0; i < 50; ++i) {
    send_frame(a, make_frame(i), stats_a);
    send_frame(b, make_frame(i), stats_b);
  }
  EXPECT_EQ(a.tally().faults(), 0u);
  EXPECT_EQ(b.tally().faults(), 0u);
}

TEST(FaultyTransport, GlobalCountersTrackFaultEvents) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  PipeTransport pipe;
  const StreamFamily family(Rng(555).fork_base());
  FaultyTransport faulty(pipe, FaultProfile::uniform(0.06), family, 1);
  const ChannelStats rx = pump(faulty, 1'000);
  const FaultTally& tally = faulty.tally();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("net.frames_sent"), 1'000u);
  EXPECT_EQ(snap.counters.at("net.frames_dropped"), tally.dropped);
  EXPECT_EQ(snap.counters.at("net.frames_duplicated"), tally.duplicated);
  EXPECT_EQ(snap.counters.at("net.frames_reordered"), tally.reordered);
  EXPECT_EQ(snap.counters.at("net.frames_truncated"), tally.truncated);
  EXPECT_EQ(snap.counters.at("net.frames_bitflipped"), tally.bitflipped);
  EXPECT_EQ(snap.counters.at("net.frames_delivered"), rx.delivered);
  EXPECT_EQ(snap.counters.at("net.frames_corrupt"), rx.corrupt);
}

}  // namespace
}  // namespace xpuf::net
