// Tests for feature standardization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/scaler.hpp"

namespace xpuf::ml {
namespace {

TEST(StandardScaler, TransformedColumnsHaveZeroMeanUnitVar) {
  Rng rng(1);
  linalg::Matrix x(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    x(r, 0) = rng.normal(5.0, 2.0);
    x(r, 1) = rng.normal(-1.0, 0.5);
    x(r, 2) = rng.uniform(0.0, 10.0);
  }
  StandardScaler scaler;
  const linalg::Matrix t = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    double m = 0.0, v = 0.0;
    for (std::size_t r = 0; r < 200; ++r) m += t(r, c);
    m /= 200.0;
    for (std::size_t r = 0; r < 200; ++r) v += (t(r, c) - m) * (t(r, c) - m);
    v /= 200.0;
    EXPECT_NEAR(m, 0.0, 1e-10);
    EXPECT_NEAR(v, 1.0, 1e-10);
  }
}

TEST(StandardScaler, InverseTransformRoundTrips) {
  Rng rng(2);
  linalg::Matrix x(50, 2);
  for (std::size_t r = 0; r < 50; ++r)
    for (std::size_t c = 0; c < 2; ++c) x(r, c) = rng.normal(3.0, 4.0);
  StandardScaler scaler;
  const linalg::Matrix t = scaler.fit_transform(x);
  const linalg::Matrix back = scaler.inverse_transform(t);
  EXPECT_LT(linalg::max_abs_diff(back, x), 1e-10);
}

TEST(StandardScaler, ConstantColumnGetsUnitScale) {
  linalg::Matrix x(10, 1, 7.0);
  StandardScaler scaler;
  const linalg::Matrix t = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_DOUBLE_EQ(t(r, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.scale()[0], 1.0);
}

TEST(StandardScaler, TransformAppliesTrainStatisticsToNewData) {
  linalg::Matrix train(2, 1);
  train(0, 0) = 0.0;
  train(1, 0) = 2.0;  // mean 1, population sd 1
  StandardScaler scaler;
  scaler.fit(train);
  linalg::Matrix test(1, 1);
  test(0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(scaler.transform(test)(0, 0), 2.0);
}

TEST(StandardScaler, ErrorsOnMisuse) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  EXPECT_THROW(scaler.transform(linalg::Matrix(1, 1)), std::invalid_argument);
  EXPECT_THROW(scaler.inverse_transform(linalg::Matrix(1, 1)), std::invalid_argument);
  EXPECT_THROW(scaler.fit(linalg::Matrix(0, 2)), std::invalid_argument);
  scaler.fit(linalg::Matrix(3, 2, 1.0));
  EXPECT_TRUE(scaler.fitted());
  EXPECT_THROW(scaler.transform(linalg::Matrix(3, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::ml
