// Tests for temporal majority voting and its comparison against the
// paper's challenge-selection approach.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "puf/enrollment.hpp"
#include "puf/selection.hpp"
#include "puf/stabilization.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

sim::ChipPopulation make_pop(std::size_t n_pufs, std::uint64_t seed = 4242) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.seed = seed;
  return sim::ChipPopulation(cfg);
}

TEST(MajorityVoteError, DegenerateAndSymmetry) {
  EXPECT_DOUBLE_EQ(majority_vote_error(0.0, 11), 0.0);
  EXPECT_DOUBLE_EQ(majority_vote_error(1.0, 11), 0.0);
  EXPECT_NEAR(majority_vote_error(0.2, 9), majority_vote_error(0.8, 9), 1e-12);
  // A fair coin stays fair: error = 1/2 regardless of votes.
  EXPECT_NEAR(majority_vote_error(0.5, 101), 0.5, 1e-9);
}

TEST(MajorityVoteError, MatchesHandComputedThreeVotes) {
  // k = 3, q = 0.1: error = P[Bin(3, .1) >= 2] = 3*.01*.9 + .001 = 0.028.
  EXPECT_NEAR(majority_vote_error(0.1, 3), 0.028, 1e-12);
}

TEST(MajorityVoteError, DecreasesWithVotesForBiasedBits) {
  double prev = 1.0;
  for (std::uint64_t k : {1ull, 3ull, 7ull, 15ull, 31ull}) {
    const double e = majority_vote_error(0.2, k);
    EXPECT_LT(e, prev);
    prev = e;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(MajorityVoteError, Validates) {
  EXPECT_THROW(majority_vote_error(1.5, 3), std::invalid_argument);
  EXPECT_THROW(majority_vote_error(0.5, 4), std::invalid_argument);  // even
  EXPECT_THROW(majority_vote_error(0.5, 0), std::invalid_argument);
}

TEST(MajorityVote, ResponseValidatesConfig) {
  const auto pop = make_pop(2);
  Rng rng(1);
  const auto c = sim::random_challenge(32, rng);
  MajorityVoteConfig bad;
  bad.votes = 4;
  EXPECT_THROW(
      majority_vote_response(pop.chip(0), c, sim::Environment::nominal(), bad, rng),
      std::invalid_argument);
}

TEST(MajorityVote, ReducesButDoesNotEliminateXorErrors) {
  const auto pop = make_pop(4);
  Rng rng(2);
  const StabilizationComparison cmp = compare_majority_vote(
      pop.chip(0), 2'500, sim::Environment::nominal(), {.votes = 11}, rng);
  // Voting helps substantially...
  EXPECT_LT(cmp.voted_error, cmp.one_shot_error * 0.7);
  // ...but the near-0.5 CRPs keep a floor: voting cannot reach zero.
  EXPECT_GT(cmp.voted_error, 0.0);
}

TEST(MajorityVote, SelectionBeatsVotingOnErrorRate) {
  // The paper's approach reaches an exactly-zero error rate on its selected
  // set; TMV at a practical k does not, on random challenges.
  const auto pop = make_pop(4, 777);
  Rng rng(3);
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'500;
  ecfg.trials = 4'000;
  ServerModel model = Enroller(ecfg).enroll(pop.chip(0), rng);
  model.set_betas(BetaFactors{0.8, 1.2});
  ModelBasedSelector selector(model, 4);
  const SelectionResult sel = selector.select(300, rng);

  std::size_t selection_errors = 0;
  for (std::size_t i = 0; i < sel.challenges.size(); ++i) {
    // One-shot read of selected CRPs vs server expectation.
    if (pop.chip(0).xor_response(sel.challenges[i], sim::Environment::nominal(), rng) !=
        sel.expected_responses[i])
      ++selection_errors;
  }
  const StabilizationComparison tmv = compare_majority_vote(
      pop.chip(0), 2'000, sim::Environment::nominal(), {.votes = 11}, rng);
  EXPECT_EQ(selection_errors, 0u);
  EXPECT_GT(tmv.voted_error, 0.0);
}

TEST(MajorityVote, EmpiricalErrorTracksTheory) {
  // For a single arbiter PUF and a fixed challenge with known p, the
  // majority-vote error must match the closed form.
  const auto pop = make_pop(1, 31);
  Rng rng(4);
  const auto env = sim::Environment::nominal();
  // Find a moderately unstable challenge.
  sim::Challenge c;
  double p = 0.0;
  for (int i = 0; i < 5'000; ++i) {
    c = sim::random_challenge(32, rng);
    p = pop.chip(0).device_for_analysis(0).one_probability(c, env);
    if (p > 0.6 && p < 0.8) break;
  }
  ASSERT_GT(p, 0.6);
  const std::uint64_t k = 7;
  const double predicted = majority_vote_error(p, k);
  int errors = 0;
  const int trials = 4'000;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t ones = 0;
    for (std::uint64_t v = 0; v < k; ++v)
      if (pop.chip(0).device_for_analysis(0).evaluate(c, env, rng)) ++ones;
    const bool voted = 2 * ones > k;
    if (voted != (p >= 0.5)) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / trials, predicted, 0.02);
}

}  // namespace
}  // namespace xpuf::puf
