// Tests for the analytic arbiter/XOR PUF models.
#include <gtest/gtest.h>

#include "puf/model.hpp"

namespace xpuf::puf {
namespace {

TEST(ArbiterPufModel, EmptyModelRejectsPrediction) {
  const ArbiterPufModel model;
  EXPECT_TRUE(model.empty());
  EXPECT_THROW(model.predict_raw(Challenge{0, 1}), std::invalid_argument);
}

TEST(ArbiterPufModel, PredictRawMatchesExplicitDotProduct) {
  Rng rng(1);
  linalg::Vector w(17);
  for (auto& v : w) v = rng.normal();
  const ArbiterPufModel model(w);
  EXPECT_EQ(model.stages(), 16u);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_challenge(16, rng);
    const linalg::Vector phi = feature_vector(c);
    EXPECT_NEAR(model.predict_raw(c), linalg::dot(w, phi), 1e-12);
    EXPECT_NEAR(model.predict_raw(phi.span()), linalg::dot(w, phi), 1e-12);
  }
}

TEST(ArbiterPufModel, ChallengeLengthValidated) {
  const ArbiterPufModel model(linalg::Vector(9));
  EXPECT_THROW(model.predict_raw(Challenge(9, 0)), std::invalid_argument);
  const linalg::Vector phi(7);
  EXPECT_THROW(model.predict_raw(phi.span()), std::invalid_argument);
}

TEST(ArbiterPufModel, HardDecisionCentersAtHalf) {
  // Soft-response-space model: predictions above 0.5 mean response '1'.
  linalg::Vector w(3);
  w[2] = 0.6;  // constant term only: every prediction is 0.6
  const ArbiterPufModel model(w);
  EXPECT_TRUE(model.predict_response(Challenge{0, 0}));
  w[2] = 0.4;
  const ArbiterPufModel model2(w);
  EXPECT_FALSE(model2.predict_response(Challenge{0, 0}));
}

TEST(ArbiterPufModel, AgreementIsOneWithItself) {
  Rng rng(2);
  linalg::Vector w(11);
  for (auto& v : w) v = rng.normal();
  const ArbiterPufModel model(w);
  const auto sample = random_challenges(10, 40, rng);
  EXPECT_DOUBLE_EQ(ArbiterPufModel::agreement(model, model, sample), 1.0);
}

TEST(ArbiterPufModel, AgreementDetectsComplementaryModels) {
  Rng rng(3);
  linalg::Vector w(11);
  for (auto& v : w) v = rng.normal();
  // Mirror around 0.5: w' = -w except constant maps c -> 1 - c.
  linalg::Vector w2 = w;
  for (auto& v : w2) v = -v;
  w2[10] = 1.0 - w[10];
  const ArbiterPufModel a(w), b(w2);
  const auto sample = random_challenges(10, 60, rng);
  EXPECT_LT(ArbiterPufModel::agreement(a, b, sample), 0.1);
}

TEST(ArbiterPufModel, AgreementNeedsSample) {
  const ArbiterPufModel m(linalg::Vector(5));
  EXPECT_THROW(ArbiterPufModel::agreement(m, m, {}), std::invalid_argument);
}

TEST(XorPufModel, EmptyModelRejectsPrediction) {
  const XorPufModel model;
  EXPECT_EQ(model.puf_count(), 0u);
  EXPECT_THROW(model.predict_response(Challenge{0}), std::invalid_argument);
}

TEST(XorPufModel, XorOfPredictionsIsRespected) {
  Rng rng(4);
  std::vector<ArbiterPufModel> pufs;
  for (int p = 0; p < 3; ++p) {
    linalg::Vector w(9);
    for (auto& v : w) v = rng.normal();
    w[8] += 0.5;  // recenter to soft-response space
    pufs.emplace_back(w);
  }
  const XorPufModel model(pufs);
  EXPECT_EQ(model.puf_count(), 3u);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_challenge(8, rng);
    bool expected = false;
    for (const auto& p : pufs) expected ^= p.predict_response(c);
    EXPECT_EQ(model.predict_response(c), expected);
  }
}

TEST(XorPufModel, PufAccessorValidates) {
  std::vector<ArbiterPufModel> pufs{ArbiterPufModel(linalg::Vector(5))};
  const XorPufModel model(pufs);
  EXPECT_NO_THROW(model.puf(0));
  EXPECT_THROW(model.puf(1), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
