// Tests for the code-offset fuzzy extractor and its interaction with the
// paper's stable-challenge selection.
#include <gtest/gtest.h>

#include "puf/key_generation.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class KeyGenerationTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 4;

  KeyGenerationTest() : pop_(make_config()), rng_(17) {}

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 1717;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
};

TEST_F(KeyGenerationTest, GeometryAndValidation) {
  const FuzzyExtractor fx(KeyGenConfig{.bch_m = 7, .bch_t = 10});
  EXPECT_EQ(fx.response_bits(), 127u);
  EXPECT_EQ(fx.code().k(), 64u);
  const auto few = random_challenges(32, 10, rng_);
  EXPECT_THROW(fx.generate(pop_.chip(0), few, sim::Environment::nominal(), rng_),
               std::invalid_argument);
}

TEST_F(KeyGenerationTest, NoiseFreeRoundTripReproducesTheKey) {
  const FuzzyExtractor fx(KeyGenConfig{});
  const auto challenges = random_challenges(32, fx.response_bits(), rng_);
  const KeyGenResult gen =
      fx.generate(pop_.chip(0), challenges, sim::Environment::nominal(), rng_);
  // Majority-of-15 reads approximate the enrolled (mostly stable) response
  // closely; with t = 10 the residual disagreement is well within capacity.
  crypto::Bits response(fx.response_bits());
  Rng local(99);
  for (std::size_t i = 0; i < response.size(); ++i) {
    int ones = 0;
    for (int k = 0; k < 15; ++k)
      ones += pop_.chip(0).xor_response(gen.helper.challenges[i],
                                        sim::Environment::nominal(), local);
    response[i] = ones > 7 ? 1 : 0;
  }
  const KeyRepResult rep = fx.reproduce_from_bits(response, gen.helper);
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.key, gen.key);
}

TEST_F(KeyGenerationTest, StableChallengesReproduceAcrossCorners) {
  // The paper's scheme as a key-generation enabler: select 100%-stable
  // challenges, then the response is error-free at every corner and even a
  // weak code suffices.
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'500;
  ecfg.trials = 4'000;
  ServerModel model = Enroller(ecfg).enroll(pop_.chip(0), rng_);
  const auto eval = random_challenges(32, 1'500, rng_);
  std::vector<EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(measure_evaluation_block(pop_.chip(0), eval, env, 4'000, rng_));
  model.set_betas(find_betas(model, blocks).betas);

  const FuzzyExtractor fx(KeyGenConfig{.bch_m = 7, .bch_t = 2});  // weak code
  ModelBasedSelector selector(model, kNPufs);
  const SelectionResult sel = selector.select(fx.response_bits(), rng_);
  ASSERT_TRUE(sel.filled);

  const KeyGenResult gen =
      fx.generate(pop_.chip(0), sel.challenges, sim::Environment::nominal(), rng_);
  for (const auto& env : sim::paper_corner_grid()) {
    const KeyRepResult rep = fx.reproduce(pop_.chip(0), gen.helper, env, rng_);
    ASSERT_TRUE(rep.ok) << env.label();
    EXPECT_EQ(rep.key, gen.key) << env.label();
    EXPECT_LE(rep.errors_corrected, 2u) << env.label();
  }
}

TEST_F(KeyGenerationTest, RandomChallengesOverwhelmAWeakCode) {
  const FuzzyExtractor fx(KeyGenConfig{.bch_m = 7, .bch_t = 2});
  const auto challenges = random_challenges(32, fx.response_bits(), rng_);
  const KeyGenResult gen =
      fx.generate(pop_.chip(0), challenges, sim::Environment::nominal(), rng_);
  // With a ~10% response error rate of the 4-XOR, a t=2/127 code fails most
  // of the time.
  int failures = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const KeyRepResult rep =
        fx.reproduce(pop_.chip(0), gen.helper, sim::Environment::nominal(), rng_);
    if (!rep.ok || rep.key != gen.key) ++failures;
  }
  EXPECT_GT(failures, trials / 2);
}

TEST_F(KeyGenerationTest, DifferentChipCannotReproduceTheKey) {
  const FuzzyExtractor fx(KeyGenConfig{});
  const auto challenges = random_challenges(32, fx.response_bits(), rng_);
  const KeyGenResult gen =
      fx.generate(pop_.chip(0), challenges, sim::Environment::nominal(), rng_);
  int stolen = 0;
  for (int i = 0; i < 5; ++i) {
    const KeyRepResult rep =
        fx.reproduce(pop_.chip(1), gen.helper, sim::Environment::nominal(), rng_);
    if (rep.ok && rep.key == gen.key) ++stolen;
  }
  EXPECT_EQ(stolen, 0);
}

TEST_F(KeyGenerationTest, FreshRandomnessGivesFreshKeys) {
  const FuzzyExtractor fx(KeyGenConfig{});
  const auto challenges = random_challenges(32, fx.response_bits(), rng_);
  const KeyGenResult a =
      fx.generate(pop_.chip(0), challenges, sim::Environment::nominal(), rng_);
  const KeyGenResult b =
      fx.generate(pop_.chip(0), challenges, sim::Environment::nominal(), rng_);
  EXPECT_NE(crypto::to_hex(a.key), crypto::to_hex(b.key));  // fresh message
}

TEST_F(KeyGenerationTest, ReproduceValidatesHelperShape) {
  const FuzzyExtractor fx(KeyGenConfig{});
  HelperData bad;
  bad.offset = crypto::Bits(10, 0);
  EXPECT_THROW(fx.reproduce_from_bits(crypto::Bits(fx.response_bits(), 0), bad),
               std::invalid_argument);
  EXPECT_THROW(fx.reproduce_from_bits(crypto::Bits(5, 0), bad), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
