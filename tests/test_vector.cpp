// Tests for the dense vector type and BLAS-1 kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector.hpp"

namespace xpuf::linalg {
namespace {

TEST(Vector, ConstructionVariants) {
  const Vector a(3, 2.0);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 2.0);

  const Vector b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(b[1], 2.0);

  const Vector c(std::vector<double>{5.0, 6.0});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(Vector{}.empty());
}

TEST(Vector, AtIsBoundsChecked) {
  Vector v{1.0};
  EXPECT_DOUBLE_EQ(v.at(0), 1.0);
  EXPECT_THROW(v.at(1), std::out_of_range);
}

TEST(Vector, ArithmeticOperators) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 5.0};
  EXPECT_EQ(a + b, (Vector{4.0, 7.0}));
  EXPECT_EQ(b - a, (Vector{2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vector{1.5, 2.5}));
}

TEST(Vector, MismatchedSizesThrow) {
  Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Vector, DivisionByZeroThrows) {
  Vector a{1.0};
  EXPECT_THROW(a /= 0.0, std::invalid_argument);
}

TEST(Vector, FillAndResize) {
  Vector v(2);
  v.fill(7.0);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  v.resize(4, -1.0);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[3], -1.0);
}

TEST(Dot, ComputesInnerProduct) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, 5.0, 6.0}), 32.0);
  EXPECT_THROW(dot(Vector{1.0}, Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Norms, EuclideanAndInfinity) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{}), 0.0);
}

TEST(Axpy, AccumulatesScaledVector) {
  const Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_EQ(y, (Vector{10.5, 21.0}));
  Vector bad{1.0};
  EXPECT_THROW(axpy(1.0, x, bad), std::invalid_argument);
}

TEST(Hadamard, ElementwiseProduct) {
  EXPECT_EQ(hadamard(Vector{1.0, 2.0}, Vector{3.0, 4.0}), (Vector{3.0, 8.0}));
  EXPECT_THROW(hadamard(Vector{1.0}, Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(AllFinite, DetectsNonFiniteEntries) {
  EXPECT_TRUE(all_finite(Vector{1.0, -2.0}));
  EXPECT_FALSE(all_finite(Vector{1.0, std::nan("")}));
  EXPECT_FALSE(all_finite(Vector{1.0, std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(all_finite(Vector{}));
}

TEST(Vector, SpanViewsShareStorage) {
  Vector v{1.0, 2.0, 3.0};
  auto s = v.span();
  s[1] = 9.0;
  EXPECT_DOUBLE_EQ(v[1], 9.0);
  const Vector& cv = v;
  EXPECT_DOUBLE_EQ(cv.span()[1], 9.0);
}

TEST(Vector, RangeForIterates) {
  const Vector v{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

}  // namespace
}  // namespace xpuf::linalg
