// Tests for the standard PUF quality metrics.
#include <gtest/gtest.h>

#include "analysis/puf_metrics.hpp"
#include "common/math.hpp"

namespace xpuf::analysis {
namespace {

sim::ChipPopulation make_population(std::size_t chips, std::uint64_t seed = 3030) {
  sim::PopulationConfig cfg;
  cfg.n_chips = chips;
  cfg.n_pufs_per_chip = 4;
  cfg.seed = seed;
  return sim::ChipPopulation(cfg);
}

TEST(PufMetrics, UniformityNearHalf) {
  const auto pop = make_population(1);
  Rng rng(1);
  const double u = uniformity(pop.chip(0), 4, 4'000, sim::Environment::nominal(), rng);
  // XOR of 4 PUFs washes out per-device bias almost completely.
  EXPECT_NEAR(u, 0.5, 0.05);
}

TEST(PufMetrics, UniformityValidates) {
  const auto pop = make_population(1);
  Rng rng(2);
  EXPECT_THROW(uniformity(pop.chip(0), 0, 10, sim::Environment::nominal(), rng),
               std::invalid_argument);
  EXPECT_THROW(uniformity(pop.chip(0), 4, 0, sim::Environment::nominal(), rng),
               std::invalid_argument);
}

TEST(PufMetrics, UniquenessNearHalf) {
  const auto pop = make_population(4);
  Rng rng(3);
  const double u = uniqueness(pop, 4, 1'500, sim::Environment::nominal(), rng);
  EXPECT_NEAR(u, 0.5, 0.05);
}

TEST(PufMetrics, UniquenessNeedsTwoChips) {
  const auto pop = make_population(1);
  Rng rng(4);
  EXPECT_THROW(uniqueness(pop, 4, 10, sim::Environment::nominal(), rng),
               std::invalid_argument);
}

TEST(PufMetrics, ReliabilityErrorSmallAtNominal) {
  const auto pop = make_population(1);
  Rng rng(5);
  const double e =
      reliability_error(pop.chip(0), 4, 400, 5, sim::Environment::nominal(), rng);
  // XOR of 4: per-bit error a bit above single-PUF (~2-10%).
  EXPECT_LT(e, 0.15);
}

TEST(PufMetrics, ReliabilityDegradesAtCorners) {
  const auto pop = make_population(1);
  Rng rng(6);
  const double nominal =
      reliability_error(pop.chip(0), 4, 800, 5, sim::Environment::nominal(), rng);
  const double corner =
      reliability_error(pop.chip(0), 4, 800, 5, {0.8, 60.0}, rng);
  EXPECT_GT(corner, nominal);
}

TEST(PufMetrics, ReliabilityGrowsWithXorWidth) {
  const auto pop = make_population(1);
  Rng rng(7);
  const double narrow =
      reliability_error(pop.chip(0), 1, 800, 5, sim::Environment::nominal(), rng);
  const double wide =
      reliability_error(pop.chip(0), 4, 800, 5, sim::Environment::nominal(), rng);
  EXPECT_GT(wide, narrow);  // the paper's security-vs-stability tension
}

TEST(PufMetrics, BitAliasingCentersAtHalf) {
  const auto pop = make_population(6);
  Rng rng(8);
  const auto aliasing = bit_aliasing(pop, 4, 400, sim::Environment::nominal(), rng);
  ASSERT_EQ(aliasing.size(), 400u);
  EXPECT_NEAR(mean(aliasing), 0.5, 0.06);
  for (double a : aliasing) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

}  // namespace
}  // namespace xpuf::analysis
