// Tests for the modeling attacks (dataset construction, MLP and LR-XOR).
// Kept at small scale; the full Fig 4 sweep lives in the bench.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "puf/attack.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() : pop_(make_config()), rng_(1234) {}

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 4;
    cfg.seed = 31415;
    return cfg;
  }

  AttackDataset build(std::size_t n_pufs, std::size_t challenges) {
    AttackDatasetConfig cfg;
    cfg.n_pufs = n_pufs;
    cfg.challenges = challenges;
    cfg.trials = 2'000;
    return build_stable_attack_dataset(pop_.chip(0), cfg, rng_);
  }

  sim::ChipPopulation pop_;
  Rng rng_;
};

TEST_F(AttackTest, DatasetKeepsOnlyStableCrps) {
  const AttackDataset data = build(2, 3'000);
  EXPECT_EQ(data.n_pufs, 2u);
  EXPECT_EQ(data.challenges_measured, 3'000u);
  // Stable yield near 0.8^2 = 0.64 at this trial count.
  EXPECT_NEAR(data.stable_fraction, 0.66, 0.08);
  // 90/10 split.
  const double total =
      static_cast<double>(data.train.size() + data.test.size());
  EXPECT_NEAR(static_cast<double>(data.train.size()) / total, 0.9, 0.01);
  // Targets are bits.
  for (std::size_t i = 0; i < data.train.size(); ++i)
    EXPECT_TRUE(data.train.y[i] == 0.0 || data.train.y[i] == 1.0);
  // Features are parity vectors (+/-1 with trailing 1).
  for (std::size_t r = 0; r < std::min<std::size_t>(20, data.train.size()); ++r) {
    EXPECT_DOUBLE_EQ(data.train.x(r, 32), 1.0);
    for (std::size_t c = 0; c < 33; ++c)
      EXPECT_TRUE(data.train.x(r, c) == 1.0 || data.train.x(r, c) == -1.0);
  }
}

TEST_F(AttackTest, StableFractionDecaysWithN) {
  const AttackDataset d1 = build(1, 2'000);
  const AttackDataset d4 = build(4, 2'000);
  EXPECT_GT(d1.stable_fraction, d4.stable_fraction);
  // Roughly exponential: p4 ~ p1^4 within loose tolerance.
  EXPECT_NEAR(d4.stable_fraction, std::pow(d1.stable_fraction, 4.0), 0.12);
}

TEST_F(AttackTest, DatasetValidatesConfig) {
  AttackDatasetConfig cfg;
  cfg.n_pufs = 9;  // chip has 4
  EXPECT_THROW(build_stable_attack_dataset(pop_.chip(0), cfg, rng_),
               std::invalid_argument);
  cfg = AttackDatasetConfig{};
  cfg.train_fraction = 1.0;
  EXPECT_THROW(build_stable_attack_dataset(pop_.chip(0), cfg, rng_),
               std::invalid_argument);
}

TEST_F(AttackTest, DatasetRequiresTapAccess) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 31416;
  sim::ChipPopulation pop(cfg);
  pop.chip(0).blow_fuses();
  AttackDatasetConfig acfg;
  acfg.n_pufs = 2;
  acfg.challenges = 10;
  EXPECT_THROW(build_stable_attack_dataset(pop.chip(0), acfg, rng_),
               xpuf::AccessError);
}

TEST_F(AttackTest, MlpAttackBreaksSmallXor) {
  const AttackDataset data = build(2, 12'000);
  MlpAttackConfig cfg;
  cfg.mlp.hidden_layers = {16, 8};
  cfg.mlp.activation = ml::Activation::kTanh;
  cfg.lbfgs.max_iterations = 150;
  const AttackResult res = run_mlp_attack(data, cfg);
  EXPECT_GT(res.test_accuracy, 0.9);
  EXPECT_GT(res.train_accuracy, 0.9);
  EXPECT_GT(res.train_time_ms, 0.0);
  EXPECT_GT(res.ms_per_crp(), 0.0);
  EXPECT_EQ(res.train_size, data.train.size());
}

TEST_F(AttackTest, MlpAttackWithTinyDataIsWeak) {
  const AttackDataset data = build(3, 400);
  MlpAttackConfig cfg;
  cfg.mlp.hidden_layers = {16, 8};
  cfg.lbfgs.max_iterations = 80;
  const AttackResult res = run_mlp_attack(data, cfg);
  // ~200 stable CRPs cannot break a 3-XOR; accuracy should be far from 1.
  EXPECT_LT(res.test_accuracy, 0.9);
}

TEST_F(AttackTest, LrXorAttackBreaksSmallXor) {
  const AttackDataset data = build(2, 12'000);
  LrXorAttackConfig cfg;
  cfg.lbfgs.max_iterations = 200;
  cfg.restarts = 3;
  const AttackResult res = run_lr_xor_attack(data, cfg);
  EXPECT_GT(res.test_accuracy, 0.9);
}

TEST_F(AttackTest, AttacksValidateInput) {
  AttackDataset empty;
  EXPECT_THROW(run_mlp_attack(empty), std::invalid_argument);
  EXPECT_THROW(run_lr_xor_attack(empty), std::invalid_argument);
  const AttackDataset data = build(1, 500);
  MlpAttackConfig bad;
  bad.restarts = 0;
  EXPECT_THROW(run_mlp_attack(data, bad), std::invalid_argument);
  LrXorAttackConfig bad2;
  bad2.restarts = 0;
  EXPECT_THROW(run_lr_xor_attack(data, bad2), std::invalid_argument);
}

TEST_F(AttackTest, SingleArbiterIsTriviallyBroken) {
  const AttackDataset data = build(1, 4'000);
  LrXorAttackConfig cfg;
  cfg.lbfgs.max_iterations = 100;
  const AttackResult res = run_lr_xor_attack(data, cfg);
  EXPECT_GT(res.test_accuracy, 0.97);
}

}  // namespace
}  // namespace xpuf::puf
