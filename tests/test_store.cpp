// Tests for the crash-safe enrollment store: the binary record codec, the
// sharded append-only log, recovery semantics (torn tails vs corruption),
// the LRU model cache and its metrics, and compaction.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "puf/store/record.hpp"
#include "puf/store/store.hpp"

namespace xpuf::puf::store {
namespace {

namespace fs = std::filesystem;

/// Deterministic hand-built model: weights/thresholds derived from the id so
/// every device is distinguishable and bit-exactness is checkable.
ServerModel make_model(std::uint64_t id, std::size_t puf_count, std::size_t stages) {
  std::vector<PufEnrollment> pufs;
  for (std::size_t p = 0; p < puf_count; ++p) {
    PufEnrollment e;
    linalg::Vector w(stages + 1);
    for (std::size_t i = 0; i <= stages; ++i)
      w[i] = 0.25 * static_cast<double>(i + p + 1) + 1e-9 * static_cast<double>(id);
    e.model = ArbiterPufModel(std::move(w));
    e.thresholds.thr0 = 0.4 - 0.001 * static_cast<double>(p);
    e.thresholds.thr1 = 0.6 + 0.001 * static_cast<double>(p);
    e.train_r_squared = 0.99 - 0.01 * static_cast<double>(p);
    e.fit_time_ms = static_cast<double>(id % 97);
    pufs.push_back(std::move(e));
  }
  ServerModel m(static_cast<std::size_t>(id), std::move(pufs));
  m.set_betas(BetaFactors{0.85, 1.15});
  return m;
}

void expect_models_bit_exact(const ServerModel& a, const ServerModel& b) {
  ASSERT_EQ(a.chip_id(), b.chip_id());
  ASSERT_EQ(a.puf_count(), b.puf_count());
  ASSERT_EQ(a.stages(), b.stages());
  EXPECT_EQ(a.betas().beta0, b.betas().beta0);
  EXPECT_EQ(a.betas().beta1, b.betas().beta1);
  for (std::size_t p = 0; p < a.puf_count(); ++p) {
    EXPECT_EQ(a.puf(p).model.weights().raw(), b.puf(p).model.weights().raw());
    EXPECT_EQ(a.puf(p).thresholds.thr0, b.puf(p).thresholds.thr0);
    EXPECT_EQ(a.puf(p).thresholds.thr1, b.puf(p).thresholds.thr1);
    EXPECT_EQ(a.puf(p).train_r_squared, b.puf(p).train_r_squared);
    EXPECT_EQ(a.puf(p).fit_time_ms, b.puf(p).fit_time_ms);
  }
}

std::string unique_dir(const std::string& tag) {
  return (fs::temp_directory_path() / ("xpuf_store_" + tag + "_" +
                                       std::to_string(::getpid())))
      .string();
}

class StoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = unique_dir(::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

// --- codec ------------------------------------------------------------------

TEST(StoreCodec, RecordRoundTripsAllOps) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> buf;
  encode_record(buf, OpType::kRegister, 42, payload);
  encode_record(buf, OpType::kRevoke, 7, {});
  encode_record(buf, OpType::kIssue, 0xffff'ffff'ffff'fffful, payload);

  RecordView v;
  ASSERT_EQ(decode_record(buf.data(), buf.size(), 0, v), RecordStatus::kOk);
  EXPECT_EQ(v.op, OpType::kRegister);
  EXPECT_EQ(v.device_id, 42u);
  EXPECT_EQ(v.payload_len, payload.size());
  EXPECT_EQ(std::vector<std::uint8_t>(v.payload, v.payload + v.payload_len), payload);
  EXPECT_EQ(v.begin, 0u);

  ASSERT_EQ(decode_record(buf.data(), buf.size(), v.end, v), RecordStatus::kOk);
  EXPECT_EQ(v.op, OpType::kRevoke);
  EXPECT_EQ(v.device_id, 7u);
  EXPECT_EQ(v.payload_len, 0u);

  ASSERT_EQ(decode_record(buf.data(), buf.size(), v.end, v), RecordStatus::kOk);
  EXPECT_EQ(v.op, OpType::kIssue);
  EXPECT_EQ(v.device_id, 0xffff'ffff'ffff'fffful);
  EXPECT_EQ(v.end, buf.size());
}

TEST(StoreCodec, EveryPrefixOfARecordIsTruncatedNeverCorrupt) {
  std::vector<std::uint8_t> buf;
  encode_record(buf, OpType::kRegister, 99, {9, 8, 7});
  for (std::size_t len = 0; len < buf.size(); ++len) {
    RecordView v;
    EXPECT_EQ(decode_record(buf.data(), len, 0, v), RecordStatus::kTruncated)
        << "prefix of " << len << " bytes";
  }
  RecordView v;
  EXPECT_EQ(decode_record(buf.data(), buf.size(), 0, v), RecordStatus::kOk);
}

TEST(StoreCodec, EverySingleBitFlipIsDetected) {
  std::vector<std::uint8_t> clean;
  encode_record(clean, OpType::kIssue, 1234, {0xaa, 0xbb, 0xcc});
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> dirty = clean;
      dirty[byte] = static_cast<std::uint8_t>(dirty[byte] ^ (1u << bit));
      RecordView v;
      const RecordStatus status = decode_record(dirty.data(), dirty.size(), 0, v);
      EXPECT_NE(status, RecordStatus::kOk)
          << "bit flip at byte " << byte << " bit " << bit << " went unnoticed";
    }
  }
}

TEST(StoreCodec, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  std::vector<std::uint8_t> buf;
  encode_record(buf, OpType::kRevoke, 5, {});
  // Patch payload_len (offset 12) to kMaxRecordPayloadBytes + 1.
  const std::uint32_t huge = kMaxRecordPayloadBytes + 1;
  for (std::uint32_t b = 0; b < 4; ++b)
    buf[12 + b] = static_cast<std::uint8_t>((huge >> (8 * b)) & 0xffu);
  RecordView v;
  EXPECT_EQ(decode_record(buf.data(), buf.size(), 0, v), RecordStatus::kBadLength);
}

TEST(StoreCodec, ModelPayloadRoundTripsBitExactly) {
  const ServerModel original = make_model(31337, 3, 16);
  const std::vector<std::uint8_t> payload = encode_model(original);
  EXPECT_EQ(payload.size(), model_payload_bytes(3, 16));

  std::uint32_t puf_count = 0;
  std::uint32_t stages = 0;
  ASSERT_EQ(peek_model_shape(payload.data(), static_cast<std::uint32_t>(payload.size()),
                             puf_count, stages),
            RecordStatus::kOk);
  EXPECT_EQ(puf_count, 3u);
  EXPECT_EQ(stages, 16u);

  ServerModel decoded;
  ASSERT_EQ(decode_model(payload.data(), static_cast<std::uint32_t>(payload.size()),
                         31337, decoded),
            RecordStatus::kOk);
  expect_models_bit_exact(original, decoded);
}

TEST(StoreCodec, LedgerPayloadRoundTrips) {
  const std::vector<std::string> keys = {std::string("\x01\x02", 2),
                                         std::string("\xff\x00", 2),
                                         std::string("\x10\x20", 2)};
  const std::vector<std::uint8_t> payload = encode_ledger(12, keys);  // row = 2 bytes
  std::uint32_t stages = 0;
  std::vector<std::string> out;
  ASSERT_EQ(decode_ledger(payload.data(), static_cast<std::uint32_t>(payload.size()),
                          stages, out),
            RecordStatus::kOk);
  EXPECT_EQ(stages, 12u);
  EXPECT_EQ(out, keys);
}

TEST(StoreCodec, PackedChallengeRoundTripsEveryWidth) {
  for (std::size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    Challenge c(bits);
    for (std::size_t i = 0; i < bits; ++i) c[i] = static_cast<std::uint8_t>((i * 7 + 3) % 2);
    const std::string key = pack_challenge(c);
    EXPECT_EQ(key.size(), (bits + 7) / 8);
    EXPECT_EQ(unpack_challenge(key, bits), c) << bits << " bits";
  }
}

TEST(StoreCodec, ManifestRoundTripsAndDetectsCorruption) {
  const std::vector<std::uint8_t> bytes = encode_manifest(16);
  EXPECT_EQ(bytes.size(), kManifestBytes);
  std::uint32_t n = 0;
  ASSERT_EQ(decode_manifest(bytes.data(), bytes.size(), n), RecordStatus::kOk);
  EXPECT_EQ(n, 16u);
  std::vector<std::uint8_t> dirty = bytes;
  dirty[4] ^= 1;  // shard count field
  EXPECT_EQ(decode_manifest(dirty.data(), dirty.size(), n), RecordStatus::kBadChecksum);
  EXPECT_EQ(decode_manifest(bytes.data(), bytes.size() - 1, n), RecordStatus::kTruncated);
}

// --- store lifecycle --------------------------------------------------------

TEST_F(StoreDirTest, RegisterServeRevokeSurviveReopen) {
  StoreOptions opts;
  opts.n_shards = 4;
  {
    EnrollmentStore store = EnrollmentStore::open(dir_, opts);
    for (std::uint64_t id : {0u, 1u, 2u, 5u, 9u}) store.register_device(make_model(id, 2, 8));
    EXPECT_EQ(store.device_count(), 5u);
    store.ledger(5).insert(pack_challenge(Challenge{1, 0, 1, 0, 1, 0, 1, 0}));
    store.record_issued(5, 8, {pack_challenge(Challenge{1, 0, 1, 0, 1, 0, 1, 0})});
    store.revoke_device(2);
  }
  EnrollmentStore reopened = EnrollmentStore::open(dir_, opts);
  EXPECT_EQ(reopened.device_count(), 4u);
  EXPECT_FALSE(reopened.knows(2)) << "revoked device resurrected by replay";
  EXPECT_EQ(reopened.ledger(5).size(), 1u);
  EXPECT_EQ(reopened.issued_total(), 1u);
  expect_models_bit_exact(make_model(9, 2, 8), *reopened.model(9));
}

TEST_F(StoreDirTest, ShardRoutingMatchesDeviceIdModulo) {
  StoreOptions opts;
  opts.n_shards = 4;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  for (std::uint64_t id = 0; id < 8; ++id) store.register_device(make_model(id, 1, 4));
  for (std::uint64_t id = 0; id < 8; ++id)
    EXPECT_EQ(store.device_record(id).shard, id % 4);
  // Shard files are disjoint: each holds exactly its two registers.
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_GT(store.shard_size(k), 0u);
}

TEST_F(StoreDirTest, LruCacheMetricsAccountExactly) {
  auto& registry = MetricsRegistry::global();
  Counter& hits = registry.counter("db.cache_hits");
  Counter& misses = registry.counter("db.cache_misses");
  Counter& evictions = registry.counter("db.cache_evictions");
  const std::uint64_t hits0 = hits.total();
  const std::uint64_t misses0 = misses.total();
  const std::uint64_t evictions0 = evictions.total();

  StoreOptions opts;
  opts.n_shards = 1;
  opts.cache_capacity = 2;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  store.register_device(make_model(0, 1, 8));  // cache {0}
  store.register_device(make_model(1, 1, 8));  // cache {1, 0}
  store.register_device(make_model(2, 1, 8));  // cache {2, 1}, evicts 0
  EXPECT_EQ(evictions.total() - evictions0, 1u);
  EXPECT_EQ(store.cache_size(), 2u);
  EXPECT_EQ(store.cache_capacity(), 2u);

  expect_models_bit_exact(make_model(0, 1, 8), *store.model(0));  // miss, evicts 1
  EXPECT_EQ(misses.total() - misses0, 1u);
  EXPECT_EQ(evictions.total() - evictions0, 2u);

  auto held = store.model(1);  // miss again (was just evicted), evicts 2
  EXPECT_EQ(misses.total() - misses0, 2u);
  EXPECT_EQ(evictions.total() - evictions0, 3u);

  EXPECT_EQ(store.model(1).get(), held.get());  // hit: same cached object
  EXPECT_EQ(hits.total() - hits0, 1u);
  EXPECT_EQ(misses.total() - misses0, 2u);

  // Accounting identity: every insertion either grew the cache or evicted.
  const std::uint64_t inserts = 3 /*registers*/ + (misses.total() - misses0);
  EXPECT_EQ(inserts, store.cache_size() + (evictions.total() - evictions0));

  // The eviction-survivor contract: a shared_ptr obtained before an eviction
  // keeps serving the old object.
  expect_models_bit_exact(make_model(1, 1, 8), *held);
}

TEST_F(StoreDirTest, DuplicateRegisterAndUnknownLookupsThrow) {
  StoreOptions opts;
  opts.n_shards = 2;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  store.register_device(make_model(3, 1, 4));
  EXPECT_THROW(store.register_device(make_model(3, 1, 4)), std::invalid_argument);
  EXPECT_THROW(store.model(99), std::invalid_argument);
  EXPECT_THROW(store.ledger(99), std::invalid_argument);
  EXPECT_THROW(store.revoke_device(99), std::invalid_argument);
  EXPECT_THROW(store.device_record(99), std::invalid_argument);
}

TEST_F(StoreDirTest, ReopenHonoursManifestShardCountOverOptions) {
  StoreOptions opts;
  opts.n_shards = 8;
  { EnrollmentStore store = EnrollmentStore::open(dir_, opts); }
  StoreOptions other;
  other.n_shards = 3;  // ignored: the manifest wins
  EnrollmentStore reopened = EnrollmentStore::open(dir_, other);
  EXPECT_EQ(reopened.n_shards(), 8u);
}

TEST_F(StoreDirTest, CorruptManifestIsAParseError) {
  { EnrollmentStore store = EnrollmentStore::open(dir_, StoreOptions{}); }
  {
    std::ofstream out(dir_ + "/store_manifest", std::ios::binary | std::ios::trunc);
    out << "not a manifest";
  }
  EXPECT_THROW(EnrollmentStore::open(dir_, StoreOptions{}), ParseError);
}

TEST_F(StoreDirTest, MidFileBitFlipFailsLoudlyOnReplay) {
  StoreOptions opts;
  opts.n_shards = 1;
  {
    EnrollmentStore store = EnrollmentStore::open(dir_, opts);
    store.register_device(make_model(0, 1, 8));
    store.register_device(make_model(1, 1, 8));
  }
  const std::string shard = dir_ + "/shard_0.log";
  std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(20);  // inside the first record's payload, not the tail
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(20);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(EnrollmentStore::open(dir_, opts), ParseError)
      << "mid-file corruption must never be silently skipped";
}

TEST_F(StoreDirTest, CompactionDropsRevokedHistoryAndKeepsModelsBitExact) {
  StoreOptions opts;
  opts.n_shards = 2;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  for (std::uint64_t id = 0; id < 6; ++id) store.register_device(make_model(id, 2, 8));
  for (std::uint64_t id = 0; id < 6; ++id) {
    std::vector<std::string> fresh;
    for (std::uint8_t i = 0; i < 4; ++i)
      fresh.push_back(std::string(1, static_cast<char>(i + id)));
    for (const auto& key : fresh) store.ledger(id).insert(key);
    store.record_issued(id, 8, fresh);
  }
  store.revoke_device(4);
  store.revoke_device(5);
  const std::uint64_t before = store.shard_size(0) + store.shard_size(1);

  store.compact();
  const std::uint64_t after = store.shard_size(0) + store.shard_size(1);
  EXPECT_LT(after, before) << "compaction must reclaim revoked history";
  EXPECT_EQ(store.device_count(), 4u);
  EXPECT_EQ(store.issued_total(), 16u);

  // The store keeps serving post-compaction (offsets were rewritten) ...
  expect_models_bit_exact(make_model(3, 2, 8), *store.model(3));
  // ... and a fresh replay of the compacted log agrees completely.
  EnrollmentStore reopened = EnrollmentStore::open(dir_, opts);
  EXPECT_EQ(reopened.device_count(), 4u);
  EXPECT_EQ(reopened.issued_total(), 16u);
  EXPECT_FALSE(reopened.knows(4));
  EXPECT_FALSE(reopened.knows(5));
  for (std::uint64_t id = 0; id < 4; ++id) {
    expect_models_bit_exact(make_model(id, 2, 8), *reopened.model(id));
    EXPECT_EQ(reopened.ledger(id), store.ledger(id));
  }
}

TEST_F(StoreDirTest, PerShardLedgerTotalsSumToTheFleetGauge) {
  auto& registry = MetricsRegistry::global();
  StoreOptions opts;
  opts.n_shards = 2;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  for (std::uint64_t id = 0; id < 4; ++id) store.register_device(make_model(id, 1, 8));
  for (std::uint64_t id = 0; id < 4; ++id) {
    std::vector<std::string> fresh;
    for (std::uint8_t i = 0; i <= id; ++i)
      fresh.push_back(std::string(1, static_cast<char>(i)));
    for (const auto& key : fresh) store.ledger(id).insert(key);
    store.record_issued(id, 8, fresh);
  }
  // Devices 0,2 -> shard 0 (1 + 3 keys); devices 1,3 -> shard 1 (2 + 4 keys).
  EXPECT_EQ(store.shard_issued_total(0), 4u);
  EXPECT_EQ(store.shard_issued_total(1), 6u);
  EXPECT_EQ(store.issued_total(), 10u);
  // The gauges mirror the totals: fleet-wide plus one per shard. This is the
  // regression for the last-writer-wins db.ledger_size bug: the fleet gauge
  // holds the TOTAL, not whichever device issued last.
  EXPECT_EQ(registry.gauge("db.ledger_size").get(), 10.0);
  EXPECT_EQ(registry.gauge("db.shard_ledger_size.0").get(), 4.0);
  EXPECT_EQ(registry.gauge("db.shard_ledger_size.1").get(), 6.0);
}

// --- truncation torture -----------------------------------------------------

/// Expected store state after a prefix of the op history.
struct ExpectedState {
  std::uint64_t offset = 0;  ///< durable high-water mark after the op
  std::map<std::uint64_t, std::set<std::string>> ledgers;  ///< known id -> keys
};

// Cuts the single-shard log at EVERY byte offset and reopens the store. Each
// cut must recover exactly the records whose acknowledged end offset fits in
// the prefix — never resurrect a revoked device, never drop an acknowledged
// ledger entry, never misread a torn tail as corruption — and count the torn
// tail under db.log_truncated.
TEST_F(StoreDirTest, TruncationAtEveryByteRecoversTheExactAcknowledgedPrefix) {
  StoreOptions opts;
  opts.n_shards = 1;
  opts.cache_capacity = 4;

  std::vector<ExpectedState> history;
  const auto snapshot = [&history](const EnrollmentStore& store) {
    ExpectedState s;
    s.offset = store.shard_size(0);
    for (const std::uint64_t id : store.device_ids()) s.ledgers[id] = store.ledger(id);
    history.push_back(std::move(s));
  };
  const auto issue = [](EnrollmentStore& store, std::uint64_t id,
                        std::initializer_list<std::uint8_t> seeds) {
    std::vector<std::string> fresh;
    for (std::uint8_t seed : seeds) {
      Challenge c(8);
      for (std::size_t i = 0; i < 8; ++i)
        c[i] = static_cast<std::uint8_t>((seed >> i) & 1u);
      fresh.push_back(pack_challenge(c));
    }
    for (const auto& key : fresh) store.ledger(id).insert(key);
    store.record_issued(id, 8, fresh);
  };

  {
    EnrollmentStore store = EnrollmentStore::open(dir_, opts);
    history.push_back(ExpectedState{});  // empty log
    store.register_device(make_model(0, 2, 8));
    snapshot(store);
    store.register_device(make_model(1, 2, 8));
    snapshot(store);
    issue(store, 0, {3, 5, 9});
    snapshot(store);
    issue(store, 1, {7, 11});
    snapshot(store);
    store.revoke_device(1);
    snapshot(store);
    issue(store, 0, {13, 17});
    snapshot(store);
    store.register_device(make_model(2, 2, 8));
    snapshot(store);
  }

  // Full log bytes, read once.
  std::vector<char> log_bytes;
  {
    std::ifstream in(dir_ + "/shard_0.log", std::ios::binary);
    ASSERT_TRUE(in.good());
    log_bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(log_bytes.size(), history.back().offset);
  std::set<std::uint64_t> boundaries;
  for (const auto& s : history) boundaries.insert(s.offset);

  Counter& truncations = MetricsRegistry::global().counter("db.log_truncated");
  const std::string torn_dir = unique_dir("torn");
  for (std::uint64_t cut = 0; cut <= log_bytes.size(); ++cut) {
    fs::remove_all(torn_dir);
    fs::create_directories(torn_dir);
    fs::copy_file(dir_ + "/store_manifest", torn_dir + "/store_manifest");
    {
      std::ofstream out(torn_dir + "/shard_0.log", std::ios::binary);
      out.write(log_bytes.data(), static_cast<std::streamsize>(cut));
    }

    // The last acknowledged op whose append fits inside the cut.
    const ExpectedState* expected = &history.front();
    for (const auto& s : history)
      if (s.offset <= cut) expected = &s;

    const std::uint64_t truncations_before = truncations.total();
    EnrollmentStore recovered = EnrollmentStore::open(torn_dir, opts);

    std::map<std::uint64_t, std::set<std::string>> got;
    for (const std::uint64_t id : recovered.device_ids()) got[id] = recovered.ledger(id);
    EXPECT_EQ(got, expected->ledgers) << "cut at byte " << cut;
    EXPECT_EQ(recovered.shard_size(0), expected->offset)
        << "torn tail not trimmed back to the record boundary at cut " << cut;

    const bool torn = boundaries.count(cut) == 0;
    EXPECT_EQ(truncations.total() - truncations_before, torn ? 1u : 0u)
        << "db.log_truncated must count exactly the torn tails (cut " << cut << ")";

    // Models of surviving devices decode bit-exactly from the prefix.
    for (const auto& [id, keys] : expected->ledgers)
      expect_models_bit_exact(make_model(id, 2, 8), *recovered.model(id));
  }
  fs::remove_all(torn_dir);
}

// --- snapshot writer --------------------------------------------------------

TEST_F(StoreDirTest, WriteSnapshotProducesAReplayableStore) {
  std::map<std::size_t, ServerModel> models;
  std::map<std::size_t, std::set<std::string>> ledgers;
  for (std::size_t id : {0u, 3u, 17u}) {
    models.emplace(id, make_model(id, 2, 8));
    ledgers[id].insert(std::string(1, static_cast<char>(id)));
  }
  write_snapshot(dir_, 4, models, ledgers);
  EXPECT_TRUE(EnrollmentStore::is_store_dir(dir_));

  StoreOptions opts;
  opts.n_shards = 4;
  EnrollmentStore store = EnrollmentStore::open(dir_, opts);
  EXPECT_EQ(store.device_count(), 3u);
  EXPECT_EQ(store.issued_total(), 3u);
  for (const auto& [id, m] : models) {
    expect_models_bit_exact(m, *store.model(id));
    EXPECT_EQ(store.ledger(id), ledgers.at(id));
  }

  // A second snapshot with a device gone removes its shard content: no
  // resurrection from a stale shard file.
  models.erase(17);
  ledgers.erase(17);
  write_snapshot(dir_, 4, models, ledgers);
  EnrollmentStore reloaded = EnrollmentStore::open(dir_, opts);
  EXPECT_EQ(reloaded.device_count(), 2u);
  EXPECT_FALSE(reloaded.knows(17));
}

}  // namespace
}  // namespace xpuf::puf::store
