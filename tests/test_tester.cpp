// Tests for the batch chip tester (the simulated PXI bench).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/tester.hpp"

namespace xpuf::sim {
namespace {

XorPufChip make_chip(std::size_t n_pufs, std::uint64_t seed) {
  DeviceParameters params;
  Rng rng(seed);
  return XorPufChip(0, n_pufs, params, EnvironmentModel{}, rng);
}

TEST(ChipTester, ValidatesTrials) {
  EXPECT_THROW(ChipTester(Environment::nominal(), 0, Rng(1)), std::invalid_argument);
}

TEST(ChipTester, RandomChallengesMatchChipGeometry) {
  const auto chip = make_chip(2, 1);
  ChipTester tester(Environment::nominal(), 100, Rng(2));
  const auto challenges = tester.random_challenges(chip, 17);
  ASSERT_EQ(challenges.size(), 17u);
  for (const auto& c : challenges) EXPECT_EQ(c.size(), chip.stages());
}

TEST(ChipTester, ScanIndividualShapesAndConsistency) {
  const auto chip = make_chip(3, 3);
  ChipTester tester(Environment::nominal(), 1'000, Rng(4));
  const auto challenges = tester.random_challenges(chip, 25);
  const ChipSoftScan scan = tester.scan_individual(chip, challenges);
  ASSERT_EQ(scan.soft.size(), 3u);
  ASSERT_EQ(scan.stable.size(), 3u);
  ASSERT_EQ(scan.challenges.size(), 25u);
  EXPECT_EQ(scan.trials, 1'000u);
  EXPECT_TRUE(scan.environment == Environment::nominal());
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_EQ(scan.soft[p].size(), 25u);
    for (std::size_t c = 0; c < 25; ++c) {
      EXPECT_GE(scan.soft[p][c], 0.0);
      EXPECT_LE(scan.soft[p][c], 1.0);
      // Stability flag consistent with soft value.
      if (scan.stable[p][c]) {
        EXPECT_TRUE(scan.soft[p][c] == 0.0 || scan.soft[p][c] == 1.0);
      }
    }
  }
}

TEST(ChipTester, ScanSingleMatchesWidth) {
  const auto chip = make_chip(2, 5);
  ChipTester tester(Environment::nominal(), 500, Rng(6));
  const auto challenges = tester.random_challenges(chip, 10);
  const auto measurements = tester.scan_single(chip, 1, challenges);
  ASSERT_EQ(measurements.size(), 10u);
  for (const auto& m : measurements) EXPECT_EQ(m.trials, 500u);
}

TEST(ChipTester, SampleXorReturnsOneBitPerChallenge) {
  const auto chip = make_chip(4, 7);
  ChipTester tester(Environment::nominal(), 100, Rng(8));
  const auto challenges = tester.random_challenges(chip, 12);
  const auto bits = tester.sample_xor(chip, challenges);
  EXPECT_EQ(bits.size(), 12u);
}

TEST(ChipTester, ScanXorProducesBoundedSoftResponses) {
  const auto chip = make_chip(4, 9);
  ChipTester tester(Environment::nominal(), 2'000, Rng(10));
  const auto challenges = tester.random_challenges(chip, 15);
  const auto ms = tester.scan_xor(chip, challenges);
  ASSERT_EQ(ms.size(), 15u);
  for (const auto& m : ms) {
    EXPECT_GE(m.soft_response(), 0.0);
    EXPECT_LE(m.soft_response(), 1.0);
  }
}

TEST(ChipTester, IsDeterministicPerSeed) {
  const auto chip = make_chip(2, 11);
  ChipTester t1(Environment::nominal(), 1'000, Rng(12));
  ChipTester t2(Environment::nominal(), 1'000, Rng(12));
  const auto c1 = t1.random_challenges(chip, 20);
  const auto c2 = t2.random_challenges(chip, 20);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
  const auto s1 = t1.scan_individual(chip, c1);
  const auto s2 = t2.scan_individual(chip, c2);
  EXPECT_EQ(s1.soft, s2.soft);
}

TEST(ChipTester, EnvironmentCanBeRetargeted) {
  ChipTester tester(Environment::nominal(), 100, Rng(13));
  tester.set_environment({0.8, 60.0});
  EXPECT_TRUE(tester.environment() == (Environment{0.8, 60.0}));
}

TEST(ChipTester, ScanFailsOnDeployedChip) {
  auto chip = make_chip(2, 14);
  chip.blow_fuses();
  ChipTester tester(Environment::nominal(), 100, Rng(15));
  const auto challenges = tester.random_challenges(chip, 3);
  EXPECT_THROW(tester.scan_individual(chip, challenges), xpuf::AccessError);
  // XOR sampling still works.
  EXPECT_NO_THROW(tester.sample_xor(chip, challenges));
}

}  // namespace
}  // namespace xpuf::sim
