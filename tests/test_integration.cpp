// End-to-end integration: the complete lifecycle of the paper's proposal —
// fabricate, enroll through fused taps, adjust thresholds over corners,
// deploy (blow fuses), then authenticate across the V/T grid with the
// zero-Hamming-distance criterion — plus the attack-surface contract.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "puf/attack.hpp"
#include "puf/authentication.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 4;  // small XOR width keeps tests fast

  LifecycleTest() : rng_(20170618) {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 777777;
    pop_ = std::make_unique<sim::ChipPopulation>(cfg);
  }

  std::unique_ptr<sim::ChipPopulation> pop_;
  Rng rng_;
};

TEST_F(LifecycleTest, FullProtocolRoundTrip) {
  sim::XorPufChip& chip = pop_->chip(0);

  // --- Enrollment phase (paper Fig 6) ---
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 3'000;
  ecfg.trials = 5'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng_);

  // Threshold adjustment over the full V/T grid.
  const auto eval_challenges = puf::random_challenges(chip.stages(), 1'500, rng_);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, 5'000, rng_));
  const puf::BetaSearchResult betas = puf::find_betas(model, blocks);
  ASSERT_TRUE(betas.converged);
  model.set_betas(betas.betas);
  EXPECT_LE(betas.betas.beta0, 1.0);
  EXPECT_GE(betas.betas.beta1, 1.0);

  // --- Deployment: burn the fuses ---
  chip.blow_fuses();
  ASSERT_TRUE(chip.deployed());

  // Individual taps are now gone — the modeling-attack data source is off.
  puf::AttackDatasetConfig acfg;
  acfg.n_pufs = kNPufs;
  acfg.challenges = 10;
  EXPECT_THROW(puf::build_stable_attack_dataset(chip, acfg, rng_), AccessError);

  // --- Authentication phase (paper Fig 7) across every corner ---
  puf::AuthenticationServer server(model, kNPufs, {.challenge_count = 48});
  for (const auto& env : sim::paper_corner_grid()) {
    const puf::AuthenticationOutcome out = server.authenticate(chip, env, rng_);
    EXPECT_TRUE(out.approved) << env.label() << " mismatches=" << out.mismatches;
    EXPECT_EQ(out.mismatches, 0u) << env.label();
  }

  // A counterfeit chip from the same lot is denied at every corner.
  sim::XorPufChip& counterfeit = pop_->chip(1);
  for (const auto& env : sim::paper_corner_grid()) {
    const puf::AuthenticationOutcome out = server.authenticate(counterfeit, env, rng_);
    EXPECT_FALSE(out.approved) << env.label();
  }
}

TEST_F(LifecycleTest, ModelSelectionBeatsRandomSelectionUnderCorners) {
  sim::XorPufChip& chip = pop_->chip(0);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 3'000;
  ecfg.trials = 5'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng_);
  const auto eval_challenges = puf::random_challenges(chip.stages(), 1'000, rng_);
  std::vector<puf::EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid())
    blocks.push_back(
        puf::measure_evaluation_block(chip, eval_challenges, env, 5'000, rng_));
  model.set_betas(puf::find_betas(model, blocks).betas);

  puf::AuthenticationServer server(model, kNPufs, {.challenge_count = 64});
  const sim::Environment worst{0.8, 60.0};

  std::size_t selected_mismatches = 0, random_mismatches = 0;
  for (int trial = 0; trial < 4; ++trial) {
    selected_mismatches +=
        server.authenticate(chip, worst, rng_, /*model_selected=*/true).mismatches;
    random_mismatches +=
        server.authenticate(chip, worst, rng_, /*model_selected=*/false).mismatches;
  }
  EXPECT_EQ(selected_mismatches, 0u);
  EXPECT_GT(random_mismatches, 0u);
}

TEST_F(LifecycleTest, EnrollmentIsReproducibleAcrossServerRestarts) {
  // The server database (weights + thresholds + betas) fully determines
  // challenge selection: two servers with the same model issue batches with
  // the same stability guarantees.
  sim::XorPufChip& chip = pop_->chip(0);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 1'000;
  ecfg.trials = 2'000;
  Rng r1(5), r2(5);
  const puf::ServerModel m1 = puf::Enroller(ecfg).enroll(chip, r1);
  const puf::ServerModel m2 = puf::Enroller(ecfg).enroll(chip, r2);
  for (std::size_t p = 0; p < kNPufs; ++p) {
    EXPECT_EQ(m1.puf(p).model.weights().raw(), m2.puf(p).model.weights().raw());
    EXPECT_DOUBLE_EQ(m1.puf(p).thresholds.thr0, m2.puf(p).thresholds.thr0);
    EXPECT_DOUBLE_EQ(m1.puf(p).thresholds.thr1, m2.puf(p).thresholds.thr1);
  }
}

}  // namespace
}  // namespace xpuf
