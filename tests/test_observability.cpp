// Tests for the observability layer (common/metrics.hpp, common/trace.hpp):
// sharded counter/histogram merge correctness under parallel_for at 1/2/8
// threads, snapshot determinism, span call counts, and the end-to-end
// contract that ServerDatabase counters match AuthenticationOutcome fields.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/mlp.hpp"
#include "puf/authentication.hpp"
#include "puf/database.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"
#include "sim/tester.hpp"

namespace xpuf {
namespace {

constexpr std::size_t kThreadGrid[] = {1, 2, 8};

TEST(MetricsCounter, ShardsMergeToExactTotalAtAnyThreadCount) {
  auto& registry = MetricsRegistry::global();
  Counter& items = registry.counter("test.items");
  Counter& weighted = registry.counter("test.weighted");
  for (const std::size_t threads : kThreadGrid) {
    ThreadPool::set_global_threads(threads);
    registry.reset();
    parallel_for(10'000, 64, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        items.add(1);
        weighted.add(i % 3);
      }
    });
    EXPECT_EQ(items.total(), 10'000u) << "threads=" << threads;
    // sum of i % 3 over [0, 10000): 3333 full cycles of 0+1+2 plus 10000%3=1
    // leftover item contributing 0.
    EXPECT_EQ(weighted.total(), 9'999u) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(0);
}

TEST(MetricsHistogram, BucketCountsAreThreadCountInvariant) {
  auto& registry = MetricsRegistry::global();
  Histogram& h = registry.histogram("test.hist", {1.0, 3.0, 5.0});
  for (const std::size_t threads : kThreadGrid) {
    ThreadPool::set_global_threads(threads);
    registry.reset();
    parallel_for(7'000, 64, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) h.observe(static_cast<double>(i % 7));
    });
    // i % 7 hits each residue 1000 times. Bucket b counts v <= bound[b]:
    // <=1 gets {0,1}, <=3 gets {2,3}, <=5 gets {4,5}, overflow gets {6}.
    const std::vector<std::uint64_t> expected = {2'000, 2'000, 2'000, 1'000};
    EXPECT_EQ(h.counts(), expected) << "threads=" << threads;
    EXPECT_EQ(h.total(), 7'000u) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(0);
}

TEST(MetricsHistogram, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(MetricsHistogram, QuantileRejectsOutOfRangeP) {
  Histogram h({1.0});
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(MetricsHistogram, SingleBucketQuantileInterpolatesFromZero) {
  // All mass in the first bucket (v <= 10): the p-quantile interpolates
  // linearly across [0, 10], so p=0.5 lands at the bucket midpoint.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(MetricsHistogram, QuantileInterpolatesWithinTheRankedBucket) {
  // 50 observations <= 10, 50 in (10, 20]: the median sits on the bucket
  // edge and p=0.75 lands halfway through the second bucket's span.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 50; ++i) h.observe(1.0);
  for (int i = 0; i < 50; ++i) h.observe(15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(MetricsHistogram, OverflowBucketClampsToTheHighestFiniteBound) {
  // Mass beyond the last bound is unresolvable from fixed buckets: the
  // estimate clamps to bounds.back() instead of extrapolating.
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(MetricsHistogram, SnapshotQuantileMatchesTheLiveHistogram) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  Histogram& h = registry.histogram("test.quantile_snap", {1.0, 2.0, 4.0, 8.0});
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) h.observe(rng.uniform() * 6.0);
  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("test.quantile_snap");
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(histogram_quantile(hs.bounds, hs.counts, p), h.quantile(p))
        << "p=" << p;
  EXPECT_THROW(histogram_quantile({1.0}, {1, 2, 3}, 0.5),
               std::invalid_argument)
      << "counts must be bounds+1";
}

TEST(MetricsHistogram, RejectsUnsortedBoundsAndBoundMismatch) {
  auto& registry = MetricsRegistry::global();
  EXPECT_THROW(Histogram({3.0, 1.0}), std::invalid_argument);
  registry.histogram("test.hist_identity", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("test.hist_identity", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("test.hist_identity", {1.0, 5.0}),
               std::invalid_argument);
}

TEST(MetricsGauge, LastWriteWinsAndResets) {
  auto& registry = MetricsRegistry::global();
  Gauge& g = registry.gauge("test.gauge");
  g.set(3.0);
  g.set(42.5);
  EXPECT_EQ(g.get(), 42.5);
  g.reset();
  EXPECT_EQ(g.get(), 0.0);
}

TEST(TraceSpans, CallCountsAreDeterministicSecondsNonNegative) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  for (int i = 0; i < 5; ++i) {
    XPUF_TRACE_SPAN("test.span");
  }
  SpanStat& stat = registry.span("test.span");
  EXPECT_EQ(stat.calls(), 5u);
  EXPECT_GE(stat.seconds(), 0.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.spans.at("test.span").calls, 5u);
}

TEST(MetricsSnapshot, TimingFreeSerializationIsDeterministic) {
  auto& registry = MetricsRegistry::global();
  auto run_workload = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    registry.reset();
    Counter& c = registry.counter("test.det_counter");
    Histogram& h = registry.histogram("test.det_hist", {10.0, 100.0});
    registry.gauge("test.det_gauge").set(7.0);
    parallel_for(5'000, 64, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        c.add(1);
        h.observe(static_cast<double>(i % 128));
        XPUF_TRACE_SPAN("test.det_span");
      }
    });
    return registry.snapshot().to_json("det", 0, /*include_timing=*/false);
  };
  const std::string serial = run_workload(1);
  const std::string threaded = run_workload(8);
  EXPECT_EQ(serial, threaded)
      << "timing-free snapshot must be a pure function of the workload";
  EXPECT_EQ(serial.find("seconds"), std::string::npos);
  ThreadPool::set_global_threads(0);
}

TEST(MetricsSnapshot, JsonCarriesAllSections) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.json_counter").add(3);
  registry.gauge("test.json_gauge").set(1.5);
  registry.histogram("test.json_hist", {2.0}).observe(1.0);
  { XPUF_TRACE_SPAN("test.json_span"); }
  const std::string json =
      registry.snapshot().to_json("unit", 4, /*include_timing=*/true);
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_span\": {\"calls\": 1, \"seconds\": "),
            std::string::npos);
}

TEST(MetricsMl, TrainingRecordsIterations) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  ml::Dataset data;
  // Trivially separable 2-feature problem; L-BFGS needs a few iterations.
  for (int i = 0; i < 32; ++i) {
    const double a = (i % 2 == 0) ? 1.0 : -1.0;
    const double features[2] = {a, 0.5 * a};
    data.add(features, a > 0 ? 1.0 : 0.0);
  }
  ml::LogisticRegression lr;
  lr.fit(data);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.counters.at("ml.lbfgs_iterations"), 0u);
  EXPECT_GT(snap.counters.at("ml.objective_evaluations"), 0u);
  EXPECT_EQ(snap.spans.at("ml.lr_fit").calls, 1u);
}

// The end-to-end accounting contract: database counters are the SUM of the
// per-request outcome fields — nothing silently dropped between the
// selector, the ledger, and the registry.
TEST(ObservabilityIntegration, DatabaseCountersMatchOutcomeFields) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);
  Rng rng(808);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  puf::ServerModel m = puf::Enroller(ecfg).enroll(pop.chip(0), rng);
  m.set_betas(puf::BetaFactors{0.85, 1.15});
  puf::ServerDatabase db(
      puf::DatabaseConfig{.n_pufs = 3, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  db.register_device(std::move(m));

  auto& registry = MetricsRegistry::global();
  registry.reset();
  Rng first_session(777);
  const puf::DatabaseAuthOutcome first =
      db.authenticate(pop.chip(0), sim::Environment::nominal(), first_session);
  Rng replayed_session(777);
  const puf::DatabaseAuthOutcome second =
      db.authenticate(pop.chip(0), sim::Environment::nominal(), replayed_session);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("selection.candidates_tried"),
            first.outcome.candidates_tried + second.outcome.candidates_tried);
  EXPECT_EQ(snap.counters.at("auth.replay_rejected"),
            first.replay_rejected + second.replay_rejected);
  EXPECT_GT(snap.counters.at("auth.replay_rejected"), 0u);
  EXPECT_EQ(snap.counters.at("db.auth_requests"), 2u);
  EXPECT_EQ(snap.counters.at("auth.verifications"), 2u);
  EXPECT_EQ(snap.counters.at("db.challenges_issued"),
            first.outcome.challenges_used + second.outcome.challenges_used);
  EXPECT_EQ(snap.gauges.at("db.ledger_size"), 32.0);
  EXPECT_EQ(snap.counters.at("auth.mismatches"),
            first.outcome.mismatches + second.outcome.mismatches);
  EXPECT_EQ(snap.spans.at("db.authenticate").calls, 2u);
  EXPECT_EQ(snap.spans.at("db.issue_batch").calls, 2u);
  // Pooling is disabled here, so every issue() is a pool miss served by live
  // screening — one screening batch per issue, and the pool/issue identity
  // (pool_hits + pool_misses == issue_requests) holds degenerately.
  EXPECT_EQ(snap.counters.at("db.issue_requests"), 2u);
  EXPECT_EQ(snap.counters.at("auth.pool_misses"), 2u);
  EXPECT_EQ(snap.spans.at("db.issue_batch").calls,
            snap.histograms.at("selection.batch_candidates").total);
}

// Standalone-server accounting: every model-selected issue() registers one
// batch and `challenge_count` accepted challenges, and the verdict counters
// partition the verification count — approved + denied == verifications,
// with each side matching the outcomes the caller observed. The baseline
// issue_random() path must NOT count as a selected batch.
TEST(ObservabilityIntegration, AuthenticationServerCountersPartitionVerdicts) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 2;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);
  Rng rng(808);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  puf::ServerModel m = puf::Enroller(ecfg).enroll(pop.chip(0), rng);
  m.set_betas(puf::BetaFactors{0.85, 1.15});
  constexpr std::size_t kBatchSize = 16;
  const puf::AuthenticationServer server(std::move(m), 3,
                                         {.challenge_count = kBatchSize});

  auto& registry = MetricsRegistry::global();
  registry.reset();
  Rng session(777);
  std::uint64_t approved = 0, denied = 0, selected_rounds = 0;
  const auto tally = [&](const puf::AuthenticationOutcome& out) {
    (out.approved ? approved : denied) += 1;
  };
  // Honest chip, model-selected batches: these should approve.
  for (int round = 0; round < 2; ++round) {
    tally(server.authenticate(pop.chip(0), sim::Environment::nominal(), session));
    ++selected_rounds;
  }
  // An impostor chip answering chip 0's challenges: denied, still verified.
  tally(server.authenticate(pop.chip(1), sim::Environment::nominal(), session));
  ++selected_rounds;
  // Baseline random batch: verified, but no selected batch is accounted.
  tally(server.authenticate(pop.chip(0), sim::Environment::nominal(), session,
                            /*model_selected=*/false));
  EXPECT_GT(approved, 0u);
  EXPECT_GT(denied, 0u);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("auth.batches_issued"), selected_rounds);
  EXPECT_EQ(snap.counters.at("selection.accepted"),
            selected_rounds * kBatchSize);
  EXPECT_EQ(snap.counters.at("auth.approved"), approved);
  EXPECT_EQ(snap.counters.at("auth.denied"), denied);
  EXPECT_EQ(snap.counters.at("auth.approved") + snap.counters.at("auth.denied"),
            snap.counters.at("auth.verifications"));
  EXPECT_EQ(snap.counters.at("auth.verifications"), approved + denied);
}

// A request for a device the database never enrolled is refused AND counted:
// db.unknown_device is the ledger of probes against unprovisioned ids.
TEST(ObservabilityIntegration, UnknownDeviceRequestsAreCounted) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 2;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);
  Rng rng(808);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  puf::ServerModel m = puf::Enroller(ecfg).enroll(pop.chip(0), rng);
  m.set_betas(puf::BetaFactors{0.85, 1.15});
  puf::ServerDatabase db(
      puf::DatabaseConfig{.n_pufs = 3, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  db.register_device(std::move(m));

  auto& registry = MetricsRegistry::global();
  registry.reset();
  Rng session(777);
  const puf::DatabaseAuthOutcome stranger =
      db.authenticate(pop.chip(1), sim::Environment::nominal(), session);
  EXPECT_FALSE(stranger.known_device);
  EXPECT_FALSE(stranger.outcome.approved);
  const puf::DatabaseAuthOutcome known =
      db.authenticate(pop.chip(0), sim::Environment::nominal(), session);
  EXPECT_TRUE(known.known_device);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("db.unknown_device"), 1u);
  EXPECT_EQ(snap.counters.at("db.auth_requests"), 2u);
}

// Workload counters that meter raw work volume: tester.xor_samples equals
// the number of XOR evaluations requested across sample_xor() calls, and
// ml.adam_epochs equals the epochs the Adam options asked for.
TEST(ObservabilityIntegration, TesterAndAdamCountersMatchWorkload) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);

  auto& registry = MetricsRegistry::global();
  registry.reset();
  sim::ChipTester tester(sim::Environment::nominal(), 100, Rng(42));
  const auto first = tester.random_challenges(pop.chip(0), 10);
  const auto second = tester.random_challenges(pop.chip(0), 7);
  (void)tester.sample_xor(pop.chip(0), first);
  (void)tester.sample_xor(pop.chip(0), second);
  EXPECT_EQ(registry.snapshot().counters.at("tester.xor_samples"),
            first.size() + second.size());

  registry.reset();
  ml::Dataset data;
  for (int i = 0; i < 32; ++i) {
    const double a = (i % 2 == 0) ? 1.0 : -1.0;
    const double features[2] = {a, 0.5 * a};
    data.add(features, a > 0 ? 1.0 : 0.0);
  }
  ml::Mlp mlp(2, ml::MlpOptions{.hidden_layers = {4}});
  ml::MlpAdamOptions options;
  options.epochs = 3;
  options.batch_size = 8;
  Rng adam_rng(7);
  mlp.fit_adam(data, options, adam_rng);
  EXPECT_EQ(registry.snapshot().counters.at("ml.adam_epochs"),
            options.epochs);
}

// The concurrent half of the ServerDatabase contract (database.hpp):
// issue/verify/authenticate for DISTINCT pre-registered devices may run in
// parallel, and the registry counters must still equal the summed outcome
// fields — at 1, 2, and 8 threads, with bit-identical totals.
TEST(ObservabilityIntegration, ConcurrentDatabaseUseKeepsCountersExact) {
  constexpr std::size_t kDevices = 4;
  constexpr std::size_t kRequests = 3;
  sim::PopulationConfig cfg;
  cfg.n_chips = kDevices;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  const puf::Enroller enroller(ecfg);

  auto& registry = MetricsRegistry::global();
  std::uint64_t previous_issued = 0;
  for (const std::size_t threads : kThreadGrid) {
    ThreadPool::set_global_threads(threads);
    puf::ServerDatabase db(
        puf::DatabaseConfig{.n_pufs = 3, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
    // register/revoke need exclusive access: enroll + register serially...
    Rng enroll_rng(808);
    for (std::size_t i = 0; i < kDevices; ++i) {
      puf::ServerModel m = enroller.enroll(pop.chip(i), enroll_rng);
      m.set_betas(puf::BetaFactors{0.85, 1.15});
      db.register_device(std::move(m));
    }
    registry.reset();
    // ...then authenticate all devices concurrently, one device per chunk,
    // each on its own stream so the workload is thread-count invariant.
    const StreamFamily sessions(Rng(777).fork_base());
    std::vector<puf::DatabaseAuthOutcome> outcomes(kDevices * kRequests);
    parallel_for(kDevices, 1,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   for (std::size_t i = begin; i < end; ++i) {
                     Rng rng = sessions.stream(i);
                     for (std::size_t r = 0; r < kRequests; ++r)
                       outcomes[i * kRequests + r] = db.authenticate(
                           pop.chip(i), sim::Environment::nominal(), rng);
                   }
                 });
    std::uint64_t tried = 0, replays = 0, issued = 0, mismatches = 0;
    for (const auto& out : outcomes) {
      EXPECT_TRUE(out.known_device);
      tried += out.outcome.candidates_tried;
      replays += out.replay_rejected;
      issued += out.outcome.challenges_used;
      mismatches += out.outcome.mismatches;
    }
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("selection.candidates_tried"), tried)
        << "threads=" << threads;
    EXPECT_EQ(snap.counters.at("auth.replay_rejected"), replays)
        << "threads=" << threads;
    EXPECT_EQ(snap.counters.at("db.challenges_issued"), issued)
        << "threads=" << threads;
    EXPECT_EQ(snap.counters.at("auth.mismatches"), mismatches)
        << "threads=" << threads;
    EXPECT_EQ(snap.counters.at("db.auth_requests"), kDevices * kRequests)
        << "threads=" << threads;
    EXPECT_EQ(issued, kDevices * kRequests * 16u) << "threads=" << threads;
    // Bit-identical across the thread grid: stream-keyed sessions make the
    // summed totals a pure function of the workload.
    if (previous_issued == 0)
      previous_issued = tried + mismatches;
    else
      EXPECT_EQ(previous_issued, tried + mismatches)
          << "threads=" << threads;
    for (std::size_t i = 0; i < kDevices; ++i)
      EXPECT_EQ(db.issued_count(i), kRequests * 16u) << "device " << i;
  }
  ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace xpuf
