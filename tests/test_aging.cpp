// Tests for the BTI aging extension: drift accumulates irreversibly,
// follows the power law, and degrades enrolled-model validity the way the
// paper's Sec 1 concern ("temperature, voltage, and aging conditions")
// anticipates — with re-enrollment as the recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "puf/authentication.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::sim {
namespace {

ArbiterPufDevice make_device(std::uint64_t seed) {
  DeviceParameters params;
  Rng rng(seed);
  return ArbiterPufDevice(params, EnvironmentModel{}, rng);
}

TEST(Aging, FreshDeviceHasNoDrift) {
  const auto d = make_device(1);
  EXPECT_DOUBLE_EQ(d.stress_hours(), 0.0);
}

TEST(Aging, StressAccumulates) {
  auto d = make_device(2);
  d.age(100.0);
  d.age(400.0);
  EXPECT_DOUBLE_EQ(d.stress_hours(), 500.0);
  EXPECT_THROW(d.age(-1.0), std::invalid_argument);
}

TEST(Aging, DriftShiftsDelays) {
  auto d = make_device(3);
  Rng crng(4);
  const auto c = random_challenge(32, crng);
  const auto env = Environment::nominal();
  const double fresh = d.delay_difference(c, env);
  d.age(10'000.0);
  EXPECT_NE(d.delay_difference(c, env), fresh);
}

TEST(Aging, DriftFollowsThePowerLaw) {
  // delta(t) - delta(0) scales as t^0.2: quadrupling a 10x stress gap
  // changes the drift by 10^0.2.
  auto d1 = make_device(5);
  auto d2 = make_device(5);
  Rng crng(6);
  const auto c = random_challenge(32, crng);
  const auto env = Environment::nominal();
  const double base = d1.delay_difference(c, env);
  d1.age(1'000.0);
  d2.age(10'000.0);
  const double drift1 = d1.delay_difference(c, env) - base;
  const double drift2 = d2.delay_difference(c, env) - base;
  ASSERT_NE(drift1, 0.0);
  EXPECT_NEAR(drift2 / drift1, std::pow(10.0, 0.2), 1e-9);
}

TEST(Aging, ReducedWeightsTrackTheDrift) {
  auto d = make_device(7);
  Rng crng(8);
  const auto env = Environment::nominal();
  d.age(5'000.0);
  const linalg::Vector w = d.reduced_weights(env);
  for (int i = 0; i < 30; ++i) {
    const auto c = random_challenge(32, crng);
    EXPECT_NEAR(linalg::dot(w, puf::feature_vector(c)), d.delay_difference(c, env),
                1e-10);
  }
}

TEST(Aging, ChipAgesAllDevices) {
  PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 909;
  ChipPopulation pop(cfg);
  auto& chip = pop.chip(0);
  chip.age(2'000.0);
  EXPECT_DOUBLE_EQ(chip.stress_hours(), 2'000.0);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_DOUBLE_EQ(chip.device_for_analysis(p).stress_hours(), 2'000.0);
}

TEST(Aging, HeavyAgingDegradesEnrolledModelButReEnrollmentRecovers) {
  PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 4;
  cfg.seed = 6060;
  // Strong aging so the effect is visible at test scale.
  cfg.device.sigma_aging = 0.6;
  ChipPopulation pop(cfg);
  auto& chip = pop.chip(0);
  Rng rng(9);

  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  puf::ServerModel model = puf::Enroller(ecfg).enroll(chip, rng);
  const auto eval = puf::random_challenges(chip.stages(), 1'500, rng);
  const auto block = puf::measure_evaluation_block(chip, eval,
                                                   sim::Environment::nominal(), 2'000, rng);
  model.set_betas(puf::find_betas(model, {block}).betas);

  puf::AuthenticationServer server(model, 4, {.challenge_count = 64});
  const auto fresh = server.authenticate(chip, Environment::nominal(), rng);
  EXPECT_TRUE(fresh.approved);

  // A decade of stress: the frozen enrollment model starts missing.
  chip.age(90'000.0);
  std::size_t aged_mismatches = 0;
  for (int i = 0; i < 5; ++i)
    aged_mismatches += server.authenticate(chip, Environment::nominal(), rng).mismatches;
  EXPECT_GT(aged_mismatches, 0u);

  // Re-enrollment on the aged silicon restores zero-HD authentication.
  puf::ServerModel refreshed = puf::Enroller(ecfg).enroll(chip, rng);
  const auto block2 = puf::measure_evaluation_block(
      chip, eval, sim::Environment::nominal(), 2'000, rng);
  refreshed.set_betas(puf::find_betas(refreshed, {block2}).betas);
  puf::AuthenticationServer server2(refreshed, 4, {.challenge_count = 64});
  const auto recovered = server2.authenticate(chip, Environment::nominal(), rng);
  EXPECT_TRUE(recovered.approved);
  EXPECT_EQ(recovered.mismatches, 0u);
}

}  // namespace
}  // namespace xpuf::sim
