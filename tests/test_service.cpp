// Tests for the service engine (net/service.hpp): clean-wire end-to-end
// enroll -> authenticate -> revoke flows, graceful degradation under a
// hostile transport (every session in exactly one terminal state, never a
// crash or silent accept), zero accounting drift, and bit-identical runs at
// 1, 2, and 8 worker threads over the fixed shard grid.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "net/service.hpp"
#include "puf/enrollment.hpp"
#include "sim/population.hpp"

namespace xpuf::net {
namespace {

constexpr std::size_t kThreadGrid[] = {1, 2, 8};

struct Fleet {
  sim::ChipPopulation pop;
  std::vector<puf::ServerModel> models;
};

Fleet make_fleet(std::size_t devices) {
  sim::PopulationConfig cfg;
  cfg.n_chips = devices;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  Fleet fleet{sim::ChipPopulation(cfg), {}};
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 1'200;
  ecfg.trials = 2'000;
  const puf::Enroller enroller(ecfg);
  Rng rng(808);
  for (std::size_t i = 0; i < devices; ++i) {
    puf::ServerModel m = enroller.enroll(fleet.pop.chip(i), rng);
    m.set_betas(puf::BetaFactors{0.85, 1.15});
    fleet.models.push_back(std::move(m));
  }
  return fleet;
}

ServiceConfig base_config() {
  ServiceConfig config;
  config.seed = 1701;
  config.database.n_pufs = 3;
  config.database.policy.challenge_count = 16;
  return config;
}

std::unique_ptr<ServiceEngine> make_engine(Fleet& fleet,
                                           const ServiceConfig& config,
                                           std::uint32_t auth_sessions) {
  auto engine = std::make_unique<ServiceEngine>(config);
  for (std::size_t i = 0; i < fleet.pop.size(); ++i)
    engine->provision(fleet.pop.chip(i), fleet.models[i],
                      sim::Environment::nominal(), auth_sessions,
                      /*enroll_first=*/true, /*revoke_at_end=*/i % 3 == 2);
  return engine;
}

ServiceReport run_fleet(Fleet& fleet, const ServiceConfig& config,
                        std::uint32_t auth_sessions) {
  return make_engine(fleet, config, auth_sessions)->run();
}

TEST(ServiceEngine, CleanWireFullFlowApprovesEverySession) {
  Fleet fleet = make_fleet(6);
  MetricsRegistry::global().reset();
  const std::unique_ptr<ServiceEngine> engine =
      make_engine(fleet, base_config(), 2);
  const ServiceReport report = engine->run();
  EXPECT_TRUE(report.reconciled()) << (report.violations.empty()
                                           ? ""
                                           : report.violations.front());
  EXPECT_TRUE(report.all_idle);
  EXPECT_EQ(report.devices, 6u);
  // 6 devices x (1 enroll + 2 auth) + 2 revokes (devices 2 and 5).
  EXPECT_EQ(report.sessions_total, 20u);
  EXPECT_EQ(report.approved, report.sessions_total)
      << "a clean wire and honest chips must approve everything";
  EXPECT_EQ(report.denied + report.rejected + report.failed, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.frames_corrupt, 0u);
  EXPECT_EQ(report.faults.faults(), 0u);
  EXPECT_EQ(report.enroll_activated, 6u);
  EXPECT_EQ(report.revocations, 2u);
  // A clean wire never delivers duplicate or out-of-session frames, so the
  // ignored-frame ledger stays at zero.
  EXPECT_EQ(
      MetricsRegistry::global().snapshot().counters.at("net.frames_ignored"),
      0u);

  // Per-device ledgers: session ids are dense from 1, plans in order.
  const auto& records = engine->device_records(2);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().opened_with, FrameType::kEnrollBegin);
  EXPECT_EQ(records.back().opened_with, FrameType::kRevoke);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].session_id, i + 1);
    EXPECT_EQ(records[i].terminal, SessionPhase::kApproved);
    EXPECT_EQ(records[i].mismatches, 0u);
  }
}

TEST(ServiceEngine, FaultyWireEverySessionReachesExactlyOneTerminal) {
  Fleet fleet = make_fleet(8);
  ServiceConfig config = base_config();
  config.faults = FaultProfile::uniform(0.08);  // 40% of frames faulted
  MetricsRegistry::global().reset();
  const ServiceReport report = run_fleet(fleet, config, 3);
  for (const auto& violation : report.violations) ADD_FAILURE() << violation;
  EXPECT_TRUE(report.all_finished);
  EXPECT_TRUE(report.all_idle);
  // The partition invariant: terminals are exhaustive and exclusive.
  EXPECT_EQ(report.approved + report.denied + report.rejected + report.failed,
            report.sessions_total);
  EXPECT_GT(report.faults.faults(), 0u);
  EXPECT_GT(report.retries, 0u) << "a 40% fault rate must force retries";
  // No silent accepts: approvals never exceed the scripted plan.
  EXPECT_LE(report.approved, report.sessions_total);
}

TEST(ServiceEngine, FaultyRunIsBitIdenticalAcrossWorkerThreads) {
  Fleet fleet = make_fleet(10);
  ServiceConfig config = base_config();
  config.faults = FaultProfile::uniform(0.05);
  std::uint64_t first_fingerprint = 0;
  std::string first_snapshot;
  for (const std::size_t threads : kThreadGrid) {
    ThreadPool::set_global_threads(threads);
    MetricsRegistry::global().reset();
    const ServiceReport report = run_fleet(fleet, config, 3);
    for (const auto& violation : report.violations)
      ADD_FAILURE() << "threads=" << threads << ": " << violation;
    const std::string snapshot = MetricsRegistry::global().snapshot().to_json(
        "service", 0, /*include_timing=*/false);
    if (first_fingerprint == 0) {
      first_fingerprint = report.fingerprint;
      first_snapshot = snapshot;
    } else {
      EXPECT_EQ(report.fingerprint, first_fingerprint)
          << "fingerprint diverged at threads=" << threads;
      EXPECT_EQ(snapshot, first_snapshot)
          << "metrics snapshot diverged at threads=" << threads;
    }
  }
  ThreadPool::set_global_threads(0);
}

TEST(ServiceEngine, GlobalCountersReconcileWithTheReport) {
  Fleet fleet = make_fleet(5);
  ServiceConfig config = base_config();
  config.faults = FaultProfile::uniform(0.04);
  MetricsRegistry::global().reset();
  const ServiceReport report = run_fleet(fleet, config, 2);
  for (const auto& violation : report.violations) ADD_FAILURE() << violation;
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("net.sessions_opened"), report.sessions_total);
  EXPECT_EQ(snap.counters.at("net.session_approved"), report.approved);
  EXPECT_EQ(snap.counters.at("net.session_denied"), report.denied);
  EXPECT_EQ(snap.counters.at("net.session_rejected"), report.rejected);
  EXPECT_EQ(snap.counters.at("net.session_failed"), report.failed);
  EXPECT_EQ(snap.counters.at("net.retries"), report.retries);
  EXPECT_EQ(snap.counters.at("net.frames_sent"), report.frames_sent);
  EXPECT_EQ(snap.counters.at("net.frames_delivered"), report.frames_delivered);
  EXPECT_EQ(snap.counters.at("net.frames_corrupt"), report.frames_corrupt);
  EXPECT_EQ(snap.counters.at("net.frames_dropped"), report.faults.dropped);
  EXPECT_EQ(snap.counters.at("net.frames_duplicated"),
            report.faults.duplicated);
  EXPECT_EQ(snap.counters.at("net.frames_truncated"), report.faults.truncated);
  EXPECT_EQ(snap.counters.at("net.frames_bitflipped"),
            report.faults.bitflipped);
  // Duplicated frames land in the ignored ledger: a faulted wire must move
  // it, and it can never exceed what was actually delivered.
  EXPECT_GT(snap.counters.at("net.frames_ignored"), 0u);
  EXPECT_LT(snap.counters.at("net.frames_ignored"),
            snap.counters.at("net.frames_delivered"));
  // Revocation removes a device's replay ledger, so the live ledger size
  // trails the issue counter by exactly the revoked devices' issues.
  EXPECT_GT(snap.gauges.at("db.ledger_size"), 0.0);
  EXPECT_LT(snap.gauges.at("db.ledger_size"),
            static_cast<double>(snap.counters.at("db.challenges_issued")));
  EXPECT_EQ(snap.gauges.at("net.devices"), 5.0);
}

TEST(ServiceEngine, ConfigPreconditionsAreEnforced) {
  ServiceConfig config = base_config();
  config.shards = 0;
  EXPECT_THROW(ServiceEngine{config}, std::invalid_argument);
  config = base_config();
  config.session_ttl_rounds = 0;
  EXPECT_THROW(ServiceEngine{config}, std::invalid_argument);
  config = base_config();
  ServiceEngine engine(config);
  EXPECT_THROW(engine.run(), std::invalid_argument)
      << "run() without provisioned devices is a caller bug";
  EXPECT_THROW(engine.device_records(1), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::net
