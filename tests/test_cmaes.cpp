// Tests for the CMA-ES black-box minimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ml/cmaes.hpp"

namespace xpuf::ml {
namespace {

using linalg::Vector;

TEST(CmaEs, MinimizesSphere) {
  BlackBoxObjective f = [](const Vector& x) {
    double s = 0.0;
    for (double v : x) s += v * v;
    return s;
  };
  CmaEsOptions opts;
  opts.max_generations = 400;
  const CmaEsResult res = minimize_cmaes(f, Vector(5, 2.0), opts);
  EXPECT_LT(res.value, 1e-8);
  for (double v : res.x) EXPECT_NEAR(v, 0.0, 1e-3);
}

TEST(CmaEs, MinimizesShiftedEllipsoid) {
  // Strongly anisotropic quadratic with a shifted optimum — exercises the
  // covariance adaptation.
  BlackBoxObjective f = [](const Vector& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += std::pow(100.0, static_cast<double>(i) / 5.0) * d * d;
    }
    return s;
  };
  CmaEsOptions opts;
  opts.max_generations = 800;
  const CmaEsResult res = minimize_cmaes(f, Vector(6, 0.0), opts);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(res.x[i], static_cast<double>(i), 2e-2) << i;
}

TEST(CmaEs, MinimizesRosenbrockWithoutGradients) {
  BlackBoxObjective f = [](const Vector& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  CmaEsOptions opts;
  opts.max_generations = 600;
  opts.seed = 3;
  const CmaEsResult res = minimize_cmaes(f, Vector{-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], 1.0, 2e-2);
}

TEST(CmaEs, HandlesNonSmoothObjective) {
  // |x| + 0.5 |y| — no gradient at the optimum, fine for an ES.
  BlackBoxObjective f = [](const Vector& x) {
    return std::fabs(x[0]) + 0.5 * std::fabs(x[1]);
  };
  const CmaEsResult res = minimize_cmaes(f, Vector{3.0, -4.0});
  EXPECT_LT(res.value, 1e-4);
}

TEST(CmaEs, SurvivesNonFiniteRegions) {
  // Infinite outside the unit disc.
  BlackBoxObjective f = [](const Vector& x) {
    const double r2 = x[0] * x[0] + x[1] * x[1];
    if (r2 > 1.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.2) * (x[0] - 0.2) + (x[1] + 0.1) * (x[1] + 0.1);
  };
  CmaEsOptions opts;
  opts.initial_sigma = 0.2;
  const CmaEsResult res = minimize_cmaes(f, Vector{0.0, 0.0}, opts);
  EXPECT_NEAR(res.x[0], 0.2, 1e-2);
  EXPECT_NEAR(res.x[1], -0.1, 1e-2);
}

TEST(CmaEs, IsDeterministicPerSeed) {
  BlackBoxObjective f = [](const Vector& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + x[1] * x[1];
  };
  CmaEsOptions opts;
  opts.seed = 9;
  opts.max_generations = 50;
  const CmaEsResult a = minimize_cmaes(f, Vector{0.0, 0.0}, opts);
  const CmaEsResult b = minimize_cmaes(f, Vector{0.0, 0.0}, opts);
  EXPECT_EQ(a.x.raw(), b.x.raw());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(CmaEs, ValidatesInput) {
  BlackBoxObjective f = [](const Vector&) { return 0.0; };
  EXPECT_THROW(minimize_cmaes(f, Vector{}), std::invalid_argument);
  CmaEsOptions bad;
  bad.initial_sigma = 0.0;
  EXPECT_THROW(minimize_cmaes(f, Vector{1.0}, bad), std::invalid_argument);
}

TEST(CmaEs, ThrowsOnAlwaysNonFiniteObjective) {
  BlackBoxObjective f = [](const Vector& x) {
    return x.empty() ? 0.0 : std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW(minimize_cmaes(f, Vector{1.0}), NumericalError);
}

TEST(CmaEs, StopsOnStagnation) {
  BlackBoxObjective f = [](const Vector& x) { return x[0] * x[0]; };
  CmaEsOptions opts;
  opts.max_generations = 10'000;
  opts.stagnation_window = 20;
  const CmaEsResult res = minimize_cmaes(f, Vector{5.0}, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.generations, 10'000u);
}

class CmaEsDimensionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmaEsDimensionSweep, SolvesSphereAtDimension) {
  const std::size_t n = GetParam();
  BlackBoxObjective f = [](const Vector& x) {
    double s = 0.0;
    for (double v : x) s += v * v;
    return s;
  };
  CmaEsOptions opts;
  opts.max_generations = 300 + 30 * n;
  opts.seed = 100 + n;
  const CmaEsResult res = minimize_cmaes(f, Vector(n, 1.0), opts);
  EXPECT_LT(res.value, 1e-6) << "dim " << n;
}

INSTANTIATE_TEST_SUITE_P(Dims, CmaEsDimensionSweep, ::testing::Values(1u, 2u, 8u, 33u));

}  // namespace
}  // namespace xpuf::ml
