// Tests for model-based and measurement-based stable-challenge selection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "puf/selection.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() : pop_(make_config()), rng_(99) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'000;
    cfg.trials = 5'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
    model_.set_betas(BetaFactors{0.9, 1.1});
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 3;
    cfg.seed = 777;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(SelectionTest, ModelBasedSelectFillsQuota) {
  ModelBasedSelector selector(model_, 3);
  const SelectionResult res = selector.select(50, rng_);
  EXPECT_TRUE(res.filled);
  ASSERT_EQ(res.challenges.size(), 50u);
  ASSERT_EQ(res.expected_responses.size(), 50u);
  EXPECT_GE(res.candidates_tried, 50u);
  EXPECT_GT(res.yield(), 0.0);
  EXPECT_LE(res.yield(), 1.0);
}

TEST_F(SelectionTest, SelectedChallengesPassTheStablePredicate) {
  ModelBasedSelector selector(model_, 3);
  const SelectionResult res = selector.select(40, rng_);
  for (std::size_t i = 0; i < res.challenges.size(); ++i) {
    EXPECT_TRUE(model_.all_stable(res.challenges[i], 3));
    EXPECT_EQ(res.expected_responses[i], model_.predict_xor(res.challenges[i], 3));
  }
}

TEST_F(SelectionTest, AttemptBudgetIsRespected) {
  ModelBasedSelector selector(model_, 3);
  const SelectionResult res = selector.select(1'000'000, rng_, 500);
  EXPECT_FALSE(res.filled);
  EXPECT_EQ(res.candidates_tried, 500u);
  EXPECT_LT(res.challenges.size(), 1'000'000u);
}

TEST_F(SelectionTest, FilterAgreesWithPredicate) {
  ModelBasedSelector selector(model_, 2);
  const auto candidates = random_challenges(32, 500, rng_);
  const SelectionResult res = selector.filter(candidates);
  EXPECT_EQ(res.candidates_tried, 500u);
  std::size_t expected = 0;
  for (const auto& c : candidates)
    if (model_.all_stable(c, 2)) ++expected;
  EXPECT_EQ(res.challenges.size(), expected);
}

TEST_F(SelectionTest, NarrowerXorWidthYieldsMore) {
  ModelBasedSelector wide(model_, 3);
  ModelBasedSelector narrow(model_, 1);
  const auto candidates = random_challenges(32, 2'000, rng_);
  EXPECT_GE(narrow.filter(candidates).challenges.size(),
            wide.filter(candidates).challenges.size());
}

TEST_F(SelectionTest, SelectorValidatesWidth) {
  EXPECT_THROW(ModelBasedSelector(model_, 0), std::invalid_argument);
  EXPECT_THROW(ModelBasedSelector(model_, 4), std::invalid_argument);
}

TEST_F(SelectionTest, MeasurementBasedSelectorFindsTrulyStableCrps) {
  MeasurementBasedSelector selector(pop_.chip(0), sim::Environment::nominal(), 2'000, 3);
  const SelectionResult res = selector.select(20, rng_);
  EXPECT_TRUE(res.filled);
  ASSERT_EQ(res.challenges.size(), 20u);
  // Re-measure: each selected challenge should be stable again with high
  // probability (not guaranteed — sanity bound only).
  std::size_t stable = 0;
  for (const auto& c : res.challenges) {
    bool all = true;
    for (std::size_t p = 0; p < 3; ++p)
      if (!pop_.chip(0)
               .measure_soft_response(p, c, sim::Environment::nominal(), 2'000, rng_)
               .fully_stable())
        all = false;
    if (all) ++stable;
  }
  EXPECT_GE(stable, 17u);
}

TEST_F(SelectionTest, MeasurementBasedSelectorValidates) {
  EXPECT_THROW(
      MeasurementBasedSelector(pop_.chip(0), sim::Environment::nominal(), 0, 2),
      std::invalid_argument);
  EXPECT_THROW(
      MeasurementBasedSelector(pop_.chip(0), sim::Environment::nominal(), 100, 9),
      std::invalid_argument);
}

TEST_F(SelectionTest, MeasurementBasedSelectorNeedsTapAccess) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 778;
  sim::ChipPopulation pop(cfg);
  pop.chip(0).blow_fuses();
  MeasurementBasedSelector selector(pop.chip(0), sim::Environment::nominal(), 100, 2);
  EXPECT_THROW(selector.select(1, rng_), xpuf::AccessError);
}

TEST_F(SelectionTest, ExpectedResponsesOfMeasurementSelectorMatchModel) {
  // With both selectors on the same chip, measured-stable CRPs should get
  // the same expected XOR response from the model (near-perfect model).
  MeasurementBasedSelector msel(pop_.chip(0), sim::Environment::nominal(), 2'000, 3);
  const SelectionResult res = msel.select(30, rng_);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < res.challenges.size(); ++i)
    if (model_.predict_xor(res.challenges[i], 3) == res.expected_responses[i]) ++agree;
  EXPECT_GE(agree, 28u);
}

}  // namespace
}  // namespace xpuf::puf
