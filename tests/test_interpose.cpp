// Tests for the interpose PUF (iPUF) extension.
#include <gtest/gtest.h>

#include "linalg/least_squares.hpp"
#include "puf/transform.hpp"
#include "sim/interpose.hpp"

namespace xpuf::sim {
namespace {

InterposePuf make_ipuf(const InterposeConfig& cfg, std::uint64_t seed = 1) {
  Rng rng(seed);
  return InterposePuf(cfg, DeviceParameters{}, EnvironmentModel{}, rng);
}

TEST(Interpose, ValidatesConfiguration) {
  Rng rng(1);
  DeviceParameters params;
  InterposeConfig bad;
  bad.upper_pufs = 0;
  EXPECT_THROW(InterposePuf(bad, params, EnvironmentModel{}, rng),
               std::invalid_argument);
  bad = InterposeConfig{};
  bad.interpose_position = 40;  // beyond the 32-bit lower challenge
  EXPECT_THROW(InterposePuf(bad, params, EnvironmentModel{}, rng),
               std::invalid_argument);
  bad = InterposeConfig{};
  bad.lower_pufs = 0;
  EXPECT_THROW(InterposePuf(bad, params, EnvironmentModel{}, rng),
               std::invalid_argument);
}

TEST(Interpose, ChallengeLengthIsValidated) {
  const auto ipuf = make_ipuf(InterposeConfig{});
  Rng rng(2);
  EXPECT_THROW(ipuf.evaluate(Challenge(31, 0), Environment::nominal(), rng),
               std::invalid_argument);
  EXPECT_THROW(ipuf.response(Challenge(33, 0), Environment::nominal()),
               std::invalid_argument);
}

TEST(Interpose, NoiseFreeResponseIsDeterministic) {
  const auto ipuf = make_ipuf(InterposeConfig{});
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const auto c = random_challenge(32, rng);
    const bool r1 = ipuf.response(c, Environment::nominal());
    const bool r2 = ipuf.response(c, Environment::nominal());
    EXPECT_EQ(r1, r2);
  }
}

TEST(Interpose, ResponseIsBalanced) {
  const auto ipuf = make_ipuf(InterposeConfig{.upper_pufs = 2, .lower_pufs = 2});
  Rng rng(4);
  int ones = 0;
  const int n = 4'000;
  for (int i = 0; i < n; ++i)
    if (ipuf.response(random_challenge(32, rng), Environment::nominal())) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.05);
}

TEST(Interpose, InterposedBitActuallyMatters) {
  // Two iPUFs fabricated from the SAME RNG stream but with different
  // interpose positions share every stage delay; any response disagreement
  // can only come from where the upper bit is spliced in — so a nontrivial
  // disagreement fraction proves the interposed path shapes the response.
  Rng r1(100), r2(100);
  DeviceParameters params;
  InterposeConfig left;
  left.interpose_position = 4;
  InterposeConfig right;
  right.interpose_position = 28;
  const InterposePuf a(left, params, EnvironmentModel{}, r1);
  const InterposePuf b(right, params, EnvironmentModel{}, r2);
  int differ = 0;
  const int m = 600;
  Rng crng(6);
  for (int i = 0; i < m; ++i) {
    const auto c = random_challenge(32, crng);
    if (a.response(c, Environment::nominal()) != b.response(c, Environment::nominal()))
      ++differ;
  }
  EXPECT_GT(differ, m / 20);

  // And identical configurations from identical streams agree exactly.
  Rng r3(100), r4(100);
  const InterposePuf c1(left, params, EnvironmentModel{}, r3);
  const InterposePuf c2(left, params, EnvironmentModel{}, r4);
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    const auto c = random_challenge(32, crng);
    if (c1.response(c, Environment::nominal()) == c2.response(c, Environment::nominal()))
      ++same;
  }
  EXPECT_EQ(same, 200);
}

TEST(Interpose, StabilityComparableToEquivalentXor) {
  // iPUF(x=1, y=1) uses 2 arbiter PUFs; its stable fraction should be in
  // the same range as a 2-XOR (the interposed bit adds one more noise
  // source but only matters when the upper PUF is unstable).
  Rng fab(11);
  DeviceParameters params;
  const InterposePuf ipuf(InterposeConfig{}, params, EnvironmentModel{}, fab);
  Rng fab2(11);
  const XorPufChip xor2(0, 2, params, EnvironmentModel{}, fab2);
  Rng rng(12);
  const auto env = Environment::nominal();
  const std::uint64_t trials = 2'000;
  int stable_ipuf = 0, stable_xor = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const auto c = random_challenge(32, rng);
    if (ipuf.measure_soft_response(c, env, trials, rng).fully_stable()) ++stable_ipuf;
    if (xor2.measure_xor_soft_response(c, env, trials, rng).fully_stable()) ++stable_xor;
  }
  // Both near 0.8^2 = 0.64; allow generous slack.
  EXPECT_NEAR(static_cast<double>(stable_ipuf) / n,
              static_cast<double>(stable_xor) / n, 0.12);
}

TEST(Interpose, LinearModelCannotExplainIt) {
  // Fit the best linear additive model to noise-free iPUF responses: the
  // achievable accuracy must be clearly below the ~98% the same procedure
  // reaches on a plain arbiter PUF (the structural security argument).
  const auto ipuf = make_ipuf(InterposeConfig{.upper_pufs = 1, .lower_pufs = 1}, 21);
  Rng rng(13);
  const std::size_t train_n = 6'000;
  // Least squares on +/-1 targets over parity features.
  linalg::Matrix x(train_n, 33);
  linalg::Vector y(train_n);
  for (std::size_t i = 0; i < train_n; ++i) {
    const auto c = random_challenge(32, rng);
    puf::feature_vector_into(c, x.row(i));
    y[i] = ipuf.response(c, Environment::nominal()) ? 1.0 : -1.0;
  }
  const auto fit = linalg::solve_least_squares(x, y);
  std::size_t hits = 0;
  const std::size_t test_n = 4'000;
  for (std::size_t i = 0; i < test_n; ++i) {
    const auto c = random_challenge(32, rng);
    const linalg::Vector phi = puf::feature_vector(c);
    const bool pred = linalg::dot(fit.coefficients, phi) > 0.0;
    if (pred == ipuf.response(c, Environment::nominal())) ++hits;
  }
  const double accuracy = static_cast<double>(hits) / test_n;
  EXPECT_LT(accuracy, 0.93);
  EXPECT_GT(accuracy, 0.55);  // but far from random: half the mass is linear
}

}  // namespace
}  // namespace xpuf::sim
