// Tests for the authentication hot path: the batched stable-challenge
// screener's bit-exactness contract (any block size x any thread count ==
// the serial reference walk), per-device issuance pools (drain, low-water
// refill, live fallback, crash re-drain), the POOL record's crash safety at
// every truncation point, and zero-copy mapped model serving.

// GCC 12's value-range propagation mis-models std::less<vector<uint8_t>> when
// set::insert inlines memcmp in Release and reports an impossible bound
// (stringop-overread); the comparison is well-defined for any real vector.
// Before the includes because the late-IPA diagnostic anchors inside libstdc++.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "puf/database.hpp"
#include "puf/enrollment.hpp"
#include "puf/screening.hpp"
#include "puf/store/record.hpp"
#include "puf/store/store.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

namespace fs = std::filesystem;

std::uint64_t counter_or_zero(const MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// A realistically-enrolled 3-PUF model: genuine stable/unstable candidate
/// mix, deterministic across calls (fresh RNGs each time).
ServerModel enroll_model() {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 5150;
  sim::ChipPopulation pop(cfg);
  Rng rng(808);
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  ServerModel m = Enroller(ecfg).enroll(pop.chip(0), rng);
  m.set_betas(BetaFactors{0.85, 1.15});
  return m;
}

/// Deterministic hand-built model (test_store idiom) whose thresholds are
/// controllable — `unstable` makes every candidate classify kUnstable, so
/// screening can never accept.
ServerModel make_plain_model(std::uint64_t id, std::size_t stages, bool unstable = false) {
  std::vector<PufEnrollment> pufs;
  for (std::size_t p = 0; p < 3; ++p) {
    PufEnrollment e;
    linalg::Vector w(stages + 1);
    for (std::size_t i = 0; i <= stages; ++i)
      w[i] = 0.25 * static_cast<double>(i + p + 1) + 1e-9 * static_cast<double>(id);
    e.model = ArbiterPufModel(std::move(w));
    e.thresholds.thr0 = unstable ? -1e18 : 0.4 - 0.001 * static_cast<double>(p);
    e.thresholds.thr1 = unstable ? 1e18 : 0.6 + 0.001 * static_cast<double>(p);
    e.train_r_squared = 0.99;
    e.fit_time_ms = 1.0;
    pufs.push_back(std::move(e));
  }
  ServerModel m(static_cast<std::size_t>(id), std::move(pufs));
  m.set_betas(BetaFactors{0.85, 1.15});
  return m;
}

std::string unique_dir(const std::string& tag) {
  return (fs::temp_directory_path() / ("xpuf_screening_" + tag + "_" +
                                       std::to_string(::getpid())))
      .string();
}

struct Walk {
  std::vector<Challenge> challenges;
  std::vector<bool> bits;
  ChallengeScreener::Outcome out;
};

Walk run_walk(const ModelView& view, ScreeningOptions opts, std::uint64_t family_base,
              std::uint64_t first, std::size_t count, std::size_t max_attempts) {
  ChallengeScreener screener(view, 3, opts);
  Walk w;
  w.out = screener.screen(StreamFamily(family_base), first, count, max_attempts,
                          [&](Challenge&& c, bool bit) {
                            w.challenges.push_back(std::move(c));
                            w.bits.push_back(bit);
                            return true;
                          });
  return w;
}

void expect_walks_identical(const Walk& a, const Walk& b) {
  EXPECT_EQ(a.challenges, b.challenges);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.out.tried, b.out.tried);
  EXPECT_EQ(a.out.stable, b.out.stable);
  EXPECT_EQ(a.out.accepted, b.out.accepted);
  EXPECT_EQ(a.out.filled, b.out.filled);
  EXPECT_EQ(a.out.next_index, b.out.next_index);
}

void expect_batches_identical(const ChallengeBatch& a, const ChallengeBatch& b) {
  EXPECT_EQ(a.challenges, b.challenges);
  EXPECT_EQ(a.expected, b.expected);
}

// --- batched screening bit-exactness ----------------------------------------

TEST(ScreeningEquivalence, BatchedMatchesSerialAtEveryBlockSizeAndThreadCount) {
  const ServerModel model = enroll_model();
  const ModelView view = ModelView::of(model);
  const std::uint64_t base = 0xdecafbadULL;
  const Walk ref =
      run_walk(view, {.block = 256, .batched = false}, base, 0, 24, 1'000'000);
  ASSERT_TRUE(ref.out.filled);
  ASSERT_EQ(ref.out.accepted, 24u);
  // Rejection sampling really rejected something, or the model is degenerate
  // and the equivalence below is vacuous.
  ASSERT_GT(ref.out.tried, ref.out.accepted);

  const std::size_t kBlocks[] = {1, 64, 1024};
  const std::size_t kThreads[] = {1, 2, 8};
  for (const std::size_t block : kBlocks) {
    for (const std::size_t threads : kThreads) {
      ThreadPool::set_global_threads(threads);
      const Walk got =
          run_walk(view, {.block = block, .batched = true}, base, 0, 24, 1'000'000);
      SCOPED_TRACE("block=" + std::to_string(block) +
                   " threads=" + std::to_string(threads));
      expect_walks_identical(ref, got);
    }
  }
  ThreadPool::set_global_threads(0);
}

TEST(ScreeningEquivalence, WalkResumesFromNextIndexWithoutSeams) {
  const ServerModel model = enroll_model();
  const ModelView view = ModelView::of(model);
  const std::uint64_t base = 77;
  const Walk whole = run_walk(view, {}, base, 0, 24, 1'000'000);
  Walk head = run_walk(view, {}, base, 0, 10, 1'000'000);
  const Walk tail = run_walk(view, {}, base, head.out.next_index, 14, 1'000'000);
  head.challenges.insert(head.challenges.end(), tail.challenges.begin(),
                         tail.challenges.end());
  head.bits.insert(head.bits.end(), tail.bits.begin(), tail.bits.end());
  EXPECT_EQ(head.challenges, whole.challenges);
  EXPECT_EQ(head.bits, whole.bits);
  EXPECT_EQ(tail.out.next_index, whole.out.next_index);
  EXPECT_EQ(head.out.tried + tail.out.tried, whole.out.tried);
}

TEST(ScreeningEquivalence, SinkRejectionKeepsModesAligned) {
  const ServerModel model = enroll_model();
  const ModelView view = ModelView::of(model);
  // A sink that rejects every other stable candidate (the replay-ledger
  // shape) must leave both modes walking the identical candidate sequence.
  const auto run = [&](bool batched) {
    ChallengeScreener s(view, 3, {.block = 64, .batched = batched});
    Walk w;
    bool toggle = false;
    w.out = s.screen(StreamFamily(31337), 0, 12, 1'000'000,
                     [&](Challenge&& c, bool bit) {
                       toggle = !toggle;
                       if (!toggle) return false;
                       w.challenges.push_back(std::move(c));
                       w.bits.push_back(bit);
                       return true;
                     });
    return w;
  };
  const Walk serial = run(false);
  const Walk batched = run(true);
  expect_walks_identical(serial, batched);
  EXPECT_EQ(serial.out.accepted, 12u);
  // accept/reject alternation ending on the 12th accept: 23 stable in total.
  EXPECT_EQ(serial.out.stable, 23u);
}

TEST(ScreeningEquivalence, ScreeningConsumesNothingFromTheCallerRng) {
  const ServerModel model = enroll_model();
  const ModelView view = ModelView::of(model);
  Rng used(42);
  Rng mirror(42);
  const StreamFamily family(used.fork_base());
  (void)mirror.fork_base();
  (void)run_walk(view, {}, family.base(), 0, 24, 1'000'000);
  // The walk seeded per-candidate streams from the family alone; the caller
  // RNG advanced exactly one fork_base() draw.
  EXPECT_EQ(used.next_u64(), mirror.next_u64());
}

TEST(ScreeningEquivalence, IssueLiveIsBitIdenticalAcrossScreeningModes) {
  const DatabaseConfig serial_cfg{
      .n_pufs = 3,
      .policy = {.challenge_count = 16},
      .screening = {.block = 256, .batched = false},
      .pool = {}};
  DatabaseConfig batched_cfg = serial_cfg;
  batched_cfg.screening.batched = true;
  ServerDatabase serial_db(serial_cfg);
  ServerDatabase batched_db(batched_cfg);
  serial_db.register_device(enroll_model());
  batched_db.register_device(enroll_model());
  for (int round = 0; round < 4; ++round) {
    Rng serial_rng(900 + round);
    Rng batched_rng(900 + round);
    const ChallengeBatch a = serial_db.issue_live(0, serial_rng);
    const ChallengeBatch b = batched_db.issue_live(0, batched_rng);
    SCOPED_TRACE("round " + std::to_string(round));
    expect_batches_identical(a, b);
    EXPECT_EQ(a.candidates_tried, b.candidates_tried);
  }
}

// --- issuance pools ---------------------------------------------------------

DatabaseConfig pooled_config(std::size_t target) {
  return DatabaseConfig{.n_pufs = 3,
                        .policy = {.challenge_count = 16},
                        .screening = {},
                        .pool = {.target = target, .low_water = 8,
                                 .seed = 0x706f6f6c73656564ull}};
}

TEST(IssuancePool, PooledSequenceIsAPureFunctionOfThePoolSeed) {
  ServerDatabase a(pooled_config(64));
  ServerDatabase b(pooled_config(64));
  a.register_device(enroll_model());
  b.register_device(enroll_model());
  Rng ra(1);
  Rng rb(0xfeed);
  for (int round = 0; round < 4; ++round) {
    const ChallengeBatch batch_a = a.issue(0, ra);
    const ChallengeBatch batch_b = b.issue(0, rb);
    SCOPED_TRACE("round " + std::to_string(round));
    expect_batches_identical(batch_a, batch_b);
  }
  // Neither caller RNG was touched: the pooled path never falls back.
  EXPECT_EQ(ra.next_u64(), Rng(1).next_u64());
}

TEST(IssuancePool, DrainRefillAccountingAndReplayFreedom) {
  ServerDatabase db(pooled_config(64));
  db.register_device(enroll_model());
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  std::set<Challenge> seen;
  for (int round = 1; round <= 12; ++round) {
    Rng rng(static_cast<std::uint64_t>(round));
    const ChallengeBatch batch = db.issue(0, rng);
    ASSERT_EQ(batch.challenges.size(), 16u);
    for (const auto& c : batch.challenges)
      EXPECT_TRUE(seen.insert(c).second) << "challenge reused in round " << round;
    if (round % 4 != 0) {
      // Pure drain: no screening ran at all.
      EXPECT_EQ(batch.candidates_tried, 0u) << "round " << round;
    } else {
      // target 64 / 16 per batch: every 4th round empties the pool below
      // low_water and pays one refill screen.
      EXPECT_GT(batch.candidates_tried, 0u) << "round " << round;
    }
  }
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  EXPECT_EQ(counter_or_zero(after, "auth.pool_hits") -
                counter_or_zero(before, "auth.pool_hits"),
            12u);
  EXPECT_EQ(counter_or_zero(after, "auth.pool_misses"),
            counter_or_zero(before, "auth.pool_misses"));
  EXPECT_EQ(counter_or_zero(after, "auth.pool_refills") -
                counter_or_zero(before, "auth.pool_refills"),
            3u);
  EXPECT_EQ(counter_or_zero(after, "db.issue_requests") -
                counter_or_zero(before, "db.issue_requests"),
            12u);
  EXPECT_EQ(db.issued_count(0), 192u);
  // The fleet gauge tracks this device's undrained entries exactly.
  EXPECT_EQ(after.gauges.at("auth.pool_size"),
            static_cast<double>(db.pool_remaining(0)));
  EXPECT_GE(db.pool_remaining(0), 8u);
}

TEST(IssuancePool, DisabledPoolingIsBitIdenticalToLiveScreening) {
  ServerDatabase pooled_off(pooled_config(0));
  ServerDatabase reference(pooled_config(0));
  pooled_off.register_device(enroll_model());
  reference.register_device(enroll_model());
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  Rng ra(4242);
  Rng rb(4242);
  const ChallengeBatch via_issue = pooled_off.issue(0, ra);
  const ChallengeBatch via_live = reference.issue_live(0, rb);
  expect_batches_identical(via_issue, via_live);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  // issue() ledger: one request, resolved as a pool miss; the direct
  // issue_live() call (the bench's reference side) counts in neither.
  EXPECT_EQ(counter_or_zero(after, "db.issue_requests") -
                counter_or_zero(before, "db.issue_requests"),
            1u);
  EXPECT_EQ(counter_or_zero(after, "auth.pool_misses") -
                counter_or_zero(before, "auth.pool_misses"),
            1u);
  EXPECT_EQ(counter_or_zero(after, "auth.pool_hits"),
            counter_or_zero(before, "auth.pool_hits"));
}

TEST(IssuancePool, DryScreeningBypassesThePoolThenSurfacesExhaustion) {
  DatabaseConfig cfg = pooled_config(8);
  cfg.policy.max_selection_attempts = 200;
  ServerDatabase db(cfg);
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  // Thresholds classify every candidate unstable: registration's pre-screen
  // and both in-issue refills come back empty, so issue() bypasses to live
  // screening — which then exhausts the same attempt budget honestly.
  db.register_device(make_plain_model(0, 64, /*unstable=*/true));
  EXPECT_EQ(db.pool_remaining(0), 0u);
  Rng rng(7);
  EXPECT_THROW((void)db.issue(0, rng), NumericalError);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  EXPECT_EQ(counter_or_zero(after, "auth.pool_misses") -
                counter_or_zero(before, "auth.pool_misses"),
            1u);
  // One registration refill + two dry in-issue refills.
  EXPECT_EQ(counter_or_zero(after, "auth.pool_refills") -
                counter_or_zero(before, "auth.pool_refills"),
            3u);
}

TEST(IssuancePool, CrashRecoveryRedrainIsScreenedByTheDurableLedger) {
  const std::string dir = unique_dir("redrain");
  fs::remove_all(dir);
  ChallengeBatch first;
  {
    ServerDatabase db = ServerDatabase::open(dir, pooled_config(64));
    db.register_device(enroll_model());
    Rng rng(1);
    first = db.issue(0, rng);
    EXPECT_EQ(first.replay_rejected, 0u);
    ASSERT_EQ(first.challenges.size(), 16u);
  }
  {
    // Reopen == crash recovery: the drain head is volatile and resets to 0,
    // so the first batch's entries are re-drained — and every one of them
    // is rejected by the replayed ledger, never re-issued.
    ServerDatabase db = ServerDatabase::open(dir, pooled_config(64));
    Rng rng(2);
    const ChallengeBatch second = db.issue(0, rng);
    EXPECT_EQ(second.replay_rejected, 16u);
    ASSERT_EQ(second.challenges.size(), 16u);
    std::set<Challenge> overlap(first.challenges.begin(), first.challenges.end());
    for (const auto& c : second.challenges)
      EXPECT_EQ(overlap.count(c), 0u) << "issued challenge repeated after recovery";
  }
  fs::remove_all(dir);
}

// --- POOL records in the store ----------------------------------------------

store::PoolPayload make_pool_payload(std::uint32_t stages, std::size_t entries) {
  store::PoolPayload pool;
  pool.stages = stages;
  pool.epoch = 1;
  pool.cursor = 987'654'321;
  for (std::size_t i = 0; i < entries; ++i) {
    Challenge c(stages);
    for (std::size_t j = 0; j < stages; ++j)
      c[j] = static_cast<std::uint8_t>((i + j) % 2);
    pool.keys.push_back(store::pack_challenge(c));
    pool.expected.push_back(static_cast<std::uint8_t>(i % 2));
  }
  return pool;
}

void expect_pools_equal(const store::PoolPayload& a, const store::PoolPayload& b) {
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.cursor, b.cursor);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.expected, b.expected);
}

TEST(PoolRecord, RoundTripsThroughStoreCompactionAndReplay) {
  const std::string dir = unique_dir("pool_roundtrip");
  fs::remove_all(dir);
  // Odd stage count on purpose: the packed rows (2 bytes each) and the
  // expected-bit bitmap exercise the sub-byte tails.
  const store::PoolPayload pool = make_pool_payload(13, 9);
  {
    store::EnrollmentStore s = store::EnrollmentStore::open(dir, {});
    s.register_device(make_plain_model(7, 13));
    store::PoolPayload stale = make_pool_payload(13, 4);
    stale.epoch = 0;
    s.record_pool(7, stale);
    s.record_pool(7, pool);  // append order is authority: latest wins
    store::PoolPayload got;
    ASSERT_TRUE(s.read_pool(7, got));
    expect_pools_equal(pool, got);
    s.set_pool_head(7, 3);
    EXPECT_EQ(s.pool_entries_total(), 6u);
    s.compact();
    store::PoolPayload after;
    ASSERT_TRUE(s.read_pool(7, after));
    expect_pools_equal(pool, after);
    store::PoolSlot slot;
    ASSERT_TRUE(s.pool_slot(7, slot));
    EXPECT_EQ(slot.head, 3u);  // head/epoch/cursor survive; only bytes moved
    EXPECT_EQ(s.pool_entries_total(), 6u);
  }
  {
    store::EnrollmentStore s = store::EnrollmentStore::open(dir, {});
    store::PoolSlot slot;
    ASSERT_TRUE(s.pool_slot(7, slot));
    EXPECT_EQ(slot.head, 0u);  // the drain head is volatile by contract
    EXPECT_EQ(slot.epoch, 1u);
    EXPECT_EQ(slot.cursor, 987'654'321u);
    store::PoolPayload got;
    ASSERT_TRUE(s.read_pool(7, got));
    expect_pools_equal(pool, got);
    // Slices materialize exactly the asked-for window.
    std::vector<std::string> keys;
    std::vector<std::uint8_t> expected;
    s.read_pool_slice(7, 3, 4, keys, expected);
    ASSERT_EQ(keys.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(keys[i], pool.keys[3 + i]);
      EXPECT_EQ(expected[i], pool.expected[3 + i]);
    }
  }
  fs::remove_all(dir);
}

TEST(PoolRecord, TruncationAtEveryByteKeepsTheAcknowledgedPrefix) {
  const std::string dir = unique_dir("pool_cut");
  fs::remove_all(dir);
  const store::PoolPayload pool = make_pool_payload(13, 9);
  std::uint64_t register_end = 0;
  std::uint64_t pool_end = 0;
  store::StoreOptions opts;
  opts.n_shards = 1;
  {
    store::EnrollmentStore s = store::EnrollmentStore::open(dir, opts);
    s.register_device(make_plain_model(0, 13));
    register_end = s.shard_size(0);
    s.record_pool(0, pool);
    pool_end = s.shard_size(0);
  }
  const std::string shard_path = dir + "/shard_0.log";
  const std::string scratch = unique_dir("pool_cut_scratch");
  for (std::uint64_t cut = 0; cut <= pool_end; ++cut) {
    fs::remove_all(scratch);
    fs::copy(dir, scratch, fs::copy_options::recursive);
    fs::resize_file(scratch + "/shard_0.log", cut);
    store::EnrollmentStore s = store::EnrollmentStore::open(scratch, opts);
    const std::uint64_t expect_size =
        cut >= pool_end ? pool_end : (cut >= register_end ? register_end : 0);
    EXPECT_EQ(s.shard_size(0), expect_size) << "cut " << cut;
    EXPECT_EQ(s.knows(0), cut >= register_end) << "cut " << cut;
    store::PoolPayload got;
    if (cut >= pool_end) {
      ASSERT_TRUE(s.read_pool(0, got)) << "cut " << cut;
      expect_pools_equal(pool, got);
    } else {
      EXPECT_FALSE(s.read_pool(0, got)) << "cut " << cut;
      EXPECT_EQ(s.pool_entries_total(), 0u) << "cut " << cut;
    }
  }
  fs::remove_all(scratch);
  fs::remove_all(dir);
  (void)shard_path;
}

// --- zero-copy mapped model serving ------------------------------------------

TEST(MappedServing, RegisterRecordFloatRegionsStayEightByteAligned) {
  const std::string dir = unique_dir("alignment");
  fs::remove_all(dir);
  store::StoreOptions opts;
  opts.n_shards = 1;
  store::EnrollmentStore s = store::EnrollmentStore::open(dir, opts);
  // Interleave REGISTERs with odd-length ISSUE records (13-stage keys pack
  // to 2 bytes) so every alignment phase is visited.
  for (std::uint64_t id = 0; id < 5; ++id) {
    s.register_device(make_plain_model(id, 13));
    Challenge c(13, static_cast<std::uint8_t>(id % 2));
    const std::string key = store::pack_challenge(c);
    s.ledger(id).insert(key);
    s.record_issued(id, 13, {key});
    // REGISTER payload: 8 bytes of geometry, then the f64 region — at
    // record offset + header(16) + 8. The pad record in front guarantees
    // this lands on an 8-byte boundary for every device.
    EXPECT_EQ((s.device_record(id).offset + 24) % 8, 0u) << "device " << id;
  }
  fs::remove_all(dir);
}

TEST(MappedServing, ColdModelViewsAreZeroCopyBitExactAndSurviveCompaction) {
  const std::string dir = unique_dir("mmap_serving");
  fs::remove_all(dir);
  store::StoreOptions opts;
  opts.n_shards = 1;
  opts.cache_capacity = 1;
  {
    store::EnrollmentStore s = store::EnrollmentStore::open(dir, opts);
    for (std::uint64_t id = 0; id < 3; ++id) s.register_device(make_plain_model(id, 64));
  }
  // Reopen: the shard mapping now covers every record written above.
  store::EnrollmentStore s = store::EnrollmentStore::open(dir, opts);
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  ModelView held;
  for (std::uint64_t id = 0; id < 3; ++id) {
    const ModelView view = s.model_view(id);
    const ServerModel ref = make_plain_model(id, 64);
    const ModelView expect = ModelView::of(ref);
    ASSERT_EQ(view.puf_count(), expect.puf_count());
    ASSERT_EQ(view.stages(), expect.stages());
    EXPECT_EQ(view.chip_id(), id);
    for (std::size_t p = 0; p < view.puf_count(); ++p) {
      const std::span<const double> got = view.weights(p);
      const std::span<const double> want = expect.weights(p);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t k = 0; k < got.size(); ++k)
        ASSERT_EQ(got[k], want[k]) << "id " << id << " puf " << p << " w" << k;
    }
    if (id == 0) held = view;
  }
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();
  // The cache is cold (capacity 1, nothing decoded): every resolution was a
  // mapped view, no parse, no copy.
  EXPECT_EQ(counter_or_zero(after, "db.mmap_hits") -
                counter_or_zero(before, "db.mmap_hits"),
            3u);
  EXPECT_GT(counter_or_zero(after, "db.mmap_bytes"),
            counter_or_zero(before, "db.mmap_bytes"));
  // Compaction rewrites the shard and remaps it; the held view co-owns the
  // OLD mapping and must keep reading the same bits.
  s.compact();
  const ServerModel ref = make_plain_model(0, 64);
  const ModelView expect = ModelView::of(ref);
  for (std::size_t p = 0; p < held.puf_count(); ++p) {
    const std::span<const double> got = held.weights(p);
    const std::span<const double> want = expect.weights(p);
    for (std::size_t k = 0; k < got.size(); ++k) ASSERT_EQ(got[k], want[k]);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace xpuf::puf
