// Tests for the frame stream decoder (net/async/stream_decoder.hpp): the
// buffer-boundary invariance contract. A stream socket may deliver a frame
// sequence in ANY byte chunking — one byte at a time, k bytes at a time, or
// splits landing exactly on header/payload/CRC boundaries — and the decoder
// must emit the identical blob sequence for every chunking. The dribble
// sweeps here feed the same valid stream at every split offset and granule
// size and require bit-identical output, plus resync coverage for garbage
// prefixes and corrupted CRCs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/metrics.hpp"
#include "net/async/stream_decoder.hpp"
#include "net/wire.hpp"

namespace xpuf::net::async {
namespace {

Frame make_frame(std::uint64_t device_id, std::uint32_t session_id,
                 std::uint32_t seq, std::size_t payload_bytes) {
  Frame frame;
  frame.header.type = FrameType::kChallengeBatch;
  frame.header.device_id = device_id;
  frame.header.session_id = session_id;
  frame.header.seq = seq;
  frame.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i)
    frame.payload[i] = static_cast<std::uint8_t>((i * 7 + seq) & 0xff);
  return frame;
}

/// A stream of frames with deliberately varied payload sizes (empty, tiny,
/// and larger-than-any-chunk) so chunk boundaries land in every region.
std::vector<std::vector<std::uint8_t>> make_stream() {
  std::vector<std::vector<std::uint8_t>> encoded;
  encoded.push_back(encode_frame(make_frame(7, 1, 0, 0)));
  encoded.push_back(encode_frame(make_frame(7, 1, 1, 3)));
  encoded.push_back(encode_frame(make_frame(1234, 2, 2, 64)));
  encoded.push_back(encode_frame(make_frame(7, 3, 3, 1)));
  return encoded;
}

std::vector<std::uint8_t> concat(const std::vector<std::vector<std::uint8_t>>& blobs) {
  std::vector<std::uint8_t> bytes;
  for (const auto& b : blobs) bytes.insert(bytes.end(), b.begin(), b.end());
  return bytes;
}

/// Feeds `bytes` in chunks of `granule` and returns every emitted blob.
std::vector<std::vector<std::uint8_t>> decode_chunked(
    const std::vector<std::uint8_t>& bytes, std::size_t granule) {
  FrameStreamDecoder decoder;
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t at = 0; at < bytes.size(); at += granule) {
    const std::size_t n = std::min(granule, bytes.size() - at);
    decoder.feed(bytes.data() + at, n);
    while (auto blob = decoder.next()) out.push_back(std::move(*blob));
  }
  EXPECT_TRUE(decoder.empty()) << "a whole-frame stream must drain fully";
  return out;
}

TEST(FrameStreamDecoder, WholeFrameFeedEmitsIdenticalBlobs) {
  const auto encoded = make_stream();
  FrameStreamDecoder decoder;
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& blob : encoded) {
    decoder.feed(blob.data(), blob.size());
    while (auto got = decoder.next()) out.push_back(std::move(*got));
  }
  ASSERT_EQ(out, encoded);
  EXPECT_EQ(decoder.resync_bytes(), 0u);
}

TEST(FrameStreamDecoder, OneByteDribbleIsBoundaryInvariant) {
  const auto encoded = make_stream();
  const auto bytes = concat(encoded);
  EXPECT_EQ(decode_chunked(bytes, 1), encoded)
      << "1-byte dribble must reproduce the whole-frame decode exactly";
}

TEST(FrameStreamDecoder, EveryGranuleProducesTheSameStream) {
  const auto encoded = make_stream();
  const auto bytes = concat(encoded);
  // Every granule from 2 bytes up to past the stream length: all chunkings
  // of the same byte stream are indistinguishable to the consumer.
  for (std::size_t granule = 2; granule <= bytes.size() + 3; ++granule)
    ASSERT_EQ(decode_chunked(bytes, granule), encoded)
        << "granule=" << granule;
}

TEST(FrameStreamDecoder, EverySplitOffsetOfATwoChunkFeedIsInvariant) {
  const auto encoded = make_stream();
  const auto bytes = concat(encoded);
  // Two-chunk feed split at EVERY offset — this walks the split across every
  // header byte, payload byte, and CRC byte of every frame in the stream.
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameStreamDecoder decoder;
    std::vector<std::vector<std::uint8_t>> out;
    decoder.feed(bytes.data(), split);
    while (auto blob = decoder.next()) out.push_back(std::move(*blob));
    decoder.feed(bytes.data() + split, bytes.size() - split);
    while (auto blob = decoder.next()) out.push_back(std::move(*blob));
    ASSERT_EQ(out, encoded) << "split=" << split;
    ASSERT_TRUE(decoder.empty()) << "split=" << split;
  }
}

TEST(FrameStreamDecoder, GarbagePrefixResyncsToTheFirstRealFrame) {
  MetricsRegistry::global().reset();
  const auto frame = encode_frame(make_frame(9, 1, 0, 8));
  std::vector<std::uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x00};
  const std::size_t garbage = bytes.size();
  bytes.insert(bytes.end(), frame.begin(), frame.end());

  FrameStreamDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto got = decoder.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
  EXPECT_EQ(decoder.resync_bytes(), garbage)
      << "each skipped garbage byte is counted, never silently dropped";
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.empty());
  // The skip ledger is mirrored in the global counter for the socket bench's
  // drift audit ("net.async.resync_bytes").
  EXPECT_EQ(MetricsRegistry::global().snapshot().counters.at(
                "net.async.resync_bytes"),
            garbage);
}

TEST(FrameStreamDecoder, CorruptedCrcResyncsAndStillFindsTheNextFrame) {
  const auto first = encode_frame(make_frame(3, 1, 0, 4));
  const auto second = encode_frame(make_frame(3, 1, 1, 4));
  std::vector<std::uint8_t> bytes = first;
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() - 1] ^= 0x01;  // break the CRC trailer of the first frame
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameStreamDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto got = decoder.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, second) << "the decoder must skip past the corrupt frame";
  EXPECT_GT(decoder.resync_bytes(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameStreamDecoder, OversizedLengthFieldNeverStallsTheStream) {
  // A header claiming a payload beyond kMaxPayloadBytes must be treated as
  // garbage (skip + resync), not as a frame to wait for — otherwise one bad
  // length field would stall the connection forever.
  Frame frame = make_frame(5, 1, 0, 4);
  std::vector<std::uint8_t> bad = encode_frame(frame);
  bad[20] = 0xff;  // payload_len LE bytes 20..23
  bad[21] = 0xff;
  bad[22] = 0xff;
  bad[23] = 0x7f;
  const auto good = encode_frame(make_frame(5, 1, 1, 2));
  bad.insert(bad.end(), good.begin(), good.end());

  FrameStreamDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  const auto got = decoder.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, good);
}

}  // namespace
}  // namespace xpuf::net::async
