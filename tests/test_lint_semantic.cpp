// Fixture tests for the xpuf_lint semantic engine (tools/xpuf_lint/engine.hpp):
// each cross-TU pass is driven on a minimal in-memory tree with at least one
// true positive and one clean counterexample, plus the suppression-budget and
// guarded-by round trips and the SARIF-lite JSON schema.
//
// Marker strings inside fixtures are assembled at runtime (lint_marker below)
// so this file's own raw lines never carry a parseable suppression comment.
#include "engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using xpuf::lint::Report;
using xpuf::lint::Violation;
using Files = std::vector<std::pair<std::string, std::string>>;

/// Builds "// xpuf-lint: <rest>" without this source file containing the
/// marker token itself.
std::string lint_marker(const std::string& rest) {
  return std::string("// xpuf-") + "lint: " + rest;
}

std::vector<Violation> with_rule(const Report& report, const std::string& rule) {
  std::vector<Violation> out;
  for (const Violation& v : report.violations)
    if (v.rule == rule) out.push_back(v);
  return out;
}

// --- Layering ---------------------------------------------------------------

TEST(LintLayering, FlagsAnIncludeEdgeAgainstTheModuleDag) {
  // ml may reach down to sim/linalg/common, never up into puf.
  const Report report = xpuf::lint::analyze_files({
      {"src/ml/model.hpp", "#pragma once\n#include \"puf/proto.hpp\"\n"},
      {"src/puf/proto.hpp", "#pragma once\n"},
  });
  const auto hits = with_rule(report, "layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/ml/model.hpp");
  EXPECT_EQ(hits[0].line, 2u);
}

TEST(LintLayering, AcceptsEdgesTheDagDeclares) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/top.hpp", "#pragma once\n#include \"ml/mid.hpp\"\n"},
      {"src/ml/mid.hpp", "#pragma once\n#include \"common/base.hpp\"\n"},
      {"src/common/base.hpp", "#pragma once\n"},
  });
  EXPECT_TRUE(with_rule(report, "layering").empty());
  EXPECT_EQ(report.stats.include_edges, 2u);
}

// --- Determinism: parallel-rng ----------------------------------------------

TEST(LintParallelRng, FlagsUnkeyedRngConstructionInAParallelBody) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/worker.cpp",
       "void scan(std::size_t n) {\n"
       "  XPUF_REQUIRE(n > 0, \"n\");\n"
       "  parallel_for(n, 64, [&](std::size_t b, std::size_t e, std::size_t) {\n"
       "    Rng local(123);\n"
       "    for (std::size_t i = b; i < e; ++i) (void)local.uniform();\n"
       "  });\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "parallel-rng");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4u);
}

TEST(LintParallelRng, AcceptsStreamKeyedPerItemGenerators) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/worker.cpp",
       "void scan(std::size_t n, const StreamFamily& streams) {\n"
       "  XPUF_REQUIRE(n > 0, \"n\");\n"
       "  parallel_for(n, 1, [&](std::size_t b, std::size_t e, std::size_t) {\n"
       "    for (std::size_t i = b; i < e; ++i) {\n"
       "      Rng local = streams.stream(i);\n"
       "      (void)local.uniform();\n"
       "    }\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "parallel-rng").empty());
}

TEST(LintParallelRng, FlagsOuterDrawsAndForksInsideTheBody) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/worker.cpp",
       "Rng shared(7);\n"
       "void work(std::size_t n) {\n"
       "  XPUF_REQUIRE(n > 0, \"n\");\n"
       "  parallel_for(n, 1, [&](std::size_t b, std::size_t e, std::size_t) {\n"
       "    (void)shared.uniform();\n"
       "    Rng child = shared.fork();\n"
       "    (void)child;\n"
       "  });\n"
       "}\n"},
  });
  // The outer-generator draw, the fork, and the unkeyed declaration.
  EXPECT_EQ(with_rule(report, "parallel-rng").size(), 3u);
}

// --- Determinism: unordered-fp ----------------------------------------------

TEST(LintUnorderedFp, FlagsHashIterationFeedingAnAccumulation) {
  const Report report = xpuf::lint::analyze_files({
      {"src/ml/acc.cpp",
       "double total() {\n"
       "  std::unordered_map<int, double> weights;\n"
       "  double sum = 0.0;\n"
       "  for (const auto& kv : weights) sum += kv.second;\n"
       "  return sum;\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "unordered-fp");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4u);
}

TEST(LintUnorderedFp, OrderedContainersAndNonAccumulatingLoopsAreClean) {
  const Report report = xpuf::lint::analyze_files({
      {"src/ml/acc.cpp",
       "double total() {\n"
       "  std::map<int, double> weights;\n"
       "  std::unordered_map<int, double> index;\n"
       "  double sum = 0.0;\n"
       "  for (const auto& kv : weights) sum += kv.second;\n"
       "  for (const auto& kv : index) check(kv.first);\n"
       "  return sum;\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "unordered-fp").empty());
}

// --- Wire pairing -----------------------------------------------------------

TEST(LintWirePairing, FlagsAWriterWithoutItsBoundsCheckedReader) {
  const Report report = xpuf::lint::analyze_files({
      {"src/net/wire.cpp",
       "void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {\n"
       "  out.push_back(static_cast<std::uint8_t>(v & 0xffu));\n"
       "  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "wire-pairing");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("read_u16"), std::string::npos);
}

TEST(LintWirePairing, FlagsEncodeDecodeSequenceDrift) {
  const Report report = xpuf::lint::analyze_files({
      {"src/net/wire.cpp",
       "constexpr std::uint64_t kPongBytes = 3;\n"
       "void encode_pong(std::vector<std::uint8_t>& out) {\n"
       "  out.reserve(kPongBytes);\n"
       "  put_u16(out, 7);\n"
       "  put_u8(out, 1);\n"
       "}\n"
       "void decode_pong(Cursor& in) {\n"
       "  read_u8(in);\n"
       "  read_u16(in);\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "wire-pairing");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("[u16,u8]"), std::string::npos);
  EXPECT_NE(hits[0].message.find("[u8,u16]"), std::string::npos);
}

TEST(LintWirePairing, FlagsReserveConstantsDriftedFromThePutLayout) {
  const Report report = xpuf::lint::analyze_files({
      {"src/net/wire.cpp",
       "constexpr std::uint64_t kPingBytes = 4;\n"
       "void encode_ping(std::vector<std::uint8_t>& out) {\n"
       "  out.reserve(kPingBytes);\n"
       "  put_u16(out, 7);\n"
       "  put_u8(out, 1);\n"
       "}\n"
       "void decode_ping(Cursor& in) {\n"
       "  read_u16(in);\n"
       "  read_u8(in);\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "wire-pairing");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("reserves 4"), std::string::npos);
  EXPECT_NE(hits[0].message.find("write 3"), std::string::npos);
}

TEST(LintWirePairing, AConsistentCodecIsClean) {
  const Report report = xpuf::lint::analyze_files({
      {"src/net/wire.cpp",
       "constexpr std::uint64_t kPingBytes = 3;\n"
       "void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {\n"
       "  out.push_back(static_cast<std::uint8_t>(v & 0xffu));\n"
       "  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));\n"
       "}\n"
       "std::uint16_t read_u16(Cursor& in) {\n"
       "  if (in.remaining() < 2) throw DecodeError(\"short frame\");\n"
       "  return in.take_u16();\n"
       "}\n"
       "void encode_ping(std::vector<std::uint8_t>& out) {\n"
       "  out.reserve(kPingBytes);\n"
       "  put_u16(out, 7);\n"
       "  put_u8(out, 1);\n"
       "}\n"
       "void decode_ping(Cursor& in) {\n"
       "  read_u16(in);\n"
       "  read_u8(in);\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "wire-pairing").empty());
}

// ISSUE 8: the pass also covers the enrollment-store codec (record.cpp), and
// folds the same-stem header into the local symbol set so inline byte
// primitives there are width-checked too. The violation anchors to the
// header, where the offending definition actually lives.
TEST(LintWirePairing, ChecksHeaderInlinePrimitivesOfARecordCodec) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/store/record.hpp",
       "#pragma once\n"
       "inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {\n"
       "  for (int shift = 0; shift < 32; shift += 8)\n"
       "    out.push_back(static_cast<std::uint8_t>(v >> shift));\n"
       "}\n"
       "inline bool RecordReader::read_u32(std::uint32_t& v) {\n"
       "  if (remaining() < 2) return false;\n"
       "  v = take32();\n"
       "  return true;\n"
       "}\n"},
      {"src/puf/store/record.cpp",
       "void encode_item(std::vector<std::uint8_t>& out) {\n"
       "  out.reserve(4);\n"
       "  put_u32(out, 7);\n"
       "}\n"
       "void decode_item(Cursor& in) {\n"
       "  read_u32(in);\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "wire-pairing");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/puf/store/record.hpp");
  EXPECT_NE(hits[0].message.find("guards 2"), std::string::npos);
}

TEST(LintWirePairing, ARecordCodecWithHeaderConstantsIsClean) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/store/record.hpp",
       "#pragma once\n"
       "inline constexpr std::uint32_t kItemBytes = 6;\n"
       "inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {\n"
       "  out.push_back(static_cast<std::uint8_t>(v));\n"
       "  out.push_back(static_cast<std::uint8_t>(v >> 8));\n"
       "}\n"
       "inline bool RecordReader::read_u16(std::uint16_t& v) {\n"
       "  if (remaining() < 2) return false;\n"
       "  v = take16();\n"
       "  return true;\n"
       "}\n"
       "inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {\n"
       "  for (int shift = 0; shift < 32; shift += 8)\n"
       "    out.push_back(static_cast<std::uint8_t>(v >> shift));\n"
       "}\n"
       "inline bool RecordReader::read_u32(std::uint32_t& v) {\n"
       "  if (remaining() < 4) return false;\n"
       "  v = take32();\n"
       "  return true;\n"
       "}\n"},
      {"src/puf/store/record.cpp",
       "void encode_item(std::vector<std::uint8_t>& out,\n"
       "                 const std::vector<std::uint8_t>& payload) {\n"
       "  out.reserve(kItemBytes + payload.size());\n"
       "  put_u16(out, 7);\n"
       "  put_u32(out, static_cast<std::uint32_t>(payload.size()));\n"
       "  out.insert(out.end(), payload.begin(), payload.end());\n"
       "}\n"
       "void decode_item(Cursor& in) {\n"
       "  read_u16(in);\n"
       "  read_u32(in);\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "wire-pairing").empty());
}

// --- Metrics accounting -----------------------------------------------------

TEST(LintMetricsAccounting, FlagsDeadAndUnauditedCounters) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/metrics_demo.cpp",
       "void register_dead() {\n"
       "  Counter& dead = MetricsRegistry::global().counter(\"demo.dead\");\n"
       "  (void)dead;\n"
       "}\n"
       "void bump_unaudited() {\n"
       "  Counter& hits = MetricsRegistry::global().counter(\"demo.unaudited\");\n"
       "  hits.add(1);\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "metrics-accounting");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].message.find("demo.dead"), std::string::npos);
  EXPECT_NE(hits[0].message.find("never incremented"), std::string::npos);
  EXPECT_NE(hits[1].message.find("demo.unaudited"), std::string::npos);
  EXPECT_NE(hits[1].message.find("never audited"), std::string::npos);
  EXPECT_EQ(report.stats.counters_indexed, 2u);
}

TEST(LintMetricsAccounting, ATestExpectationQuotingTheNameIsAnAudit) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/metrics_demo.cpp",
       "void bump() {\n"
       "  Counter& hits = MetricsRegistry::global().counter(\"demo.live\");\n"
       "  hits.add(1);\n"
       "}\n"},
      {"tests/test_demo.cpp",
       "void check() {\n"
       "  EXPECT_EQ(snap.counters.at(\"demo.live\"), 1u);\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "metrics-accounting").empty());
}

// --- Guarded-by policy ------------------------------------------------------

namespace guarded_fixture {

std::string guarded_tree(const std::string& marker_line) {
  return "void helper(const std::vector<double>& v) {\n"
         "  XPUF_REQUIRE(!v.empty(), \"v must be non-empty\");\n"
         "  (void)v.size();\n"
         "}\n" +
         marker_line +
         "double outer(const std::vector<double>& v) {\n"
         "  helper(v);\n"
         "  double s = 0.0;\n"
         "  for (double x : v) s += x;\n"
         "  return s;\n"
         "}\n";
}

}  // namespace guarded_fixture

TEST(LintGuardedBy, AProvenClaimDischargesAtZeroBudgetCost) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/guarded.cpp",
       guarded_fixture::guarded_tree(lint_marker("guarded-by(helper)") + "\n")},
  });
  EXPECT_TRUE(with_rule(report, "require-guard").empty());
  EXPECT_TRUE(with_rule(report, "bad-guard-ref").empty());
  EXPECT_EQ(report.stats.guarded_by_verified, 1u);
  EXPECT_EQ(report.stats.suppressions_total(), 0u);
}

TEST(LintGuardedBy, WithoutTheMarkerTheFindingStands) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/guarded.cpp", guarded_fixture::guarded_tree("")},
  });
  EXPECT_EQ(with_rule(report, "require-guard").size(), 1u);
  EXPECT_EQ(report.stats.guarded_by_verified, 0u);
}

TEST(LintGuardedBy, AnUnprovableClaimKeepsTheFindingAndFlagsTheMarker) {
  // `helper` exists but carries no XPUF_REQUIRE, so the claim cannot be
  // proven: the original finding survives and the marker itself is reported.
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/guarded.cpp",
       "void helper(const std::vector<double>& v) {\n"
       "  (void)v;\n"
       "}\n" +
       lint_marker("guarded-by(helper)") + "\n" +
       "double outer(const std::vector<double>& v) {\n"
       "  helper(v);\n"
       "  double s = 0.0;\n"
       "  for (double x : v) s += x;\n"
       "  return s;\n"
       "}\n"},
  });
  EXPECT_EQ(with_rule(report, "require-guard").size(), 1u);
  EXPECT_EQ(with_rule(report, "bad-guard-ref").size(), 1u);
  EXPECT_EQ(report.stats.guarded_by_verified, 0u);
}

TEST(LintGuardedBy, AMarkerDischargingNothingIsStale) {
  const Report report = xpuf::lint::analyze_files({
      {"src/sim/guarded.cpp",
       lint_marker("guarded-by(helper)") + "\n" +
       "double outer(const std::vector<double>& v) {\n"
       "  XPUF_REQUIRE(!v.empty(), \"v\");\n"
       "  double s = 0.0;\n"
       "  for (double x : v) s += x;\n"
       "  return s;\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "bad-guard-ref");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("stale"), std::string::npos);
}

// --- Scalar-eval (issuance hot path) ----------------------------------------

TEST(LintScalarEval, FlagsPerChallengeModelEvalInTheIssuanceHotPath) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/authentication.cpp",
       "void issue(const ServerModel& model, std::size_t n) {\n"
       "  XPUF_REQUIRE(n >= 1, \"n\");\n"
       "  for (std::size_t i = 0; i < n; ++i) {\n"
       "    Challenge c = next(i);\n"
       "    out.push_back(model.predict_xor(c, n));\n"
       "  }\n"
       "}\n"},
  });
  const auto hits = with_rule(report, "scalar-eval");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5u);
  EXPECT_NE(hits[0].message.find("ChallengeScreener"), std::string::npos);
}

TEST(LintScalarEval, ModelEvalOutsideTheHotPathFilesIsClean) {
  // The same per-challenge call is legal in enrollment (it IS the model), and
  // a bare member access without a call never matches in the scoped files.
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/enrollment.cpp",
       "bool eval(const ServerModel& model, const Challenge& c, std::size_t n) {\n"
       "  XPUF_REQUIRE(n >= 1, \"n\");\n"
       "  return model.predict_xor(c, n);\n"
       "}\n"},
      {"src/puf/selection.cpp",
       "std::size_t count_stable(const std::vector<Row>& rows) {\n"
       "  std::size_t n = 0;\n"
       "  for (const Row& row : rows)\n"
       "    if (row.all_stable) ++n;\n"
       "  return n;\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "scalar-eval").empty());
}

TEST(LintScalarEval, ADeclaredScalarFallbackIsBudgetedByItsAllowComment) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/authentication.cpp",
       "bool fallback(const ServerModel& model, const Challenge& c, std::size_t n) {\n"
       "  XPUF_REQUIRE(n >= 1, \"n\");\n"
       "  " + lint_marker("allow(scalar-eval)") + "\n" +
       "  return model.predict_xor(c, n);\n"
       "}\n"},
  });
  EXPECT_TRUE(with_rule(report, "scalar-eval").empty());
  EXPECT_EQ(report.stats.suppressions_by_rule.at("scalar-eval"), 1u);
}

// --- Suppression budget -----------------------------------------------------

TEST(LintSuppressionBudget, AllowMarkersAreCountedAndFilterFindings) {
  const std::string flagged = "std::mt19937 gen(42);\n";
  const Report unsuppressed = xpuf::lint::analyze_files({
      {"src/puf/demo.cpp", flagged},
  });
  EXPECT_EQ(with_rule(unsuppressed, "raw-rng").size(), 1u);
  EXPECT_EQ(unsuppressed.stats.suppressions_total(), 0u);

  const Report suppressed = xpuf::lint::analyze_files({
      {"src/puf/demo.cpp",
       "std::mt19937 gen(42);  " + lint_marker("allow(raw-rng)") + "\n"},
  });
  EXPECT_TRUE(with_rule(suppressed, "raw-rng").empty());
  EXPECT_EQ(suppressed.stats.suppressions_total(), 1u);
  EXPECT_EQ(suppressed.stats.suppressions_by_rule.at("raw-rng"), 1u);
}

TEST(LintSuppressionBudget, SemanticPassFindingsHonorAllowComments) {
  const Report report = xpuf::lint::analyze_files({
      {"src/ml/model.hpp",
       "#pragma once\n" + lint_marker("allow(layering)") + "\n" +
           "#include \"puf/proto.hpp\"\n"},
      {"src/puf/proto.hpp", "#pragma once\n"},
  });
  EXPECT_TRUE(with_rule(report, "layering").empty());
  EXPECT_EQ(report.stats.suppressions_by_rule.at("layering"), 1u);
}

// --- JSON report ------------------------------------------------------------

TEST(LintJsonReport, EmitsTheSarifLiteSchema) {
  const Report report = xpuf::lint::analyze_files({
      {"src/puf/demo.cpp", "std::mt19937 gen(42);\n"},
  });
  const std::string json = xpuf::lint::report_to_json(report);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"xpuf_lint\""), std::string::npos);
  // Every registered rule is listed with a summary.
  for (const auto& rule : xpuf::lint::rules())
    EXPECT_NE(json.find("{\"id\": \"" + rule.name + "\""), std::string::npos);
  // The one finding appears as a result row.
  EXPECT_NE(json.find("\"ruleId\": \"raw-rng\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/puf/demo.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  // Stats block carries the budget inputs check_lint_baseline.py consumes.
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"violations_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"violations_by_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressions_total\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"guarded_by_verified\": 0"), std::string::npos);
}

}  // namespace
