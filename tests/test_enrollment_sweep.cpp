// Parameterized enrollment-quality sweep across PUF geometries: the
// paper's pipeline (soft-response linear regression + thresholds) must work
// for any stage count, including the 64-stage device its Sec 5.2
// CRP-space argument assumes.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/math.hpp"
#include "puf/selection.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

struct GeometryCase {
  std::size_t stages;
  std::uint64_t seed;
};

class EnrollmentGeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(EnrollmentGeometrySweep, PipelineHoldsAcrossStageCounts) {
  const auto [stages, seed] = GetParam();
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 2;
  cfg.seed = seed;
  cfg.device.stages = stages;
  // Keep the delay-to-noise ratio constant across geometries: the process
  // spread grows like sqrt(stages).
  cfg.device.sigma_noise = 0.327 * std::sqrt(static_cast<double>(stages) / 32.0);
  sim::ChipPopulation pop(cfg);
  auto& chip = pop.chip(0);
  Rng rng(seed + 1);

  EnrollmentConfig ecfg;
  // Scale the training set with the parameter count.
  ecfg.training_challenges = 100 * stages + 1'000;
  ecfg.trials = 4'000;
  const ServerModel model = Enroller(ecfg).enroll(chip, rng);
  ASSERT_EQ(model.stages(), stages);

  // (1) Weight-direction fidelity.
  const auto env = sim::Environment::nominal();
  const linalg::Vector w_true = chip.device_for_analysis(0).reduced_weights(env);
  const linalg::Vector& w_fit = model.puf(0).model.weights();
  const double corr = pearson_correlation(
      std::span<const double>(w_true.data(), stages),
      std::span<const double>(w_fit.data(), stages));
  EXPECT_GT(corr, 0.97) << "stages = " << stages;

  // (2) Threshold sanity.
  const ThresholdPair& thr = model.puf(0).thresholds;
  EXPECT_LT(thr.thr0, thr.thr1);

  // (3) Stability fraction stays near the calibrated 80% by construction of
  // the sigma_noise scaling above.
  std::size_t stable = 0;
  const std::size_t n = 1'500;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = random_challenge(stages, rng);
    if (chip.measure_soft_response(0, c, env, 4'000, rng).fully_stable()) ++stable;
  }
  EXPECT_NEAR(static_cast<double>(stable) / n, 0.83, 0.08) << "stages = " << stages;

  // (4) Selected stable challenges really are stable (spot check).
  ServerModel tightened = model;
  tightened.set_betas(BetaFactors{0.8, 1.2});
  ModelBasedSelector selector(tightened, 2);
  const SelectionResult sel = selector.select(20, rng);
  std::size_t verified = 0;
  for (const auto& c : sel.challenges) {
    bool all = true;
    for (std::size_t p = 0; p < 2; ++p)
      if (!chip.measure_soft_response(p, c, env, 4'000, rng).fully_stable()) all = false;
    if (all) ++verified;
  }
  EXPECT_GE(verified, 18u) << "stages = " << stages;
}

INSTANTIATE_TEST_SUITE_P(Geometries, EnrollmentGeometrySweep,
                         ::testing::Values(GeometryCase{16, 21}, GeometryCase{32, 22},
                                           GeometryCase{64, 23},
                                           GeometryCase{128, 24}));

}  // namespace
}  // namespace xpuf::puf
