// Tests for the multi-device server database: registration, replay
// protection, authentication routing, and persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "puf/database.hpp"
#include "puf/model_store.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 3;

  DatabaseTest()
      : pop_(make_config()),
        rng_(808),
        db_(DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}}) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'000;
    cfg.trials = 2'000;
    for (std::size_t i = 0; i < pop_.size(); ++i) {
      ServerModel m = Enroller(cfg).enroll(pop_.chip(i), rng_);
      m.set_betas(BetaFactors{0.85, 1.15});
      db_.register_device(std::move(m));
    }
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 5150;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerDatabase db_;
};

TEST_F(DatabaseTest, RegistryBookkeeping) {
  EXPECT_EQ(db_.device_count(), 2u);
  EXPECT_TRUE(db_.knows(0));
  EXPECT_TRUE(db_.knows(1));
  EXPECT_FALSE(db_.knows(7));
  EXPECT_THROW(db_.model(7), std::invalid_argument);
  EXPECT_NO_THROW(db_.model(0));
}

TEST_F(DatabaseTest, DuplicateRegistrationRejected) {
  EnrollmentConfig cfg;
  cfg.training_challenges = 500;
  cfg.trials = 1'000;
  ServerModel m = Enroller(cfg).enroll(pop_.chip(0), rng_);
  EXPECT_THROW(db_.register_device(std::move(m)), std::invalid_argument);
}

TEST_F(DatabaseTest, RevocationRemovesDevice) {
  db_.revoke_device(1);
  EXPECT_FALSE(db_.knows(1));
  EXPECT_EQ(db_.device_count(), 1u);
  EXPECT_THROW(db_.revoke_device(1), std::invalid_argument);
}

// GCC 12's value-range propagation mis-models std::less<vector<uint8_t>> when
// set::insert inlines memcmp in Release and reports an impossible bound
// (stringop-overread); the comparison is well-defined for any real vector.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif
TEST_F(DatabaseTest, IssueNeverRepeatsAChallenge) {
  std::set<std::vector<std::uint8_t>> seen;
  for (int round = 0; round < 6; ++round) {
    const ChallengeBatch batch = db_.issue(0, rng_);
    EXPECT_EQ(batch.challenges.size(), 16u);
    for (const auto& c : batch.challenges)
      EXPECT_TRUE(seen.insert(c).second) << "challenge reused across batches";
  }
  EXPECT_EQ(db_.issued_count(0), 96u);
  // Device 1's ledger is independent.
  EXPECT_EQ(db_.issued_count(1), 0u);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST_F(DatabaseTest, AuthenticateRoutesByChipId) {
  const DatabaseAuthOutcome genuine =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(genuine.known_device);
  EXPECT_TRUE(genuine.outcome.approved);
  EXPECT_EQ(genuine.outcome.mismatches, 0u);

  // The "wrong" physical chip claiming id 1 is chip 1's own silicon, so it
  // passes; a counterfeit would present chip 0's id but chip 1's silicon —
  // simulate by verifying chip 1's responses against chip 0's batch.
  const ChallengeBatch batch = db_.issue(0, rng_);
  std::vector<bool> responses;
  for (const auto& c : batch.challenges)
    responses.push_back(pop_.chip(1).xor_response(c, sim::Environment::nominal(), rng_));
  const AuthenticationOutcome fake = db_.verify(0, batch, responses);
  EXPECT_FALSE(fake.approved);
}

// Regression (ISSUE 3): DatabaseAuthOutcome::replay_rejected was never
// populated. A second authentication whose issuance RNG is re-seeded
// identically re-draws the first session's challenges; every one of them is
// ledger-filtered, must be counted, and the batch must still refill from
// fresh draws and approve.
TEST_F(DatabaseTest, ReplayedSessionRejectionsAreCounted) {
  Rng first_session(777);
  const DatabaseAuthOutcome first =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), first_session);
  EXPECT_TRUE(first.outcome.approved);
  EXPECT_EQ(first.replay_rejected, 0u);
  EXPECT_GE(first.outcome.candidates_tried, 16u);  // selection cost surfaced
  EXPECT_EQ(db_.issued_count(0), 16u);

  Rng replayed_session(777);  // identical seed -> identical candidate stream
  const DatabaseAuthOutcome second =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), replayed_session);
  EXPECT_TRUE(second.known_device);
  EXPECT_GE(second.replay_rejected, 16u) << "ledger-filtered candidates went uncounted";
  EXPECT_TRUE(second.outcome.approved) << "batch must refill past the replays";
  EXPECT_EQ(db_.issued_count(0), 32u);  // 16 fresh challenges joined the ledger
}

// Regression (ISSUE 3, reworked in ISSUE 8): save() once deleted stale
// device_*/ledger_* files before writing — revoke -> save over an existing
// directory could resurrect the revoked device on load(), and a crash
// between delete and write lost the fleet. The binary snapshot writer must
// keep the fix structurally: each save is a complete write-temp-then-rename
// image of the surviving registry.
TEST_F(DatabaseTest, RevokeThenSaveDoesNotResurrectOnLoad) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_revoke_" + std::to_string(::getpid())))
                       .string();
  db_.issue(1, rng_);  // give device 1 ledger entries too
  db_.save(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/store_manifest"))
      << "save() writes the binary store layout";
  {
    ServerDatabase first = ServerDatabase::load(
        dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
    EXPECT_TRUE(first.knows(1));
    EXPECT_EQ(first.issued_count(1), 16u);
  }

  db_.revoke_device(1);
  db_.save(dir);  // must reconcile, not accrete

  ServerDatabase loaded = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  EXPECT_EQ(loaded.device_count(), 1u);
  EXPECT_TRUE(loaded.knows(0));
  EXPECT_FALSE(loaded.knows(1)) << "revoked device resurrected from stale files";
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, SavePreservesUnrelatedFiles) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_unrelated_" + std::to_string(::getpid())))
                       .string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream note(dir + "/README.txt");
    note << "operator notes\n";
  }
  db_.save(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/README.txt"))
      << "save() must only reconcile its own device_*/ledger_* naming";
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, UnknownDeviceIsDeniedWithoutThrowing) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 999;
  cfg.n_chips = 5;
  sim::ChipPopulation strangers(cfg);
  const DatabaseAuthOutcome out =
      db_.authenticate(strangers.chip(4), sim::Environment::nominal(), rng_);
  EXPECT_FALSE(out.known_device);
  EXPECT_FALSE(out.outcome.approved);
}

TEST_F(DatabaseTest, SaveAndLoadPreservesModelsAndLedger) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_" + std::to_string(::getpid())))
                       .string();
  db_.issue(0, rng_);
  db_.issue(0, rng_);
  const std::size_t issued_before = db_.issued_count(0);
  db_.save(dir);

  ServerDatabase loaded = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  EXPECT_EQ(loaded.device_count(), 2u);
  EXPECT_EQ(loaded.issued_count(0), issued_before);
  EXPECT_EQ(loaded.issued_count(1), 0u);
  // The restored database still authenticates the genuine chip.
  const DatabaseAuthOutcome out =
      loaded.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(out.outcome.approved);
  std::filesystem::remove_all(dir);
}

// The legacy CSV layout (PR 3's save format) must keep loading, and one
// save() must migrate it to the binary store bit-exactly: same models, same
// ledger keys, challenge strings converted to packed form.
TEST_F(DatabaseTest, LegacyCsvDirectoryMigratesToBinaryOnFirstSave) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_legacy_" + std::to_string(::getpid())))
                       .string();
  std::filesystem::create_directories(dir);
  // Write the legacy layout by hand: device_<id>.csv per model plus a
  // ledger_<id>.csv of '0'/'1' challenge strings.
  const std::size_t stages = db_.model(0).stages();
  std::vector<std::string> rows;
  Rng crng(4242);
  for (int r = 0; r < 5; ++r) {
    std::string row(stages, '0');
    for (auto& ch : row) ch = crng.uniform() < 0.5 ? '0' : '1';
    rows.push_back(row);
  }
  for (std::size_t id : {std::size_t{0}, std::size_t{1}})
    save_server_model(db_.model(id), dir + "/device_" + std::to_string(id) + ".csv");
  {
    CsvWriter ledger(dir + "/ledger_0.csv", {"challenge"});
    for (const auto& row : rows) ledger.write_row(std::vector<std::string>{row});
  }

  ServerDatabase loaded = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  EXPECT_EQ(loaded.device_count(), 2u);
  EXPECT_EQ(loaded.issued_count(0), rows.size());
  EXPECT_EQ(loaded.issued_count(1), 0u);

  loaded.save(dir);  // the migration point
  EXPECT_TRUE(std::filesystem::exists(dir + "/store_manifest"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/device_0.csv"))
      << "migration must retire the CSV files after the snapshot is durable";
  EXPECT_FALSE(std::filesystem::exists(dir + "/ledger_0.csv"));

  // Round trip through the binary format is bit-exact: model weights and the
  // packed form of every legacy ledger row survive.
  ServerDatabase migrated = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}});
  EXPECT_EQ(migrated.device_count(), 2u);
  for (std::size_t id : {std::size_t{0}, std::size_t{1}}) {
    const ServerModel& original = db_.model(id);
    const ServerModel& survived = migrated.model(id);
    ASSERT_EQ(survived.puf_count(), original.puf_count());
    for (std::size_t p = 0; p < original.puf_count(); ++p)
      EXPECT_EQ(survived.puf(p).model.weights().raw(),
                original.puf(p).model.weights().raw());
  }
  const store::EnrollmentStore st =
      store::EnrollmentStore::open(dir, store::StoreOptions{});
  std::set<std::string> expected_keys;
  for (const auto& row : rows) {
    Challenge c;
    for (char ch : row) c.push_back(ch == '1' ? 1 : 0);
    expected_keys.insert(store::pack_challenge(c));
  }
  EXPECT_EQ(st.ledger(0), expected_keys);
  std::filesystem::remove_all(dir);
}

// Regression (ISSUE 8): load() silently skipped ledger_* files whose
// device_* partner was missing — the residue of a mid-save crash of the old
// delete-then-write writer. Forgetting issued challenges re-opens the replay
// window, so an orphan must fail loudly.
TEST_F(DatabaseTest, OrphanedLegacyLedgerIsAParseError) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_orphan_" + std::to_string(::getpid())))
                       .string();
  std::filesystem::create_directories(dir);
  save_server_model(db_.model(0), dir + "/device_0.csv");
  {
    CsvWriter ledger(dir + "/ledger_9.csv", {"challenge"});
    ledger.write_row(std::vector<std::string>{std::string(db_.model(0).stages(), '1')});
  }
  EXPECT_THROW(ServerDatabase::load(
                   dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {}, .screening = {}, .pool = {}}),
               ParseError);
  std::filesystem::remove_all(dir);
}

// Corrupt legacy ledger rows (bad characters or wrong width) must be a
// ParseError, not a silently different replay key.
TEST_F(DatabaseTest, CorruptLegacyLedgerRowIsAParseError) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_badrow_" + std::to_string(::getpid())))
                       .string();
  for (const char* bad : {"01x", "01"}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    save_server_model(db_.model(0), dir + "/device_0.csv");
    {
      CsvWriter ledger(dir + "/ledger_0.csv", {"challenge"});
      ledger.write_row(std::vector<std::string>{bad});
    }
    EXPECT_THROW(ServerDatabase::load(
                     dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {}, .screening = {}, .pool = {}}),
                 ParseError)
        << "ledger row '" << bad << "' accepted";
  }
  std::filesystem::remove_all(dir);
}

// A store-backed database shares the serving semantics of the in-memory one
// but every op is durable: kill the object at any point and reopen.
TEST_F(DatabaseTest, BackedDatabaseAuthenticatesAndSurvivesReopen) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_backed_" + std::to_string(::getpid())))
                       .string();
  std::filesystem::remove_all(dir);
  const DatabaseConfig cfg{
      .n_pufs = kNPufs, .policy = {.challenge_count = 16}, .screening = {}, .pool = {}};
  store::StoreOptions opts;
  opts.n_shards = 2;
  opts.cache_capacity = 1;  // harsher than any deployment would pick
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  {
    ServerDatabase db = ServerDatabase::open(dir, cfg, opts);
    EXPECT_TRUE(db.backed());
    for (std::size_t i = 0; i < pop_.size(); ++i) {
      ServerModel m = Enroller(ecfg).enroll(pop_.chip(i), rng_);
      m.set_betas(BetaFactors{0.85, 1.15});
      db.register_device(std::move(m));
    }
    const DatabaseAuthOutcome out =
        db.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
    EXPECT_TRUE(out.outcome.approved);
    EXPECT_EQ(db.issued_count(0), 16u);
    EXPECT_EQ(db.store().cache_size(), 1u);
  }  // no save(): durability came from the op log itself
  ServerDatabase reopened = ServerDatabase::open(dir, cfg, opts);
  EXPECT_EQ(reopened.device_count(), 2u);
  EXPECT_EQ(reopened.issued_count(0), 16u);
  EXPECT_THROW(reopened.model(0), std::invalid_argument)
      << "backed databases serve via model_snapshot(), not references";
  EXPECT_NE(reopened.model_snapshot(0), nullptr);
  const DatabaseAuthOutcome out =
      reopened.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(out.outcome.approved);
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, LoadRejectsMissingDirectory) {
  EXPECT_THROW(ServerDatabase::load("/nonexistent/db/dir", DatabaseConfig{}),
               std::invalid_argument);
}

TEST_F(DatabaseTest, WidthMismatchRejectedAtRegistration) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 31;
  cfg.n_pufs_per_chip = 2;  // narrower than the database width of 3
  sim::ChipPopulation narrow(cfg);
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 300;
  ecfg.trials = 500;
  ServerModel m = Enroller(ecfg).enroll(narrow.chip(0), rng_);
  EXPECT_THROW(db_.register_device(std::move(m)), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
