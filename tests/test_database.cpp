// Tests for the multi-device server database: registration, replay
// protection, authentication routing, and persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "common/error.hpp"
#include "puf/database.hpp"
#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 3;

  DatabaseTest()
      : pop_(make_config()),
        rng_(808),
        db_(DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}}) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'000;
    cfg.trials = 2'000;
    for (std::size_t i = 0; i < pop_.size(); ++i) {
      ServerModel m = Enroller(cfg).enroll(pop_.chip(i), rng_);
      m.set_betas(BetaFactors{0.85, 1.15});
      db_.register_device(std::move(m));
    }
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 5150;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerDatabase db_;
};

TEST_F(DatabaseTest, RegistryBookkeeping) {
  EXPECT_EQ(db_.device_count(), 2u);
  EXPECT_TRUE(db_.knows(0));
  EXPECT_TRUE(db_.knows(1));
  EXPECT_FALSE(db_.knows(7));
  EXPECT_THROW(db_.model(7), std::invalid_argument);
  EXPECT_NO_THROW(db_.model(0));
}

TEST_F(DatabaseTest, DuplicateRegistrationRejected) {
  EnrollmentConfig cfg;
  cfg.training_challenges = 500;
  cfg.trials = 1'000;
  ServerModel m = Enroller(cfg).enroll(pop_.chip(0), rng_);
  EXPECT_THROW(db_.register_device(std::move(m)), std::invalid_argument);
}

TEST_F(DatabaseTest, RevocationRemovesDevice) {
  db_.revoke_device(1);
  EXPECT_FALSE(db_.knows(1));
  EXPECT_EQ(db_.device_count(), 1u);
  EXPECT_THROW(db_.revoke_device(1), std::invalid_argument);
}

// GCC 12's value-range propagation mis-models std::less<vector<uint8_t>> when
// set::insert inlines memcmp in Release and reports an impossible bound
// (stringop-overread); the comparison is well-defined for any real vector.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overread"
#endif
TEST_F(DatabaseTest, IssueNeverRepeatsAChallenge) {
  std::set<std::vector<std::uint8_t>> seen;
  for (int round = 0; round < 6; ++round) {
    const ChallengeBatch batch = db_.issue(0, rng_);
    EXPECT_EQ(batch.challenges.size(), 16u);
    for (const auto& c : batch.challenges)
      EXPECT_TRUE(seen.insert(c).second) << "challenge reused across batches";
  }
  EXPECT_EQ(db_.issued_count(0), 96u);
  // Device 1's ledger is independent.
  EXPECT_EQ(db_.issued_count(1), 0u);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST_F(DatabaseTest, AuthenticateRoutesByChipId) {
  const DatabaseAuthOutcome genuine =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(genuine.known_device);
  EXPECT_TRUE(genuine.outcome.approved);
  EXPECT_EQ(genuine.outcome.mismatches, 0u);

  // The "wrong" physical chip claiming id 1 is chip 1's own silicon, so it
  // passes; a counterfeit would present chip 0's id but chip 1's silicon —
  // simulate by verifying chip 1's responses against chip 0's batch.
  const ChallengeBatch batch = db_.issue(0, rng_);
  std::vector<bool> responses;
  for (const auto& c : batch.challenges)
    responses.push_back(pop_.chip(1).xor_response(c, sim::Environment::nominal(), rng_));
  const AuthenticationOutcome fake = db_.verify(0, batch, responses);
  EXPECT_FALSE(fake.approved);
}

// Regression (ISSUE 3): DatabaseAuthOutcome::replay_rejected was never
// populated. A second authentication whose issuance RNG is re-seeded
// identically re-draws the first session's challenges; every one of them is
// ledger-filtered, must be counted, and the batch must still refill from
// fresh draws and approve.
TEST_F(DatabaseTest, ReplayedSessionRejectionsAreCounted) {
  Rng first_session(777);
  const DatabaseAuthOutcome first =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), first_session);
  EXPECT_TRUE(first.outcome.approved);
  EXPECT_EQ(first.replay_rejected, 0u);
  EXPECT_GE(first.outcome.candidates_tried, 16u);  // selection cost surfaced
  EXPECT_EQ(db_.issued_count(0), 16u);

  Rng replayed_session(777);  // identical seed -> identical candidate stream
  const DatabaseAuthOutcome second =
      db_.authenticate(pop_.chip(0), sim::Environment::nominal(), replayed_session);
  EXPECT_TRUE(second.known_device);
  EXPECT_GE(second.replay_rejected, 16u) << "ledger-filtered candidates went uncounted";
  EXPECT_TRUE(second.outcome.approved) << "batch must refill past the replays";
  EXPECT_EQ(db_.issued_count(0), 32u);  // 16 fresh challenges joined the ledger
}

// Regression (ISSUE 3): save() never deleted stale device_*/ledger_* files,
// so revoke -> save over an existing directory resurrected the revoked
// device on load().
TEST_F(DatabaseTest, RevokeThenSaveDoesNotResurrectOnLoad) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_revoke_" + std::to_string(::getpid())))
                       .string();
  db_.issue(1, rng_);  // give device 1 a ledger file too
  db_.save(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/device_1.csv"));

  db_.revoke_device(1);
  db_.save(dir);  // must reconcile, not accrete
  EXPECT_FALSE(std::filesystem::exists(dir + "/device_1.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/ledger_1.csv"));

  ServerDatabase loaded = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}});
  EXPECT_EQ(loaded.device_count(), 1u);
  EXPECT_TRUE(loaded.knows(0));
  EXPECT_FALSE(loaded.knows(1)) << "revoked device resurrected from stale files";
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, SavePreservesUnrelatedFiles) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_unrelated_" + std::to_string(::getpid())))
                       .string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream note(dir + "/README.txt");
    note << "operator notes\n";
  }
  db_.save(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/README.txt"))
      << "save() must only reconcile its own device_*/ledger_* naming";
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, UnknownDeviceIsDeniedWithoutThrowing) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 999;
  cfg.n_chips = 5;
  sim::ChipPopulation strangers(cfg);
  const DatabaseAuthOutcome out =
      db_.authenticate(strangers.chip(4), sim::Environment::nominal(), rng_);
  EXPECT_FALSE(out.known_device);
  EXPECT_FALSE(out.outcome.approved);
}

TEST_F(DatabaseTest, SaveAndLoadPreservesModelsAndLedger) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    ("xpuf_db_" + std::to_string(::getpid())))
                       .string();
  db_.issue(0, rng_);
  db_.issue(0, rng_);
  const std::size_t issued_before = db_.issued_count(0);
  db_.save(dir);

  ServerDatabase loaded = ServerDatabase::load(
      dir, DatabaseConfig{.n_pufs = kNPufs, .policy = {.challenge_count = 16}});
  EXPECT_EQ(loaded.device_count(), 2u);
  EXPECT_EQ(loaded.issued_count(0), issued_before);
  EXPECT_EQ(loaded.issued_count(1), 0u);
  // The restored database still authenticates the genuine chip.
  const DatabaseAuthOutcome out =
      loaded.authenticate(pop_.chip(0), sim::Environment::nominal(), rng_);
  EXPECT_TRUE(out.outcome.approved);
  std::filesystem::remove_all(dir);
}

TEST_F(DatabaseTest, LoadRejectsMissingDirectory) {
  EXPECT_THROW(ServerDatabase::load("/nonexistent/db/dir", DatabaseConfig{}),
               std::invalid_argument);
}

TEST_F(DatabaseTest, WidthMismatchRejectedAtRegistration) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 31;
  cfg.n_pufs_per_chip = 2;  // narrower than the database width of 3
  sim::ChipPopulation narrow(cfg);
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 300;
  ecfg.trials = 500;
  ServerModel m = Enroller(ecfg).enroll(narrow.chip(0), rng_);
  EXPECT_THROW(db_.register_device(std::move(m)), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
