// Protocol-level property tests: invariants of the authentication flow that
// must hold for every issued batch, policy, and beta setting.
#include <gtest/gtest.h>

#include "puf/authentication.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class ProtocolPropertyTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 4;

  ProtocolPropertyTest() : pop_(make_config()), rng_(13131) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'500;
    cfg.trials = 4'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
    model_.set_betas(BetaFactors{0.85, 1.15});
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 2;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 246810;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(ProtocolPropertyTest, EveryIssuedChallengeSatisfiesTheStablePredicate) {
  AuthenticationServer server(model_, kNPufs, {.challenge_count = 40});
  for (int round = 0; round < 5; ++round) {
    const ChallengeBatch batch = server.issue(rng_);
    for (std::size_t i = 0; i < batch.challenges.size(); ++i) {
      EXPECT_TRUE(model_.all_stable(batch.challenges[i], kNPufs));
      EXPECT_EQ(batch.expected[i], model_.predict_xor(batch.challenges[i], kNPufs));
    }
  }
}

TEST_F(ProtocolPropertyTest, ZeroHdApprovalFlipsOnAnySingleBitError) {
  AuthenticationServer server(model_, kNPufs, {.challenge_count = 12});
  const ChallengeBatch batch = server.issue(rng_);
  std::vector<bool> responses(batch.expected.begin(), batch.expected.end());
  EXPECT_TRUE(server.verify(batch, responses).approved);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    responses[i] = !responses[i];
    const AuthenticationOutcome out = server.verify(batch, responses);
    EXPECT_FALSE(out.approved) << "bit " << i;
    EXPECT_EQ(out.mismatches, 1u);
    responses[i] = !responses[i];
  }
}

TEST_F(ProtocolPropertyTest, CounterfeitMismatchesConcentrateNearHalf) {
  AuthenticationServer server(model_, kNPufs, {.challenge_count = 128});
  double total = 0.0;
  const int rounds = 6;
  for (int r = 0; r < rounds; ++r) {
    const auto out =
        server.authenticate(pop_.chip(1), sim::Environment::nominal(), rng_);
    total += out.mismatch_fraction();
    EXPECT_FALSE(out.approved);
  }
  EXPECT_NEAR(total / rounds, 0.5, 0.12);
}

TEST_F(ProtocolPropertyTest, TighterBetasNeverEnlargeTheStableSet) {
  Rng crng(99);
  const auto challenges = random_challenges(32, 1'500, crng);
  ServerModel loose = model_;
  loose.set_betas(BetaFactors{0.95, 1.05});
  ServerModel tight = model_;
  tight.set_betas(BetaFactors{0.70, 1.30});
  for (const auto& c : challenges) {
    if (tight.all_stable(c, kNPufs)) { EXPECT_TRUE(loose.all_stable(c, kNPufs)); }
  }
}

TEST_F(ProtocolPropertyTest, IssueIsSeedDeterministic) {
  AuthenticationServer server(model_, kNPufs, {.challenge_count = 10});
  Rng r1(4242), r2(4242);
  const ChallengeBatch a = server.issue(r1);
  const ChallengeBatch b = server.issue(r2);
  ASSERT_EQ(a.challenges.size(), b.challenges.size());
  for (std::size_t i = 0; i < a.challenges.size(); ++i) {
    EXPECT_EQ(a.challenges[i], b.challenges[i]);
    EXPECT_EQ(a.expected[i], b.expected[i]);
  }
}

TEST_F(ProtocolPropertyTest, StableSelectionYieldMatchesPredictedFraction) {
  // The selector's empirical yield over many draws must match the model's
  // all-stable probability on an independent sample.
  ModelBasedSelector selector(model_, kNPufs);
  Rng r1(777);
  const SelectionResult sel = selector.select(300, r1);
  Rng r2(778);
  std::size_t stable = 0;
  const std::size_t n = 20'000;
  for (std::size_t i = 0; i < n; ++i)
    if (model_.all_stable(random_challenge(32, r2), kNPufs)) ++stable;
  const double reference = static_cast<double>(stable) / static_cast<double>(n);
  EXPECT_NEAR(sel.yield(), reference, 0.05);
}

TEST_F(ProtocolPropertyTest, RelaxedPolicyIsMonotoneInThreshold) {
  // If a batch passes at max HD h, it passes at every h' > h.
  AuthenticationServer strict(model_, kNPufs,
                              {.challenge_count = 16, .max_hamming_distance = 1});
  const ChallengeBatch batch = strict.issue(rng_);
  std::vector<bool> responses(batch.expected.begin(), batch.expected.end());
  responses[3] = !responses[3];
  EXPECT_TRUE(strict.verify(batch, responses).approved);
  AuthenticationServer relaxed(model_, kNPufs,
                               {.challenge_count = 16, .max_hamming_distance = 5});
  EXPECT_TRUE(relaxed.verify(batch, responses).approved);
}

}  // namespace
}  // namespace xpuf::puf
