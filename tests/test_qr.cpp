// Tests for Householder QR and QR-based least squares.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace xpuf::linalg {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix a(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
  return a;
}

TEST(QR, SolvesSquareSystemExactly) {
  Rng rng(1);
  const Matrix a = random_matrix(5, 5, rng);
  Vector x_true(5);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = matvec(a, x_true);
  const Vector x = QR(a).solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(QR, LeastSquaresMatchesNormalEquations) {
  Rng rng(2);
  const Matrix a = random_matrix(50, 6, rng);
  Vector b(50);
  for (auto& v : b) v = rng.normal();
  const Vector x_qr = QR(a).solve(b);
  const Vector x_ne = Cholesky(gram(a)).solve(matvec_transposed(a, b));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
}

TEST(QR, ResidualIsOrthogonalToColumns) {
  Rng rng(3);
  const Matrix a = random_matrix(30, 4, rng);
  Vector b(30);
  for (auto& v : b) v = rng.normal();
  const Vector x = QR(a).solve(b);
  Vector r = matvec(a, x) - b;
  const Vector atr = matvec_transposed(a, r);
  EXPECT_LT(norm_inf(atr), 1e-9);
}

TEST(QR, RejectsWideMatrices) {
  EXPECT_THROW(QR(Matrix(2, 3)), std::invalid_argument);
}

TEST(QR, DetectsRankDeficiency) {
  // Two identical columns.
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = static_cast<double>(r + 1);
  }
  const QR qr(a);
  EXPECT_LT(qr.min_abs_diag(), 1e-12);
  EXPECT_THROW(qr.solve(Vector(4, 1.0)), NumericalError);
}

TEST(QR, RDiagonalMagnitudeMatchesColumnNorm) {
  // For a single column, |R(0,0)| is the column 2-norm.
  Matrix a(3, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 2.0;
  EXPECT_NEAR(std::fabs(QR(a).r()(0, 0)), 3.0, 1e-12);
}

TEST(QR, ApplyQtPreservesNorm) {
  Rng rng(4);
  const Matrix a = random_matrix(10, 10, rng);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const QR qr(a);
  const Vector qtb = qr.apply_qt(b);
  EXPECT_NEAR(norm2(qtb), norm2(b), 1e-9);
}

TEST(QR, HandlesZeroColumnGracefully) {
  Matrix a(3, 2);
  a(0, 1) = 1.0;  // first column all zero
  const QR qr(a);
  EXPECT_LT(qr.min_abs_diag(), 1e-12);
}

TEST(SolveLeastSquaresQr, HelperMatchesClass) {
  Rng rng(5);
  const Matrix a = random_matrix(12, 3, rng);
  Vector b(12);
  for (auto& v : b) v = rng.normal();
  const Vector x1 = solve_least_squares_qr(a, b);
  const Vector x2 = QR(a).solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

// Parameterized shape sweep: planted solutions are recovered for tall
// systems of many shapes when the observations are noise-free.
struct QrShape {
  std::size_t m, n;
};

class QrShapeSweep : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrShapeSweep, RecoversPlantedSolution) {
  const auto [m, n] = GetParam();
  Rng rng(10 * m + n);
  const Matrix a = random_matrix(m, n, rng);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = matvec(a, x_true);
  const Vector x = QR(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeSweep,
                         ::testing::Values(QrShape{3, 3}, QrShape{10, 2}, QrShape{33, 33},
                                           QrShape{100, 33}, QrShape{64, 1},
                                           QrShape{200, 65}));

}  // namespace
}  // namespace xpuf::linalg
