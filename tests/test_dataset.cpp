// Tests for the supervised dataset container.
#include <gtest/gtest.h>

#include <numeric>

#include "ml/dataset.hpp"

namespace xpuf::ml {
namespace {

Dataset make_dataset(std::size_t n, std::size_t d) {
  Dataset data;
  data.x = linalg::Matrix(n, d);
  data.y = linalg::Vector(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c)
      data.x(r, c) = static_cast<double>(r * d + c);
    data.y[r] = static_cast<double>(r);
  }
  return data;
}

TEST(Dataset, AddFixesFeatureCount) {
  Dataset data;
  const std::vector<double> row1{1.0, 2.0};
  data.add(row1, 0.0);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.features(), 2u);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(data.add(bad, 1.0), std::invalid_argument);
  const std::vector<double> row2{3.0, 4.0};
  data.add(row2, 1.0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data.x(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(data.y[1], 1.0);
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  const Dataset data = make_dataset(5, 2);
  const std::vector<std::size_t> idx{4, 0, 2};
  const Dataset sub = data.subset(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.y[0], 4.0);
  EXPECT_DOUBLE_EQ(sub.y[1], 0.0);
  EXPECT_DOUBLE_EQ(sub.x(2, 0), 4.0);
}

TEST(Dataset, SubsetValidatesIndices) {
  const Dataset data = make_dataset(3, 1);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(data.subset(bad), std::invalid_argument);
}

TEST(Dataset, SplitPreservesAllRows) {
  const Dataset data = make_dataset(10, 2);
  Rng rng(1);
  auto [train, test] = data.split(0.7, rng);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  std::vector<double> all;
  for (std::size_t i = 0; i < train.size(); ++i) all.push_back(train.y[i]);
  for (std::size_t i = 0; i < test.size(); ++i) all.push_back(test.y[i]);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(all[i], static_cast<double>(i));
}

TEST(Dataset, SplitIsDeterministicPerSeed) {
  const Dataset data = make_dataset(20, 1);
  Rng r1(7), r2(7);
  auto [a_train, a_test] = data.split(0.5, r1);
  auto [b_train, b_test] = data.split(0.5, r2);
  for (std::size_t i = 0; i < a_train.size(); ++i)
    EXPECT_DOUBLE_EQ(a_train.y[i], b_train.y[i]);
}

TEST(Dataset, SplitRejectsBadFraction) {
  const Dataset data = make_dataset(4, 1);
  Rng rng(2);
  EXPECT_THROW(data.split(1.5, rng), std::invalid_argument);
  EXPECT_THROW(data.split(-0.1, rng), std::invalid_argument);
}

TEST(Dataset, HeadSplitKeepsOrder) {
  const Dataset data = make_dataset(6, 1);
  auto [train, test] = data.head_split(4);
  EXPECT_EQ(train.size(), 4u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_DOUBLE_EQ(train.y[0], 0.0);
  EXPECT_DOUBLE_EQ(test.y[0], 4.0);
  EXPECT_THROW(data.head_split(7), std::invalid_argument);
}

TEST(Dataset, ShuffleKeepsRowsPaired) {
  Dataset data = make_dataset(30, 2);
  Rng rng(3);
  data.shuffle(rng);
  // Row content must still satisfy the construction invariant
  // x(r, 0) == 2 * y[r] (since d = 2).
  for (std::size_t r = 0; r < data.size(); ++r)
    EXPECT_DOUBLE_EQ(data.x(r, 0), 2.0 * data.y[r]);
  // And the multiset of targets is unchanged.
  std::vector<double> ys(data.y.begin(), data.y.end());
  std::sort(ys.begin(), ys.end());
  for (std::size_t i = 0; i < 30; ++i) EXPECT_DOUBLE_EQ(ys[i], static_cast<double>(i));
}

TEST(Dataset, AddHasAmortizedAppendCost) {
  // Regression guard for the O(n^2) build bug: add() used to reallocate and
  // copy the whole matrix on every row. With geometric growth the number of
  // distinct storage capacities over n appends is O(log n); the old
  // row-per-realloc behavior produced one capacity change per append.
  Dataset data;
  const std::size_t n = 20'000, d = 8;
  std::vector<double> row(d);
  std::size_t x_reallocs = 0, y_reallocs = 0;
  std::size_t x_cap = data.x.raw().capacity(), y_cap = data.y.raw().capacity();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) row[c] = static_cast<double>(r * d + c);
    data.add(row, static_cast<double>(r));
    if (data.x.raw().capacity() != x_cap) { ++x_reallocs; x_cap = data.x.raw().capacity(); }
    if (data.y.raw().capacity() != y_cap) { ++y_reallocs; y_cap = data.y.raw().capacity(); }
  }
  EXPECT_LE(x_reallocs, 64u);
  EXPECT_LE(y_reallocs, 64u);
  // Growth must not scramble contents.
  ASSERT_EQ(data.size(), n);
  ASSERT_EQ(data.features(), d);
  for (std::size_t r = 0; r < n; r += 997) {
    for (std::size_t c = 0; c < d; ++c)
      EXPECT_DOUBLE_EQ(data.x(r, c), static_cast<double>(r * d + c));
    EXPECT_DOUBLE_EQ(data.y[r], static_cast<double>(r));
  }
}

TEST(Dataset, ReserveAvoidsGrowthCopies) {
  Dataset data;
  data.reserve(1'000, 3);
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.features(), 3u);
  const std::size_t x_cap = data.x.raw().capacity();
  const std::size_t y_cap = data.y.raw().capacity();
  const std::vector<double> row{1.0, 2.0, 3.0};
  for (std::size_t r = 0; r < 1'000; ++r) data.add(row, 0.5);
  EXPECT_EQ(data.x.raw().capacity(), x_cap);
  EXPECT_EQ(data.y.raw().capacity(), y_cap);
  EXPECT_EQ(data.size(), 1'000u);
}

TEST(Dataset, EmptyDatasetBehaves) {
  const Dataset data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0u);
}

}  // namespace
}  // namespace xpuf::ml
