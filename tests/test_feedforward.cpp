// Tests for the feed-forward arbiter PUF extension.
#include <gtest/gtest.h>

#include "sim/feedforward.hpp"

namespace xpuf::sim {
namespace {

FeedForwardArbiterDevice make_ff(std::vector<FeedForwardLoop> loops,
                                 std::uint64_t seed = 1, std::size_t stages = 32) {
  DeviceParameters params;
  params.stages = stages;
  Rng rng(seed);
  return FeedForwardArbiterDevice(params, EnvironmentModel{}, std::move(loops), rng);
}

TEST(FeedForward, ValidatesLoopGeometry) {
  Rng rng(1);
  DeviceParameters params;
  EXPECT_THROW(
      FeedForwardArbiterDevice(params, EnvironmentModel{}, {{10, 5}}, rng),
      std::invalid_argument);  // tap after target
  EXPECT_THROW(
      FeedForwardArbiterDevice(params, EnvironmentModel{}, {{5, 5}}, rng),
      std::invalid_argument);  // tap == target
  EXPECT_THROW(
      FeedForwardArbiterDevice(params, EnvironmentModel{}, {{1, 40}}, rng),
      std::invalid_argument);  // target beyond last stage
  EXPECT_THROW(FeedForwardArbiterDevice(params, EnvironmentModel{},
                                        {{1, 10}, {2, 10}}, rng),
               std::invalid_argument);  // duplicate target
}

TEST(FeedForward, NoLoopsMatchesLinearDevice) {
  // Same fabrication stream, no loops: the race must equal the linear
  // device's delay difference challenge for challenge.
  DeviceParameters params;
  Rng r1(7), r2(7);
  const FeedForwardArbiterDevice ff(params, EnvironmentModel{}, {}, r1);
  const ArbiterPufDevice linear(params, EnvironmentModel{}, r2);
  Rng crng(2);
  for (const auto& env : paper_corner_grid()) {
    for (int i = 0; i < 20; ++i) {
      const auto c = random_challenge(32, crng);
      EXPECT_NEAR(ff.delay_difference(c, env), linear.delay_difference(c, env), 1e-12);
    }
  }
}

TEST(FeedForward, TargetStageChallengeBitIsIgnored) {
  const auto ff = make_ff({{5, 20}});
  Rng crng(3);
  const auto env = Environment::nominal();
  for (int i = 0; i < 50; ++i) {
    Challenge c = random_challenge(32, crng);
    Challenge c2 = c;
    c2[20] ^= 1;  // the forced select line masks this bit
    EXPECT_DOUBLE_EQ(ff.delay_difference(c, env), ff.delay_difference(c2, env));
  }
}

TEST(FeedForward, TapPrefixControlsTheOverride) {
  // Flipping a bit before the tap can change the forced select and hence
  // change more than a linear model could explain. Just verify the response
  // function is sensitive to pre-tap bits at all.
  const auto ff = make_ff({{5, 20}});
  Rng crng(4);
  const auto env = Environment::nominal();
  bool saw_difference = false;
  for (int i = 0; i < 50 && !saw_difference; ++i) {
    Challenge c = random_challenge(32, crng);
    Challenge c2 = c;
    c2[2] ^= 1;
    if (ff.delay_difference(c, env) != ff.delay_difference(c2, env))
      saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(FeedForward, EvaluateAgreesWithNoiseFreeSignForBiasedChallenges) {
  const auto ff = make_ff({{7, 15}});
  Rng crng(5);
  Rng erng(6);
  const auto env = Environment::nominal();
  // Note: even with a large final |delta|, a marginal race at a tap stage
  // can flip the forced select and reroute the whole race, so per-challenge
  // agreement is not guaranteed — require strong aggregate agreement.
  int checked = 0, agree = 0;
  for (int i = 0; i < 400 && checked < 30; ++i) {
    const auto c = random_challenge(32, crng);
    const double delta = ff.delay_difference(c, env);
    if (std::abs(delta) < 3.0) continue;  // want strongly biased races
    ++checked;
    for (int t = 0; t < 20; ++t)
      if (ff.evaluate(c, env, erng) == (delta > 0.0)) ++agree;
  }
  EXPECT_GE(checked, 10);
  EXPECT_GE(static_cast<double>(agree) / (20.0 * checked), 0.8);
}

TEST(FeedForward, SoftMeasurementValidatesAndCounts) {
  const auto ff = make_ff({{3, 9}}, 8, 16);
  Rng rng(9);
  const auto c = random_challenge(16, rng);
  EXPECT_THROW(ff.measure_soft_response(c, Environment::nominal(), 0, rng),
               std::invalid_argument);
  const SoftMeasurement m = ff.measure_soft_response(c, Environment::nominal(), 500, rng);
  EXPECT_EQ(m.trials, 500u);
  EXPECT_LE(m.ones, 500u);
}

TEST(FeedForward, LoopsReduceStability) {
  // Aggregate over challenges: intermediate arbiters add noise injection
  // points, so the fully-stable fraction drops versus the linear device.
  DeviceParameters params;
  Rng r1(11), r2(11);
  const FeedForwardArbiterDevice ff(params, EnvironmentModel{},
                                    {{7, 15}, {15, 28}}, r1);
  const ArbiterPufDevice linear(params, EnvironmentModel{}, r2);
  Rng crng(12), erng(13);
  const auto env = Environment::nominal();
  const int n = 150;
  const std::uint64_t trials = 1'000;
  int stable_ff = 0, stable_linear = 0;
  for (int i = 0; i < n; ++i) {
    const auto c = random_challenge(32, crng);
    if (ff.measure_soft_response(c, env, trials, erng).fully_stable()) ++stable_ff;
    std::uint64_t ones = 0;
    for (std::uint64_t t = 0; t < trials; ++t)
      if (linear.evaluate(c, env, erng)) ++ones;
    if (ones == 0 || ones == trials) ++stable_linear;
  }
  EXPECT_LT(stable_ff, stable_linear);
}

TEST(FeedForward, ChallengeLengthValidated) {
  const auto ff = make_ff({{1, 4}}, 14, 8);
  Rng rng(15);
  EXPECT_THROW(ff.delay_difference(Challenge(9, 0), Environment::nominal()),
               std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::sim
