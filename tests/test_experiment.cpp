// Tests for the shared experiment runners (the curves behind the figures).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.hpp"
#include "puf/enrollment.hpp"
#include "sim/population.hpp"

namespace xpuf::analysis {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest() : pop_(make_config()), rng_(42) {}

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 5;
    cfg.seed = 1000;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
};

TEST_F(ExperimentTest, SoftResponseStudyIsBimodal) {
  const SoftResponseStudy study = study_soft_response(
      pop_.chip(0), 0, 3'000, 10'000, sim::Environment::nominal(), rng_);
  EXPECT_EQ(study.challenges, 3'000u);
  // Paper Fig 2: ~40% in each extreme bin. A single device carries a
  // per-device bias that skews the 0/1 split while the sum stays ~80%.
  EXPECT_NEAR(study.pr_stable0, 0.40, 0.12);
  EXPECT_NEAR(study.pr_stable1, 0.40, 0.12);
  EXPECT_NEAR(study.pr_stable0 + study.pr_stable1, 0.82, 0.08);
  // The first bin covers [0, 0.01): the 100%-stable CRPs plus the nearly
  // stable ones, so it dominates but slightly exceeds Pr(stable 0).
  EXPECT_GE(study.histogram.first_bin_fraction() + 1e-12, study.pr_stable0);
  EXPECT_NEAR(study.histogram.first_bin_fraction(), study.pr_stable0, 0.06);
  EXPECT_GE(study.histogram.last_bin_fraction() + 1e-12, study.pr_stable1);
  EXPECT_NEAR(study.histogram.last_bin_fraction(), study.pr_stable1, 0.06);
  // Middle bins are comparatively empty.
  EXPECT_LT(study.histogram.fraction(50), 0.02);
}

TEST_F(ExperimentTest, MeasuredStableVsNDecaysExponentially) {
  const auto fractions = measured_stable_vs_n(pop_.chip(0), 5, 2'000, 10'000,
                                              sim::Environment::nominal(), rng_);
  ASSERT_EQ(fractions.size(), 5u);
  // Monotone decreasing.
  for (std::size_t i = 1; i < 5; ++i) EXPECT_LE(fractions[i], fractions[i - 1]);
  // n = 1 near the calibrated 80%.
  EXPECT_NEAR(fractions[0], 0.80, 0.05);
  // Exponential-decay base near 0.8.
  EXPECT_NEAR(fit_exponential_base(fractions), 0.80, 0.05);
}

TEST_F(ExperimentTest, PredictedStableVsNDecaysAndIsFewerThanMeasured) {
  puf::EnrollmentConfig cfg;
  cfg.training_challenges = 2'000;
  cfg.trials = 5'000;
  puf::ServerModel model = puf::Enroller(cfg).enroll(pop_.chip(0), rng_);
  const auto measured = measured_stable_vs_n(pop_.chip(0), 5, 2'000, 10'000,
                                             sim::Environment::nominal(), rng_);
  const auto predicted = predicted_stable_vs_n(model, 5, 2'000, rng_);
  ASSERT_EQ(predicted.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_LE(predicted[i], predicted[i - 1]);
  // The paper: predicted-stable fraction < measured-stable fraction.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_LT(predicted[i], measured[i] + 0.02);
  // Tightening betas reduces the predicted yield further.
  model.set_betas(puf::BetaFactors{0.7, 1.3});
  const auto tightened = predicted_stable_vs_n(model, 5, 2'000, rng_);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_LE(tightened[i], predicted[i] + 1e-12);
}

TEST_F(ExperimentTest, RunnersValidateArguments) {
  EXPECT_THROW(measured_stable_vs_n(pop_.chip(0), 0, 10, 100,
                                    sim::Environment::nominal(), rng_),
               std::invalid_argument);
  EXPECT_THROW(measured_stable_vs_n(pop_.chip(0), 6, 10, 100,
                                    sim::Environment::nominal(), rng_),
               std::invalid_argument);
  EXPECT_THROW(
      study_soft_response(pop_.chip(0), 0, 0, 100, sim::Environment::nominal(), rng_),
      std::invalid_argument);
}

TEST(FitExponentialBase, RecoversPlantedBase) {
  std::vector<double> y;
  for (int n = 1; n <= 10; ++n) y.push_back(std::pow(0.8, n));
  EXPECT_NEAR(fit_exponential_base(y), 0.8, 1e-9);
}

TEST(FitExponentialBase, SkipsZeros) {
  std::vector<double> y{0.5, 0.25, 0.0, 0.0625};
  EXPECT_NEAR(fit_exponential_base(y), 0.5, 1e-9);
}

TEST(FitExponentialBase, AllZeroReturnsZero) {
  EXPECT_DOUBLE_EQ(fit_exponential_base({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(fit_exponential_base({}), 0.0);
}

}  // namespace
}  // namespace xpuf::analysis
