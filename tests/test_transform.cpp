// Tests for the parity-feature challenge transform.
#include <gtest/gtest.h>

#include "puf/transform.hpp"
#include "sim/device.hpp"

namespace xpuf::puf {
namespace {

TEST(Transform, AllZeroChallengeGivesAllOnes) {
  const Challenge c(5, 0);
  const linalg::Vector phi = feature_vector(c);
  ASSERT_EQ(phi.size(), 6u);
  for (double v : phi) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Transform, KnownSmallCases) {
  // c = [1]: phi = [(1-2*1), 1] = [-1, 1].
  EXPECT_EQ(feature_vector({1}), (linalg::Vector{-1.0, 1.0}));
  // c = [1, 0]: phi_1 = (1-2)(1-0) = -1, phi_2 = 1, phi_3 = 1.
  EXPECT_EQ(feature_vector({1, 0}), (linalg::Vector{-1.0, 1.0, 1.0}));
  // c = [0, 1]: phi_1 = (1)(-1) = -1, phi_2 = -1, phi_3 = 1.
  EXPECT_EQ(feature_vector({0, 1}), (linalg::Vector{-1.0, -1.0, 1.0}));
}

TEST(Transform, EntriesAreAlwaysPlusMinusOneEndingInOne) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto c = random_challenge(24, rng);
    const linalg::Vector phi = feature_vector(c);
    ASSERT_EQ(phi.size(), 25u);
    EXPECT_DOUBLE_EQ(phi[24], 1.0);
    for (double v : phi) EXPECT_TRUE(v == 1.0 || v == -1.0);
  }
}

TEST(Transform, SuffixProductStructureHolds) {
  Rng rng(2);
  const auto c = random_challenge(16, rng);
  const linalg::Vector phi = feature_vector(c);
  for (std::size_t i = 0; i < 16; ++i) {
    const double expected = (c[i] ? -1.0 : 1.0) * phi[i + 1];
    EXPECT_DOUBLE_EQ(phi[i], expected);
  }
}

TEST(Transform, RejectsEmptyChallenge) {
  EXPECT_THROW(feature_vector(Challenge{}), std::invalid_argument);
}

TEST(Transform, RoundTripThroughFeatures) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_challenge(32, rng);
    EXPECT_EQ(challenge_from_features(feature_vector(c)), c);
  }
}

TEST(Transform, ChallengeFromFeaturesValidates) {
  EXPECT_THROW(challenge_from_features(linalg::Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(challenge_from_features(linalg::Vector{1.0, -1.0}),
               std::invalid_argument);  // must end in +1
  EXPECT_THROW(challenge_from_features(linalg::Vector{0.5, 1.0}),
               std::invalid_argument);  // entries must be +/-1
}

TEST(Transform, FeatureMatrixStacksRows) {
  Rng rng(4);
  const auto challenges = random_challenges(8, 5, rng);
  const linalg::Matrix m = feature_matrix(challenges);
  ASSERT_EQ(m.rows(), 5u);
  ASSERT_EQ(m.cols(), 9u);
  for (std::size_t r = 0; r < 5; ++r) {
    const linalg::Vector phi = feature_vector(challenges[r]);
    for (std::size_t c = 0; c < 9; ++c) EXPECT_DOUBLE_EQ(m(r, c), phi[c]);
  }
}

TEST(Transform, FeatureMatrixValidates) {
  EXPECT_THROW(feature_matrix({}), std::invalid_argument);
  std::vector<Challenge> mixed{Challenge(4, 0), Challenge(5, 0)};
  EXPECT_THROW(feature_matrix(mixed), std::invalid_argument);
}

TEST(Transform, FlippingOneBitFlipsAPrefix) {
  // Flipping challenge bit i negates phi_1..phi_i and leaves the rest.
  Rng rng(5);
  const auto c = random_challenge(12, rng);
  const linalg::Vector phi = feature_vector(c);
  Challenge c2 = c;
  const std::size_t flip = 7;
  c2[flip] ^= 1;
  const linalg::Vector phi2 = feature_vector(c2);
  for (std::size_t i = 0; i <= flip; ++i) EXPECT_DOUBLE_EQ(phi2[i], -phi[i]);
  for (std::size_t i = flip + 1; i < phi.size(); ++i) EXPECT_DOUBLE_EQ(phi2[i], phi[i]);
}

TEST(Transform, FeatureCountHelper) {
  EXPECT_EQ(feature_count(32), 33u);
  EXPECT_EQ(feature_count(64), 65u);
}

TEST(Transform, RandomChallengesProducesRequestedCount) {
  Rng rng(6);
  const auto cs = random_challenges(10, 7, rng);
  EXPECT_EQ(cs.size(), 7u);
  for (const auto& c : cs) EXPECT_EQ(c.size(), 10u);
}

TEST(Transform, MatchesDeviceReduction) {
  // End-to-end: w . phi from the transform equals the device's stage walk.
  sim::DeviceParameters params;
  params.stages = 20;
  Rng rng(7);
  const sim::ArbiterPufDevice device(params, sim::EnvironmentModel{}, rng);
  const auto env = sim::Environment::nominal();
  const linalg::Vector w = device.reduced_weights(env);
  for (int i = 0; i < 30; ++i) {
    const auto c = random_challenge(20, rng);
    EXPECT_NEAR(linalg::dot(w, feature_vector(c)), device.delay_difference(c, env),
                1e-10);
  }
}

}  // namespace
}  // namespace xpuf::puf
