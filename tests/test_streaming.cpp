// Streaming-vs-materialized equivalence suite.
//
// The streaming enrollment pipeline promises bit-identical results to the
// materialized path for any chunk size and any thread count. These tests pin
// that promise at every layer: the chunked scan producer against
// scan_individual, the normal-equations accumulator against the one-shot
// gram/Cholesky kernels, the end-to-end Enroller::enroll against
// enroll_materialized, and the GEMM-backed logistic-regression objective
// against a scalar replica of the historical row-loop math.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/math.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/streaming.hpp"
#include "puf/enrollment.hpp"
#include "sim/population.hpp"
#include "sim/tester.hpp"

namespace xpuf {
namespace {

using sim::Challenge;

/// Restores the global lane count on scope exit so a failing assertion in a
/// multi-thread section cannot leak its thread count into later tests.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(ThreadPool::global_threads()) {}
  ~ThreadGuard() { ThreadPool::set_global_threads(saved_); }

 private:
  std::uint64_t saved_;
};

sim::PopulationConfig small_lot() {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 3;
  cfg.seed = 4242;
  return cfg;
}

/// Drains a stream into materialized-scan shape (soft[p][c], stable[p][c]).
struct CollectedScan {
  std::vector<std::vector<Challenge>> chunks;
  std::vector<std::vector<double>> soft;
  std::vector<std::vector<std::uint8_t>> stable;
};

CollectedScan collect(sim::ChipScanStream& stream, std::size_t n_pufs) {
  CollectedScan out;
  out.soft.resize(n_pufs);
  out.stable.resize(n_pufs);
  sim::ScanChunk chunk;
  while (stream.next(chunk)) {
    out.chunks.push_back(chunk.block.challenges());
    for (std::size_t p = 0; p < n_pufs; ++p) {
      out.soft[p].insert(out.soft[p].end(), chunk.soft[p].begin(), chunk.soft[p].end());
      out.stable[p].insert(out.stable[p].end(), chunk.stable[p].begin(),
                           chunk.stable[p].end());
    }
  }
  return out;
}

class ScanStreamTest : public ::testing::TestWithParam<sim::ScanMode> {
 protected:
  ScanStreamTest() : pop_(small_lot()) {}
  sim::ChipPopulation pop_;
};

TEST_P(ScanStreamTest, MatchesMaterializedScanCellForCell) {
  const std::size_t total = 150;
  Rng r1(77), r2(77);
  sim::ChipTester streamer(sim::Environment::nominal(), 500, r1.fork(), GetParam());
  sim::ChipTester materializer(sim::Environment::nominal(), 500, r2.fork(), GetParam());

  sim::ChipScanStream stream = streamer.stream_individual(pop_.chip(0), total, 64);
  const CollectedScan streamed = collect(stream, 3);

  const auto challenges = materializer.random_challenges(pop_.chip(0), total);
  const sim::ChipSoftScan scan = materializer.scan_individual(pop_.chip(0), challenges);

  std::vector<Challenge> streamed_challenges;
  for (const auto& c : streamed.chunks)
    streamed_challenges.insert(streamed_challenges.end(), c.begin(), c.end());
  EXPECT_EQ(streamed_challenges, challenges);
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_EQ(streamed.soft[p].size(), total);
    for (std::size_t c = 0; c < total; ++c) {
      EXPECT_EQ(streamed.soft[p][c], scan.soft[p][c]) << "PUF " << p << " cell " << c;
      EXPECT_EQ(streamed.stable[p][c] != 0, scan.stable[p][c] == true);
    }
  }

  // The stream pre-advances the tester's generator past the challenge draws
  // at construction, so both testers end in the same state: their next
  // challenge batches must agree draw for draw.
  EXPECT_EQ(streamer.random_challenges(pop_.chip(0), 8),
            materializer.random_challenges(pop_.chip(0), 8));
}

TEST_P(ScanStreamTest, ChunkSizeNeverChangesTheBits) {
  const std::size_t total = 101;  // prime-ish: exercises ragged final chunks
  CollectedScan reference;
  bool have_reference = false;
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}, total}) {
    Rng rng(99);
    sim::ChipTester tester(sim::Environment::nominal(), 300, rng.fork(), GetParam());
    sim::ChipScanStream stream = tester.stream_individual(pop_.chip(0), total, chunk);
    const CollectedScan got = collect(stream, 3);
    if (!have_reference) {
      reference = got;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(got.soft, reference.soft) << "chunk " << chunk;
    EXPECT_EQ(got.stable, reference.stable) << "chunk " << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, ScanStreamTest,
                         ::testing::Values(sim::ScanMode::kBatched,
                                           sim::ScanMode::kScalar));

TEST(ScanStream, ResetReplaysBitIdentically) {
  sim::ChipPopulation pop(small_lot());
  Rng rng(5);
  sim::ChipTester tester(sim::Environment::nominal(), 400, rng.fork());
  sim::ChipScanStream stream = tester.stream_individual(pop.chip(0), 90, 32);
  const CollectedScan first = collect(stream, 3);
  stream.reset();
  EXPECT_EQ(stream.position(), 0u);
  const CollectedScan replay = collect(stream, 3);
  EXPECT_EQ(first.chunks, replay.chunks);
  EXPECT_EQ(first.soft, replay.soft);
  EXPECT_EQ(first.stable, replay.stable);
}

TEST(ScanStream, ThreadCountNeverChangesTheBits) {
  ThreadGuard guard;
  sim::ChipPopulation pop(small_lot());
  CollectedScan reference;
  bool have_reference = false;
  for (std::uint64_t threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    Rng rng(123);
    sim::ChipTester tester(sim::Environment::nominal(), 300, rng.fork());
    sim::ChipScanStream stream = tester.stream_individual(pop.chip(0), 130, 33);
    const CollectedScan got = collect(stream, 3);
    if (!have_reference) {
      reference = got;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(got.soft, reference.soft) << threads << " threads";
    EXPECT_EQ(got.stable, reference.stable) << threads << " threads";
  }
}

TEST(ScanStream, RejectsZeroChunk) {
  sim::ChipPopulation pop(small_lot());
  Rng rng(1);
  sim::ChipTester tester(sim::Environment::nominal(), 100, rng.fork());
  EXPECT_THROW(tester.stream_individual(pop.chip(0), 10, 0), std::invalid_argument);
}

// --- StreamingNormalEquations vs the one-shot kernels --------------------

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(StreamingNormalEquations, MatchesOneShotGramAndCholeskyBitwise) {
  Rng rng(2718);
  const std::size_t n = 97, d = 9, targets = 2;
  const linalg::Matrix x = random_matrix(n, d, rng);
  std::vector<std::vector<double>> ys(targets);
  for (auto& y : ys)
    for (std::size_t r = 0; r < n; ++r) y.push_back(rng.uniform(-1.0, 1.0));

  // Feed ragged chunks (sizes 1, 2, 3, ... wrapping) to stress the
  // any-partition contract.
  ml::StreamingNormalEquations acc(d, targets);
  std::size_t pos = 0, step = 1;
  while (pos < n) {
    const std::size_t m = std::min(step, n - pos);
    linalg::Matrix phi(m, d);
    std::vector<std::vector<double>> chunk_y(targets);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < d; ++c) phi(r, c) = x(pos + r, c);
      for (std::size_t t = 0; t < targets; ++t) chunk_y[t].push_back(ys[t][pos + r]);
    }
    acc.accumulate(phi, chunk_y);
    pos += m;
    step = step % 5 + 1;
  }
  ASSERT_EQ(acc.rows(), n);

  const double ridge = 1e-8;
  const linalg::Matrix w = acc.solve(ridge);
  ASSERT_EQ(w.rows(), targets);
  ASSERT_EQ(w.cols(), d);

  // One-shot reference: the exact kernel sequence solve_least_squares'
  // normal-equations route runs on a materialized X.
  linalg::Matrix g = linalg::gram(x);
  for (std::size_t i = 0; i < d; ++i) g(i, i) += ridge;
  linalg::Cholesky chol(g);
  for (std::size_t t = 0; t < targets; ++t) {
    const linalg::Vector rhs =
        linalg::matvec_transposed(x, linalg::Vector(ys[t]));
    const linalg::Vector ref = chol.solve(rhs);
    for (std::size_t c = 0; c < d; ++c)
      EXPECT_EQ(w(t, c), ref[c]) << "target " << t << " coefficient " << c;
    double sum = 0.0;
    for (double v : ys[t]) sum += v;
    EXPECT_EQ(acc.target_mean(t), sum / static_cast<double>(n));
  }
}

TEST(StreamingNormalEquations, RejectsUnderdeterminedAndShapeMismatch) {
  ml::StreamingNormalEquations acc(4, 1);
  linalg::Matrix phi(2, 4);
  std::vector<std::vector<double>> y{{1.0, 0.0}};
  acc.accumulate(phi, y);
  EXPECT_THROW(acc.solve(0.0), std::invalid_argument);  // 2 rows < 4 features
  linalg::Matrix bad(2, 3);
  EXPECT_THROW(acc.accumulate(bad, y), std::invalid_argument);
  std::vector<std::vector<double>> short_y{{1.0}};
  EXPECT_THROW(acc.accumulate(phi, short_y), std::invalid_argument);
}

// --- End-to-end: streaming enroll vs materialized enroll ------------------

void expect_models_identical(const puf::ServerModel& a, const puf::ServerModel& b) {
  ASSERT_EQ(a.puf_count(), b.puf_count());
  for (std::size_t p = 0; p < a.puf_count(); ++p) {
    EXPECT_EQ(a.puf(p).model.weights().raw(), b.puf(p).model.weights().raw())
        << "PUF " << p;
    EXPECT_EQ(a.puf(p).thresholds.thr0, b.puf(p).thresholds.thr0) << "PUF " << p;
    EXPECT_EQ(a.puf(p).thresholds.thr1, b.puf(p).thresholds.thr1) << "PUF " << p;
    EXPECT_EQ(a.puf(p).train_r_squared, b.puf(p).train_r_squared) << "PUF " << p;
  }
}

TEST(StreamingEnrollment, BitIdenticalToMaterializedAcrossChunksAndThreads) {
  ThreadGuard guard;
  sim::ChipPopulation pop(small_lot());

  puf::EnrollmentConfig cfg;
  cfg.training_challenges = 400;
  cfg.trials = 200;

  // The materialized reference, computed once on one thread.
  ThreadPool::set_global_threads(1);
  Rng ref_rng(31415);
  const puf::ServerModel reference =
      puf::Enroller(cfg).enroll_materialized(pop.chip(0), ref_rng);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
    for (std::uint64_t threads : {1u, 2u, 8u}) {
      ThreadPool::set_global_threads(threads);
      puf::EnrollmentConfig scfg = cfg;
      scfg.chunk_challenges = chunk;
      Rng rng(31415);
      const puf::ServerModel streamed = puf::Enroller(scfg).enroll(pop.chip(0), rng);
      SCOPED_TRACE(::testing::Message() << "chunk " << chunk << ", threads " << threads);
      expect_models_identical(streamed, reference);
      // Both paths must consume the caller's generator identically.
      Rng expected(31415);
      expected.fork();
      EXPECT_EQ(rng.next_u64(), expected.next_u64());
    }
  }
}

TEST(StreamingEnrollment, FailsOnDeployedChipLikeMaterialized) {
  sim::PopulationConfig pcfg = small_lot();
  pcfg.seed = 31337;
  sim::ChipPopulation pop(pcfg);
  pop.chip(0).blow_fuses();
  puf::EnrollmentConfig cfg;
  cfg.training_challenges = 10;
  cfg.trials = 100;
  Rng rng(1);
  EXPECT_THROW(puf::Enroller(cfg).enroll(pop.chip(0), rng), AccessError);
}

// --- GEMM-backed logistic objective vs a scalar replica -------------------

// The historical scalar objective, reproduced with plain loops on the same
// fixed 512-row shard grid the GEMM path uses: per-row ascending-index dot,
// softplus loss and error accumulated per shard, shard partials combined in
// ascending shard order, gradient shard partials likewise. Any bit of drift
// between this and LogisticRegression::objective means the GEMM rewrite
// changed the math.
double scalar_objective(const ml::Dataset& data, double l2, const linalg::Vector& w,
                        linalg::Vector& grad) {
  constexpr std::size_t kShard = 512;
  const std::size_t n = data.size();
  const std::size_t d = data.features();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> err(n);
  double total_loss = 0.0;
  for (std::size_t begin = 0; begin < n; begin += kShard) {
    const std::size_t end = std::min(begin + kShard, n);
    double shard = 0.0;
    for (std::size_t r = begin; r < end; ++r) {
      double z = 0.0;
      for (std::size_t c = 0; c < d; ++c) z += data.x(r, c) * w[c];
      const double t = data.y[r] >= 0.5 ? 1.0 : 0.0;
      shard += t > 0.5 ? softplus(-z) : softplus(z);
      err[r] = (sigmoid(z) - t) * inv_n;
    }
    total_loss += shard;
  }
  grad = linalg::Vector(d);
  for (std::size_t begin = 0; begin < n; begin += kShard) {
    const std::size_t end = std::min(begin + kShard, n);
    std::vector<double> shard(d, 0.0);
    for (std::size_t r = begin; r < end; ++r) {
      if (err[r] == 0.0) continue;  // matmul_tn skips exact-zero terms
      for (std::size_t c = 0; c < d; ++c) shard[c] += err[r] * data.x(r, c);
    }
    for (std::size_t c = 0; c < d; ++c) grad[c] += shard[c];
  }
  double loss = total_loss * inv_n;
  for (std::size_t c = 0; c < d; ++c) {
    loss += 0.5 * l2 * w[c] * w[c];
    grad[c] += l2 * w[c];
  }
  return loss;
}

ml::Dataset lr_golden_dataset(std::size_t n, std::size_t d, Rng& rng) {
  ml::Dataset data;
  data.reserve(n, d);
  std::vector<double> row(d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) row[c] = rng.uniform(-1.0, 1.0);
    // Noisy linear labels: separable enough to fit, noisy enough that the
    // sigmoid never saturates to an exact 0/1 during these tests.
    const double s = row[0] - 0.5 * row[1] + 0.25 * rng.uniform(-1.0, 1.0);
    data.add(row, s > 0.0 ? 1.0 : 0.0);
  }
  return data;
}

TEST(LogisticGemmGolden, ObjectiveAndGradientMatchScalarReplicaBitwise) {
  Rng rng(161803);
  // > 512 rows so the shard grid has interior boundaries AND a ragged tail.
  const ml::Dataset data = lr_golden_dataset(1300, 7, rng);
  ml::LogisticRegressionOptions opts;
  opts.l2 = 1e-4;
  const ml::LogisticRegression lr(opts);
  for (int trial = 0; trial < 5; ++trial) {
    linalg::Vector w(7);
    for (std::size_t c = 0; c < 7; ++c) w[c] = rng.uniform(-2.0, 2.0);
    linalg::Vector grad_gemm, grad_scalar;
    const double loss_gemm = lr.objective(data, w, grad_gemm);
    const double loss_scalar = scalar_objective(data, opts.l2, w, grad_scalar);
    EXPECT_EQ(loss_gemm, loss_scalar) << "trial " << trial;
    ASSERT_EQ(grad_gemm.size(), grad_scalar.size());
    for (std::size_t c = 0; c < 7; ++c)
      EXPECT_EQ(grad_gemm[c], grad_scalar[c]) << "trial " << trial << " coeff " << c;
  }
}

TEST(LogisticGemmGolden, FitIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(271828);
  const ml::Dataset data = lr_golden_dataset(1100, 6, rng);
  std::vector<double> reference;
  for (std::uint64_t threads : {1u, 2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    ml::LogisticRegression lr;
    lr.fit(data);
    if (reference.empty()) {
      reference = lr.weights().raw();
      continue;
    }
    EXPECT_EQ(lr.weights().raw(), reference) << threads << " threads";
  }
}

}  // namespace
}  // namespace xpuf
