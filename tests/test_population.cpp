// Tests for the simulated fab lot.
#include <gtest/gtest.h>

#include "sim/population.hpp"

namespace xpuf::sim {
namespace {

TEST(Population, HonorsConfiguration) {
  PopulationConfig cfg;
  cfg.n_chips = 4;
  cfg.n_pufs_per_chip = 3;
  cfg.device.stages = 16;
  const ChipPopulation pop(cfg);
  EXPECT_EQ(pop.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pop.chip(i).puf_count(), 3u);
    EXPECT_EQ(pop.chip(i).stages(), 16u);
    EXPECT_EQ(pop.chip(i).id(), i);
  }
}

TEST(Population, RejectsEmptyLot) {
  PopulationConfig cfg;
  cfg.n_chips = 0;
  EXPECT_THROW(ChipPopulation{cfg}, std::invalid_argument);
}

TEST(Population, ChipsAreDistinctDevices) {
  PopulationConfig cfg;
  cfg.n_chips = 2;
  cfg.n_pufs_per_chip = 1;
  const ChipPopulation pop(cfg);
  Rng rng(1);
  const auto c = random_challenge(pop.chip(0).stages(), rng);
  const double d0 =
      pop.chip(0).device_for_analysis(0).delay_difference(c, Environment::nominal());
  const double d1 =
      pop.chip(1).device_for_analysis(0).delay_difference(c, Environment::nominal());
  EXPECT_NE(d0, d1);
}

TEST(Population, SameSeedSameLot) {
  PopulationConfig cfg;
  cfg.n_chips = 2;
  cfg.seed = 77;
  const ChipPopulation a(cfg), b(cfg);
  Rng rng(2);
  const auto c = random_challenge(a.chip(0).stages(), rng);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t p = 0; p < a.chip(i).puf_count(); ++p)
      EXPECT_DOUBLE_EQ(a.chip(i).device_for_analysis(p).delay_difference(
                           c, Environment::nominal()),
                       b.chip(i).device_for_analysis(p).delay_difference(
                           c, Environment::nominal()));
}

TEST(Population, DifferentSeedDifferentLot) {
  PopulationConfig cfg1;
  cfg1.n_chips = 1;
  cfg1.seed = 1;
  PopulationConfig cfg2 = cfg1;
  cfg2.seed = 2;
  const ChipPopulation a(cfg1), b(cfg2);
  Rng rng(3);
  const auto c = random_challenge(a.chip(0).stages(), rng);
  EXPECT_NE(
      a.chip(0).device_for_analysis(0).delay_difference(c, Environment::nominal()),
      b.chip(0).device_for_analysis(0).delay_difference(c, Environment::nominal()));
}

TEST(Population, IndexIsValidated) {
  PopulationConfig cfg;
  cfg.n_chips = 1;
  ChipPopulation pop(cfg);
  EXPECT_THROW(pop.chip(1), std::invalid_argument);
  const ChipPopulation& cpop = pop;
  EXPECT_THROW(cpop.chip(1), std::invalid_argument);
}

TEST(Population, MeasurementRngIsDecoupledFromFabrication) {
  PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.seed = 5;
  const ChipPopulation pop(cfg);
  Rng m1 = pop.measurement_rng();
  Rng fab(cfg.seed);
  // The first draws must differ (different stream).
  EXPECT_NE(m1.next_u64(), fab.next_u64());
}

}  // namespace
}  // namespace xpuf::sim
