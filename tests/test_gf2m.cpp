// Tests for GF(2^m) arithmetic and polynomials over it.
#include <gtest/gtest.h>

#include "crypto/gf2m.hpp"

namespace xpuf::crypto {
namespace {

TEST(GF2m, ConstructionValidatesM) {
  EXPECT_THROW(GF2m(1), std::invalid_argument);
  EXPECT_THROW(GF2m(17), std::invalid_argument);
  EXPECT_NO_THROW(GF2m(2));
  EXPECT_NO_THROW(GF2m(16));
}

TEST(GF2m, SizesAndOrders) {
  const GF2m f(4);
  EXPECT_EQ(f.m(), 4u);
  EXPECT_EQ(f.size(), 16u);
  EXPECT_EQ(f.order(), 15u);
}

TEST(GF2m, AlphaGeneratesTheMultiplicativeGroup) {
  const GF2m f(5);
  std::set<std::uint32_t> seen;
  for (std::uint32_t k = 0; k < f.order(); ++k) seen.insert(f.alpha_pow(k));
  EXPECT_EQ(seen.size(), f.order());  // all nonzero elements hit once
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(GF2m, LogAndExpAreInverse) {
  const GF2m f(6);
  for (std::uint32_t x = 1; x < f.size(); ++x)
    EXPECT_EQ(f.alpha_pow(f.log(x)), x);
  EXPECT_THROW(f.log(0), std::invalid_argument);
}

TEST(GF2m, NegativeExponentsWrap) {
  const GF2m f(4);
  EXPECT_EQ(f.alpha_pow(-1), f.inv(f.alpha_pow(1)));
  EXPECT_EQ(f.alpha_pow(-15), f.alpha_pow(0));
  EXPECT_EQ(f.alpha_pow(30), f.alpha_pow(0));
}

TEST(GF2m, MultiplicationAgainstKnownGF16) {
  // GF(16) with x^4 + x + 1: alpha^4 = alpha + 1 = 0b0011 = 3.
  const GF2m f(4);
  EXPECT_EQ(f.alpha_pow(4), 3u);
  EXPECT_EQ(f.mul(2, 2), 4u);        // alpha * alpha = alpha^2
  EXPECT_EQ(f.mul(8, 2), 3u);        // alpha^3 * alpha = alpha^4 = 3
  EXPECT_EQ(f.mul(0, 7), 0u);
  EXPECT_EQ(f.mul(1, 9), 9u);
}

TEST(GF2m, InverseAndDivision) {
  const GF2m f(5);
  for (std::uint32_t x = 1; x < f.size(); ++x) {
    EXPECT_EQ(f.mul(x, f.inv(x)), 1u);
    EXPECT_EQ(f.div(x, x), 1u);
  }
  EXPECT_THROW(f.inv(0), std::invalid_argument);
  EXPECT_THROW(f.div(3, 0), std::invalid_argument);
  EXPECT_EQ(f.div(0, 5), 0u);
}

TEST(GF2m, PowMatchesRepeatedMultiplication) {
  const GF2m f(4);
  for (std::uint32_t a = 1; a < f.size(); ++a) {
    std::uint32_t acc = 1;
    for (int k = 0; k <= 6; ++k) {
      EXPECT_EQ(f.pow(a, k), acc) << "a=" << a << " k=" << k;
      acc = f.mul(acc, a);
    }
  }
  EXPECT_EQ(f.pow(0, 3), 0u);
  EXPECT_THROW(f.pow(0, 0), std::invalid_argument);
}

// Field-axiom property sweep across all supported small fields.
class GF2mAxiomSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GF2mAxiomSweep, DistributivityAndAssociativityHold) {
  const GF2m f(GetParam());
  // Exhaustive for tiny fields, strided for larger ones.
  const std::uint32_t stride = f.size() <= 32 ? 1 : f.size() / 17;
  for (std::uint32_t a = 0; a < f.size(); a += stride)
    for (std::uint32_t b = 1; b < f.size(); b += stride)
      for (std::uint32_t c = 1; c < f.size(); c += stride) {
        EXPECT_EQ(f.mul(a, GF2m::add(b, c)), GF2m::add(f.mul(a, b), f.mul(a, c)));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
      }
}

INSTANTIATE_TEST_SUITE_P(Fields, GF2mAxiomSweep, ::testing::Values(2u, 3u, 4u, 7u, 8u));

TEST(GFPoly, NormalizationAndDegree) {
  EXPECT_TRUE(GFPoly::zero().is_zero());
  EXPECT_EQ(GFPoly::zero().degree(), -1);
  EXPECT_EQ(GFPoly({1, 0, 0}).degree(), 0);
  EXPECT_EQ(GFPoly({0, 0, 5}).degree(), 2);
  EXPECT_EQ(GFPoly::one().degree(), 0);
  EXPECT_EQ(GFPoly::monomial(3, 4).degree(), 4);
  EXPECT_TRUE(GFPoly::monomial(0, 4).is_zero());
}

TEST(GFPoly, AdditionIsXorAndSelfInverse) {
  const GFPoly a({1, 2, 3});
  const GFPoly b({3, 2});
  EXPECT_EQ(a.plus(b), GFPoly({2, 0, 3}));
  EXPECT_TRUE(a.plus(a).is_zero());
}

TEST(GFPoly, MultiplicationAgainstHandComputation) {
  const GF2m f(4);
  // (x + 1)(x + 1) = x^2 + 1 over GF(2) subset.
  const GFPoly xp1({1, 1});
  EXPECT_EQ(xp1.times(xp1, f), GFPoly({1, 0, 1}));
  EXPECT_TRUE(xp1.times(GFPoly::zero(), f).is_zero());
}

TEST(GFPoly, ModuloReducesBelowDivisorDegree) {
  const GF2m f(4);
  const GFPoly dividend({1, 2, 3, 4, 5});
  const GFPoly divisor({1, 1, 1});
  const GFPoly r = dividend.mod(divisor, f);
  EXPECT_LT(r.degree(), divisor.degree());
  EXPECT_THROW(dividend.mod(GFPoly::zero(), f), std::invalid_argument);
  // Exactness: (q*d + r) reconstruction check via evaluation at points.
  for (std::uint32_t x = 0; x < f.size(); ++x) {
    if (divisor.evaluate(x, f) != 0) continue;
    // At roots of the divisor, dividend == remainder.
    EXPECT_EQ(dividend.evaluate(x, f), r.evaluate(x, f));
  }
}

TEST(GFPoly, EvaluationHorner) {
  const GF2m f(4);
  const GFPoly p({3, 0, 1});  // x^2 + 3
  for (std::uint32_t x = 0; x < f.size(); ++x)
    EXPECT_EQ(p.evaluate(x, f), GF2m::add(f.mul(x, x), 3));
}

TEST(GFPoly, DerivativeCharacteristicTwo) {
  // d/dx (x^3 + a x^2 + b x + c) = 3x^2 + 2ax + b = x^2 + b in char 2.
  const GFPoly p({7, 5, 4, 1});
  EXPECT_EQ(p.derivative(), GFPoly({5, 0, 1}));
  EXPECT_TRUE(GFPoly({9}).derivative().is_zero());
}

}  // namespace
}  // namespace xpuf::crypto
