// Tests for the one-time-programmable fuse bank.
#include <gtest/gtest.h>

#include "sim/fuse.hpp"

namespace xpuf::sim {
namespace {

TEST(FuseBank, StartsIntact) {
  const FuseBank bank(4);
  EXPECT_EQ(bank.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(bank.intact(i));
  EXPECT_FALSE(bank.all_blown());
  EXPECT_EQ(bank.blown_count(), 0u);
}

TEST(FuseBank, BlowIsIrreversibleAndIdempotent) {
  FuseBank bank(3);
  bank.blow(1);
  EXPECT_FALSE(bank.intact(1));
  EXPECT_TRUE(bank.intact(0));
  bank.blow(1);  // no-op
  EXPECT_EQ(bank.blown_count(), 1u);
}

TEST(FuseBank, BlowAllDeploys) {
  FuseBank bank(5);
  bank.blow_all();
  EXPECT_TRUE(bank.all_blown());
  EXPECT_EQ(bank.blown_count(), 5u);
}

TEST(FuseBank, IndexIsValidated) {
  FuseBank bank(2);
  EXPECT_THROW(bank.intact(2), std::invalid_argument);
  EXPECT_THROW(bank.blow(2), std::invalid_argument);
}

TEST(FuseBank, EmptyBankIsTriviallyBlown) {
  const FuseBank bank(0);
  EXPECT_TRUE(bank.all_blown());
}

}  // namespace
}  // namespace xpuf::sim
