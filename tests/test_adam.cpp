// Tests for the Adam optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/adam.hpp"

namespace xpuf::ml {
namespace {

using linalg::Vector;

TEST(Adam, ValidatesConstruction) {
  EXPECT_THROW(Adam(0), std::invalid_argument);
  AdamOptions opts;
  opts.learning_rate = 0.0;
  EXPECT_THROW(Adam(3, opts), std::invalid_argument);
}

TEST(Adam, MinimizesQuadratic) {
  AdamOptions opts;
  opts.learning_rate = 0.05;
  Adam adam(2, opts);
  Vector x{4.0, -3.0};
  Vector g(2);
  for (int i = 0; i < 2000; ++i) {
    g[0] = 2.0 * x[0];
    g[1] = 2.0 * x[1];
    adam.step(x, g);
  }
  EXPECT_NEAR(x[0], 0.0, 1e-3);
  EXPECT_NEAR(x[1], 0.0, 1e-3);
  EXPECT_EQ(adam.steps_taken(), 2000u);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, |first update| == learning_rate (for nonzero grad).
  AdamOptions opts;
  opts.learning_rate = 0.1;
  Adam adam(1, opts);
  Vector x{1.0};
  Vector g{123.0};
  adam.step(x, g);
  EXPECT_NEAR(x[0], 1.0 - 0.1, 1e-6);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  AdamOptions opts;
  opts.learning_rate = 0.01;
  opts.weight_decay = 0.1;
  Adam adam(1, opts);
  Vector x{5.0};
  Vector g{0.0};
  for (int i = 0; i < 500; ++i) adam.step(x, g);
  EXPECT_LT(std::fabs(x[0]), 5.0);
}

TEST(Adam, ValidatesDimensions) {
  Adam adam(2);
  Vector x(3);
  Vector g(2);
  EXPECT_THROW(adam.step(x, g), std::invalid_argument);
  Vector x2(2);
  Vector g2(3);
  EXPECT_THROW(adam.step(x2, g2), std::invalid_argument);
}

TEST(Adam, HandlesSparseGradients) {
  // Second moment accumulation must not explode with intermittent gradients.
  Adam adam(1);
  Vector x{1.0};
  Vector g(1);
  for (int i = 0; i < 100; ++i) {
    g[0] = (i % 10 == 0) ? 2.0 * x[0] : 0.0;
    adam.step(x, g);
    ASSERT_TRUE(std::isfinite(x[0]));
  }
}

}  // namespace
}  // namespace xpuf::ml
