// Tests for the three-category stability classification and threshold
// derivation (paper Sec 4, Fig 8).
#include <gtest/gtest.h>

#include "puf/enrollment.hpp"
#include "puf/stability.hpp"

namespace xpuf::puf {
namespace {

TEST(MeasuredStable, OnlyExactBinsCount) {
  EXPECT_TRUE(measured_stable(0.0));
  EXPECT_TRUE(measured_stable(1.0));
  EXPECT_FALSE(measured_stable(0.001));
  EXPECT_FALSE(measured_stable(0.999));
  EXPECT_FALSE(measured_stable(0.5));
}

TEST(ThresholdPair, ClassifiesThreeRegions) {
  const ThresholdPair thr{0.2, 0.8};
  EXPECT_EQ(thr.classify(0.1), StableClass::kStable0);
  EXPECT_EQ(thr.classify(-2.0), StableClass::kStable0);
  EXPECT_EQ(thr.classify(0.2), StableClass::kUnstable);  // boundary is unstable
  EXPECT_EQ(thr.classify(0.5), StableClass::kUnstable);
  EXPECT_EQ(thr.classify(0.8), StableClass::kUnstable);
  EXPECT_EQ(thr.classify(0.9), StableClass::kStable1);
  EXPECT_EQ(thr.classify(3.0), StableClass::kStable1);
  EXPECT_TRUE(thr.is_stable(0.1));
  EXPECT_FALSE(thr.is_stable(0.5));
}

TEST(DeriveThresholds, PaperDefinitionOnHandData) {
  // predicted: -0.2  0.1  0.3  0.5  0.7  0.9  1.2
  // measured:   0.0  0.0  0.2  0.5  0.8  1.0  1.0
  const std::vector<double> predicted{-0.2, 0.1, 0.3, 0.5, 0.7, 0.9, 1.2};
  const std::vector<double> measured{0.0, 0.0, 0.2, 0.5, 0.8, 1.0, 1.0};
  const ThresholdPair thr = derive_thresholds(predicted, measured);
  // Lowest prediction with measured > 0.00 is 0.3; highest with measured
  // < 1.00 is 0.7.
  EXPECT_DOUBLE_EQ(thr.thr0, 0.3);
  EXPECT_DOUBLE_EQ(thr.thr1, 0.7);
  // The stable-in-measurement-but-marginal-in-model CRP at predicted 0.1
  // would be KEPT here (0.1 < 0.3); one at 0.35/measured 0.0 would be
  // discarded — matching the paper's "stable in measurement but discarded".
}

TEST(DeriveThresholds, AllStableDataFallsBackToCenter) {
  const std::vector<double> predicted{-0.5, 1.5};
  const std::vector<double> measured{0.0, 1.0};
  const ThresholdPair thr = derive_thresholds(predicted, measured);
  EXPECT_DOUBLE_EQ(thr.thr0, 0.5);
  EXPECT_DOUBLE_EQ(thr.thr1, 0.5);
}

TEST(DeriveThresholds, OneSidedDataUsesLiteralDefinition) {
  // All measured soft responses are < 1.00, so Thr('1') is the highest
  // prediction overall; Thr('0') is the lowest prediction with flips.
  const std::vector<double> predicted{0.1, 0.4};
  const std::vector<double> measured{0.0, 0.3};
  const ThresholdPair thr = derive_thresholds(predicted, measured);
  EXPECT_DOUBLE_EQ(thr.thr0, 0.4);
  EXPECT_DOUBLE_EQ(thr.thr1, 0.4);
}

TEST(DeriveThresholds, AllMeasuredZeroFallsBackOnOneSide) {
  // No CRP ever flipped to '1': Thr('0') has no witness and falls back to
  // the 0.5 center; Thr('1') is the highest prediction seen.
  const std::vector<double> predicted{0.1, 0.4};
  const std::vector<double> measured{0.0, 0.0};
  const ThresholdPair thr = derive_thresholds(predicted, measured);
  EXPECT_DOUBLE_EQ(thr.thr0, 0.5);
  EXPECT_DOUBLE_EQ(thr.thr1, 0.5);  // crossed (0.5 > 0.4) -> collapsed
}

TEST(DeriveThresholds, Validates) {
  EXPECT_THROW(derive_thresholds({}, {}), std::invalid_argument);
  const std::vector<double> a{0.1};
  const std::vector<double> b{0.1, 0.2};
  EXPECT_THROW(derive_thresholds(a, b), std::invalid_argument);
}

TEST(ClassifyAll, CountsEveryRegion) {
  const ThresholdPair thr{0.2, 0.8};
  const std::vector<double> preds{0.0, 0.1, 0.5, 0.6, 0.9, 1.1, 0.3};
  const ClassCounts counts = classify_all(thr, preds);
  EXPECT_EQ(counts.stable0, 2u);
  EXPECT_EQ(counts.stable1, 2u);
  EXPECT_EQ(counts.unstable, 3u);
  EXPECT_EQ(counts.total(), 7u);
  EXPECT_NEAR(counts.stable_fraction(), 4.0 / 7.0, 1e-12);
}

TEST(ClassCounts, EmptyFractionIsZero) {
  const ClassCounts counts;
  EXPECT_DOUBLE_EQ(counts.stable_fraction(), 0.0);
}

TEST(MeasuredStableFraction, CountsExactBins) {
  const std::vector<double> soft{0.0, 1.0, 0.5, 0.0, 0.99};
  EXPECT_DOUBLE_EQ(measured_stable_fraction(soft), 0.6);
  EXPECT_DOUBLE_EQ(measured_stable_fraction({}), 0.0);
}

TEST(Tighten, ScalesTowardStringency) {
  const ThresholdPair raw{0.3, 0.7};
  const ThresholdPair t = tighten(raw, BetaFactors{0.74, 1.08});
  EXPECT_NEAR(t.thr0, 0.3 * 0.74, 1e-12);
  EXPECT_NEAR(t.thr1, 0.7 * 1.08, 1e-12);
  // Acceptance regions shrink.
  EXPECT_LT(t.thr0, raw.thr0);
  EXPECT_GT(t.thr1, raw.thr1);
}

TEST(Tighten, IdentityBetasChangeNothing) {
  const ThresholdPair raw{0.25, 0.75};
  const ThresholdPair t = tighten(raw, BetaFactors{1.0, 1.0});
  EXPECT_DOUBLE_EQ(t.thr0, raw.thr0);
  EXPECT_DOUBLE_EQ(t.thr1, raw.thr1);
}

TEST(Tighten, NegativeThresholdsStillTighten) {
  // A negative Thr('0'): tightening must move it even lower.
  const ThresholdPair raw{-0.1, 1.2};
  const ThresholdPair t = tighten(raw, BetaFactors{0.8, 1.1});
  EXPECT_LT(t.thr0, raw.thr0);
  EXPECT_GT(t.thr1, raw.thr1);
}

TEST(Tighten, ValidatesBetaRanges) {
  const ThresholdPair raw{0.3, 0.7};
  EXPECT_THROW(tighten(raw, BetaFactors{1.2, 1.1}), std::invalid_argument);
  EXPECT_THROW(tighten(raw, BetaFactors{0.0, 1.1}), std::invalid_argument);
  EXPECT_THROW(tighten(raw, BetaFactors{0.9, 0.9}), std::invalid_argument);
}

TEST(Tighten, TightenedRegionIsSubset) {
  // Every prediction classified stable after tightening was stable before.
  const ThresholdPair raw{0.35, 0.72};
  const ThresholdPair t = tighten(raw, BetaFactors{0.6, 1.4});
  for (double pred = -1.0; pred <= 2.0; pred += 0.01) {
    if (t.is_stable(pred)) { EXPECT_TRUE(raw.is_stable(pred)) << pred; }
  }
}

}  // namespace
}  // namespace xpuf::puf
