// Golden equivalence tests for the batched linear-view evaluation core
// (sim/linear.hpp): FeatureBlock rows must equal the transform's feature
// vectors, the full-batch GEMM products must be bit-identical to the tile
// kernels and to scalar linear-view evaluation across every paper corner,
// aged devices, and 1/2/8 threads — and the batched ChipTester/selector
// paths must reproduce their scalar-mode outputs byte for byte.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "puf/enrollment.hpp"
#include "puf/selection.hpp"
#include "puf/transform.hpp"
#include "sim/linear.hpp"
#include "sim/population.hpp"
#include "sim/tester.hpp"

namespace xpuf {
namespace {

sim::ChipPopulation test_population(std::size_t n_pufs, std::size_t stages = 32) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.device.stages = stages;
  cfg.seed = 2017;
  return sim::ChipPopulation(cfg);
}

std::vector<sim::Challenge> fixed_challenges(std::size_t stages, std::size_t count,
                                             std::uint64_t seed = 4242) {
  Rng rng(seed);
  return sim::random_challenges(stages, count, rng);
}

/// Runs `f` at 1, 2, and 8 global threads and checks the results agree.
template <typename F>
void expect_identical_across_thread_counts(const F& f) {
  ThreadPool::set_global_threads(1);
  const auto reference = f();
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_EQ(f(), reference) << "result changed at " << threads << " threads";
  }
  ThreadPool::set_global_threads(8);
}

TEST(FeatureBlock, RowsMatchTransformFeatureVectors) {
  const auto challenges = fixed_challenges(24, 40);
  const sim::FeatureBlock block(challenges);
  ASSERT_EQ(block.size(), 40u);
  EXPECT_EQ(block.stages(), 24u);
  EXPECT_EQ(block.features(), 25u);
  EXPECT_EQ(block.phi().rows(), 40u);
  EXPECT_EQ(block.phi().cols(), 25u);
  for (std::size_t i = 0; i < block.size(); ++i) {
    const linalg::Vector ref = puf::feature_vector(challenges[i]);
    ASSERT_EQ(ref.size(), block.features());
    for (std::size_t j = 0; j < ref.size(); ++j)
      EXPECT_EQ(block.row(i)[j], ref[j]) << "row " << i << " col " << j;
    EXPECT_EQ(block.challenge(i), challenges[i]);
  }
}

TEST(FeatureBlock, EmptyBlockIsLegal) {
  const sim::FeatureBlock block;
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.size(), 0u);
  EXPECT_EQ(block.features(), 0u);
  const sim::FeatureBlock block2{std::vector<sim::Challenge>{}};
  EXPECT_TRUE(block2.empty());
}

TEST(DeviceLinearView, DelayIsTheAscendingDotOfReducedWeights) {
  sim::ChipPopulation pop = test_population(2);
  const sim::ArbiterPufDevice& dev = pop.chip(0).device_for_analysis(0);
  for (const auto& env : sim::paper_corner_grid()) {
    const sim::DeviceLinearView view = dev.linear_view(env);
    const linalg::Vector w = dev.reduced_weights(env);
    ASSERT_EQ(view.features(), w.size());
    EXPECT_EQ(view.noise_sigma, dev.noise_sigma(env));
    const sim::FeatureBlock block(fixed_challenges(dev.stages(), 30));
    for (std::size_t i = 0; i < block.size(); ++i) {
      const double* phi = block.row(i);
      // The reference accumulation order: ascending index.
      double ref = 0.0;
      for (std::size_t j = 0; j < w.size(); ++j) ref += w[j] * phi[j];
      const std::span<const double> row{phi, view.features()};
      EXPECT_EQ(view.delay(row), ref);
      EXPECT_EQ(view.one_probability(row),
                normal_cdf(view.delay(row) / view.noise_sigma));
      // And the recursive stage walk agrees to reduction rounding.
      EXPECT_NEAR(view.delay(row), dev.delay_difference(block.challenge(i), env),
                  1e-9);
    }
  }
}

TEST(DeviceLinearView, BatchEntryPointsMatchScalarBitwise) {
  sim::ChipPopulation pop = test_population(1);
  sim::XorPufChip& chip = pop.chip(0);
  const sim::FeatureBlock block(fixed_challenges(chip.stages(), 129));
  for (const bool aged : {false, true}) {
    if (aged) chip.age(5'000.0);
    const sim::ArbiterPufDevice& dev = chip.device_for_analysis(0);
    for (const auto& env : sim::paper_corner_grid()) {
      const sim::DeviceLinearView view = dev.linear_view(env);
      const linalg::Vector deltas = dev.delay_differences(block, env);
      const linalg::Vector probs = dev.one_probabilities(block, env);
      ASSERT_EQ(deltas.size(), block.size());
      std::vector<double> tile(block.size());
      view.delay_differences_into(block, 0, block.size(), tile.data());
      for (std::size_t i = 0; i < block.size(); ++i) {
        const std::span<const double> row{block.row(i), view.features()};
        EXPECT_EQ(deltas[i], view.delay(row));
        EXPECT_EQ(deltas[i], tile[i]);
        EXPECT_EQ(probs[i], view.one_probability(row));
      }
      // Uneven tile boundaries must not change a single bit.
      std::vector<double> part(57);
      view.one_probabilities_into(block, 31, 88, part.data());
      for (std::size_t i = 0; i < part.size(); ++i) EXPECT_EQ(part[i], probs[31 + i]);
    }
  }
}

TEST(ChipLinearView, GemmTilesAndScalarAgreeAcrossCornersAgingThreads) {
  sim::ChipPopulation pop = test_population(5);
  sim::XorPufChip& chip = pop.chip(0);
  const sim::FeatureBlock block(fixed_challenges(chip.stages(), 200));
  for (const bool aged : {false, true}) {
    if (aged) chip.age(2'000.0);
    for (const auto& env : sim::paper_corner_grid()) {
      const sim::ChipLinearView view = chip.linear_view(env);
      ASSERT_EQ(view.puf_count(), 5u);
      // The full-batch GEMM runs under parallel_for: sweep thread counts.
      expect_identical_across_thread_counts([&] {
        return std::make_pair(view.delay_differences(block).raw(),
                              view.one_probabilities(block).raw());
      });
      const linalg::Matrix deltas = view.delay_differences(block);
      const linalg::Matrix probs = view.one_probabilities(block);
      // Tile kernels over an uneven row range, against the full product.
      std::vector<double> tile(77 * view.puf_count());
      view.delay_differences_into(block, 3, 80, tile.data());
      std::vector<double> ptile(77 * view.puf_count());
      view.one_probabilities_into(block, 3, 80, ptile.data());
      for (std::size_t c = 3; c < 80; ++c)
        for (std::size_t p = 0; p < view.puf_count(); ++p) {
          EXPECT_EQ(tile[(c - 3) * view.puf_count() + p], deltas(c, p));
          EXPECT_EQ(ptile[(c - 3) * view.puf_count() + p], probs(c, p));
        }
      // And each cell against the per-device scalar linear view.
      for (std::size_t p = 0; p < view.puf_count(); ++p) {
        const sim::DeviceLinearView dview =
            chip.device_for_analysis(p).linear_view(env);
        for (std::size_t c = 0; c < block.size(); c += 17) {
          const std::span<const double> row{block.row(c), dview.features()};
          EXPECT_EQ(deltas(c, p), dview.delay(row));
          EXPECT_EQ(probs(c, p), dview.one_probability(row));
        }
      }
    }
  }
}

/// All four tester entry points under one mode, as comparable value types.
struct ScanOutputs {
  std::vector<std::vector<double>> soft;
  std::vector<std::vector<bool>> stable;
  std::vector<double> single_soft;
  std::vector<bool> xor_bits;
  std::vector<double> xor_soft;

  bool operator==(const ScanOutputs&) const = default;
};

ScanOutputs run_scans(sim::ScanMode mode, const sim::Environment& env) {
  sim::ChipPopulation pop = test_population(4);
  Rng rng(9001);
  sim::ChipTester tester(env, 150, rng.fork(), mode);
  const auto challenges = tester.random_challenges(pop.chip(0), 260);
  ScanOutputs out;
  const sim::ChipSoftScan scan = tester.scan_individual(pop.chip(0), challenges);
  out.soft = scan.soft;
  out.stable = scan.stable;
  for (const auto& m : tester.scan_single(pop.chip(0), 2, challenges))
    out.single_soft.push_back(m.soft_response());
  out.xor_bits = tester.sample_xor(pop.chip(0), challenges);
  for (const auto& m : tester.scan_xor(pop.chip(0), challenges))
    out.xor_soft.push_back(m.soft_response());
  return out;
}

TEST(ScanModes, BatchedMatchesScalarByteForByteAcrossCornersAndThreads) {
  for (const auto& env : sim::paper_corner_grid()) {
    ThreadPool::set_global_threads(1);
    const ScanOutputs scalar = run_scans(sim::ScanMode::kScalar, env);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool::set_global_threads(threads);
      EXPECT_EQ(run_scans(sim::ScanMode::kBatched, env), scalar)
          << "corner v=" << env.voltage << " t=" << env.temperature
          << " threads=" << threads;
    }
  }
  ThreadPool::set_global_threads(8);
}

TEST(ScanModes, StorageReusingScanEqualsFreshScan) {
  sim::ChipPopulation pop = test_population(4);
  // One reused result object across corners AND a shape change (a narrower
  // follow-up block): every write must leave it equal to a fresh scan.
  sim::ChipSoftScan reused;
  for (const auto& env : sim::paper_corner_grid()) {
    for (const std::size_t n_ch : {97ul, 33ul}) {
      Rng challenge_rng(77);
      const sim::FeatureBlock block(
          sim::random_challenges(pop.chip(0).stages(), n_ch, challenge_rng));
      Rng rng(9001);
      sim::ChipTester tester(env, 150, rng.fork());
      Rng fresh_rng(9001);
      sim::ChipTester fresh_tester(env, 150, fresh_rng.fork());
      const sim::ChipSoftScan fresh = fresh_tester.scan_individual(pop.chip(0), block);
      tester.scan_individual_into(pop.chip(0), block, reused);
      EXPECT_EQ(reused.challenges, fresh.challenges);
      EXPECT_EQ(reused.soft, fresh.soft);
      EXPECT_EQ(reused.stable, fresh.stable);
      EXPECT_EQ(reused.trials, fresh.trials);
    }
  }
}

TEST(ScanModes, MeasurementCounterTotalsAgree) {
  static Counter& measurements =
      MetricsRegistry::global().counter("tester.measurements");
  const auto count_scan = [](sim::ScanMode mode) {
    const std::uint64_t before = measurements.total();
    run_scans(mode, sim::Environment::nominal());
    return measurements.total() - before;
  };
  const std::uint64_t scalar = count_scan(sim::ScanMode::kScalar);
  const std::uint64_t batched = count_scan(sim::ScanMode::kBatched);
  EXPECT_EQ(scalar, batched);
  EXPECT_EQ(scalar, 260u * 4u);  // one per (challenge, PUF) cell
}

/// Enrolls a small server model for the selector tests.
puf::ServerModel small_server_model(sim::XorPufChip& chip) {
  puf::EnrollmentConfig cfg;
  cfg.training_challenges = 400;
  cfg.trials = 200;
  puf::Enroller enroller(cfg);
  Rng rng(33);
  return enroller.enroll(chip, rng);
}

TEST(ModelSelection, BlockSelectMatchesSerialReference) {
  sim::ChipPopulation pop = test_population(3);
  const puf::ServerModel model = small_server_model(pop.chip(0));
  const std::size_t n_pufs = 3;
  const puf::ModelBasedSelector selector(model, n_pufs);

  for (const std::size_t max_attempts : {100'000ul, 700ul, 3ul}) {
    Rng batch_rng(2024);
    const puf::SelectionResult batched = selector.select(64, batch_rng, max_attempts);

    // Serial reference: one candidate at a time, scalar predictions. The
    // candidate stream is identical because candidate i is a pure function
    // of (family, i) — the selector consumes exactly one fork_base() draw
    // and walks the same index-keyed streams this loop does.
    Rng serial_rng(2024);
    const StreamFamily family(serial_rng.fork_base());
    puf::SelectionResult serial;
    std::vector<puf::ThresholdPair> thresholds;
    for (std::size_t p = 0; p < n_pufs; ++p)
      thresholds.push_back(model.adjusted_thresholds(p));
    while (serial.challenges.size() < 64 && serial.candidates_tried < max_attempts) {
      Rng candidate_rng = family.stream(serial.candidates_tried);
      sim::Challenge c;
      puf::ChallengeScreener::candidate_into(c, model.stages(), candidate_rng);
      ++serial.candidates_tried;
      bool stable = true;
      bool bit = false;
      for (std::size_t p = 0; p < n_pufs; ++p) {
        const double raw = model.puf(p).model.predict_raw(c);
        if (thresholds[p].classify(raw) == puf::StableClass::kUnstable) stable = false;
        bit ^= raw > 0.5;
      }
      if (!stable) continue;
      serial.challenges.push_back(std::move(c));
      serial.expected_responses.push_back(bit);
    }
    serial.filled = serial.challenges.size() >= 64;

    EXPECT_EQ(batched.challenges, serial.challenges) << "cap " << max_attempts;
    EXPECT_EQ(batched.expected_responses, serial.expected_responses);
    EXPECT_EQ(batched.candidates_tried, serial.candidates_tried);
    EXPECT_EQ(batched.filled, serial.filled);
  }
}

TEST(ModelSelection, FilterMatchesPerChallengeClassification) {
  sim::ChipPopulation pop = test_population(2);
  const puf::ServerModel model = small_server_model(pop.chip(0));
  const puf::ModelBasedSelector selector(model, 2);
  const auto candidates = fixed_challenges(model.stages(), 300);
  const puf::SelectionResult filtered = selector.filter(candidates);
  EXPECT_EQ(filtered.candidates_tried, 300u);
  EXPECT_TRUE(filtered.filled);
  std::size_t kept = 0;
  for (const auto& c : candidates) {
    if (!model.all_stable(c, 2)) continue;
    ASSERT_LT(kept, filtered.challenges.size());
    EXPECT_EQ(filtered.challenges[kept], c);
    EXPECT_EQ(static_cast<bool>(filtered.expected_responses[kept]),
              model.predict_xor(c, 2));
    ++kept;
  }
  EXPECT_EQ(kept, filtered.challenges.size());
}

TEST(ServerModelBatch, StableAndXorBatchesMatchScalarPredicates) {
  sim::ChipPopulation pop = test_population(3);
  const puf::ServerModel model = small_server_model(pop.chip(0));
  const sim::FeatureBlock block(fixed_challenges(model.stages(), 220));
  const auto stable = model.all_stable_batch(block, 3);
  const auto xorr = model.predict_xor_batch(block, 3);
  const linalg::Matrix raw = model.predict_raw_batch(block, 3);
  ASSERT_EQ(stable.size(), block.size());
  ASSERT_EQ(raw.rows(), block.size());
  ASSERT_EQ(raw.cols(), 3u);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(stable[i] != 0, model.all_stable(block.challenge(i), 3));
    EXPECT_EQ(xorr[i] != 0, model.predict_xor(block.challenge(i), 3));
    for (std::size_t p = 0; p < 3; ++p)
      EXPECT_EQ(raw(i, p), model.puf(p).model.predict_raw(block.challenge(i)));
  }
}

TEST(TapGating, LinearViewsRespectFusesButXorBatchesSurvive) {
  sim::ChipPopulation pop = test_population(3);
  sim::XorPufChip& chip = pop.chip(0);
  const sim::Environment env = sim::Environment::nominal();
  const sim::FeatureBlock block(fixed_challenges(chip.stages(), 50));

  // Pre-deployment: everything works.
  EXPECT_NO_THROW(chip.linear_view(env));
  EXPECT_NO_THROW(chip.device_linear_view(1, env));
  EXPECT_NO_THROW(chip.one_probabilities(block, env));

  chip.blow_fuses();
  EXPECT_THROW(chip.linear_view(env), AccessError);
  EXPECT_THROW(chip.device_linear_view(1, env), AccessError);
  EXPECT_THROW(chip.one_probabilities(block, env), AccessError);

  // The per-tap scan throws in BOTH modes; the XOR pin remains usable.
  Rng rng(5);
  sim::ChipTester tester(env, 50, rng.fork(), sim::ScanMode::kBatched);
  EXPECT_THROW(tester.scan_individual(chip, block), AccessError);
  tester.set_mode(sim::ScanMode::kScalar);
  EXPECT_THROW(tester.scan_individual(chip, block), AccessError);
  tester.set_mode(sim::ScanMode::kBatched);
  EXPECT_EQ(tester.sample_xor(chip, block).size(), block.size());
  EXPECT_EQ(tester.scan_xor(chip, block).size(), block.size());
}

TEST(NormalCdfBatchIntegration, ChipProbabilitiesUseTheExactScalarCdf) {
  // End-to-end pin: the chip batch path must produce exactly
  // normal_cdf(delta / sigma) per cell — the division (never a reciprocal
  // multiply) and the shared erfc expression are the load-bearing details.
  sim::ChipPopulation pop = test_population(2);
  const sim::XorPufChip& chip = pop.chip(0);
  const sim::Environment env{0.8, 60.0};
  const sim::FeatureBlock block(fixed_challenges(chip.stages(), 64));
  const sim::ChipLinearView view = chip.linear_view(env);
  const linalg::Matrix deltas = view.delay_differences(block);
  const linalg::Matrix probs = view.one_probabilities(block);
  for (std::size_t c = 0; c < block.size(); ++c)
    for (std::size_t p = 0; p < view.puf_count(); ++p)
      EXPECT_EQ(probs(c, p), normal_cdf(deltas(c, p) / view.noise_sigma(p)));
}

}  // namespace
}  // namespace xpuf
