// Tests for the wire protocol (net/wire.hpp): frame layout, little-endian
// codecs, CRC behavior, every DecodeStatus branch, payload round trips, and
// the property that any single corrupted bit is detected — the contract the
// fault-injecting transport leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace xpuf::net {
namespace {

Frame sample_frame() {
  Frame frame;
  frame.header.type = FrameType::kResponseSubmit;
  frame.header.device_id = 0x0123456789abcdefULL;
  frame.header.session_id = 7;
  frame.header.seq = 42;
  frame.payload = {0xde, 0xad, 0xbe, 0xef};
  return frame;
}

TEST(WireCodec, PutLittleEndianByteOrder) {
  std::vector<std::uint8_t> out;
  put_u16(out, 0x1122);
  put_u32(out, 0x33445566u);
  put_u64(out, 0x0123456789abcdefULL);
  const std::vector<std::uint8_t> expected = {
      0x22, 0x11, 0x66, 0x55, 0x44, 0x33,
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01};
  EXPECT_EQ(out, expected);
}

TEST(WireCodec, ReaderRoundTripsAndBoundsChecks) {
  std::vector<std::uint8_t> out;
  put_u8(out, 0x7f);
  put_u16(out, 0xbeef);
  put_u32(out, 0xcafebabeu);
  put_u64(out, 0x1122334455667788ULL);
  WireReader reader(out);
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  EXPECT_TRUE(reader.read_u8(a));
  EXPECT_TRUE(reader.read_u16(b));
  EXPECT_TRUE(reader.read_u32(c));
  EXPECT_TRUE(reader.read_u64(d));
  EXPECT_EQ(a, 0x7f);
  EXPECT_EQ(b, 0xbeef);
  EXPECT_EQ(c, 0xcafebabeu);
  EXPECT_EQ(d, 0x1122334455667788ULL);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.read_u8(a)) << "reads past the end must fail, not UB";
}

TEST(WireCodec, Crc32MatchesTheIeeeCheckValue) {
  // The standard check vector: CRC-32("123456789") = 0xCBF43926.
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(WireFrame, EncodeLayoutIsExactlyAsDocumented) {
  const Frame frame = sample_frame();
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  ASSERT_EQ(bytes.size(), kHeaderBytes + frame.payload.size() + kTrailerBytes);
  EXPECT_EQ(bytes[0], 0x46);  // magic 0x5846 little-endian: "F", "X"
  EXPECT_EQ(bytes[1], 0x58);
  EXPECT_EQ(bytes[2], kWireVersion);
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(FrameType::kResponseSubmit));
  EXPECT_EQ(bytes[4], 0xef);  // device_id low byte first
  EXPECT_EQ(bytes[12], 7);    // session_id
  EXPECT_EQ(bytes[16], 42);   // seq
  EXPECT_EQ(bytes[20], 4);    // payload_len
  EXPECT_EQ(bytes[24], 0xde);
}

TEST(WireFrame, RoundTripPreservesEveryField) {
  const Frame frame = sample_frame();
  Frame out;
  ASSERT_EQ(decode_frame(encode_frame(frame), out), DecodeStatus::kOk);
  EXPECT_EQ(out.header.version, frame.header.version);
  EXPECT_EQ(out.header.type, frame.header.type);
  EXPECT_EQ(out.header.device_id, frame.header.device_id);
  EXPECT_EQ(out.header.session_id, frame.header.session_id);
  EXPECT_EQ(out.header.seq, frame.header.seq);
  EXPECT_EQ(out.payload, frame.payload);
}

TEST(WireFrame, EveryDecodeStatusBranchIsReachable) {
  const std::vector<std::uint8_t> good = encode_frame(sample_frame());
  Frame out;

  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 5);
  EXPECT_EQ(decode_frame(truncated, out), DecodeStatus::kTruncated);
  EXPECT_EQ(decode_frame({}, out), DecodeStatus::kTruncated);

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(decode_frame(bad_magic, out), DecodeStatus::kBadMagic);

  // Version/type/length corruptions re-seal the checksum so the earlier
  // checks, not the CRC, must be what rejects them.
  auto reseal = [](std::vector<std::uint8_t> bytes) {
    const std::uint32_t crc =
        crc32(bytes.data(), static_cast<std::uint64_t>(bytes.size()) - 4);
    bytes[bytes.size() - 4] = static_cast<std::uint8_t>(crc & 0xff);
    bytes[bytes.size() - 3] = static_cast<std::uint8_t>((crc >> 8) & 0xff);
    bytes[bytes.size() - 2] = static_cast<std::uint8_t>((crc >> 16) & 0xff);
    bytes[bytes.size() - 1] = static_cast<std::uint8_t>((crc >> 24) & 0xff);
    return bytes;
  };
  std::vector<std::uint8_t> bad_version = good;
  bad_version[2] = kWireVersion + 1;
  EXPECT_EQ(decode_frame(reseal(bad_version), out), DecodeStatus::kBadVersion);

  std::vector<std::uint8_t> bad_type = good;
  bad_type[3] = 0xee;
  EXPECT_EQ(decode_frame(reseal(bad_type), out), DecodeStatus::kBadType);

  std::vector<std::uint8_t> bad_length = good;
  bad_length[23] = 0xff;  // payload_len top byte: 0xff000004 > kMaxPayloadBytes
  EXPECT_EQ(decode_frame(reseal(bad_length), out), DecodeStatus::kBadLength);

  std::vector<std::uint8_t> bad_crc = good;
  bad_crc.back() ^= 0x01;
  EXPECT_EQ(decode_frame(bad_crc, out), DecodeStatus::kBadChecksum);

  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0x00);
  EXPECT_EQ(decode_frame(trailing, out), DecodeStatus::kTrailingBytes);
}

TEST(WireFrame, AnySingleBitFlipIsDetected) {
  Frame frame = sample_frame();
  frame.payload = {0x01, 0x02, 0x03};
  const std::vector<std::uint8_t> good = encode_frame(frame);
  Frame out;
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<std::uint8_t> flipped = good;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(decode_frame(flipped, out), DecodeStatus::kOk)
        << "undetected flip at bit " << bit;
  }
}

TEST(WireFrame, AnyTruncationIsDetected) {
  const std::vector<std::uint8_t> good = encode_frame(sample_frame());
  Frame out;
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    const std::vector<std::uint8_t> cut(good.begin(),
                                        good.begin() + static_cast<long>(keep));
    EXPECT_NE(decode_frame(cut, out), DecodeStatus::kOk)
        << "undetected truncation to " << keep << " bytes";
  }
}

TEST(WireFrame, ThrowingDecodeUsesTheErrorTaxonomy) {
  EXPECT_NO_THROW(decode_frame_or_throw(encode_frame(sample_frame())));
  EXPECT_THROW(decode_frame_or_throw({1, 2, 3}), WireError);
}

TEST(WirePayload, ChallengeBatchRoundTripsAtAwkwardWidths) {
  for (const std::uint32_t stages : {1u, 7u, 8u, 9u, 32u, 33u}) {
    std::vector<Challenge> batch;
    for (std::uint32_t c = 0; c < 5; ++c) {
      Challenge challenge(stages);
      for (std::uint32_t s = 0; s < stages; ++s)
        challenge[s] = static_cast<std::uint8_t>((c + s) % 2);
      batch.push_back(challenge);
    }
    std::vector<Challenge> out;
    ASSERT_EQ(decode_challenge_batch(encode_challenge_batch(batch, stages), out),
              DecodeStatus::kOk)
        << "stages=" << stages;
    EXPECT_EQ(out, batch) << "stages=" << stages;
  }
}

TEST(WirePayload, ChallengeBatchRejectsMalformedLengths) {
  std::vector<Challenge> out;
  EXPECT_EQ(decode_challenge_batch({1, 2}, out), DecodeStatus::kBadPayload);
  // Valid header claiming 1 challenge x 8 stages but no row bytes.
  std::vector<std::uint8_t> short_rows;
  put_u32(short_rows, 1);
  put_u32(short_rows, 8);
  EXPECT_EQ(decode_challenge_batch(short_rows, out), DecodeStatus::kBadPayload);
  // Stage width outside the sanity bounds.
  std::vector<std::uint8_t> huge;
  put_u32(huge, 1);
  put_u32(huge, 1u << 20);
  EXPECT_EQ(decode_challenge_batch(huge, out), DecodeStatus::kBadPayload);
}

TEST(WirePayload, ResponseBitsRoundTripAndReject) {
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  std::vector<std::uint8_t> out;
  ASSERT_EQ(decode_response_bits(encode_response_bits(bits), out),
            DecodeStatus::kOk);
  EXPECT_EQ(out, bits);
  EXPECT_EQ(decode_response_bits({9}, out), DecodeStatus::kBadPayload);
}

TEST(WirePayload, AuthResultAndNackRoundTrip) {
  AuthResultPayload result;
  result.status = AuthStatus::kApproved;
  result.mismatches = 3;
  result.challenges_used = 64;
  AuthResultPayload result_out;
  ASSERT_EQ(decode_auth_result(encode_auth_result(result), result_out),
            DecodeStatus::kOk);
  EXPECT_EQ(result_out.status, result.status);
  EXPECT_EQ(result_out.mismatches, result.mismatches);
  EXPECT_EQ(result_out.challenges_used, result.challenges_used);
  EXPECT_EQ(decode_auth_result({1}, result_out), DecodeStatus::kBadPayload);

  NackPayload nack;
  nack.reason = NackReason::kBusy;
  nack.retry_after_rounds = 12;
  NackPayload nack_out;
  ASSERT_EQ(decode_nack(encode_nack(nack), nack_out), DecodeStatus::kOk);
  EXPECT_EQ(nack_out.reason, nack.reason);
  EXPECT_EQ(nack_out.retry_after_rounds, nack.retry_after_rounds);
  EXPECT_EQ(decode_nack({}, nack_out), DecodeStatus::kBadPayload);
}

TEST(WirePayload, OversizedPayloadIsRejectedBeforeEncoding) {
  Frame frame = sample_frame();
  frame.payload.assign(kMaxPayloadBytes + 1, 0x00);
  EXPECT_THROW(encode_frame(frame), std::invalid_argument);
}

TEST(WireEnums, StringsExistForEveryValue) {
  EXPECT_STREQ(to_string(FrameType::kEnrollBegin), "ENROLL_BEGIN");
  EXPECT_STREQ(to_string(NackReason::kBusy), "BUSY");
  EXPECT_STREQ(to_string(DecodeStatus::kBadChecksum), "checksum mismatch");
  EXPECT_TRUE(is_known_frame_type(1));
  EXPECT_FALSE(is_known_frame_type(0));
  EXPECT_FALSE(is_known_frame_type(8));
}

}  // namespace
}  // namespace xpuf::net
