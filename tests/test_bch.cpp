// Tests for the binary BCH encoder/decoder.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "crypto/bch.hpp"

namespace xpuf::crypto {
namespace {

Bits random_message(const BchCode& code, Rng& rng) {
  Bits msg(code.k());
  for (auto& b : msg) b = rng.bernoulli() ? 1 : 0;
  return msg;
}

void flip_random_bits(Bits& word, std::size_t count, Rng& rng) {
  std::vector<std::size_t> idx(word.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  for (std::size_t i = 0; i < count; ++i) word[idx[i]] ^= 1;
}

TEST(Bch, KnownParametersHamming15_11) {
  // BCH(15, 11, t=1) is the Hamming code.
  const BchCode code(4, 1);
  EXPECT_EQ(code.n(), 15u);
  EXPECT_EQ(code.k(), 11u);
  // Generator x^4 + x + 1 (the primitive polynomial itself).
  EXPECT_EQ(code.generator(), GFPoly({1, 1, 0, 0, 1}));
}

TEST(Bch, KnownParameters15_7_2and15_5_3) {
  EXPECT_EQ(BchCode(4, 2).k(), 7u);
  EXPECT_EQ(BchCode(4, 3).k(), 5u);
}

TEST(Bch, KnownParameters127Family) {
  EXPECT_EQ(BchCode(7, 1).k(), 120u);
  EXPECT_EQ(BchCode(7, 2).k(), 113u);
  EXPECT_EQ(BchCode(7, 10).k(), 64u);
}

TEST(Bch, ConstructionValidates) {
  EXPECT_THROW(BchCode(4, 0), std::invalid_argument);
  EXPECT_THROW(BchCode(3, 4), std::invalid_argument);  // no message bits left
  EXPECT_EQ(BchCode(3, 3).k(), 1u);  // the degenerate-but-valid repetition-like code
}

TEST(Bch, EncodeIsSystematic) {
  const BchCode code(5, 2);
  Rng rng(1);
  const Bits msg = random_message(code, rng);
  const Bits cw = code.encode(msg);
  ASSERT_EQ(cw.size(), code.n());
  for (std::size_t i = 0; i < code.k(); ++i)
    EXPECT_EQ(cw[code.n() - code.k() + i], msg[i]);
}

TEST(Bch, EncodeValidatesInput) {
  const BchCode code(4, 1);
  EXPECT_THROW(code.encode(Bits(5)), std::invalid_argument);
  Bits bad(code.k(), 0);
  bad[0] = 2;
  EXPECT_THROW(code.encode(bad), std::invalid_argument);
  EXPECT_THROW(code.decode(Bits(3)), std::invalid_argument);
}

TEST(Bch, CodewordsHaveZeroSyndromes) {
  // Every codeword decodes to itself with zero corrections.
  const BchCode code(5, 3);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Bits msg = random_message(code, rng);
    const Bits cw = code.encode(msg);
    const auto dec = code.decode(cw);
    ASSERT_TRUE(dec.ok);
    EXPECT_EQ(dec.errors_corrected, 0u);
    EXPECT_EQ(dec.message, msg);
  }
}

TEST(Bch, GeneratorDividesEveryCodeword) {
  const BchCode code(4, 2);
  const GF2m field(4);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Bits msg = random_message(code, rng);
    const Bits cw = code.encode(msg);
    const GFPoly cw_poly(std::vector<std::uint32_t>(cw.begin(), cw.end()));
    EXPECT_TRUE(cw_poly.mod(code.generator(), field).is_zero());
  }
}

// Error-correction sweep: every error weight up to t corrects exactly.
struct BchCase {
  unsigned m, t;
};

class BchCorrectionSweep : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchCorrectionSweep, CorrectsUpToTErrors) {
  const auto [m, t] = GetParam();
  const BchCode code(m, t);
  Rng rng(100 * m + t);
  for (std::size_t errors = 0; errors <= t; ++errors) {
    for (int trial = 0; trial < 8; ++trial) {
      const Bits msg = random_message(code, rng);
      Bits rx = code.encode(msg);
      flip_random_bits(rx, errors, rng);
      const auto dec = code.decode(rx);
      ASSERT_TRUE(dec.ok) << "m=" << m << " t=" << t << " errors=" << errors;
      EXPECT_EQ(dec.errors_corrected, errors);
      EXPECT_EQ(dec.message, msg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, BchCorrectionSweep,
                         ::testing::Values(BchCase{4, 1}, BchCase{4, 2}, BchCase{4, 3},
                                           BchCase{5, 3}, BchCase{6, 5}, BchCase{7, 10},
                                           BchCase{8, 6}));

TEST(Bch, BeyondCapacityDoesNotSilentlyMiscorrectOften) {
  // t+1 errors either fail (preferred) or land on a *different valid*
  // codeword; they must never return ok with the original message intact
  // while claiming <= t corrections of the wrong positions silently.
  const BchCode code(7, 5);
  Rng rng(4);
  int failed = 0, miscorrected = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const Bits msg = random_message(code, rng);
    Bits rx = code.encode(msg);
    flip_random_bits(rx, code.t() + 1, rng);
    const auto dec = code.decode(rx);
    if (!dec.ok) ++failed;
    else if (dec.message != msg) ++miscorrected;
    // dec.ok && dec.message == msg would require the t+1 flips to land
    // back on the same codeword's decoding sphere — impossible for t+1
    // random flips of weight <= t spheres.
  }
  EXPECT_EQ(failed + miscorrected, trials);
  EXPECT_GT(failed, trials / 2);  // detection dominates for BCH(127, t=5)
}

TEST(Bch, AllZeroAndAllOneWords) {
  const BchCode code(4, 2);
  // The zero word is a codeword.
  const auto zero = code.decode(Bits(code.n(), 0));
  EXPECT_TRUE(zero.ok);
  EXPECT_EQ(zero.errors_corrected, 0u);
  // The all-ones word of length 15 is also a codeword of this code iff
  // g(x) divides (x^15 - 1)/(x - 1)... just check decode is well-defined.
  const auto ones = code.decode(Bits(code.n(), 1));
  if (ones.ok) { EXPECT_LE(ones.errors_corrected, code.t()); }
}

}  // namespace
}  // namespace xpuf::crypto
