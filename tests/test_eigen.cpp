// Tests for the symmetric Jacobi eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/eigen.hpp"

namespace xpuf::linalg {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.normal();
  return a;
}

TEST(Eigen, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const EigenDecomposition eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 2.0;
  const EigenDecomposition eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  // Eigenvector of 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 1)), std::sqrt(0.5), 1e-10);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Eigen, ReconstructionAndOrthogonality) {
  Rng rng(1);
  const std::size_t n = 8;
  const Matrix a = random_symmetric(n, rng);
  const EigenDecomposition eig = eigen_symmetric(a);
  // A V = V diag(lambda).
  for (std::size_t k = 0; k < n; ++k) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = eig.vectors(i, k);
    const Vector av = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], eig.values[k] * v[i], 1e-9);
  }
  // V^T V = I.
  const Matrix vtv = matmul(eig.vectors.transposed(), eig.vectors);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(n)), 1e-10);
}

TEST(Eigen, ValuesAreSortedAscending) {
  Rng rng(2);
  const EigenDecomposition eig = eigen_symmetric(random_symmetric(10, rng));
  for (std::size_t k = 1; k < 10; ++k) EXPECT_LE(eig.values[k - 1], eig.values[k]);
}

TEST(Eigen, TraceAndFrobeniusInvariants) {
  Rng rng(3);
  const Matrix a = random_symmetric(6, rng);
  const EigenDecomposition eig = eigen_symmetric(a);
  double trace_a = 0.0, trace_l = 0.0, frob2 = 0.0, sum_l2 = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    trace_a += a(i, i);
    trace_l += eig.values[i];
    sum_l2 += eig.values[i] * eig.values[i];
  }
  frob2 = norm_frobenius(a);
  EXPECT_NEAR(trace_a, trace_l, 1e-10);
  EXPECT_NEAR(frob2 * frob2, sum_l2, 1e-8);
}

TEST(SqrtSpsd, SquaresBackToOriginal) {
  Rng rng(4);
  // SPD matrix: B^T B + I.
  Matrix b(5, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) b(i, j) = rng.normal();
  Matrix a = gram(b);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 1.0;
  const Matrix root = sqrt_spsd(a);
  EXPECT_LT(max_abs_diff(matmul(root, root), a), 1e-8);
}

TEST(SqrtSpsd, HandlesSingularMatrices) {
  // Rank-1 PSD.
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  const Matrix root = sqrt_spsd(a);
  EXPECT_LT(max_abs_diff(matmul(root, root), a), 1e-10);
}

TEST(SqrtSpsd, RejectsIndefinite) {
  Matrix a = Matrix::identity(2);
  a(1, 1) = -1.0;
  EXPECT_THROW(sqrt_spsd(a), std::invalid_argument);
}

class EigenSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSizeSweep, ReconstructsRandomSymmetric) {
  const std::size_t n = GetParam();
  Rng rng(50 + n);
  const Matrix a = random_symmetric(n, rng);
  const EigenDecomposition eig = eigen_symmetric(a);
  // Reconstruct A = V diag(lambda) V^T.
  Matrix rec(n, n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        rec(i, j) += eig.values[k] * eig.vectors(i, k) * eig.vectors(j, k);
  EXPECT_LT(max_abs_diff(rec, a), 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 16u, 33u));

}  // namespace
}  // namespace xpuf::linalg
