// Tests for the least-squares front end (method selection, ridge, metrics).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/least_squares.hpp"

namespace xpuf::linalg {
namespace {

struct Problem {
  Matrix a;
  Vector b;
  Vector x_true;
};

Problem planted_problem(std::size_t m, std::size_t n, double noise, Rng& rng) {
  Problem p;
  p.a = Matrix(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) p.a(r, c) = rng.normal();
  p.x_true = Vector(n);
  for (auto& v : p.x_true) v = rng.normal();
  p.b = matvec(p.a, p.x_true);
  for (auto& v : p.b) v += rng.normal(0.0, noise);
  return p;
}

TEST(LeastSquares, NoiseFreeRecoveryAllMethods) {
  Rng rng(1);
  const Problem p = planted_problem(40, 5, 0.0, rng);
  for (auto method : {LeastSquaresMethod::kNormalEquations, LeastSquaresMethod::kQr,
                      LeastSquaresMethod::kAuto}) {
    LeastSquaresOptions opts;
    opts.method = method;
    const auto res = solve_least_squares(p.a, p.b, opts);
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_NEAR(res.coefficients[i], p.x_true[i], 1e-8);
    EXPECT_NEAR(res.r_squared, 1.0, 1e-10);
    EXPECT_LT(res.residual_norm, 1e-8);
  }
}

TEST(LeastSquares, NoisyProblemStillCloseAndConsistent) {
  Rng rng(2);
  const Problem p = planted_problem(500, 4, 0.1, rng);
  const auto ne = solve_least_squares(
      p.a, p.b, {.method = LeastSquaresMethod::kNormalEquations});
  const auto qr = solve_least_squares(p.a, p.b, {.method = LeastSquaresMethod::kQr});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ne.coefficients[i], qr.coefficients[i], 1e-8);
    EXPECT_NEAR(ne.coefficients[i], p.x_true[i], 0.05);
  }
  EXPECT_GT(ne.r_squared, 0.95);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
  Rng rng(3);
  const Problem p = planted_problem(30, 3, 0.05, rng);
  const auto plain = solve_least_squares(p.a, p.b, {.ridge = 0.0});
  const auto ridged = solve_least_squares(p.a, p.b, {.ridge = 100.0});
  EXPECT_LT(norm2(ridged.coefficients), norm2(plain.coefficients));
}

TEST(LeastSquares, RidgeAgreesBetweenMethods) {
  Rng rng(4);
  const Problem p = planted_problem(25, 4, 0.1, rng);
  const auto ne = solve_least_squares(
      p.a, p.b, {.method = LeastSquaresMethod::kNormalEquations, .ridge = 2.5});
  const auto qr = solve_least_squares(
      p.a, p.b, {.method = LeastSquaresMethod::kQr, .ridge = 2.5});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(ne.coefficients[i], qr.coefficients[i], 1e-8);
}

TEST(LeastSquares, AutoFallsBackToQrOnSingularGram) {
  // Duplicated column makes A^T A singular; auto must fall back to QR and
  // QR must then throw NumericalError (still rank-deficient), rather than
  // returning garbage.
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = static_cast<double>(r + 1);
  }
  const Vector b{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(solve_least_squares(a, b, {.method = LeastSquaresMethod::kAuto}),
               NumericalError);
}

TEST(LeastSquares, AutoWithRidgeSolvesSingularGram) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = static_cast<double>(r + 1);
  }
  const Vector b{1.0, 2.0, 3.0, 4.0};
  const auto res = solve_least_squares(
      a, b, {.method = LeastSquaresMethod::kAuto, .ridge = 1e-6});
  // Symmetric problem: both coefficients equal.
  EXPECT_NEAR(res.coefficients[0], res.coefficients[1], 1e-6);
  EXPECT_EQ(res.method_used, LeastSquaresMethod::kNormalEquations);
}

TEST(LeastSquares, RejectsUnderdeterminedAndMismatched) {
  EXPECT_THROW(solve_least_squares(Matrix(2, 3), Vector(2)), std::invalid_argument);
  EXPECT_THROW(solve_least_squares(Matrix(3, 2), Vector(2)), std::invalid_argument);
}

TEST(LeastSquares, RSquaredZeroForConstantTarget) {
  Rng rng(5);
  Matrix a(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    a(r, 0) = rng.normal();
    a(r, 1) = 1.0;
  }
  const Vector b(10, 3.0);  // constant target: TSS = 0
  const auto res = solve_least_squares(a, b);
  EXPECT_DOUBLE_EQ(res.r_squared, 0.0);
  EXPECT_NEAR(res.coefficients[1], 3.0, 1e-9);
}

}  // namespace
}  // namespace xpuf::linalg
