// Contract layer tests: the error taxonomy (common/error.hpp), the
// XPUF_REQUIRE message format, and the xpuf_lint suppression grammar.
//
// Suppression markers are parsed from raw source lines, so the marker
// strings used as test fixtures below are visible to the linter when it
// lints this very file; the unknown-rule fixtures would otherwise be
// reported.  xpuf-lint: allow-file(bad-suppression)
#include "common/error.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using xpuf::lint::Context;
using xpuf::lint::Violation;

std::vector<Violation> lint_str(const std::string& rel_path, const std::string& src) {
  return xpuf::lint::lint_source(rel_path, src, Context{});
}

bool has_rule(const std::vector<Violation>& violations, const std::string& rule) {
  for (const Violation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

// --- Error taxonomy ---------------------------------------------------------

TEST(ErrorTaxonomy, NumericalErrorIsARuntimeError) {
  const xpuf::NumericalError e("cholesky: matrix not positive definite");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "cholesky: matrix not positive definite");
}

TEST(ErrorTaxonomy, AccessErrorIsARuntimeError) {
  const xpuf::AccessError e("tap 3 is fused off");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "tap 3 is fused off");
}

TEST(ErrorTaxonomy, ParseErrorIsARuntimeError) {
  const xpuf::ParseError e("row 7: expected 3 columns");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "row 7: expected 3 columns");
}

TEST(ErrorTaxonomy, SubclassesAreCatchableAsRuntimeError) {
  EXPECT_THROW(throw xpuf::NumericalError("x"), std::runtime_error);
  EXPECT_THROW(throw xpuf::AccessError("x"), std::runtime_error);
  EXPECT_THROW(throw xpuf::ParseError("x"), std::runtime_error);
}

// --- XPUF_REQUIRE -----------------------------------------------------------

TEST(XpufRequire, PassingCheckIsSilent) {
  EXPECT_NO_THROW(XPUF_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(XpufRequire, ThrowsInvalidArgument) {
  EXPECT_THROW(XPUF_REQUIRE(false, "always fails"), std::invalid_argument);
  // invalid_argument is a logic_error: programmer error, not runtime failure.
  EXPECT_THROW(XPUF_REQUIRE(false, "always fails"), std::logic_error);
}

TEST(XpufRequire, MessageCarriesExprFileLineAndText) {
  std::string what;
  const int expected_line = __LINE__ + 2;
  try {
    XPUF_REQUIRE(2 + 2 == 5, "arithmetic is broken");
    FAIL() << "XPUF_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("precondition failed: 2 + 2 == 5"), std::string::npos) << what;
  EXPECT_NE(what.find("test_error.cpp:" + std::to_string(expected_line)),
            std::string::npos)
      << what;
  EXPECT_NE(what.find(" — arithmetic is broken"), std::string::npos) << what;
}

TEST(XpufRequire, EmptyMessageOmitsTheDashSuffix) {
  std::string what;
  try {
    XPUF_REQUIRE(false, "");
    FAIL() << "XPUF_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    what = e.what();
  }
  EXPECT_EQ(what.find(" — "), std::string::npos) << what;
  EXPECT_NE(what.find("precondition failed: false"), std::string::npos) << what;
}

// --- xpuf_lint rule registry ------------------------------------------------

TEST(LintRegistry, RegistryListsTheDocumentedRules) {
  const auto& rules = xpuf::lint::rules();
  ASSERT_FALSE(rules.empty());
  EXPECT_TRUE(xpuf::lint::is_known_rule("raw-rng"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("nondeterminism"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("vector-bool-parallel"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("require-guard"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("raw-timing"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("raw-syscall"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("narrowing"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("include-order"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("wire-portability"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("scalar-eval"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("ml-dot"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("bad-suppression"));
  // Semantic (cross-TU) rules run by the engine over the project index.
  EXPECT_TRUE(xpuf::lint::is_known_rule("layering"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("parallel-rng"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("unordered-fp"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("wire-pairing"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("metrics-accounting"));
  EXPECT_TRUE(xpuf::lint::is_known_rule("bad-guard-ref"));
  EXPECT_FALSE(xpuf::lint::is_known_rule("no-such-rule"));
}

// --- Suppression-comment grammar --------------------------------------------

TEST(LintSuppression, ParsesSingleRuleAllow) {
  const auto rules = xpuf::lint::parse_allow_comment("int x;  // xpuf-lint: allow(raw-rng)");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "raw-rng");
}

TEST(LintSuppression, ParsesMultiRuleAllow) {
  const auto rules =
      xpuf::lint::parse_allow_comment("// xpuf-lint: allow(raw-rng, narrowing)");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "raw-rng");
  EXPECT_EQ(rules[1], "narrowing");
}

TEST(LintSuppression, PlainLineHasNoAllow) {
  EXPECT_TRUE(xpuf::lint::parse_allow_comment("int x = rand_free_zone;").empty());
}

TEST(LintSuppression, AllowFileFormIsNotAPerLineAllow) {
  const std::string line = "// xpuf-lint: allow-file(raw-rng)";
  EXPECT_TRUE(xpuf::lint::parse_allow_comment(line).empty());
  const auto rules = xpuf::lint::parse_allow_file_comment(line);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], "raw-rng");
}

TEST(LintSuppression, PerLineAllowIsNotAnAllowFile) {
  EXPECT_TRUE(
      xpuf::lint::parse_allow_file_comment("// xpuf-lint: allow(raw-rng)").empty());
}

// --- lint_source behavior ---------------------------------------------------

TEST(LintSource, FlagsRawRngOutsideCommonRng) {
  const auto v = lint_str("src/puf/demo.cpp", "std::mt19937 gen(42);\n");
  EXPECT_TRUE(has_rule(v, "raw-rng"));
}

TEST(LintSource, ExemptsTheRngImplementationItself) {
  const auto v = lint_str("src/common/rng.cpp", "std::mt19937 gen(42);\n");
  EXPECT_FALSE(has_rule(v, "raw-rng"));
}

TEST(LintSource, CommentsAndStringsAreInvisible) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "// std::mt19937 in prose is fine\n"
                          "const char* s = \"std::mt19937\";\n");
  EXPECT_FALSE(has_rule(v, "raw-rng"));
}

TEST(LintSource, TrailingAllowCoversItsOwnLine) {
  const auto v =
      lint_str("src/puf/demo.cpp", "std::mt19937 gen(42);  // xpuf-lint: allow(raw-rng)\n");
  EXPECT_FALSE(has_rule(v, "raw-rng"));
}

TEST(LintSource, CommentOnlyAllowLineCoversTheNextLine) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "// xpuf-lint: allow(raw-rng)\n"
                          "std::mt19937 gen(42);\n");
  EXPECT_FALSE(has_rule(v, "raw-rng"));
}

TEST(LintSource, AllowDoesNotLeakPastTheNextLine) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "// xpuf-lint: allow(raw-rng)\n"
                          "int unrelated = 0;\n"
                          "std::mt19937 gen(42);\n");
  EXPECT_TRUE(has_rule(v, "raw-rng"));
}

TEST(LintSource, AllowFileCoversTheWholeFile) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "// xpuf-lint: allow-file(raw-rng)\n"
                          "int unrelated = 0;\n"
                          "std::mt19937 gen(42);\n");
  EXPECT_FALSE(has_rule(v, "raw-rng"));
}

TEST(LintSource, UnknownRuleInAllowIsABadSuppression) {
  const auto v = lint_str("src/puf/demo.cpp", "// xpuf-lint: allow(no-such-rule)\n");
  EXPECT_TRUE(has_rule(v, "bad-suppression"));
}

TEST(LintSource, BadSuppressionIsItselfSuppressible) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "// xpuf-lint: allow-file(bad-suppression)\n"
                          "// xpuf-lint: allow(no-such-rule)\n");
  EXPECT_FALSE(has_rule(v, "bad-suppression"));
}

TEST(LintSource, FlagsRawSyscallsOutsideTheWrapperTu) {
  EXPECT_TRUE(has_rule(
      lint_str("src/net/async/demo.cpp",
               "if (::connect(fd, addr, len) < 0) return false;\n"),
      "raw-syscall"));
  EXPECT_TRUE(has_rule(
      lint_str("src/puf/store/demo.cpp", "if (errno == EINTR) continue;\n"),
      "raw-syscall"));
  EXPECT_TRUE(has_rule(
      lint_str("src/net/async/demo.cpp",
               "epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);\n"),
      "raw-syscall"));
}

TEST(LintSource, ExemptsTheSyscallWrapperTuItself) {
  EXPECT_FALSE(has_rule(
      lint_str("src/net/async/syscall.cpp",
               "if (errno == EINTR) continue;\n"
               "::close(fd);\n"
               "epoll_wait(ep, events, 64, timeout);\n"),
      "raw-syscall"));
}

TEST(LintSource, WrapperCallsAndQualifiedMembersAreNotRawSyscalls) {
  // sys_* wrapper calls embed the syscall name after an identifier char.
  EXPECT_FALSE(has_rule(
      lint_str("src/net/async/demo.cpp",
               "sys_epoll_wait(epoll_, wait_ms, events_);\n"),
      "raw-syscall"));
  // Class-qualified members named like syscalls (WireReader::read_u8,
  // Transport::send) are project code, not the libc symbols.
  EXPECT_FALSE(has_rule(
      lint_str("src/net/demo.cpp",
               "bool WireReader::read_u8(std::uint8_t& v) { return ok; }\n"
               "transport.send(std::move(frame));\n"),
      "raw-syscall"));
}

TEST(LintSource, FlagsNondeterminismSources) {
  const auto v = lint_str("src/sim/demo.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_rule(v, "nondeterminism"));
  const auto exempt = lint_str("src/common/rng.cpp", "std::random_device rd;\n");
  EXPECT_FALSE(has_rule(exempt, "nondeterminism"));
}

TEST(LintSource, FlagsVectorBoolIndexingInParallelBody) {
  const auto v = lint_str("src/sim/demo.cpp",
                          "std::vector<bool> flags(n);\n"
                          "parallel_for(n, 64, [&](std::size_t b, std::size_t e,\n"
                          "                        std::size_t) {\n"
                          "  for (std::size_t i = b; i < e; ++i) flags[i] = true;\n"
                          "});\n");
  EXPECT_TRUE(has_rule(v, "vector-bool-parallel"));
}

TEST(LintSource, ByteStagingInParallelBodyIsClean) {
  const auto v = lint_str("src/sim/demo.cpp",
                          "std::vector<bool> flags(n);\n"
                          "std::vector<std::uint8_t> staged(n);\n"
                          "parallel_for(n, 64, [&](std::size_t b, std::size_t e,\n"
                          "                        std::size_t) {\n"
                          "  for (std::size_t i = b; i < e; ++i) staged[i] = 1;\n"
                          "});\n"
                          "for (std::size_t i = 0; i < n; ++i) flags[i] = staged[i] != 0;\n");
  EXPECT_FALSE(has_rule(v, "vector-bool-parallel"));
}

TEST(LintSource, FlagsHandRolledDotLoopInMl) {
  const std::string loop =
      "for (std::size_t c = 0; c < d; ++c) z += row[c] * w[c];\n";
  EXPECT_TRUE(has_rule(lint_str("src/ml/demo.cpp", loop), "ml-dot"));
  // Reversed operand order is the same dot product.
  EXPECT_TRUE(has_rule(
      lint_str("src/ml/demo.cpp", "s += w[i] * phi[i];\n"), "ml-dot"));
  // Scope is src/ml/ .cpp only; elsewhere the loop may be the kernel itself.
  EXPECT_FALSE(has_rule(lint_str("src/linalg/demo.cpp", loop), "ml-dot"));
  EXPECT_FALSE(has_rule(lint_str("src/ml/demo.hpp", loop), "ml-dot"));
  // Mismatched subscripts are not a dot product (e.g. gram accumulation).
  EXPECT_FALSE(has_rule(
      lint_str("src/ml/demo.cpp", "g(i, j) += ri * row[j];\n"), "ml-dot"));
  EXPECT_FALSE(has_rule(
      lint_str("src/ml/demo.cpp", "acc += a[i] * b[j];\n"), "ml-dot"));
  // An allow comment suppresses a sanctioned site.
  EXPECT_FALSE(has_rule(
      lint_str("src/ml/demo.cpp",
               "z += row[c] * w[c];  // xpuf-lint: allow(ml-dot)\n"),
      "ml-dot"));
}

TEST(LintSource, FlagsUnguardedPufEntryPoint) {
  const std::string body =
      "namespace xpuf::puf {\n"
      "int process(const std::vector<int>& xs) {\n"
      "  int sum = 0;\n"
      "  for (int x : xs) sum += x;\n"
      "  return sum;\n"
      "}\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_str("src/puf/demo.cpp", body), "require-guard"));
  // The same definition outside the guarded trees is not a public entry point.
  EXPECT_FALSE(has_rule(lint_str("src/analysis/demo.cpp", body), "require-guard"));
}

TEST(LintSource, GuardedPufEntryPointIsClean) {
  const auto v = lint_str("src/puf/demo.cpp",
                          "namespace xpuf::puf {\n"
                          "int process(const std::vector<int>& xs) {\n"
                          "  XPUF_REQUIRE(!xs.empty(), \"need data\");\n"
                          "  int sum = 0;\n"
                          "  for (int x : xs) sum += x;\n"
                          "  return sum;\n"
                          "}\n"
                          "}\n");
  EXPECT_FALSE(has_rule(v, "require-guard"));
}

TEST(LintSource, HeaderWithoutPragmaOnceIsFlagged) {
  EXPECT_TRUE(has_rule(lint_str("src/puf/demo.hpp", "int f();\n"), "include-order"));
  EXPECT_FALSE(
      has_rule(lint_str("src/puf/demo.hpp", "#pragma once\nint f();\n"), "include-order"));
}

TEST(LintSource, WirePortabilityFlagsMemcpyInTheWireCodec) {
  const std::string src =
      "#pragma once\n"
      "void pack(Header h, std::uint8_t* out) { std::memcpy(out, &h, 24); }\n";
  EXPECT_TRUE(has_rule(lint_str("src/net/wire.hpp", src), "wire-portability"));
  // The rule is scoped to the wire codec; the same code elsewhere is legal.
  EXPECT_FALSE(has_rule(lint_str("src/net/transport.cpp", src), "wire-portability"));
}

TEST(LintSource, WirePortabilityFlagsTypePunning) {
  EXPECT_TRUE(has_rule(
      lint_str("src/net/wire.cpp",
               "std::uint32_t peek(const std::uint8_t* p) {\n"
               "  return *reinterpret_cast<const std::uint32_t*>(p);\n"
               "}\n"),
      "wire-portability"));
  EXPECT_TRUE(has_rule(lint_str("src/net/wire.cpp",
                                "auto bits = std::bit_cast<std::uint32_t>(x);\n"),
                       "wire-portability"));
}

TEST(LintSource, WirePortabilityFlagsPlatformWidthIntegers) {
  EXPECT_TRUE(has_rule(
      lint_str("src/net/wire.cpp", "unsigned seq = 0;\n"), "wire-portability"));
  EXPECT_TRUE(has_rule(
      lint_str("src/net/wire.cpp", "std::size_t n = payload.size();\n"),
      "wire-portability"));
  // Fixed-width fields and comments mentioning the tokens are clean.
  EXPECT_FALSE(has_rule(
      lint_str("src/net/wire.cpp",
               "// never use int or size_t here\nstd::uint32_t seq = 0;\n"),
      "wire-portability"));
}

TEST(LintTidyConfig, MissingFileIsAViolation) {
  const auto v = xpuf::lint::check_tidy_config("/nonexistent/.clang-tidy");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tidy-config");
}

}  // namespace
