// Tests for the stage-level arbiter PUF device — most importantly the
// equivalence between the recursive stage walk and the reduced linear
// additive model, which is the foundation of every model in the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "puf/transform.hpp"
#include "sim/device.hpp"

namespace xpuf::sim {
namespace {

ArbiterPufDevice make_device(std::size_t stages, std::uint64_t seed) {
  DeviceParameters params;
  params.stages = stages;
  Rng rng(seed);
  return ArbiterPufDevice(params, EnvironmentModel{}, rng);
}

TEST(Device, ValidatesParameters) {
  Rng rng(1);
  DeviceParameters bad;
  bad.stages = 0;
  EXPECT_THROW(ArbiterPufDevice(bad, EnvironmentModel{}, rng), std::invalid_argument);
  bad = DeviceParameters{};
  bad.sigma_noise = 0.0;
  EXPECT_THROW(ArbiterPufDevice(bad, EnvironmentModel{}, rng), std::invalid_argument);
  bad = DeviceParameters{};
  bad.sigma_process = -1.0;
  EXPECT_THROW(ArbiterPufDevice(bad, EnvironmentModel{}, rng), std::invalid_argument);
}

TEST(Device, FabricationIsSeedDeterministic) {
  const auto d1 = make_device(16, 9);
  const auto d2 = make_device(16, 9);
  Rng crng(3);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_challenge(16, crng);
    EXPECT_DOUBLE_EQ(d1.delay_difference(c, Environment::nominal()),
                     d2.delay_difference(c, Environment::nominal()));
  }
}

TEST(Device, DifferentSeedsGiveDifferentDevices) {
  const auto d1 = make_device(16, 10);
  const auto d2 = make_device(16, 11);
  Rng crng(4);
  const auto c = random_challenge(16, crng);
  EXPECT_NE(d1.delay_difference(c, Environment::nominal()),
            d2.delay_difference(c, Environment::nominal()));
}

TEST(Device, ChallengeLengthIsValidated) {
  const auto d = make_device(8, 12);
  const Challenge wrong(7, 0);
  EXPECT_THROW(d.delay_difference(wrong, Environment::nominal()),
               std::invalid_argument);
}

// The central equivalence: recursive race == w . phi at every corner.
struct DeviceCase {
  std::size_t stages;
  std::uint64_t seed;
};

class DeviceReductionSweep : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(DeviceReductionSweep, RecursiveWalkEqualsReducedLinearModel) {
  const auto [stages, seed] = GetParam();
  const auto device = make_device(stages, seed);
  Rng crng(100 + seed);
  for (const auto& env : paper_corner_grid()) {
    const linalg::Vector w = device.reduced_weights(env);
    ASSERT_EQ(w.size(), stages + 1);
    for (int i = 0; i < 25; ++i) {
      const auto c = random_challenge(stages, crng);
      const linalg::Vector phi = puf::feature_vector(c);
      const double direct = device.delay_difference(c, env);
      const double reduced = linalg::dot(w, phi);
      EXPECT_NEAR(direct, reduced, 1e-10 * static_cast<double>(stages))
          << "stages=" << stages << " env=" << env.label();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeviceReductionSweep,
                         ::testing::Values(DeviceCase{1, 1}, DeviceCase{2, 2},
                                           DeviceCase{8, 3}, DeviceCase{32, 4},
                                           DeviceCase{64, 5}, DeviceCase{128, 6}));

TEST(Device, OneProbabilityMatchesCdfOfDelay) {
  const auto d = make_device(32, 13);
  Rng crng(5);
  const Environment env = Environment::nominal();
  for (int i = 0; i < 20; ++i) {
    const auto c = random_challenge(32, crng);
    const double expected =
        xpuf::normal_cdf(d.delay_difference(c, env) / d.noise_sigma(env));
    EXPECT_DOUBLE_EQ(d.one_probability(c, env), expected);
    EXPECT_GE(d.one_probability(c, env), 0.0);
    EXPECT_LE(d.one_probability(c, env), 1.0);
  }
}

TEST(Device, EvaluateMatchesOneProbabilityStatistically) {
  const auto d = make_device(32, 14);
  Rng crng(6);
  const Environment env = Environment::nominal();
  // Find a moderately-biased challenge so the test is informative.
  Challenge c;
  double p = 0.0;
  for (int i = 0; i < 2000; ++i) {
    c = random_challenge(32, crng);
    p = d.one_probability(c, env);
    if (p > 0.2 && p < 0.8) break;
  }
  ASSERT_GT(p, 0.2);
  ASSERT_LT(p, 0.8);
  Rng eval_rng(7);
  int ones = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i)
    if (d.evaluate(c, env, eval_rng)) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, p, 0.02);
}

TEST(Device, NoiseSigmaScalesWithEnvironment) {
  const auto d = make_device(32, 15);
  const double nominal = d.noise_sigma(Environment::nominal());
  EXPECT_DOUBLE_EQ(nominal, d.parameters().sigma_noise);
  EXPECT_GT(d.noise_sigma({0.8, 0.0}), nominal);
}

TEST(Device, EnvironmentShiftsDelayDifferences) {
  const auto d = make_device(32, 16);
  Rng crng(8);
  const auto c = random_challenge(32, crng);
  const double nominal = d.delay_difference(c, Environment::nominal());
  const double corner = d.delay_difference(c, {0.8, 60.0});
  EXPECT_NE(nominal, corner);
}

TEST(Device, DelayDistributionMatchesTheory) {
  // Across random challenges, delta ~ N(0, sigma) with
  // sigma^2 = stages * sigma_process^2 (sum of w_i^2 in expectation).
  const std::size_t stages = 64;
  const auto d = make_device(stages, 17);
  Rng crng(9);
  std::vector<double> deltas(20'000);
  for (auto& v : deltas)
    v = d.delay_difference(random_challenge(stages, crng), Environment::nominal());
  const double sd = xpuf::stddev(deltas);
  EXPECT_NEAR(sd, std::sqrt(static_cast<double>(stages)), 1.2);
  EXPECT_NEAR(xpuf::mean(deltas), 0.0, 0.3);
}

TEST(Device, ResponseBiasIsNearHalf) {
  // A single device carries a per-device offset (the constant weight entry,
  // sigma ~ 0.7 against a sqrt(32) spread), so its bias is only *near* 0.5;
  // average several devices to bound the lot-level bias tightly.
  Rng crng(10);
  double bias_sum = 0.0;
  const int devices = 8;
  for (int dev = 0; dev < devices; ++dev) {
    const auto d = make_device(32, 18 + static_cast<std::uint64_t>(dev));
    int ones = 0;
    const int n = 5'000;
    for (int i = 0; i < n; ++i)
      if (d.delay_difference(random_challenge(32, crng), Environment::nominal()) > 0.0)
        ++ones;
    const double bias = static_cast<double>(ones) / n;
    EXPECT_NEAR(bias, 0.5, 0.12) << "device " << dev;
    bias_sum += bias;
  }
  EXPECT_NEAR(bias_sum / devices, 0.5, 0.04);
}

TEST(RandomChallenge, HasRequestedLengthAndBinaryEntries) {
  Rng rng(11);
  const auto c = random_challenge(40, rng);
  ASSERT_EQ(c.size(), 40u);
  for (auto b : c) EXPECT_LE(b, 1);
}

}  // namespace
}  // namespace xpuf::sim
