// Tests for the scalar special functions (normal CDF/quantile, logistic
// helpers, unanimity probability, summary statistics).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/math.hpp"

namespace xpuf {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-10);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdf, SymmetryHolds) {
  for (double x : {0.3, 1.7, 2.9, 4.4}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14);
  }
}

TEST(NormalCdf, FarTailsDoNotSaturateEarly) {
  EXPECT_GT(normal_cdf(-6.0), 0.0);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-15);
  EXPECT_LT(normal_cdf(8.0), 1.0 + 1e-16);
}

TEST(NormalCdfBatch, BitwiseMatchesScalarAcrossRegimes) {
  // The batch kernel must be a drop-in for per-element normal_cdf calls:
  // the equivalence proofs for the batched scan paths rely on bitwise
  // identity, not closeness, so compare with EXPECT_EQ on the doubles.
  std::vector<double> xs{0.0,          -0.0,      1.0,    -1.96, 3.0,
                         -6.0,         8.0,       -37.6,  40.0,  1e-300,
                         -1e-300,      5e-324,    -5e-324, 0.5,  -0.5,
                         123.456,      -123.456,  1e300,  -1e300};
  xs.push_back(std::numeric_limits<double>::infinity());
  xs.push_back(-std::numeric_limits<double>::infinity());
  for (int i = -400; i <= 400; ++i) xs.push_back(static_cast<double>(i) / 50.0);
  std::vector<double> out(xs.size(), -1.0);
  normal_cdf_batch(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(out[i], normal_cdf(xs[i])) << "x = " << xs[i];
}

TEST(NormalCdfBatch, InfinitiesAndNanPropagate) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> xs{inf, -inf, std::numeric_limits<double>::quiet_NaN()};
  std::vector<double> out(3, -1.0);
  normal_cdf_batch(xs, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_TRUE(std::isnan(out[2]));
}

TEST(NormalCdfBatch, InPlaceOverSameSpan) {
  // The chip batch path divides deltas by sigma in place and then runs the
  // CDF over the same buffer; aliasing input and output must be legal.
  std::vector<double> buf{-2.0, -1.0, 0.0, 1.0, 2.0};
  const std::vector<double> ref{normal_cdf(-2.0), normal_cdf(-1.0), normal_cdf(0.0),
                                normal_cdf(1.0), normal_cdf(2.0)};
  normal_cdf_batch(buf, buf);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], ref[i]);
}

TEST(NormalCdfBatch, EmptySpansAreANoOp) {
  std::vector<double> xs, out;
  normal_cdf_batch(xs, out);
  EXPECT_TRUE(out.empty());
}

TEST(NormalCdfBatch, RejectsLengthMismatch) {
  std::vector<double> xs{0.0, 1.0};
  std::vector<double> out(1, 0.0);
  EXPECT_THROW(normal_cdf_batch(xs, out), std::invalid_argument);
}

TEST(LogNormalCdf, MatchesLogOfCdfInBulk) {
  for (double x : {-5.0, -2.0, 0.0, 1.5}) {
    EXPECT_NEAR(log_normal_cdf(x), std::log(normal_cdf(x)), 1e-8);
  }
}

TEST(LogNormalCdf, FarTailIsFiniteAndOrdered) {
  const double a = log_normal_cdf(-20.0);
  const double b = log_normal_cdf(-30.0);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_GT(a, b);
  // Phi(-20) ~ 2.75e-89 -> log ~ -203.9.
  EXPECT_NEAR(a, -203.9, 0.5);
}

TEST(NormalQuantile, InvertsTheCdf) {
  for (double p : {1e-10, 1e-6, 0.001, 0.025, 0.3, 0.5, 0.9, 0.999, 1.0 - 1e-9}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-11) << "p = " << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(Sigmoid, MatchesClosedForm) {
  for (double x : {-30.0, -3.0, 0.0, 2.0, 25.0}) {
    EXPECT_NEAR(sigmoid(x), 1.0 / (1.0 + std::exp(-x)), 1e-12);
  }
}

TEST(Sigmoid, ExtremesAreStable) {
  EXPECT_NEAR(sigmoid(-800.0), 0.0, 1e-300);
  EXPECT_NEAR(sigmoid(800.0), 1.0, 1e-300);
}

TEST(Softplus, MatchesClosedFormAndTails) {
  for (double x : {-5.0, -0.5, 0.0, 0.5, 5.0}) {
    EXPECT_NEAR(softplus(x), std::log1p(std::exp(x)), 1e-12);
  }
  EXPECT_NEAR(softplus(100.0), 100.0, 1e-9);
  EXPECT_NEAR(softplus(-100.0), std::exp(-100.0), 1e-50);
}

TEST(Softplus, DerivativeIdentity) {
  // softplus'(x) = sigmoid(x); check by central difference.
  for (double x : {-2.0, 0.0, 3.0}) {
    const double h = 1e-6;
    const double d = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
    EXPECT_NEAR(d, sigmoid(x), 1e-6);
  }
}

TEST(UnanimityProbability, DegenerateCases) {
  EXPECT_DOUBLE_EQ(unanimity_probability(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(unanimity_probability(10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(unanimity_probability(10, 1.0), 1.0);
}

TEST(UnanimityProbability, MatchesDirectFormula) {
  EXPECT_NEAR(unanimity_probability(3, 0.5), 0.25, 1e-12);  // 2 * 0.5^3
  EXPECT_NEAR(unanimity_probability(2, 0.1), 0.81 + 0.01, 1e-12);
}

TEST(UnanimityProbability, LargeTrialTinyP) {
  // K = 100'000, p = 1e-6: P ~ exp(-0.1) = 0.9048.
  EXPECT_NEAR(unanimity_probability(100'000, 1e-6), std::exp(-0.1), 1e-4);
}

TEST(UnanimityProbability, IsSymmetricInP) {
  for (double p : {0.01, 0.2, 0.4}) {
    EXPECT_NEAR(unanimity_probability(50, p), unanimity_probability(50, 1.0 - p), 1e-12);
  }
}

TEST(UnanimityProbability, DecreasesWithTrialCount) {
  const double p = 1e-4;
  double prev = 1.0;
  for (std::uint64_t n : {10ULL, 100ULL, 1'000ULL, 10'000ULL, 100'000ULL}) {
    const double u = unanimity_probability(n, p);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

TEST(SummaryStats, MeanVarianceStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummaryStats, EdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(PearsonCorrelation, PerfectAndAnti) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  std::vector<double> ny;
  for (double v : y) ny.push_back(-v);
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, ny), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantInputGivesZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{2.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(PearsonCorrelation, RejectsLengthMismatch) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(pearson_correlation(x, y), std::invalid_argument);
}

TEST(Clamp, ClampsAndValidates) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(clamp(0.7, 0.7, 0.7), 0.7);
  EXPECT_THROW(clamp(0.0, 1.0, -1.0), std::invalid_argument);
}

// Property sweep: the unanimity probability matches a Monte-Carlo estimate
// across a grid of (n, p) regimes, tying together binomial tails and the
// closed form used by the analysis.
struct UnanimityCase {
  std::uint64_t n;
  double p;
};

class UnanimitySweep : public ::testing::TestWithParam<UnanimityCase> {};

TEST_P(UnanimitySweep, MatchesClosedForm) {
  const auto [n, p] = GetParam();
  double direct = std::pow(1.0 - p, static_cast<double>(n)) +
                  std::pow(p, static_cast<double>(n));
  EXPECT_NEAR(unanimity_probability(n, p), direct, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnanimitySweep,
    ::testing::Values(UnanimityCase{1, 0.5}, UnanimityCase{10, 0.01},
                      UnanimityCase{100, 0.001}, UnanimityCase{1000, 0.3},
                      UnanimityCase{100, 0.999}, UnanimityCase{5, 0.9}));

}  // namespace
}  // namespace xpuf
