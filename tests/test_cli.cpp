// Tests for the command-line parser and bench scale resolution.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/cli.hpp"
#include "common/error.hpp"

namespace xpuf {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValuePairs) {
  const Cli cli = make_cli({"--seed", "42", "--name", "abc"});
  EXPECT_TRUE(cli.has("seed"));
  EXPECT_EQ(cli.get_int("seed", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "abc");
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make_cli({"--seed=7", "--rate=0.25"});
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.25);
}

TEST(Cli, BareFlagHasEmptyValue) {
  const Cli cli = make_cli({"--verbose", "--seed", "3"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose", "x"), "");
  EXPECT_EQ(cli.get_int("seed", 0), 3);
}

TEST(Cli, PositionalArgumentsCollected) {
  const Cli cli = make_cli({"one", "--k", "v", "two"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, MissingOptionsFallBack) {
  const Cli cli = make_cli({});
  EXPECT_FALSE(cli.has("seed"));
  EXPECT_EQ(cli.get_int("seed", 99), 99);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
}

TEST(Cli, MalformedNumbersThrow) {
  const Cli cli = make_cli({"--seed", "abc"});
  EXPECT_THROW(cli.get_int("seed", 0), ParseError);
  EXPECT_THROW(cli.get_double("seed", 0.0), ParseError);
}

TEST(Cli, ProgramNameIsCaptured) {
  const char* argv[] = {"myprog"};
  const Cli cli(1, argv);
  EXPECT_EQ(cli.program(), "myprog");
}

class ScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("XPUF_BENCH_SCALE");
    ::unsetenv("XPUF_THREADS");
  }
  void TearDown() override {
    ::unsetenv("XPUF_BENCH_SCALE");
    ::unsetenv("XPUF_THREADS");
  }
};

TEST_F(ScaleTest, DefaultIsReduced) {
  const BenchScale s = resolve_scale(make_cli({}));
  EXPECT_FALSE(s.full);
  EXPECT_EQ(s.challenges, 100'000u);
  EXPECT_EQ(s.trials, 10'000u);
}

TEST_F(ScaleTest, FullFlagSelectsPaperScale) {
  const BenchScale s = resolve_scale(make_cli({"--scale", "full"}));
  EXPECT_TRUE(s.full);
  EXPECT_EQ(s.challenges, 1'000'000u);
  EXPECT_EQ(s.trials, 100'000u);
  EXPECT_EQ(s.chips, 10u);
}

TEST_F(ScaleTest, EnvironmentVariableSelectsFull) {
  ::setenv("XPUF_BENCH_SCALE", "full", 1);
  const BenchScale s = resolve_scale(make_cli({}));
  EXPECT_TRUE(s.full);
}

TEST_F(ScaleTest, FlagBeatsEnvironment) {
  ::setenv("XPUF_BENCH_SCALE", "full", 1);
  const BenchScale s = resolve_scale(make_cli({"--scale", "reduced"}));
  EXPECT_FALSE(s.full);
}

TEST_F(ScaleTest, IndividualOverridesApply) {
  const BenchScale s =
      resolve_scale(make_cli({"--challenges", "1234", "--trials", "99", "--chips", "2"}));
  EXPECT_EQ(s.challenges, 1234u);
  EXPECT_EQ(s.trials, 99u);
  EXPECT_EQ(s.chips, 2u);
}

TEST_F(ScaleTest, ThreadsDefaultToHardwareConcurrency) {
  const BenchScale s = resolve_scale(make_cli({}));
  EXPECT_GE(s.threads, 1u);
}

TEST_F(ScaleTest, ThreadsFlagAndEnvironment) {
  EXPECT_EQ(resolve_scale(make_cli({"--threads", "3"})).threads, 3u);
  ::setenv("XPUF_THREADS", "5", 1);
  EXPECT_EQ(resolve_scale(make_cli({})).threads, 5u);
  // Flag beats environment; nonpositive values fall back to autodetect.
  EXPECT_EQ(resolve_scale(make_cli({"--threads", "2"})).threads, 2u);
  EXPECT_GE(resolve_scale(make_cli({"--threads", "0"})).threads, 1u);
}

}  // namespace
}  // namespace xpuf
