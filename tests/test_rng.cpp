// Tests for the deterministic PRNG stack: stream determinism, distribution
// moments, exact binomial tails (the property the stability statistics
// depend on), and bounded sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/math.hpp"
#include "common/rng.hpp"

namespace xpuf {
namespace {

TEST(SplitMix64, IsDeterministicAndMixing) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(123), d(124);
  // Adjacent seeds must not produce adjacent outputs.
  EXPECT_NE(c.next(), d.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(2);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(3);
  std::vector<double> xs(100'000);
  for (auto& x : xs) x = rng.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
  EXPECT_NEAR(variance(xs), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformBelowStaysBelow) {
  Rng rng(4);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1'000; ++i) EXPECT_LT(rng.uniform_below(n), n);
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_below(0), std::invalid_argument);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(7);
  std::vector<double> xs(200'000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.01);
  EXPECT_NEAR(stddev(xs), 1.0, 0.01);
}

TEST(Rng, NormalTailFractionIsPlausible) {
  Rng rng(8);
  int beyond2 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (std::fabs(rng.normal()) > 2.0) ++beyond2;
  // P(|Z| > 2) = 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.005);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(9);
  std::vector<double> xs(100'000);
  for (auto& x : xs) x = rng.normal(10.0, 3.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 3.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(9);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFairCoinIsBalanced) {
  Rng rng(10);
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli()) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(Rng, BernoulliBiasedMatchesProbability) {
  Rng rng(11);
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.2)) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.2, 0.01);
}

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(12);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialRejectsBadProbability) {
  Rng rng(12);
  EXPECT_THROW(rng.binomial(10, -0.1), std::invalid_argument);
  EXPECT_THROW(rng.binomial(10, 1.1), std::invalid_argument);
}

TEST(Rng, BinomialStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) EXPECT_LE(rng.binomial(50, 0.3), 50u);
}

TEST(Rng, BinomialSmallRegimeMoments) {
  Rng rng(14);
  const std::uint64_t n = 40;
  const double p = 0.1;  // n*p = 4 -> inversion path
  std::vector<double> xs(100'000);
  for (auto& x : xs) x = static_cast<double>(rng.binomial(n, p));
  EXPECT_NEAR(mean(xs), 4.0, 0.05);
  EXPECT_NEAR(variance(xs), 3.6, 0.15);
}

TEST(Rng, BinomialBulkRegimeMoments) {
  Rng rng(15);
  const std::uint64_t n = 10'000;
  const double p = 0.4;  // normal-approximation path
  std::vector<double> xs(50'000);
  for (auto& x : xs) x = static_cast<double>(rng.binomial(n, p));
  EXPECT_NEAR(mean(xs), 4000.0, 2.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2400.0), 1.5);
}

TEST(Rng, BinomialMirrorsHighP) {
  Rng rng(16);
  const std::uint64_t n = 40;
  std::vector<double> xs(100'000);
  for (auto& x : xs) x = static_cast<double>(rng.binomial(n, 0.9));
  EXPECT_NEAR(mean(xs), 36.0, 0.05);
}

TEST(Rng, BinomialAllZeroTailIsExact) {
  // The "100% stable" statistic: P(X == 0) must equal (1-p)^n even when
  // n is large and p is tiny. n = 10'000, p = 5e-5 -> P(0) = 0.6065.
  Rng rng(17);
  const std::uint64_t n = 10'000;
  const double p = 5e-5;
  const double expected = std::exp(static_cast<double>(n) * std::log1p(-p));
  int zeros = 0;
  const int samples = 200'000;
  for (int i = 0; i < samples; ++i)
    if (rng.binomial(n, p) == 0) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / samples, expected, 0.005);
}

TEST(Rng, BinomialAllOnesTailIsExact) {
  Rng rng(18);
  const std::uint64_t n = 10'000;
  const double p = 1.0 - 5e-5;
  const double expected = std::exp(static_cast<double>(n) * std::log1p(-(1.0 - p)));
  int full = 0;
  const int samples = 200'000;
  for (int i = 0; i < samples; ++i)
    if (rng.binomial(n, p) == n) ++full;
  EXPECT_NEAR(static_cast<double>(full) / samples, expected, 0.005);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(19);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 1'000; ++i)
    if (child1.next_u64() == child2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng a(20), b(20);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(22);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

// Chi-squared sanity for uniform_below over a parameter sweep of moduli.
class RngModuloSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngModuloSweep, UniformBelowIsUnbiased) {
  const std::uint64_t n = GetParam();
  Rng rng(100 + n);
  std::vector<std::size_t> counts(n, 0);
  const std::size_t draws = 20'000 * n;
  for (std::size_t i = 0; i < draws; ++i) ++counts[rng.uniform_below(n)];
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  double chi2 = 0.0;
  for (std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // 99.9th percentile of chi2 with n-1 dof, generous bound: 3 * (n - 1) + 20.
  EXPECT_LT(chi2, 3.0 * static_cast<double>(n - 1) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngModuloSweep,
                         ::testing::Values(2ULL, 3ULL, 5ULL, 8ULL, 13ULL, 32ULL));

}  // namespace
}  // namespace xpuf
