// Tests for the XOR PUF chip: access control, counters, XOR semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/chip.hpp"

namespace xpuf::sim {
namespace {

XorPufChip make_chip(std::size_t n_pufs, std::uint64_t seed) {
  DeviceParameters params;
  Rng rng(seed);
  return XorPufChip(0, n_pufs, params, EnvironmentModel{}, rng);
}

TEST(SoftMeasurement, SoftResponseAndStability) {
  const SoftMeasurement all_zero{0, 100};
  EXPECT_DOUBLE_EQ(all_zero.soft_response(), 0.0);
  EXPECT_TRUE(all_zero.fully_stable());

  const SoftMeasurement all_one{100, 100};
  EXPECT_DOUBLE_EQ(all_one.soft_response(), 1.0);
  EXPECT_TRUE(all_one.fully_stable());

  const SoftMeasurement mixed{50, 100};
  EXPECT_DOUBLE_EQ(mixed.soft_response(), 0.5);
  EXPECT_FALSE(mixed.fully_stable());

  const SoftMeasurement empty{0, 0};
  EXPECT_FALSE(empty.fully_stable());
}

TEST(Chip, ConstructionValidatesAndExposesGeometry) {
  const auto chip = make_chip(4, 1);
  EXPECT_EQ(chip.puf_count(), 4u);
  EXPECT_EQ(chip.stages(), 32u);
  EXPECT_EQ(chip.id(), 0u);
  Rng rng(1);
  DeviceParameters p;
  EXPECT_THROW(XorPufChip(0, 0, p, EnvironmentModel{}, rng), std::invalid_argument);
}

TEST(Chip, XorResponseMatchesIndividualResponsesWhenNoiseless) {
  // With stable challenges the XOR of individual hard responses must equal
  // the XOR output; verify via one_probability signs on the devices.
  const auto chip = make_chip(3, 2);
  Rng rng(2);
  const Environment env = Environment::nominal();
  int checked = 0;
  for (int i = 0; i < 500 && checked < 50; ++i) {
    const auto c = random_challenge(chip.stages(), rng);
    bool strongly_biased = true;
    bool expected = false;
    for (std::size_t p = 0; p < 3; ++p) {
      const double prob = chip.device_for_analysis(p).one_probability(c, env);
      if (prob > 1e-9 && prob < 1.0 - 1e-9) {
        strongly_biased = false;
        break;
      }
      expected ^= prob > 0.5;
    }
    if (!strongly_biased) continue;
    ++checked;
    EXPECT_EQ(chip.xor_response(c, env, rng), expected);
  }
  EXPECT_GT(checked, 10);
}

TEST(Chip, IndividualAccessRequiresIntactFuse) {
  auto chip = make_chip(2, 3);
  Rng rng(3);
  const auto c = random_challenge(chip.stages(), rng);
  const Environment env = Environment::nominal();
  EXPECT_TRUE(chip.tap_accessible(0));
  EXPECT_NO_THROW(chip.individual_response(0, c, env, rng));
  EXPECT_NO_THROW(chip.measure_soft_response(1, c, env, 100, rng));

  chip.blow_fuses();
  EXPECT_TRUE(chip.deployed());
  EXPECT_FALSE(chip.tap_accessible(0));
  EXPECT_THROW(chip.individual_response(0, c, env, rng), xpuf::AccessError);
  EXPECT_THROW(chip.measure_soft_response(1, c, env, 100, rng), xpuf::AccessError);
  // XOR output remains available after deployment.
  EXPECT_NO_THROW(chip.xor_response(c, env, rng));
  EXPECT_NO_THROW(chip.measure_xor_soft_response(c, env, 100, rng));
}

TEST(Chip, PufIndexIsValidated) {
  auto chip = make_chip(2, 4);
  Rng rng(4);
  const auto c = random_challenge(chip.stages(), rng);
  EXPECT_THROW(chip.individual_response(2, c, Environment::nominal(), rng),
               std::invalid_argument);
  EXPECT_THROW(chip.tap_accessible(5), std::invalid_argument);
  EXPECT_THROW(chip.device_for_analysis(9), std::invalid_argument);
}

TEST(Chip, SoftMeasurementTrialsAreValidated) {
  auto chip = make_chip(1, 5);
  Rng rng(5);
  const auto c = random_challenge(chip.stages(), rng);
  EXPECT_THROW(chip.measure_soft_response(0, c, Environment::nominal(), 0, rng),
               std::invalid_argument);
  EXPECT_THROW(chip.measure_xor_soft_response(c, Environment::nominal(), 0, rng),
               std::invalid_argument);
}

TEST(Chip, SoftResponseApproximatesOneProbability) {
  const auto chip = make_chip(1, 6);
  Rng rng(6);
  const Environment env = Environment::nominal();
  // Pick a challenge with a mid-range probability for statistical power.
  Challenge c;
  double p = 0.0;
  for (int i = 0; i < 5000; ++i) {
    c = random_challenge(chip.stages(), rng);
    p = chip.device_for_analysis(0).one_probability(c, env);
    if (p > 0.3 && p < 0.7) break;
  }
  ASSERT_GT(p, 0.3);
  const auto m = chip.measure_soft_response(0, c, env, 100'000, rng);
  EXPECT_NEAR(m.soft_response(), p, 0.01);
  EXPECT_EQ(m.trials, 100'000u);
}

TEST(Chip, XorSoftResponseMatchesParityFormula) {
  const auto chip = make_chip(3, 7);
  Rng rng(7);
  const Environment env = Environment::nominal();
  const auto c = random_challenge(chip.stages(), rng);
  double prod = 1.0;
  for (std::size_t p = 0; p < 3; ++p)
    prod *= 1.0 - 2.0 * chip.device_for_analysis(p).one_probability(c, env);
  const double p_xor = 0.5 * (1.0 - prod);
  const auto m = chip.measure_xor_soft_response(c, env, 200'000, rng);
  EXPECT_NEAR(m.soft_response(), p_xor, 0.01);
}

TEST(Chip, MoreXorInputsMeanFewerStableChallenges) {
  const auto chip = make_chip(8, 8);
  Rng rng(8);
  const Environment env = Environment::nominal();
  const std::uint64_t trials = 10'000;
  int stable1 = 0, stable8 = 0;
  const int n = 1'000;
  for (int i = 0; i < n; ++i) {
    const auto c = random_challenge(chip.stages(), rng);
    bool all8 = true;
    for (std::size_t p = 0; p < 8; ++p) {
      const auto m = chip.measure_soft_response(p, c, env, trials, rng);
      if (p == 0 && m.fully_stable()) ++stable1;
      if (!m.fully_stable()) {
        all8 = false;
        break;
      }
    }
    if (all8) ++stable8;
  }
  EXPECT_GT(stable1, stable8);
  // Single-PUF stability should be near the calibrated ~80%.
  EXPECT_NEAR(static_cast<double>(stable1) / n, 0.80, 0.06);
}

}  // namespace
}  // namespace xpuf::sim
