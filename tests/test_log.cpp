// Tests for the leveled logger.
#include <gtest/gtest.h>

#include "common/log.hpp"

namespace xpuf {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogLevel saved_ = log_level();
  void TearDown() override { set_log_level(saved_); }
};

TEST_F(LogTest, LevelCanBeOverridden) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, EmittingBelowThresholdDoesNotCrash) {
  set_log_level(LogLevel::kError);
  // These are filtered; the assertion is simply that nothing blows up.
  log_line(LogLevel::kDebug, "filtered debug");
  log_line(LogLevel::kInfo, "filtered info");
  log_line(LogLevel::kWarn, "filtered warn");
  log_line(LogLevel::kError, "visible error");
  SUCCEED();
}

TEST_F(LogTest, StreamMacroBuildsMessages) {
  set_log_level(LogLevel::kError);  // keep test output clean
  XPUF_DEBUG() << "value = " << 42;
  XPUF_WARN() << "warned " << 3.14;
  XPUF_INFO() << "informed";
  SUCCEED();
}

}  // namespace
}  // namespace xpuf
