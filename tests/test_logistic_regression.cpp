// Tests for logistic regression (gradient correctness, learning behavior).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"

namespace xpuf::ml {
namespace {

Dataset linearly_separable(std::size_t n, Rng& rng) {
  // Label = sign(x0 + 2 x1 - 0.5 x2) with a margin.
  Dataset data;
  data.x = linalg::Matrix(n, 3);
  data.y = linalg::Vector(n);
  std::size_t r = 0;
  while (r < n) {
    const double x0 = rng.normal(), x1 = rng.normal(), x2 = rng.normal();
    const double z = x0 + 2.0 * x1 - 0.5 * x2;
    if (std::fabs(z) < 0.3) continue;  // enforce a margin
    data.x(r, 0) = x0;
    data.x(r, 1) = x1;
    data.x(r, 2) = x2;
    data.y[r] = z > 0.0 ? 1.0 : 0.0;
    ++r;
  }
  return data;
}

TEST(LogisticRegression, FitsSeparableDataPerfectly) {
  Rng rng(1);
  const Dataset data = linearly_separable(400, rng);
  LogisticRegression lr;
  const LbfgsResult fit = lr.fit(data);
  EXPECT_TRUE(lr.fitted());
  const linalg::Vector probs = lr.predict_probability(data.x);
  EXPECT_GE(accuracy(probs.span(), data.y.span()), 0.99);
  EXPECT_GT(fit.iterations, 0u);
}

TEST(LogisticRegression, RecoversWeightDirection) {
  Rng rng(2);
  const Dataset data = linearly_separable(2000, rng);
  LogisticRegressionOptions opts;
  opts.l2 = 1e-3;  // keep weights finite on separable data
  LogisticRegression lr(opts);
  lr.fit(data);
  const auto& w = lr.weights();
  // True direction (1, 2, -0.5): check sign pattern and ratio.
  EXPECT_GT(w[0], 0.0);
  EXPECT_GT(w[1], 0.0);
  EXPECT_LT(w[2], 0.0);
  EXPECT_NEAR(w[1] / w[0], 2.0, 0.3);
}

TEST(LogisticRegression, GradientMatchesFiniteDifferences) {
  Rng rng(3);
  Dataset data;
  data.x = linalg::Matrix(20, 4);
  data.y = linalg::Vector(20);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) data.x(r, c) = rng.normal();
    data.y[r] = rng.bernoulli() ? 1.0 : 0.0;
  }
  // Reconstruct the objective exactly as the class defines it.
  const double l2 = 1e-2;
  auto loss_at = [&](const linalg::Vector& w) {
    double loss = 0.0;
    for (std::size_t r = 0; r < data.size(); ++r) {
      double z = 0.0;
      for (std::size_t c = 0; c < 4; ++c) z += data.x(r, c) * w[c];
      loss += data.y[r] > 0.5 ? softplus(-z) : softplus(z);
    }
    loss /= static_cast<double>(data.size());
    for (std::size_t c = 0; c < 4; ++c) loss += 0.5 * l2 * w[c] * w[c];
    return loss;
  };

  // Fit briefly, then compare the analytic optimum condition: at the
  // optimum, finite-difference gradient ~ 0 in every direction.
  LogisticRegressionOptions opts;
  opts.l2 = l2;
  LogisticRegression lr(opts);
  const LbfgsResult fit = lr.fit(data);
  EXPECT_TRUE(fit.converged) << fit.message;
  const linalg::Vector w = lr.weights();
  const double f0 = loss_at(w);
  for (std::size_t c = 0; c < 4; ++c) {
    linalg::Vector wp = w;
    wp[c] += 1e-5;
    EXPECT_GT(loss_at(wp), f0 - 1e-9) << "direction " << c;
  }
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedOnNoisyData) {
  // Targets generated from a known sigmoid model; fitted probabilities must
  // have small log-loss relative to the Bayes loss.
  Rng rng(4);
  Dataset data;
  const std::size_t n = 5000;
  data.x = linalg::Matrix(n, 2);
  data.y = linalg::Vector(n);
  double bayes = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    data.x(r, 0) = rng.normal();
    data.x(r, 1) = rng.normal();
    const double p = sigmoid(1.5 * data.x(r, 0) - 1.0 * data.x(r, 1));
    data.y[r] = rng.bernoulli(p) ? 1.0 : 0.0;
    bayes += data.y[r] > 0.5 ? -std::log(p) : -std::log1p(-p);
  }
  bayes /= static_cast<double>(n);
  LogisticRegression lr;
  lr.fit(data);
  const linalg::Vector probs = lr.predict_probability(data.x);
  EXPECT_LT(log_loss(probs.span(), data.y.span()), bayes + 0.02);
}

TEST(LogisticRegression, ErrorsOnMisuse) {
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(Dataset{}), std::invalid_argument);
  const std::vector<double> row{1.0};
  EXPECT_THROW(lr.predict_probability(row), std::invalid_argument);
}

TEST(LogisticRegression, HardPredictionThresholdsAtHalf) {
  Rng rng(5);
  const Dataset data = linearly_separable(200, rng);
  LogisticRegression lr;
  lr.fit(data);
  for (std::size_t r = 0; r < 10; ++r) {
    const std::vector<double> row{data.x(r, 0), data.x(r, 1), data.x(r, 2)};
    const double p = lr.predict_probability(row);
    EXPECT_DOUBLE_EQ(lr.predict(row), p >= 0.5 ? 1.0 : 0.0);
  }
}

}  // namespace
}  // namespace xpuf::ml
