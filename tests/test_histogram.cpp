// Tests for the fixed-bin histogram.
#include <gtest/gtest.h>

#include "analysis/histogram.hpp"

namespace xpuf::analysis {
namespace {

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.15);   // bin 1
  h.add(0.95);   // bin 9
  h.add(1.0);    // exactly hi -> last bin
  h.add(0.0);    // exactly lo -> first bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, OutOfRangeGoesToOutflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsIncludeOutflowInDenominator) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(2.0);  // overflow
  EXPECT_NEAR(h.fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, FirstAndLastBinFractions) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 40; ++i) h.add(0.0);
  for (int i = 0; i < 40; ++i) h.add(1.0);
  for (int i = 0; i < 20; ++i) h.add(0.5);
  EXPECT_NEAR(h.first_bin_fraction(), 0.4, 1e-12);
  EXPECT_NEAR(h.last_bin_fraction(), 0.4, 1e-12);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.875);
  EXPECT_THROW(h.bin_center(4), std::invalid_argument);
  EXPECT_THROW(h.count(4), std::invalid_argument);
}

TEST(Histogram, AddAllMatchesRepeatedAdd) {
  Histogram a(0.0, 1.0, 5), b(0.0, 1.0, 5);
  const std::vector<double> values{0.1, 0.3, 0.9, 0.5, 0.5};
  a.add_all(values);
  for (double v : values) b.add(v);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a.count(i), b.count(i));
}

TEST(Histogram, RenderMentionsCountsAndOutflow) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 7; ++i) h.add(0.05);
  h.add(-1.0);
  const std::string s = h.render(20, 10);
  EXPECT_NE(s.find('7'), std::string::npos);
  EXPECT_NE(s.find("underflow"), std::string::npos);
}

TEST(Histogram, RenderMergesBinsWhenCapped) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 100.0 + 0.001);
  const std::string s = h.render(10, 10);
  // 10 rows max plus possible outflow lines.
  std::size_t lines = 0;
  for (char c : s)
    if (c == '\n') ++lines;
  EXPECT_LE(lines, 12u);
}

}  // namespace
}  // namespace xpuf::analysis
