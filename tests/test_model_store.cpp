// Tests for server-model persistence (the paper's server database).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "puf/authentication.hpp"
#include "puf/model_store.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class ModelStoreTest : public ::testing::Test {
 protected:
  ModelStoreTest()
      : path_((std::filesystem::temp_directory_path() /
               ("xpuf_model_" + std::to_string(::getpid()) + ".csv"))
                  .string()),
        pop_(make_config()),
        rng_(606) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 1'000;
    cfg.trials = 2'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
    model_.set_betas(BetaFactors{0.83, 1.17});
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 3;
    cfg.seed = 10101;
    return cfg;
  }

  std::string path_;
  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(ModelStoreTest, RoundTripIsBitExact) {
  save_server_model(model_, path_);
  const ServerModel loaded = load_server_model(path_);
  EXPECT_EQ(loaded.chip_id(), model_.chip_id());
  EXPECT_EQ(loaded.puf_count(), model_.puf_count());
  EXPECT_EQ(loaded.stages(), model_.stages());
  EXPECT_DOUBLE_EQ(loaded.betas().beta0, 0.83);
  EXPECT_DOUBLE_EQ(loaded.betas().beta1, 1.17);
  for (std::size_t p = 0; p < model_.puf_count(); ++p) {
    EXPECT_EQ(loaded.puf(p).model.weights().raw(), model_.puf(p).model.weights().raw());
    EXPECT_DOUBLE_EQ(loaded.puf(p).thresholds.thr0, model_.puf(p).thresholds.thr0);
    EXPECT_DOUBLE_EQ(loaded.puf(p).thresholds.thr1, model_.puf(p).thresholds.thr1);
    EXPECT_DOUBLE_EQ(loaded.puf(p).train_r_squared, model_.puf(p).train_r_squared);
  }
}

TEST_F(ModelStoreTest, LoadedModelAuthenticatesLikeTheOriginal) {
  save_server_model(model_, path_);
  const ServerModel loaded = load_server_model(path_);
  // Same RNG seed -> same issued batch -> same verdicts.
  AuthenticationServer s1(model_, 3, {.challenge_count = 16});
  AuthenticationServer s2(loaded, 3, {.challenge_count = 16});
  Rng r1(42), r2(42);
  const auto o1 = s1.authenticate(pop_.chip(0), sim::Environment::nominal(), r1);
  const auto o2 = s2.authenticate(pop_.chip(0), sim::Environment::nominal(), r2);
  EXPECT_EQ(o1.approved, o2.approved);
  EXPECT_EQ(o1.mismatches, o2.mismatches);
}

TEST_F(ModelStoreTest, PredictionsSurviveTheRoundTrip) {
  save_server_model(model_, path_);
  const ServerModel loaded = load_server_model(path_);
  Rng crng(7);
  for (int i = 0; i < 100; ++i) {
    const auto c = random_challenge(32, crng);
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_DOUBLE_EQ(loaded.predict_soft(p, c), model_.predict_soft(p, c));
      EXPECT_EQ(loaded.classify(p, c), model_.classify(p, c));
    }
  }
}

TEST_F(ModelStoreTest, RejectsWrongFormat) {
  {
    std::ofstream out(path_);
    out << "just,some,random,csv\n1,2,3,4\n";
  }
  EXPECT_THROW(load_server_model(path_), ParseError);
}

TEST_F(ModelStoreTest, RejectsTruncatedFile) {
  save_server_model(model_, path_);
  // Drop the last PUF row.
  const CsvData data = read_csv(path_);
  {
    CsvWriter out(path_, data.header);
    for (std::size_t r = 0; r + 1 < data.rows.size(); ++r) out.write_row(data.rows[r]);
  }
  EXPECT_THROW(load_server_model(path_), ParseError);
}

TEST_F(ModelStoreTest, RejectsCorruptedNumbers) {
  save_server_model(model_, path_);
  CsvData data = read_csv(path_);
  data.rows[0][1] = "not-a-number";
  {
    CsvWriter out(path_, data.header);
    for (const auto& r : data.rows) out.write_row(r);
  }
  EXPECT_THROW(load_server_model(path_), ParseError);
}

TEST_F(ModelStoreTest, MissingFileThrows) {
  EXPECT_THROW(load_server_model("/nonexistent/nowhere.csv"), ParseError);
}

// Regression (ISSUE 8): the integer header fields (chip id, puf count,
// stages, puf index) were parsed through parse_double, which silently rounds
// ids above 2^53 — two distinct devices could collapse onto one server
// record. Integer fields must round-trip every uint64 exactly.
TEST_F(ModelStoreTest, HugeChipIdRoundTripsExactly) {
  // 2^53 + 1 is the first integer a double cannot represent; max() is the
  // worst case. Both must survive save -> load without collapsing.
  for (const std::size_t id :
       {(std::size_t{1} << 53) + 1, std::numeric_limits<std::size_t>::max()}) {
    std::vector<PufEnrollment> pufs;
    for (std::size_t p = 0; p < model_.puf_count(); ++p) pufs.push_back(model_.puf(p));
    ServerModel renamed(id, std::move(pufs));
    renamed.set_betas(model_.betas());
    save_server_model(renamed, path_);
    EXPECT_EQ(load_server_model(path_).chip_id(), id)
        << "chip id " << id << " was rounded through a double";
  }
}

// Regression (ISSUE 8): parse_double accepted "1e3", "12.0" and negative
// spellings for count-like fields; an exact integer parse must reject them.
TEST_F(ModelStoreTest, RejectsNonIntegerCountFields) {
  for (const char* bad : {"1e1", "3.0", "-3", "+3", " 3", "3 ", "0x3", ""}) {
    save_server_model(model_, path_);
    CsvData data = read_csv(path_);
    data.header[4] = bad;  // puf count
    {
      CsvWriter out(path_, data.header);
      for (const auto& r : data.rows) out.write_row(r);
    }
    EXPECT_THROW(load_server_model(path_), ParseError)
        << "puf count '" << bad << "' accepted";
  }
}

}  // namespace
}  // namespace xpuf::puf
