// Property tests for the deterministic parallel execution layer
// (common/parallel.hpp): the pool must cover every index exactly once,
// propagate exceptions, survive nested use — and above all, every
// stochastic workload built on it must produce BIT-IDENTICAL results for
// 1, 2, and 8 threads, pinned by golden values so the chunk/stream
// convention cannot drift silently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "ml/mlp.hpp"
#include "puf/attack.hpp"
#include "sim/population.hpp"
#include "sim/tester.hpp"

namespace xpuf {
namespace {

// Golden constants recorded from a 1-thread run of reference_scan(); see
// ScanMatchesGoldenValues for what they pin.
constexpr double kGoldenSoft01 = 0.005;  // an unstable cell: 1 flip in 200 trials
constexpr double kGoldenSoft17 = 0.96;
constexpr double kGoldenSoftSum = 549.08499999999992;
constexpr std::size_t kGoldenStableCount = 1058;

/// Runs `f` with the global pool sized to each of 1, 2, and 8 lanes and
/// checks every result equals the 1-lane result. Restores an 8-lane pool.
template <typename F>
void expect_identical_across_thread_counts(const F& f) {
  ThreadPool::set_global_threads(1);
  const auto reference = f();
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_EQ(f(), reference) << "result changed at " << threads << " threads";
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool::set_global_threads(8);
  const std::size_t n = 10'001;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, 7, [&](std::size_t begin, std::size_t end, std::size_t chunk_index) {
    EXPECT_EQ(begin, chunk_index * 7);
    EXPECT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingleItemRanges) {
  std::atomic<int> calls{0};
  parallel_for(0, 16, [&](std::size_t, std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(1, 16, [&](std::size_t begin, std::size_t end, std::size_t chunk_index) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(chunk_index, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool::set_global_threads(8);
  EXPECT_THROW(parallel_for(1'000, 8,
                            [&](std::size_t begin, std::size_t, std::size_t) {
                              if (begin >= 496) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must still be usable after a failed loop.
  std::atomic<std::size_t> sum{0};
  parallel_for(100, 8, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4'950u);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  ThreadPool::set_global_threads(8);
  std::vector<std::atomic<int>> visits(64 * 64);
  parallel_for(64, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      parallel_for(64, 4, [&, i](std::size_t b2, std::size_t e2, std::size_t) {
        for (std::size_t j = b2; j < e2; ++j) visits[i * 64 + j].fetch_add(1);
      });
    }
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelReduce, ChunkOrderedFoldIsThreadCountInvariant) {
  // Summands chosen so floating-point addition order matters: a naive
  // scheduling-order reduction would differ run to run.
  const std::size_t n = 40'000;
  std::vector<double> values(n);
  Rng rng(99);
  for (auto& v : values) v = rng.uniform() * 1e8 - 5e7;
  expect_identical_across_thread_counts([&] {
    return parallel_reduce(
        n, 64, 0.0,
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& acc, double part) { acc += part; });
  });
}

TEST(StreamFamily, ChildStreamsAreIndexPureAndDistinct) {
  Rng a(42);
  Rng b(42);
  const StreamFamily fa(a.fork_base());
  const StreamFamily fb(b.fork_base());
  EXPECT_EQ(fa.stream(17).next_u64(), fb.stream(17).next_u64());
  EXPECT_NE(fa.stream(17).next_u64(), fa.stream(18).next_u64());
  // The parent advanced identically: next draws still agree.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

sim::ChipPopulation test_population(std::size_t n_pufs) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = n_pufs;
  cfg.seed = 2017;
  return sim::ChipPopulation(cfg);
}

/// One full scan_individual with a fixed seed; the binomial trial counters
/// inside make this the stochastic workload of interest.
sim::ChipSoftScan reference_scan(std::uint64_t trials = 200,
                                 std::size_t n_challenges = 300) {
  sim::ChipPopulation pop = test_population(4);
  Rng rng(1234);
  sim::ChipTester tester(sim::Environment::nominal(), trials, rng.fork());
  const auto challenges = tester.random_challenges(pop.chip(0), n_challenges);
  return tester.scan_individual(pop.chip(0), challenges);
}

TEST(ParallelDeterminism, ScanIndividualBitIdenticalAcrossThreadCounts) {
  expect_identical_across_thread_counts([] {
    const sim::ChipSoftScan scan = reference_scan();
    return std::make_pair(scan.soft, scan.stable);
  });
}

TEST(ParallelDeterminism, XorScansBitIdenticalAcrossThreadCounts) {
  expect_identical_across_thread_counts([] {
    sim::ChipPopulation pop = test_population(4);
    Rng rng(77);
    sim::ChipTester tester(sim::Environment::nominal(), 100, rng.fork());
    const auto challenges = tester.random_challenges(pop.chip(0), 250);
    std::vector<double> soft;
    for (const auto& m : tester.scan_xor(pop.chip(0), challenges))
      soft.push_back(m.soft_response());
    const std::vector<bool> bits = tester.sample_xor(pop.chip(0), challenges);
    for (const auto& m : tester.scan_single(pop.chip(0), 1, challenges))
      soft.push_back(m.soft_response());
    return std::make_pair(soft, bits);
  });
}

TEST(ParallelDeterminism, AttackDatasetBitIdenticalAcrossThreadCounts) {
  expect_identical_across_thread_counts([] {
    sim::ChipPopulation pop = test_population(3);
    Rng rng(555);
    puf::AttackDatasetConfig cfg;
    cfg.n_pufs = 3;
    cfg.challenges = 400;
    cfg.trials = 150;
    const puf::AttackDataset data =
        puf::build_stable_attack_dataset(pop.chip(0), cfg, rng);
    return std::make_tuple(data.train.x.raw(), data.train.y.raw(), data.test.x.raw(),
                           data.test.y.raw());
  });
}

TEST(ParallelDeterminism, MlpLossAndGradientBitIdenticalAcrossThreadCounts) {
  // Synthetic batch large enough to span many GEMM row chunks.
  const std::size_t n = 700, d = 33;
  linalg::Matrix x(n, d);
  linalg::Vector y(n);
  Rng rng(31);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(r, c) = rng.normal();
    y[r] = rng.uniform() < 0.5 ? 0.0 : 1.0;
  }
  ml::MlpOptions opt;
  opt.hidden_layers = {20, 12};
  ml::Mlp mlp(d, opt);
  expect_identical_across_thread_counts([&] {
    linalg::Vector grad(mlp.parameter_count());
    const double loss = mlp.loss_and_gradient(x, y, mlp.parameters(), grad);
    return std::make_pair(loss, grad.raw());
  });
}

// Golden values pin the RNG-splitting convention itself: if the chunking,
// StreamFamily keying, or reduction order ever changes, these constants
// (recorded from a 1-thread run) catch it even though the threads-vs-serial
// comparison above would still pass.
TEST(ParallelDeterminism, ScanMatchesGoldenValues) {
  ThreadPool::set_global_threads(8);
  const sim::ChipSoftScan scan = reference_scan();
  ASSERT_EQ(scan.soft.size(), 4u);
  ASSERT_EQ(scan.soft[0].size(), 300u);
  double sum = 0.0;
  std::size_t stable_count = 0;
  for (std::size_t p = 0; p < scan.soft.size(); ++p) {
    sum = std::accumulate(scan.soft[p].begin(), scan.soft[p].end(), sum);
    for (const bool s : scan.stable[p]) stable_count += s ? 1u : 0u;
  }
  EXPECT_DOUBLE_EQ(scan.soft[0][1], kGoldenSoft01);
  EXPECT_DOUBLE_EQ(scan.soft[1][7], kGoldenSoft17);
  EXPECT_DOUBLE_EQ(sum, kGoldenSoftSum);
  EXPECT_EQ(stable_count, kGoldenStableCount);
}

}  // namespace
}  // namespace xpuf
