// Tests for the enrollment pipeline: measurement, regression fit quality,
// threshold derivation, and the ServerModel API.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/math.hpp"
#include "puf/enrollment.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class EnrollmentTest : public ::testing::Test {
 protected:
  EnrollmentTest() : pop_(make_config()), rng_(123) {}

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 4;
    cfg.seed = 2024;
    return cfg;
  }

  ServerModel enroll(std::size_t challenges = 3000, std::uint64_t trials = 5'000) {
    EnrollmentConfig cfg;
    cfg.training_challenges = challenges;
    cfg.trials = trials;
    Enroller enroller(cfg);
    return enroller.enroll(pop_.chip(0), rng_);
  }

  sim::ChipPopulation pop_;
  Rng rng_;
};

TEST_F(EnrollmentTest, ProducesOneModelPerPuf) {
  const ServerModel model = enroll();
  EXPECT_EQ(model.puf_count(), 4u);
  EXPECT_EQ(model.stages(), 32u);
  EXPECT_EQ(model.chip_id(), 0u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(model.puf(p).model.empty());
    EXPECT_GE(model.puf(p).fit_time_ms, 0.0);
  }
}

TEST_F(EnrollmentTest, LearnedWeightsTrackGroundTruthDirection) {
  const ServerModel model = enroll();
  const auto env = sim::Environment::nominal();
  for (std::size_t p = 0; p < 4; ++p) {
    const linalg::Vector w_true =
        pop_.chip(0).device_for_analysis(p).reduced_weights(env);
    const linalg::Vector& w_fit = model.puf(p).model.weights();
    // Exclude the constant entry (it absorbs the 0.5 soft-response center).
    const std::size_t k = w_true.size() - 1;
    const double corr = xpuf::pearson_correlation(
        std::span<const double>(w_true.data(), k),
        std::span<const double>(w_fit.data(), k));
    EXPECT_GT(corr, 0.98) << "PUF " << p;
  }
}

TEST_F(EnrollmentTest, HardPredictionsMatchDeviceSigns) {
  const ServerModel model = enroll();
  const auto env = sim::Environment::nominal();
  Rng crng(9);
  std::size_t hits = 0;
  const std::size_t n = 5'000;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = random_challenge(32, crng);
    const bool truth =
        pop_.chip(0).device_for_analysis(0).delay_difference(c, env) > 0.0;
    if (model.puf(0).model.predict_response(c) == truth) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(n), 0.95);
}

TEST_F(EnrollmentTest, ThresholdsAreOrderedAroundCenter) {
  const ServerModel model = enroll();
  for (std::size_t p = 0; p < 4; ++p) {
    const ThresholdPair& thr = model.puf(p).thresholds;
    EXPECT_LT(thr.thr0, thr.thr1);
    EXPECT_LT(thr.thr0, 0.5);
    EXPECT_GT(thr.thr1, 0.5);
  }
}

TEST_F(EnrollmentTest, PredictedSoftResponsesHaveWideCenteredRange) {
  // Paper Fig 8: model predictions extend beyond [0, 1] but stay centered
  // near 0.5.
  const ServerModel model = enroll();
  Rng crng(10);
  double lo = 1e9, hi = -1e9, sum = 0.0;
  const std::size_t n = 3'000;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = model.predict_soft(0, random_challenge(32, crng));
    lo = std::min(lo, pred);
    hi = std::max(hi, pred);
    sum += pred;
  }
  EXPECT_LT(lo, 0.0);
  EXPECT_GT(hi, 1.0);
  EXPECT_NEAR(sum / static_cast<double>(n), 0.5, 0.1);
}

TEST_F(EnrollmentTest, ClassifyAndAllStableAreConsistent) {
  ServerModel model = enroll();
  model.set_betas(BetaFactors{0.9, 1.1});
  Rng crng(11);
  for (int i = 0; i < 200; ++i) {
    const auto c = random_challenge(32, crng);
    bool expected = true;
    for (std::size_t p = 0; p < 4; ++p)
      if (model.classify(p, c) == StableClass::kUnstable) expected = false;
    EXPECT_EQ(model.all_stable(c), expected);
  }
}

TEST_F(EnrollmentTest, AllStableSubsetWidthIsMonotone) {
  const ServerModel model = enroll();
  Rng crng(12);
  for (int i = 0; i < 300; ++i) {
    const auto c = random_challenge(32, crng);
    // If stable on the first n PUFs, also stable on the first n-1.
    for (std::size_t n = 2; n <= 4; ++n)
      if (model.all_stable(c, n)) { EXPECT_TRUE(model.all_stable(c, n - 1)); }
  }
}

TEST_F(EnrollmentTest, PredictXorMatchesIndividualParity) {
  const ServerModel model = enroll();
  Rng crng(13);
  for (int i = 0; i < 100; ++i) {
    const auto c = random_challenge(32, crng);
    bool parity = false;
    for (std::size_t p = 0; p < 3; ++p)
      parity ^= model.puf(p).model.predict_response(c);
    EXPECT_EQ(model.predict_xor(c, 3), parity);
  }
}

TEST_F(EnrollmentTest, RangeChecksThrow) {
  const ServerModel model = enroll();
  const Challenge c(32, 0);
  EXPECT_THROW(model.puf(4), std::invalid_argument);
  EXPECT_THROW(model.all_stable(c, 0), std::invalid_argument);
  EXPECT_THROW(model.all_stable(c, 5), std::invalid_argument);
  EXPECT_THROW(model.predict_xor(c, 9), std::invalid_argument);
}

TEST_F(EnrollmentTest, EnrollFromScanMatchesDirectEnrollment) {
  EnrollmentConfig cfg;
  cfg.training_challenges = 500;
  cfg.trials = 2'000;
  Enroller enroller(cfg);
  Rng r1(55);
  sim::ChipTester tester(cfg.environment, cfg.trials, r1.fork());
  const auto challenges = tester.random_challenges(pop_.chip(0), 500);
  const auto scan = tester.scan_individual(pop_.chip(0), challenges);
  const ServerModel m = enroller.enroll_from_scan(7, scan);
  EXPECT_EQ(m.chip_id(), 7u);
  EXPECT_EQ(m.puf_count(), 4u);
  // Refitting from the identical scan is deterministic.
  const ServerModel m2 = enroller.enroll_from_scan(7, scan);
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_EQ(m.puf(p).model.weights().raw(), m2.puf(p).model.weights().raw());
}

TEST_F(EnrollmentTest, EnrollmentFailsOnDeployedChip) {
  sim::PopulationConfig cfg = make_config();
  cfg.seed = 31337;
  sim::ChipPopulation pop(cfg);
  pop.chip(0).blow_fuses();
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 10;
  ecfg.trials = 100;
  Enroller enroller(ecfg);
  Rng rng(1);
  EXPECT_THROW(enroller.enroll(pop.chip(0), rng), xpuf::AccessError);
}

TEST_F(EnrollmentTest, MoreTrainingDataImprovesFit) {
  Rng r1(77), r2(77);
  EnrollmentConfig small_cfg;
  small_cfg.training_challenges = 300;
  small_cfg.trials = 2'000;
  EnrollmentConfig big_cfg = small_cfg;
  big_cfg.training_challenges = 5'000;
  const ServerModel small = Enroller(small_cfg).enroll(pop_.chip(0), r1);
  const ServerModel big = Enroller(big_cfg).enroll(pop_.chip(0), r2);

  const auto env = sim::Environment::nominal();
  const linalg::Vector w_true =
      pop_.chip(0).device_for_analysis(0).reduced_weights(env);
  const std::size_t k = w_true.size() - 1;
  auto body_corr = [&](const ServerModel& m) {
    return xpuf::pearson_correlation(
        std::span<const double>(w_true.data(), k),
        std::span<const double>(m.puf(0).model.weights().data(), k));
  };
  EXPECT_GT(body_corr(big), body_corr(small) - 0.005);
  EXPECT_GT(body_corr(big), 0.99);
}

TEST(EnrollmentValidation, EmptyScanRejected) {
  Enroller enroller(EnrollmentConfig{});
  EXPECT_THROW(enroller.enroll_from_scan(0, sim::ChipSoftScan{}), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::puf
