// Tests for the reliability-based CMA-ES attack (Becker, paper ref [9]) and
// for the defense implicit in the reproduced paper's protocol: transcripts
// of 100%-stable CRPs carry no reliability signal.
#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/math.hpp"
#include "puf/attack.hpp"
#include "puf/attack_reliability.hpp"
#include "puf/enrollment.hpp"
#include "puf/selection.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class ReliabilityAttackTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNPufs = 2;

  ReliabilityAttackTest() : pop_(make_config()), rng_(5) {}

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = kNPufs;
    cfg.seed = 404;
    return cfg;
  }

  sim::ChipPopulation pop_;
  Rng rng_;
};

TEST_F(ReliabilityAttackTest, CollectsRequestedObservations) {
  const auto obs = collect_xor_reliability_crps(pop_.chip(0), 50, 200,
                                                sim::Environment::nominal(), rng_);
  ASSERT_EQ(obs.size(), 50u);
  for (const auto& o : obs) {
    EXPECT_EQ(o.challenge.size(), 32u);
    EXPECT_GE(o.soft, 0.0);
    EXPECT_LE(o.soft, 1.0);
    EXPECT_GE(o.reliability(), 0.0);
    EXPECT_LE(o.reliability(), 1.0);
  }
}

TEST_F(ReliabilityAttackTest, ReliabilityDefinition) {
  ReliabilityCrp crp;
  crp.soft = 0.5;
  EXPECT_DOUBLE_EQ(crp.reliability(), 0.0);
  crp.soft = 0.0;
  EXPECT_DOUBLE_EQ(crp.reliability(), 1.0);
  crp.soft = 0.75;
  EXPECT_DOUBLE_EQ(crp.reliability(), 0.5);
}

TEST_F(ReliabilityAttackTest, RecoversBothConstituentsOfTwoXor) {
  const auto obs = collect_xor_reliability_crps(pop_.chip(0), 5'000, 1'000,
                                                sim::Environment::nominal(), rng_);
  AttackDatasetConfig dcfg;
  dcfg.n_pufs = kNPufs;
  dcfg.challenges = 4'000;
  dcfg.trials = 1'000;
  const AttackDataset holdout = build_stable_attack_dataset(pop_.chip(0), dcfg, rng_);

  ReliabilityAttackConfig cfg;
  cfg.n_pufs = kNPufs;
  const ReliabilityAttackResult res = run_reliability_attack(obs, holdout.train, cfg);
  ASSERT_TRUE(res.complete);
  ASSERT_EQ(res.recovered.size(), kNPufs);

  // Each recovered vector matches exactly one ground-truth constituent
  // (up to sign), and each constituent is matched by someone.
  const auto env = sim::Environment::nominal();
  std::vector<bool> matched(kNPufs, false);
  for (const auto& w : res.recovered) {
    for (std::size_t p = 0; p < kNPufs; ++p) {
      const linalg::Vector wt = pop_.chip(0).device_for_analysis(p).reduced_weights(env);
      const double c = std::fabs(pearson_correlation(
          std::span<const double>(w.data(), wt.size()),
          std::span<const double>(wt.data(), wt.size())));
      if (c > 0.95) matched[p] = true;
    }
  }
  for (std::size_t p = 0; p < kNPufs; ++p) EXPECT_TRUE(matched[p]) << "constituent " << p;

  // The calibrated model predicts the XOR with high accuracy.
  EXPECT_GT(reliability_attack_accuracy(res, holdout.test), 0.95);
}

TEST_F(ReliabilityAttackTest, StableOnlyTranscriptsDefeatTheAttack) {
  // The reproduced paper's protocol only ever exchanges CRPs predicted
  // 100% stable — their reliability is identically 1, so the attack's
  // objective has no signal. Build such a transcript and verify the attack
  // comes up empty (or at best recovers nothing usable).
  EnrollmentConfig ecfg;
  ecfg.training_challenges = 2'000;
  ecfg.trials = 2'000;
  ServerModel model = Enroller(ecfg).enroll(pop_.chip(0), rng_);
  model.set_betas(BetaFactors{0.8, 1.2});
  ModelBasedSelector selector(model, kNPufs);
  const SelectionResult sel = selector.select(3'000, rng_);

  std::vector<ReliabilityCrp> stable_obs;
  for (const auto& c : sel.challenges) {
    ReliabilityCrp crp;
    crp.challenge = c;
    crp.soft = pop_.chip(0)
                   .measure_xor_soft_response(c, sim::Environment::nominal(), 1'000, rng_)
                   .soft_response();
    stable_obs.push_back(std::move(crp));
  }
  // Sanity: the transcript really is reliability-flat.
  double mean_rel = 0.0;
  for (const auto& o : stable_obs) mean_rel += o.reliability();
  mean_rel /= static_cast<double>(stable_obs.size());
  EXPECT_GT(mean_rel, 0.999);

  AttackDatasetConfig dcfg;
  dcfg.n_pufs = kNPufs;
  dcfg.challenges = 2'000;
  dcfg.trials = 1'000;
  const AttackDataset holdout = build_stable_attack_dataset(pop_.chip(0), dcfg, rng_);

  ReliabilityAttackConfig cfg;
  cfg.n_pufs = kNPufs;
  cfg.max_restarts = 4;  // keep the failing search bounded
  const ReliabilityAttackResult res =
      run_reliability_attack(stable_obs, holdout.train, cfg);
  // No reliability gradient -> no constituents pass the fitness floor, or
  // whatever passes predicts at chance.
  if (res.recovered.empty()) {
    SUCCEED();
  } else {
    EXPECT_LT(reliability_attack_accuracy(res, holdout.test), 0.75);
  }
}

TEST_F(ReliabilityAttackTest, ValidatesInput) {
  ReliabilityAttackConfig cfg;
  EXPECT_THROW(run_reliability_attack({}, ml::Dataset{}, cfg), std::invalid_argument);
  ReliabilityAttackResult empty;
  EXPECT_THROW(empty.predict(Challenge(32, 0)), std::invalid_argument);
  EXPECT_THROW(reliability_attack_accuracy(empty, ml::Dataset{}), std::invalid_argument);
}

TEST_F(ReliabilityAttackTest, EmptyResultScoresAtChance) {
  ReliabilityAttackResult empty;
  ml::Dataset labeled;
  labeled.x = linalg::Matrix(2, 33, 1.0);
  labeled.y = linalg::Vector(2);
  EXPECT_DOUBLE_EQ(reliability_attack_accuracy(empty, labeled), 0.5);
}

}  // namespace
}  // namespace xpuf::puf
