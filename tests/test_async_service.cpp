// Tests for the async socket subsystem (net/async/): syscall wrappers over a
// socketpair, deterministic timer-wheel/event-loop timing under ManualClock,
// SocketTransport framing, typed accept-overflow backpressure, and the
// headline reconciliation contract — the event-loop engine's per-device
// ledgers and outcome fingerprint must match the lockstep oracle bit-for-bit
// on the same seed and workload.
//
// The retransmit/TTL tests drive the REAL deadline arithmetic under an
// injectable ManualClock, so the exponential backoff and session-TTL expiry
// are pinned at exact ticks instead of relying on the lockstep engine's
// round-counting coincidences (one lockstep round == one full RTT; a clock
// tick is not).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "net/async/acceptor.hpp"
#include "net/async/clock.hpp"
#include "net/async/event_loop.hpp"
#include "net/async/service_engine.hpp"
#include "net/async/socket_transport.hpp"
#include "net/async/syscall.hpp"
#include "net/async/timer_wheel.hpp"
#include "net/server_session.hpp"
#include "net/service.hpp"
#include "net/session.hpp"
#include "puf/enrollment.hpp"
#include "sim/population.hpp"

namespace xpuf::net::async {
namespace {

struct Fleet {
  sim::ChipPopulation pop;
  std::vector<puf::ServerModel> models;
};

Fleet make_fleet(std::size_t devices) {
  sim::PopulationConfig cfg;
  cfg.n_chips = devices;
  cfg.n_pufs_per_chip = 2;
  cfg.seed = 5150;
  Fleet fleet{sim::ChipPopulation(cfg), {}};
  puf::EnrollmentConfig ecfg;
  ecfg.training_challenges = 600;
  ecfg.trials = 800;
  const puf::Enroller enroller(ecfg);
  Rng rng(808);
  for (std::size_t i = 0; i < devices; ++i) {
    puf::ServerModel m = enroller.enroll(fleet.pop.chip(i), rng);
    m.set_betas(puf::BetaFactors{0.85, 1.15});
    fleet.models.push_back(std::move(m));
  }
  return fleet;
}

// --------------------------------------------------------------------------
// Syscall wrappers

TEST(Syscall, SocketpairRoundTripAndEof) {
  Fd a, b;
  ASSERT_TRUE(sys_socketpair(a, b));
  const std::uint8_t out[] = {1, 2, 3, 4, 5};
  const IoResult put = sys_write(a, out, sizeof out);
  ASSERT_EQ(put.status, IoStatus::kOk);
  ASSERT_EQ(put.bytes, sizeof out);

  std::uint8_t in[16] = {};
  const IoResult got = sys_read(b, in, sizeof in);
  ASSERT_EQ(got.status, IoStatus::kOk);
  ASSERT_EQ(got.bytes, sizeof out);
  EXPECT_EQ(std::vector<std::uint8_t>(in, in + got.bytes),
            std::vector<std::uint8_t>(out, out + sizeof out));

  // Empty pipe reads would-block (nonblocking contract), EOF after close.
  EXPECT_EQ(sys_read(b, in, sizeof in).status, IoStatus::kWouldBlock);
  a = Fd();
  EXPECT_EQ(sys_read(b, in, sizeof in).status, IoStatus::kEof);
}

TEST(Syscall, EphemeralListenerAcceptsALocalhostConnect) {
  std::uint16_t port = 0;
  Fd listener = sys_listen_tcp_localhost(port, 8);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(port, 0) << "port 0 must be rewritten to the ephemeral port";

  auto [client, status] = sys_connect_tcp_localhost(port);
  ASSERT_TRUE(client.valid());
  ASSERT_NE(status, IoStatus::kError);

  AcceptResult accepted;
  for (int spin = 0; spin < 1000 && accepted.status != IoStatus::kOk; ++spin)
    accepted = sys_accept(listener);
  ASSERT_EQ(accepted.status, IoStatus::kOk);
  EXPECT_TRUE(accepted.fd.valid());
  EXPECT_EQ(sys_socket_error(client), 0);
}

// --------------------------------------------------------------------------
// Timer wheel

TEST(TimerWheel, FiresInDeadlineOrderAndNeverEarly) {
  TimerWheel wheel(16);
  wheel.arm(30, 3);
  wheel.arm(10, 1);
  wheel.arm(20, 2);
  EXPECT_TRUE(wheel.collect_due(9).empty());
  auto due = wheel.collect_due(20);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].key, 1u);
  EXPECT_EQ(due[1].key, 2u);
  due = wheel.collect_due(1000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].key, 3u);
  EXPECT_FALSE(wheel.armed());
}

TEST(TimerWheel, PastDueArmFiresOnTheNextCollect) {
  TimerWheel wheel(8);
  ASSERT_TRUE(wheel.collect_due(100).empty());
  wheel.arm(50, 7);  // already in the past relative to the last collect
  const auto due = wheel.collect_due(100);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].key, 7u);
}

TEST(TimerWheel, LongJumpsAcrossManyRotationsCollectEverything) {
  TimerWheel wheel(8);
  for (std::uint64_t k = 0; k < 40; ++k) wheel.arm(k * 13 + 1, k);
  const auto due = wheel.collect_due(10'000);
  ASSERT_EQ(due.size(), 40u);
  for (std::size_t i = 1; i < due.size(); ++i)
    EXPECT_LE(due[i - 1].deadline, due[i].deadline);
}

// --------------------------------------------------------------------------
// Event loop under ManualClock

struct RecordingHandler final : EventHandler {
  void on_ready(bool readable, bool writable, bool hangup) override {
    ++events;
    was_readable = was_readable || readable;
    was_writable = was_writable || writable;
    saw_hangup = saw_hangup || hangup;
  }
  int events = 0;
  bool was_readable = false;
  bool was_writable = false;
  bool saw_hangup = false;
};

TEST(EventLoop, DispatchesReadinessAndTimersDeterministically) {
  ManualClock clock;
  EventLoop loop(clock, 16);
  ASSERT_TRUE(loop.valid());

  Fd a, b;
  ASSERT_TRUE(sys_socketpair(a, b));
  RecordingHandler handler;
  ASSERT_TRUE(loop.add(b.get(), &handler));

  const std::uint8_t byte = 0x5a;
  ASSERT_EQ(sys_write(a, &byte, 1).status, IoStatus::kOk);
  ASSERT_GT(loop.poll(0), 0);
  EXPECT_TRUE(handler.was_readable);

  std::vector<std::uint64_t> fired;
  loop.set_timer_handler([&](std::uint64_t key, std::uint64_t) {
    fired.push_back(key);
  });
  loop.arm_timer(5, 42);
  loop.arm_timer(9, 43);
  loop.poll(0);
  EXPECT_TRUE(fired.empty()) << "timers must not fire before their tick";
  clock.advance(5);
  loop.poll(0);
  ASSERT_EQ(fired, (std::vector<std::uint64_t>{42}));
  clock.advance(4);
  loop.poll(0);
  ASSERT_EQ(fired, (std::vector<std::uint64_t>{42, 43}));
  loop.remove(b.get());
}

// --------------------------------------------------------------------------
// SocketTransport

TEST(SocketTransport, FramesSurviveTheSocketAndIdleTracksBothSides) {
  Fd a, b;
  ASSERT_TRUE(sys_socketpair(a, b));
  SocketTransport tx(std::move(a));
  SocketTransport rx(std::move(b));

  Frame frame;
  frame.header.type = FrameType::kAuthBegin;
  frame.header.device_id = 77;
  frame.header.session_id = 1;
  ChannelStats tx_stats, rx_stats;
  send_frame(tx, frame, tx_stats);
  EXPECT_EQ(tx_stats.sent, 1u);

  ASSERT_EQ(rx.pump_reads(), PumpStatus::kOk);
  const auto got = recv_frame(rx, rx_stats);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.device_id, 77u);
  EXPECT_EQ(rx_stats.delivered, 1u);
  EXPECT_EQ(rx_stats.corrupt, 0u);
  EXPECT_TRUE(tx.idle());
  EXPECT_TRUE(rx.idle());
  EXPECT_FALSE(tx.failed());
}

TEST(SocketTransport, WriteBufferOverflowIsTypedNeverSilent) {
  MetricsRegistry::global().reset();
  Fd a, b;
  ASSERT_TRUE(sys_socketpair(a, b));
  // A tiny cap plus a peer that never reads: the transport must mark itself
  // failed and count the overflow ("net.async.write_overflow"), not grow or
  // drop silently.
  SocketTransport tx(std::move(a), /*max_write_buffer=*/1024);
  Frame frame;
  frame.header.type = FrameType::kChallengeBatch;
  frame.header.device_id = 1;
  frame.payload.assign(600, 0xab);
  ChannelStats stats;
  for (int i = 0; i < 512 && !tx.failed(); ++i) send_frame(tx, frame, stats);
  EXPECT_TRUE(tx.failed());
  EXPECT_GE(MetricsRegistry::global().snapshot().counters.at(
                "net.async.write_overflow"),
            1u);
}

// --------------------------------------------------------------------------
// Deterministic retransmit backoff under an explicit tick clock (the audit
// of ClientPolicy's clock-domain contract: deadlines double per retry and
// the budget exhausts at an exactly computable tick).

TEST(DeviceClientTiming, BackoffDoublesAtExactTicksAndExhaustsToFailed) {
  sim::PopulationConfig pcfg;
  pcfg.n_chips = 1;
  pcfg.n_pufs_per_chip = 2;
  pcfg.seed = 99;
  sim::ChipPopulation pop(pcfg);

  Fd a, b;
  ASSERT_TRUE(sys_socketpair(a, b));
  SocketTransport transport(std::move(a));  // server end (b) stays silent

  ClientPolicy policy;
  policy.timeout_rounds = 16;  // ticks, in the event-loop domain
  policy.max_retries = 2;
  DeviceClient client(pop.chip(0), sim::Environment::nominal(), Rng(4242),
                      transport, transport, /*auth_sessions=*/1, policy,
                      /*enroll_first=*/false, /*revoke_at_end=*/false);

  client.step(0);  // opens the session, arms the first deadline
  EXPECT_EQ(client.deadline_round(), 16u);
  client.step(15);  // one tick early: nothing may fire
  EXPECT_EQ(client.deadline_round(), 16u);
  EXPECT_EQ(client.records().size(), 0u);

  client.step(16);  // first retransmit; window doubles to 32
  EXPECT_EQ(client.deadline_round(), 48u);
  client.step(48);  // second retransmit; window doubles to 64
  EXPECT_EQ(client.deadline_round(), 112u);
  client.step(112);  // budget exhausted -> kFailed at exactly this tick
  ASSERT_TRUE(client.finished());
  ASSERT_EQ(client.records().size(), 1u);
  EXPECT_EQ(client.records()[0].terminal, SessionPhase::kFailed);
  EXPECT_EQ(client.records()[0].retries, 2u);
}

TEST(ServerSessionTiming, TtlExpiresAtExactlyOpenPlusTtlTicks) {
  Fleet fleet = make_fleet(1);
  const auto device_id = static_cast<std::uint64_t>(fleet.pop.chip(0).id());
  puf::DatabaseConfig dcfg;
  dcfg.n_pufs = 2;
  dcfg.policy.challenge_count = 8;
  puf::ServerDatabase db(dcfg);
  std::map<std::uint64_t, puf::ServerModel> provisioned;
  db.register_device(fleet.models[0]);
  const StreamFamily family(Rng(31337).fork_base());
  ServerPolicy policy;
  policy.session_ttl = 50;

  ServerSessionHandler handler(device_id, db, provisioned, family, policy);
  struct NullSink final : ReplySink {
    void send(FrameType, std::uint32_t, std::vector<std::uint8_t>) override {
      ++replies;
    }
    int replies = 0;
  } sink;

  Frame begin;
  begin.header.type = FrameType::kAuthBegin;
  begin.header.device_id = 11;
  begin.header.session_id = 1;
  handler.handle(begin, /*now=*/123, sink);
  ASSERT_EQ(handler.session().state, ServerSession::State::kChallengeSent);
  ASSERT_TRUE(handler.ttl_deadline().has_value());
  EXPECT_EQ(*handler.ttl_deadline(), 173u);

  EXPECT_FALSE(handler.expire_if_due(172)) << "one tick early must not expire";
  EXPECT_TRUE(handler.expire_if_due(173)) << "expiry lands exactly at open+ttl";
  EXPECT_EQ(handler.session().state, ServerSession::State::kNone);
  EXPECT_EQ(handler.ledger().sessions_expired, 1u);
}

// --------------------------------------------------------------------------
// Acceptor backpressure

TEST(Acceptor, OverflowSendsATypedBusyNackThenCloses) {
  MetricsRegistry::global().reset();
  std::uint16_t port = 0;
  Fd listener = sys_listen_tcp_localhost(port, 8);
  ASSERT_TRUE(listener.valid());
  Acceptor acceptor(std::move(listener), /*busy_retry_ticks=*/3);

  auto [client, status] = sys_connect_tcp_localhost(port);
  ASSERT_TRUE(client.valid());
  ASSERT_NE(status, IoStatus::kError);

  // Refuse everything: the engine-at-capacity path.
  std::size_t admitted = 0;
  for (int spin = 0; spin < 1000 && acceptor.overflowed() == 0; ++spin)
    admitted += acceptor.drain([](Fd&) { return false; });
  EXPECT_EQ(admitted, 0u);
  ASSERT_EQ(acceptor.overflowed(), 1u);
  ASSERT_EQ(acceptor.accepted(), 1u);

  // The refused client receives a parseable busy NACK — typed backpressure,
  // not a silent close (counters: "net.async.accept_overflow",
  // "net.async.connections_accepted").
  SocketTransport view(std::move(client));
  PumpStatus pump = PumpStatus::kOk;
  std::optional<std::vector<std::uint8_t>> blob;
  for (int spin = 0; spin < 2000 && !blob; ++spin) {
    pump = view.pump_reads();
    blob = view.receive();
    if (pump == PumpStatus::kPeerClosed && !blob) break;
  }
  ASSERT_TRUE(blob.has_value()) << "refusal must carry a NACK before close";
  const Frame nack_frame = decode_frame_or_throw(*blob);
  ASSERT_EQ(nack_frame.header.type, FrameType::kNack);
  NackPayload nack;
  ASSERT_EQ(decode_nack(nack_frame.payload, nack), DecodeStatus::kOk);
  EXPECT_EQ(nack.reason, NackReason::kBusy);
  EXPECT_EQ(nack.retry_after_rounds, 3u);
  const auto counters = MetricsRegistry::global().snapshot().counters;
  EXPECT_EQ(counters.at("net.async.accept_overflow"), 1u);
  EXPECT_EQ(counters.at("net.async.connections_accepted"), 1u);
}

// --------------------------------------------------------------------------
// Engine-vs-oracle reconciliation

constexpr std::uint64_t kSeed = 90210;

ServiceReport run_oracle(Fleet& fleet, std::uint32_t auth_sessions) {
  ServiceConfig config;
  config.seed = kSeed;
  config.database.n_pufs = 2;
  config.database.policy.challenge_count = 8;
  ServiceEngine engine(config);
  for (std::size_t i = 0; i < fleet.pop.size(); ++i)
    engine.provision(fleet.pop.chip(i), fleet.models[i],
                     sim::Environment::nominal(), auth_sessions,
                     /*enroll_first=*/true, /*revoke_at_end=*/i % 2 == 1);
  return engine.run();
}

TEST(AsyncServiceEngine, OutcomesReconcileExactlyWithTheLockstepOracle) {
  Fleet fleet = make_fleet(4);
  const ServiceReport oracle = run_oracle(fleet, 2);
  ASSERT_TRUE(oracle.reconciled());

  AsyncServiceConfig config;
  config.seed = kSeed;
  config.database.n_pufs = 2;
  config.database.policy.challenge_count = 8;
  AsyncServiceEngine engine(config);
  for (std::size_t i = 0; i < fleet.pop.size(); ++i)
    engine.provision(fleet.pop.chip(i), fleet.models[i],
                     sim::Environment::nominal(), 2,
                     /*enroll_first=*/true, /*revoke_at_end=*/i % 2 == 1);
  const AsyncServiceReport report = engine.run();
  for (const auto& violation : report.violations) ADD_FAILURE() << violation;
  EXPECT_TRUE(report.all_finished);
  EXPECT_EQ(report.devices, 4u);

  // The headline contract: same seed + workload => identical outcome digests
  // and identical per-device ledgers, field by field (retries excluded — they
  // are transport-variant by design).
  EXPECT_EQ(report.outcome_fingerprint, oracle.outcome_fingerprint);
  EXPECT_EQ(report.sessions_total, oracle.sessions_total);
  EXPECT_EQ(report.approved, oracle.approved);
  EXPECT_EQ(report.denied, oracle.denied);
  EXPECT_EQ(report.rejected, oracle.rejected);
  EXPECT_EQ(report.failed, oracle.failed);
  EXPECT_EQ(report.enroll_activated, oracle.enroll_activated);
  EXPECT_EQ(report.revocations, oracle.revocations);
  EXPECT_EQ(report.bytes_read, report.bytes_written)
      << "loopback byte conservation must hold at quiescence";
  EXPECT_GT(report.connections_accepted, 0u);
}

TEST(AsyncServiceEngine, OverloadProducesBusyNacksNeverSilentDrops) {
  Fleet fleet = make_fleet(4);
  AsyncServiceConfig config;
  config.seed = kSeed;
  config.database.n_pufs = 2;
  config.database.policy.challenge_count = 8;
  // Starve the server: a one-slot request queue and a one-frame serve budget
  // force queue overflows, which must surface as retryable busy NACKs that
  // clients absorb within their (raised) retry budget.
  config.request_queue_cap = 1;
  config.serve_budget_per_poll = 1;
  config.client_max_retries = 40;
  AsyncServiceEngine engine(config);
  for (std::size_t i = 0; i < fleet.pop.size(); ++i)
    engine.provision(fleet.pop.chip(i), fleet.models[i],
                     sim::Environment::nominal(), 2,
                     /*enroll_first=*/true, /*revoke_at_end=*/false);
  const AsyncServiceReport report = engine.run();
  for (const auto& violation : report.violations) ADD_FAILURE() << violation;
  EXPECT_TRUE(report.all_finished);
  EXPECT_EQ(report.failed, 0u)
      << "backpressure must degrade to retries, not to failed sessions";
  EXPECT_EQ(report.approved, report.sessions_total);
  // Every overflow is accounted as a busy NACK ("net.async.request_overflow",
  // "net.async.connections_closed", "net.async.timers_fired" all feed the
  // drift audit in the socket bench).
  EXPECT_GT(report.request_overflow, 0u);
  EXPECT_GE(report.busy_nacks,
            report.request_overflow + report.accept_overflow)
      << "every queue overflow must be accounted as a busy NACK";
}

TEST(AsyncServiceEngine, ConfigPreconditionsAreEnforced) {
  AsyncServiceConfig config;
  config.shards = 0;
  EXPECT_THROW(AsyncServiceEngine{config}, std::invalid_argument);
  config = AsyncServiceConfig{};
  config.request_queue_cap = 0;
  EXPECT_THROW(AsyncServiceEngine{config}, std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::net::async
