// Tests for the lockdown CRP-budget gate extension.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "puf/extensions/lockdown.hpp"

namespace xpuf::puf {
namespace {

TEST(Lockdown, BudgetIsEnforcedPerDevice) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 100});
  EXPECT_TRUE(gate.authorize(1, 60));
  EXPECT_EQ(gate.issued(1), 60u);
  EXPECT_EQ(gate.remaining(1), 40u);
  EXPECT_TRUE(gate.authorize(1, 40));
  EXPECT_EQ(gate.remaining(1), 0u);
  EXPECT_FALSE(gate.authorize(1, 1));
  // Another device has its own budget.
  EXPECT_TRUE(gate.authorize(2, 100));
}

TEST(Lockdown, DeniedRequestDoesNotDebit) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 10});
  EXPECT_FALSE(gate.authorize(7, 11));
  EXPECT_EQ(gate.issued(7), 0u);
  EXPECT_TRUE(gate.authorize(7, 10));
}

TEST(Lockdown, OverflowingRequestAtBoundaryIsDenied) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 10});
  EXPECT_TRUE(gate.authorize(3, 9));
  EXPECT_FALSE(gate.authorize(3, 2));
  EXPECT_TRUE(gate.authorize(3, 1));
}

// Regression (ISSUE 8): authorize() computed `used + count > budget`, so a
// request sized to wrap uint64 (count close to 2^64) overflowed the sum to a
// tiny value and bypassed the lifetime budget entirely — the exact
// chosen-challenge harvest the gate exists to stop.
TEST(Lockdown, HugeRequestCannotWrapPastTheBudget) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 100});
  EXPECT_TRUE(gate.authorize(5, 60));
  // used=60: `60 + (2^64 - 1)` wraps to 59 <= 100 under the old arithmetic.
  EXPECT_FALSE(gate.authorize(5, std::numeric_limits<std::uint64_t>::max()));
  EXPECT_FALSE(gate.authorize(5, std::numeric_limits<std::uint64_t>::max() - 59));
  EXPECT_EQ(gate.issued(5), 60u) << "a denied wrap attempt must not debit";
  // The boundary itself still works.
  EXPECT_TRUE(gate.authorize(5, 40));
  EXPECT_EQ(gate.remaining(5), 0u);
  EXPECT_FALSE(gate.authorize(5, 1));
}

// The wrap guard must also hold at the extreme budget (used == budget == max).
TEST(Lockdown, MaxBudgetBoundaryIsExact) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = kMax});
  EXPECT_TRUE(gate.authorize(9, kMax));
  EXPECT_EQ(gate.remaining(9), 0u);
  EXPECT_FALSE(gate.authorize(9, 1));
}

TEST(Lockdown, ZeroCountIsRejected) {
  LockdownGate gate(LockdownPolicy{});
  EXPECT_THROW(gate.authorize(1, 0), std::invalid_argument);
}

TEST(Lockdown, UnknownDeviceHasFullBudget) {
  const LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 42});
  EXPECT_EQ(gate.remaining(999), 42u);
  EXPECT_EQ(gate.issued(999), 0u);
}

TEST(Lockdown, DefaultBudgetSitsBelowAttackKnee) {
  // The paper's Fig 4 shows ~100k CRPs breaking n < 10; the default budget
  // must be well below that.
  const LockdownPolicy policy;
  EXPECT_LT(policy.lifetime_crp_budget, 100'000u);
}

}  // namespace
}  // namespace xpuf::puf
