// Tests for the lockdown CRP-budget gate extension.
#include <gtest/gtest.h>

#include "puf/extensions/lockdown.hpp"

namespace xpuf::puf {
namespace {

TEST(Lockdown, BudgetIsEnforcedPerDevice) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 100});
  EXPECT_TRUE(gate.authorize(1, 60));
  EXPECT_EQ(gate.issued(1), 60u);
  EXPECT_EQ(gate.remaining(1), 40u);
  EXPECT_TRUE(gate.authorize(1, 40));
  EXPECT_EQ(gate.remaining(1), 0u);
  EXPECT_FALSE(gate.authorize(1, 1));
  // Another device has its own budget.
  EXPECT_TRUE(gate.authorize(2, 100));
}

TEST(Lockdown, DeniedRequestDoesNotDebit) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 10});
  EXPECT_FALSE(gate.authorize(7, 11));
  EXPECT_EQ(gate.issued(7), 0u);
  EXPECT_TRUE(gate.authorize(7, 10));
}

TEST(Lockdown, OverflowingRequestAtBoundaryIsDenied) {
  LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 10});
  EXPECT_TRUE(gate.authorize(3, 9));
  EXPECT_FALSE(gate.authorize(3, 2));
  EXPECT_TRUE(gate.authorize(3, 1));
}

TEST(Lockdown, ZeroCountIsRejected) {
  LockdownGate gate(LockdownPolicy{});
  EXPECT_THROW(gate.authorize(1, 0), std::invalid_argument);
}

TEST(Lockdown, UnknownDeviceHasFullBudget) {
  const LockdownGate gate(LockdownPolicy{.lifetime_crp_budget = 42});
  EXPECT_EQ(gate.remaining(999), 42u);
  EXPECT_EQ(gate.issued(999), 0u);
}

TEST(Lockdown, DefaultBudgetSitsBelowAttackKnee) {
  // The paper's Fig 4 shows ~100k CRPs breaking n < 10; the default budget
  // must be well below that.
  const LockdownPolicy policy;
  EXPECT_LT(policy.lifetime_crp_budget, 100'000u);
}

}  // namespace
}  // namespace xpuf::puf
