// Tests for the multi-layer perceptron: architecture bookkeeping, analytic
// gradients against finite differences, and learning of non-linear targets.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"

namespace xpuf::ml {
namespace {

Dataset xor_problem() {
  // The 2-bit XOR truth table, replicated for stable full-batch training.
  Dataset data;
  data.x = linalg::Matrix(40, 2);
  data.y = linalg::Vector(40);
  const double xs[4][2] = {{-1, -1}, {-1, 1}, {1, -1}, {1, 1}};
  const double ys[4] = {0, 1, 1, 0};
  for (std::size_t r = 0; r < 40; ++r) {
    data.x(r, 0) = xs[r % 4][0];
    data.x(r, 1) = xs[r % 4][1];
    data.y[r] = ys[r % 4];
  }
  return data;
}

TEST(Mlp, ParameterCountMatchesTopology) {
  MlpOptions opts;
  opts.hidden_layers = {35, 25, 25};
  const Mlp mlp(33, opts);
  // 33*35+35 + 35*25+25 + 25*25+25 + 25*1+1 = 2941.
  EXPECT_EQ(mlp.parameter_count(),
            33u * 35 + 35 + 35u * 25 + 25 + 25u * 25 + 25 + 25u + 1);
  EXPECT_EQ(mlp.n_inputs(), 33u);
  ASSERT_EQ(mlp.layer_sizes().size(), 5u);
  EXPECT_EQ(mlp.layer_sizes().back(), 1u);
}

TEST(Mlp, RejectsDegenerateTopology) {
  EXPECT_THROW(Mlp(0), std::invalid_argument);
  MlpOptions opts;
  opts.hidden_layers = {4, 0};
  EXPECT_THROW(Mlp(3, opts), std::invalid_argument);
}

TEST(Mlp, InitializationIsSeededAndBounded) {
  MlpOptions a;
  a.seed = 11;
  MlpOptions b;
  b.seed = 11;
  const Mlp m1(4, a), m2(4, b);
  EXPECT_EQ(m1.parameters().raw(), m2.parameters().raw());
  MlpOptions c;
  c.seed = 12;
  const Mlp m3(4, c);
  EXPECT_NE(m1.parameters().raw(), m3.parameters().raw());
}

TEST(Mlp, SetParametersValidatesSize) {
  Mlp mlp(3);
  EXPECT_THROW(mlp.set_parameters(linalg::Vector(5)), std::invalid_argument);
  linalg::Vector p(mlp.parameter_count(), 0.01);
  mlp.set_parameters(p);
  EXPECT_EQ(mlp.parameters().raw(), p.raw());
}

class MlpGradientSweep : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpGradientSweep, AnalyticGradientMatchesFiniteDifferences) {
  Rng rng(1);
  MlpOptions opts;
  opts.hidden_layers = {5, 4};
  opts.activation = GetParam();
  opts.l2 = 1e-3;
  opts.seed = 3;
  Mlp mlp(3, opts);

  linalg::Matrix x(7, 3);
  linalg::Vector y(7);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.normal();
    y[r] = rng.bernoulli() ? 1.0 : 0.0;
  }

  const linalg::Vector p = mlp.parameters();
  linalg::Vector grad(p.size());
  mlp.loss_and_gradient(x, y, p, grad);

  linalg::Vector dummy(p.size());
  const double h = 1e-6;
  // ReLU is non-differentiable at 0; a perturbation that crosses a kink
  // makes the central difference meaningless, so tolerate a few outliers
  // for ReLU while requiring near-exact agreement for smooth activations.
  const bool smooth = GetParam() != Activation::kRelu;
  std::size_t checked = 0, mismatched = 0;
  // Spot-check a spread of parameter indices (full sweep is O(P^2)).
  for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(1, p.size() / 23)) {
    linalg::Vector pp = p, pm = p;
    pp[i] += h;
    pm[i] -= h;
    const double fp = mlp.loss_and_gradient(x, y, pp, dummy);
    const double fm = mlp.loss_and_gradient(x, y, pm, dummy);
    const double fd = (fp - fm) / (2.0 * h);
    ++checked;
    if (smooth) {
      EXPECT_NEAR(grad[i], fd, 1e-4 * std::max(1.0, std::fabs(fd))) << "param " << i;
    } else if (std::fabs(grad[i] - fd) > 1e-3 * std::max(1.0, std::fabs(fd))) {
      ++mismatched;
    }
  }
  if (!smooth) { EXPECT_LE(mismatched, checked / 8) << "too many ReLU kink crossings"; }
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpGradientSweep,
                         ::testing::Values(Activation::kTanh, Activation::kRelu,
                                           Activation::kSigmoid));

TEST(Mlp, LearnsXorWithLbfgs) {
  MlpOptions opts;
  opts.hidden_layers = {8};
  opts.activation = Activation::kTanh;
  opts.l2 = 0.0;
  opts.seed = 5;
  Mlp mlp(2, opts);
  const Dataset data = xor_problem();
  LbfgsOptions lopts;
  lopts.max_iterations = 300;
  mlp.fit(data, lopts);
  const linalg::Vector pred = mlp.predict(data.x);
  EXPECT_DOUBLE_EQ(accuracy(pred.span(), data.y.span()), 1.0);
}

TEST(Mlp, LearnsXorWithAdam) {
  MlpOptions opts;
  opts.hidden_layers = {8};
  opts.activation = Activation::kTanh;
  opts.seed = 6;
  Mlp mlp(2, opts);
  const Dataset data = xor_problem();
  MlpAdamOptions aopts;
  aopts.epochs = 400;
  aopts.batch_size = 8;
  aopts.adam.learning_rate = 0.02;
  Rng rng(7);
  const double final_loss = mlp.fit_adam(data, aopts, rng);
  EXPECT_LT(final_loss, 0.1);
  const linalg::Vector pred = mlp.predict(data.x);
  EXPECT_GE(accuracy(pred.span(), data.y.span()), 0.99);
}

TEST(Mlp, PredictProbabilityIsConsistentBetweenSingleAndBatch) {
  Rng rng(8);
  Mlp mlp(4);
  linalg::Matrix x(6, 4);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.normal();
  const linalg::Vector batch = mlp.predict_probability(x);
  for (std::size_t r = 0; r < 6; ++r) {
    const std::vector<double> row{x(r, 0), x(r, 1), x(r, 2), x(r, 3)};
    EXPECT_NEAR(mlp.predict_probability(row), batch[r], 1e-12);
  }
}

TEST(Mlp, ProbabilitiesAreInUnitInterval) {
  Rng rng(9);
  Mlp mlp(3);
  linalg::Matrix x(50, 3);
  for (std::size_t r = 0; r < 50; ++r)
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.normal(0.0, 10.0);
  for (double p : mlp.predict_probability(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Mlp, L2PenaltyIncreasesLossForNonzeroWeights) {
  linalg::Matrix x(2, 2, 0.5);
  linalg::Vector y{0.0, 1.0};
  MlpOptions no_reg;
  no_reg.hidden_layers = {3};
  no_reg.l2 = 0.0;
  no_reg.seed = 10;
  MlpOptions reg = no_reg;
  reg.l2 = 1.0;
  Mlp m1(2, no_reg), m2(2, reg);
  m2.set_parameters(m1.parameters());  // identical weights
  linalg::Vector g1(m1.parameter_count()), g2(m2.parameter_count());
  const double l1 = m1.loss_and_gradient(x, y, m1.parameters(), g1);
  const double l2v = m2.loss_and_gradient(x, y, m2.parameters(), g2);
  EXPECT_GT(l2v, l1);
}

TEST(Mlp, FitValidatesInput) {
  Mlp mlp(2);
  EXPECT_THROW(mlp.fit(Dataset{}), std::invalid_argument);
  Dataset bad;
  bad.x = linalg::Matrix(2, 3);
  bad.y = linalg::Vector(2);
  EXPECT_THROW(mlp.fit(bad), std::invalid_argument);
}

}  // namespace
}  // namespace xpuf::ml
