// SHA-256 against FIPS 180-4 / NIST test vectors.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace xpuf::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const std::string m(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha256(m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55 bytes (padding fits in one block), 56 bytes (forces a second block),
  // 64 bytes (full block + padding block).
  EXPECT_EQ(to_hex(sha256(std::string(55, 'x'))),
            to_hex(sha256(std::string(55, 'x'))));
  const Digest d56 = sha256(std::string(56, 'y'));
  const Digest d64 = sha256(std::string(64, 'z'));
  EXPECT_NE(to_hex(d56), to_hex(d64));
  // Known vector: 56 x 'a'.
  EXPECT_EQ(to_hex(sha256(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) {
    const auto byte = static_cast<std::uint8_t>(c);
    h.update(&byte, 1);
  }
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(msg)));
}

TEST(Sha256, SmallInputChangesAvalanche) {
  const Digest a = sha256(std::string("message A"));
  const Digest b = sha256(std::string("message B"));
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    differing_bits += __builtin_popcount(static_cast<unsigned>(a[i] ^ b[i]));
  EXPECT_GT(differing_bits, 80);  // ~128 expected
}

TEST(Sha256, VectorOverloadMatches) {
  const std::vector<std::uint8_t> bytes{'a', 'b', 'c'};
  EXPECT_EQ(to_hex(sha256(bytes)), to_hex(sha256(std::string("abc"))));
}

}  // namespace
}  // namespace xpuf::crypto
