// Tests for Cholesky factorization and SPD solving.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"

namespace xpuf::linalg {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  // A = B^T B + n * I is SPD with overwhelming probability.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
  Matrix a = gram(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, FactorReconstructsMatrix) {
  Rng rng(1);
  const Matrix a = random_spd(5, rng);
  const Cholesky chol(a);
  const Matrix l = chol.factor();
  const Matrix reconstructed = matmul(l, l.transposed());
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-10);
}

TEST(Cholesky, FactorIsLowerTriangular) {
  Rng rng(2);
  const Cholesky chol(random_spd(4, rng));
  const Matrix& l = chol.factor();
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = r + 1; c < 4; ++c) EXPECT_DOUBLE_EQ(l(r, c), 0.0);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(3);
  const Matrix a = random_spd(6, rng);
  Vector x_true(6);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = matvec(a, x_true);
  const Vector x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::identity(2);
  a(1, 1) = -1.0;
  EXPECT_THROW(Cholesky{a}, NumericalError);
}

TEST(Cholesky, RejectsSingular) {
  // Rank-1 matrix.
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  EXPECT_THROW(Cholesky{a}, NumericalError);
}

TEST(Cholesky, SolveValidatesDimensions) {
  Rng rng(4);
  const Cholesky chol(random_spd(3, rng));
  EXPECT_THROW(chol.solve(Vector(4)), std::invalid_argument);
}

TEST(Cholesky, LogDetMatchesDiagonalProduct) {
  Matrix a = Matrix::identity(3);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  a(2, 2) = 16.0;
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(4.0 * 9.0 * 16.0), 1e-12);
}

TEST(SolveSpd, OneShotHelperMatchesClassUse) {
  Rng rng(5);
  const Matrix a = random_spd(4, rng);
  Vector b(4);
  for (auto& v : b) v = rng.normal();
  const Vector x1 = solve_spd(a, b);
  const Vector x2 = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

// Property sweep over system sizes: residual of the solve stays tiny.
class CholeskySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeSweep, ResidualIsNegligible) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const Vector x = Cholesky(a).solve(b);
  const Vector r = matvec(a, x) - b;
  EXPECT_LT(norm_inf(r), 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 33u, 65u));

}  // namespace
}  // namespace xpuf::linalg
