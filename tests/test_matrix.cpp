// Tests for the dense matrix type and BLAS-2/3 kernels.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace xpuf::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_TRUE(Matrix{}.empty());
}

TEST(Matrix, FromRowsValidatesShape) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_rows({{1.0}, {2.0, 3.0}}), std::invalid_argument);
  EXPECT_TRUE(Matrix::from_rows({}).empty());
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{10.0, 20.0}});
  EXPECT_EQ(a + b, Matrix::from_rows({{11.0, 22.0}}));
  EXPECT_EQ(b - a, Matrix::from_rows({{9.0, 18.0}}));
  EXPECT_EQ(a * 3.0, Matrix::from_rows({{3.0, 6.0}}));
  Matrix bad(2, 1);
  EXPECT_THROW(bad += a, std::invalid_argument);
}

TEST(Matvec, MultipliesCorrectly) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Vector x{1.0, 1.0};
  EXPECT_EQ(matvec(a, x), (Vector{3.0, 7.0}));
  EXPECT_THROW(matvec(a, Vector{1.0}), std::invalid_argument);
}

TEST(MatvecTransposed, MatchesExplicitTranspose) {
  Rng rng(1);
  Matrix a(4, 3);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  Vector x(4);
  for (auto& v : x) v = rng.normal();
  const Vector direct = matvec_transposed(a, x);
  const Vector reference = matvec(a.transposed(), x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(direct[i], reference[i], 1e-12);
}

TEST(Matmul, KnownProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c, Matrix::from_rows({{19.0, 22.0}, {43.0, 50.0}}));
  EXPECT_THROW(matmul(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(2);
  Matrix a(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  EXPECT_LT(max_abs_diff(matmul(a, Matrix::identity(3)), a), 1e-14);
  EXPECT_LT(max_abs_diff(matmul(Matrix::identity(3), a), a), 1e-14);
}

TEST(Gram, MatchesExplicitProduct) {
  Rng rng(3);
  Matrix a(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  const Matrix g = gram(a);
  const Matrix reference = matmul(a.transposed(), a);
  EXPECT_LT(max_abs_diff(g, reference), 1e-12);
  // Symmetry.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(NormFrobenius, KnownValue) {
  const Matrix m = Matrix::from_rows({{3.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(norm_frobenius(m), 5.0);
}

TEST(MaxAbsDiff, DetectsLargestDeviation) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{1.5, 2.1}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_THROW(max_abs_diff(a, Matrix(2, 2)), std::invalid_argument);
}

namespace {
Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}
}  // namespace

TEST(MatmulBlocked, MatchesNaiveOnNonSquareShapes) {
  Rng rng(11);
  // Shapes chosen to straddle the kernel's row-chunk and k-block sizes.
  for (const auto [m, k, n] : {std::array<std::size_t, 3>{17, 5, 9},
                               {3, 130, 7},
                               {65, 64, 33},
                               {1, 200, 1}}) {
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    EXPECT_LT(max_abs_diff(matmul_blocked(a, b), matmul(a, b)), 1e-12)
        << m << "x" << k << " * " << k << "x" << n;
  }
}

TEST(MatmulBlocked, TinyAndDegenerateShapes) {
  const Matrix a = Matrix::from_rows({{2.0}});
  EXPECT_EQ(matmul_blocked(a, Matrix::from_rows({{3.0}})),
            Matrix::from_rows({{6.0}}));
  // Zero-dimension operands: empty result of the right shape, no crash.
  const Matrix zero_rows(0, 4);
  const Matrix c = matmul_blocked(zero_rows, Matrix(4, 3));
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);
  const Matrix d = matmul_blocked(Matrix(3, 0), Matrix(0, 2));
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 2u);
  EXPECT_LT(max_abs_diff(d, Matrix(3, 2, 0.0)), 1e-300);
  EXPECT_THROW(matmul_blocked(Matrix(2, 3), Matrix(4, 2)), std::invalid_argument);
}

TEST(MatmulNt, MatchesExplicitTranspose) {
  Rng rng(12);
  const Matrix a = random_matrix(19, 6, rng);
  const Matrix bt = random_matrix(11, 6, rng);  // B^T stored row-major
  EXPECT_LT(max_abs_diff(matmul_nt(a, bt), matmul(a, bt.transposed())), 1e-12);
  EXPECT_THROW(matmul_nt(Matrix(2, 3), Matrix(4, 5)), std::invalid_argument);
}

TEST(MatmulTn, MatchesExplicitTranspose) {
  Rng rng(13);
  // Tall inputs so the row-chunked partial accumulation spans many chunks.
  const Matrix a = random_matrix(1'000, 4, rng);
  const Matrix b = random_matrix(1'000, 7, rng);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(a.transposed(), b)), 1e-9);
  EXPECT_THROW(matmul_tn(Matrix(2, 3), Matrix(4, 5)), std::invalid_argument);
}

TEST(Matrix, RowPointerIsContiguous) {
  Matrix m(2, 3);
  m(1, 0) = 7.0;
  m(1, 2) = 9.0;
  const double* row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row[2], 9.0);
}

}  // namespace
}  // namespace xpuf::linalg
