// Tests for the dense matrix type and BLAS-2/3 kernels.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace xpuf::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_TRUE(Matrix{}.empty());
}

TEST(Matrix, FromRowsValidatesShape) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_rows({{1.0}, {2.0, 3.0}}), std::invalid_argument);
  EXPECT_TRUE(Matrix::from_rows({}).empty());
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{10.0, 20.0}});
  EXPECT_EQ(a + b, Matrix::from_rows({{11.0, 22.0}}));
  EXPECT_EQ(b - a, Matrix::from_rows({{9.0, 18.0}}));
  EXPECT_EQ(a * 3.0, Matrix::from_rows({{3.0, 6.0}}));
  Matrix bad(2, 1);
  EXPECT_THROW(bad += a, std::invalid_argument);
}

TEST(Matvec, MultipliesCorrectly) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Vector x{1.0, 1.0};
  EXPECT_EQ(matvec(a, x), (Vector{3.0, 7.0}));
  EXPECT_THROW(matvec(a, Vector{1.0}), std::invalid_argument);
}

TEST(MatvecTransposed, MatchesExplicitTranspose) {
  Rng rng(1);
  Matrix a(4, 3);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  Vector x(4);
  for (auto& v : x) v = rng.normal();
  const Vector direct = matvec_transposed(a, x);
  const Vector reference = matvec(a.transposed(), x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(direct[i], reference[i], 1e-12);
}

TEST(Matmul, KnownProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c, Matrix::from_rows({{19.0, 22.0}, {43.0, 50.0}}));
  EXPECT_THROW(matmul(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(2);
  Matrix a(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  EXPECT_LT(max_abs_diff(matmul(a, Matrix::identity(3)), a), 1e-14);
  EXPECT_LT(max_abs_diff(matmul(Matrix::identity(3), a), a), 1e-14);
}

TEST(Gram, MatchesExplicitProduct) {
  Rng rng(3);
  Matrix a(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  const Matrix g = gram(a);
  const Matrix reference = matmul(a.transposed(), a);
  EXPECT_LT(max_abs_diff(g, reference), 1e-12);
  // Symmetry.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(NormFrobenius, KnownValue) {
  const Matrix m = Matrix::from_rows({{3.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(norm_frobenius(m), 5.0);
}

TEST(MaxAbsDiff, DetectsLargestDeviation) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{1.5, 2.1}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_THROW(max_abs_diff(a, Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, RowPointerIsContiguous) {
  Matrix m(2, 3);
  m(1, 0) = 7.0;
  m(1, 2) = 9.0;
  const double* row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row[2], 9.0);
}

}  // namespace
}  // namespace xpuf::linalg
