// Tests for the beta threshold-adjustment search (paper Sec 5).
#include <gtest/gtest.h>

#include "puf/threshold_adjust.hpp"
#include "sim/population.hpp"

namespace xpuf::puf {
namespace {

class ThresholdAdjustTest : public ::testing::Test {
 protected:
  ThresholdAdjustTest() : pop_(make_config()), rng_(321) {
    EnrollmentConfig cfg;
    cfg.training_challenges = 2'000;
    cfg.trials = 5'000;
    model_ = Enroller(cfg).enroll(pop_.chip(0), rng_);
  }

  static sim::PopulationConfig make_config() {
    sim::PopulationConfig cfg;
    cfg.n_chips = 1;
    cfg.n_pufs_per_chip = 3;
    cfg.seed = 555;
    return cfg;
  }

  EvaluationBlock measure(const sim::Environment& env, std::size_t n = 4'000) {
    const auto challenges = random_challenges(32, n, rng_);
    return measure_evaluation_block(pop_.chip(0), challenges, env, 5'000, rng_);
  }

  sim::ChipPopulation pop_;
  Rng rng_;
  ServerModel model_;
};

TEST_F(ThresholdAdjustTest, NominalSearchConvergesWithModestBetas) {
  const auto block = measure(sim::Environment::nominal());
  const BetaSearchResult res = find_betas(model_, {block});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.violations_after, 0u);
  EXPECT_LE(res.betas.beta0, 1.0);
  EXPECT_GE(res.betas.beta1, 1.0);
  EXPECT_GT(res.betas.beta0, 0.4);
  EXPECT_LT(res.betas.beta1, 2.0);
}

TEST_F(ThresholdAdjustTest, CornersNeedMoreStringentBetasThanNominal) {
  const auto nominal_block = measure(sim::Environment::nominal());
  const BetaSearchResult nominal = find_betas(model_, {nominal_block});

  std::vector<EvaluationBlock> corner_blocks{nominal_block};
  corner_blocks.push_back(measure({0.8, 0.0}));
  corner_blocks.push_back(measure({1.0, 60.0}));
  const BetaSearchResult corners = find_betas(model_, corner_blocks);

  EXPECT_LE(corners.betas.beta0, nominal.betas.beta0);
  EXPECT_GE(corners.betas.beta1, nominal.betas.beta1);
  EXPECT_TRUE(corners.converged);
}

TEST_F(ThresholdAdjustTest, ViolationsBeforeAreCountedAtUnitBetas) {
  // With the raw thresholds some test-set CRPs are usually misclassified
  // (that is the paper's motivation for beta); make sure the counter sees
  // the same thing the search fixes.
  std::vector<EvaluationBlock> blocks{measure({0.8, 60.0})};
  const BetaSearchResult res = find_betas(model_, blocks);
  if (res.betas.beta0 < 1.0 || res.betas.beta1 > 1.0) {
    EXPECT_GT(res.violations_before, 0u);
  }
  EXPECT_EQ(res.violations_after, 0u);
}

TEST_F(ThresholdAdjustTest, SelectedStableCrpsAreTrulyStableAfterAdjustment) {
  std::vector<EvaluationBlock> blocks;
  for (const auto& env : sim::paper_corner_grid()) blocks.push_back(measure(env, 1'000));
  const BetaSearchResult res = find_betas(model_, blocks);
  ASSERT_TRUE(res.converged);
  ServerModel adjusted = model_;
  adjusted.set_betas(res.betas);
  // Every CRP the adjusted model classifies stable must be measured stable
  // (and correct-valued) in every block.
  for (const auto& block : blocks) {
    for (std::size_t p = 0; p < adjusted.puf_count(); ++p) {
      const ThresholdPair thr = adjusted.adjusted_thresholds(p);
      for (std::size_t c = 0; c < block.challenges.size(); ++c) {
        const double pred = adjusted.predict_soft(p, block.challenges[c]);
        const double soft = block.soft[p][c];
        if (pred < thr.thr0) { EXPECT_DOUBLE_EQ(soft, 0.0); }
        if (pred > thr.thr1) { EXPECT_DOUBLE_EQ(soft, 1.0); }
      }
    }
  }
}

TEST_F(ThresholdAdjustTest, StabilityOnlyModeIsLessStrict) {
  std::vector<EvaluationBlock> blocks{measure({0.8, 0.0}, 2'000)};
  BetaSearchConfig strict_cfg;
  strict_cfg.require_correct_value = true;
  BetaSearchConfig loose_cfg;
  loose_cfg.require_correct_value = false;
  const BetaSearchResult strict = find_betas(model_, blocks, strict_cfg);
  const BetaSearchResult loose = find_betas(model_, blocks, loose_cfg);
  EXPECT_LE(strict.betas.beta0, loose.betas.beta0);
  EXPECT_GE(strict.betas.beta1, loose.betas.beta1);
}

TEST_F(ThresholdAdjustTest, SearchValidatesInput) {
  EXPECT_THROW(find_betas(model_, {}), std::invalid_argument);
  BetaSearchConfig cfg;
  cfg.step = 0.0;
  const auto block = measure(sim::Environment::nominal(), 100);
  EXPECT_THROW(find_betas(model_, {block}, cfg), std::invalid_argument);
}

TEST_F(ThresholdAdjustTest, MismatchedBlockShapesThrow) {
  EvaluationBlock bad;
  bad.challenges = random_challenges(32, 5, rng_);
  bad.soft.assign(2, std::vector<double>(5, 0.0));  // chip has 3 PUFs
  EXPECT_THROW(find_betas(model_, {bad}), std::invalid_argument);

  EvaluationBlock ragged;
  ragged.challenges = random_challenges(32, 5, rng_);
  ragged.soft.assign(3, std::vector<double>(4, 0.0));  // wrong row length
  EXPECT_THROW(find_betas(model_, {ragged}), std::invalid_argument);
}

TEST(ConservativeBetas, TakesExtremes) {
  const std::vector<BetaFactors> per_chip{{0.90, 1.05}, {0.74, 1.02}, {0.85, 1.08}};
  const BetaFactors b = conservative_betas(per_chip);
  EXPECT_DOUBLE_EQ(b.beta0, 0.74);
  EXPECT_DOUBLE_EQ(b.beta1, 1.08);
  EXPECT_THROW(conservative_betas({}), std::invalid_argument);
}

TEST(MeasureEvaluationBlock, ShapesAndEnvironmentRecorded) {
  sim::PopulationConfig cfg;
  cfg.n_chips = 1;
  cfg.n_pufs_per_chip = 2;
  sim::ChipPopulation pop(cfg);
  Rng rng(1);
  const auto challenges = random_challenges(32, 7, rng);
  const sim::Environment env{1.0, 0.0};
  const EvaluationBlock block =
      measure_evaluation_block(pop.chip(0), challenges, env, 500, rng);
  EXPECT_EQ(block.challenges.size(), 7u);
  ASSERT_EQ(block.soft.size(), 2u);
  EXPECT_EQ(block.soft[0].size(), 7u);
  EXPECT_TRUE(block.environment == env);
}

}  // namespace
}  // namespace xpuf::puf
