// Tests for the evaluation metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/metrics.hpp"

namespace xpuf::ml {
namespace {

TEST(Accuracy, CountsMatchesAtThreshold) {
  const std::vector<double> pred{0.9, 0.1, 0.6, 0.4};
  const std::vector<double> truth{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.75);
}

TEST(Accuracy, EmptyIsZeroAndMismatchThrows) {
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 0.0};
  EXPECT_THROW(accuracy(a, b), std::invalid_argument);
}

TEST(Confusion, CountsAllFourCells) {
  const std::vector<double> pred{1.0, 1.0, 0.0, 0.0, 1.0};
  const std::vector<double> truth{1.0, 0.0, 0.0, 1.0, 1.0};
  const ConfusionMatrix cm = confusion(pred, truth);
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 2.0 / 3.0);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Confusion, UndefinedRatesAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(RegressionErrors, MseRmseMae) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 4.0, 3.0};
  EXPECT_NEAR(mse(pred, truth), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(rmse(pred, truth), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(pred, truth), 2.0 / 3.0, 1e-12);
}

TEST(RegressionErrors, PerfectPredictionIsZero) {
  const std::vector<double> v{0.5, -0.25, 3.0};
  EXPECT_DOUBLE_EQ(mse(v, v), 0.0);
  EXPECT_DOUBLE_EQ(mae(v, v), 0.0);
}

TEST(LogLoss, MatchesHandComputedValue) {
  const std::vector<double> p{0.9, 0.2};
  const std::vector<double> t{1.0, 0.0};
  const double expected = (-std::log(0.9) - std::log(0.8)) / 2.0;
  EXPECT_NEAR(log_loss(p, t), expected, 1e-12);
}

TEST(LogLoss, ClipsExtremeProbabilities) {
  const std::vector<double> p{0.0, 1.0};
  const std::vector<double> t{1.0, 0.0};  // totally wrong but must stay finite
  EXPECT_TRUE(std::isfinite(log_loss(p, t)));
  EXPECT_GT(log_loss(p, t), 20.0);
}

TEST(RSquared, PerfectAndBaseline) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(mean_pred, truth), 0.0, 1e-12);
}

TEST(RSquared, ConstantTruthIsZero) {
  const std::vector<double> pred{1.0, 2.0};
  const std::vector<double> truth{3.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(pred, truth), 0.0);
}

}  // namespace
}  // namespace xpuf::ml
