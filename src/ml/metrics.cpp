#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace xpuf::ml {

double ConfusionMatrix::accuracy() const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(t);
}

double ConfusionMatrix::precision() const {
  const std::size_t d = true_positive + false_positive;
  return d == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(d);
}

double ConfusionMatrix::recall() const {
  const std::size_t d = true_positive + false_negative;
  return d == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(d);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double accuracy(std::span<const double> predicted, std::span<const double> truth) {
  XPUF_REQUIRE(predicted.size() == truth.size(), "accuracy length mismatch");
  if (predicted.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if ((predicted[i] >= 0.5) == (truth[i] >= 0.5)) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

ConfusionMatrix confusion(std::span<const double> predicted, std::span<const double> truth) {
  XPUF_REQUIRE(predicted.size() == truth.size(), "confusion length mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] >= 0.5;
    const bool t = truth[i] >= 0.5;
    if (p && t) ++cm.true_positive;
    else if (!p && !t) ++cm.true_negative;
    else if (p && !t) ++cm.false_positive;
    else ++cm.false_negative;
  }
  return cm;
}

double mse(std::span<const double> predicted, std::span<const double> truth) {
  XPUF_REQUIRE(predicted.size() == truth.size(), "mse length mismatch");
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - truth[i];
    s += e * e;
  }
  return s / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted, std::span<const double> truth) {
  return std::sqrt(mse(predicted, truth));
}

double mae(std::span<const double> predicted, std::span<const double> truth) {
  XPUF_REQUIRE(predicted.size() == truth.size(), "mae length mismatch");
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) s += std::fabs(predicted[i] - truth[i]);
  return s / static_cast<double>(predicted.size());
}

double log_loss(std::span<const double> probabilities, std::span<const double> truth) {
  XPUF_REQUIRE(probabilities.size() == truth.size(), "log_loss length mismatch");
  if (probabilities.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    const double p = clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    s += truth[i] >= 0.5 ? -std::log(p) : -std::log1p(-p);
  }
  return s / static_cast<double>(probabilities.size());
}

double r_squared(std::span<const double> predicted, std::span<const double> truth) {
  XPUF_REQUIRE(predicted.size() == truth.size(), "r_squared length mismatch");
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double rss = 0.0, tss = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    rss += (predicted[i] - truth[i]) * (predicted[i] - truth[i]);
    tss += (truth[i] - m) * (truth[i] - m);
  }
  return tss > 0.0 ? 1.0 - rss / tss : 0.0;
}

}  // namespace xpuf::ml
