// Limited-memory BFGS minimizer with a strong-Wolfe line search.
//
// This is the optimizer the paper uses (via scikit-learn) to train both the
// multi-layer-perceptron attack model and the logistic-regression baseline.
// It is a general unconstrained minimizer over a flat parameter vector.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "linalg/vector.hpp"

namespace xpuf::ml {

/// Objective callback: returns f(x) and writes the gradient into `grad`
/// (pre-sized to x.size()).
using Objective = std::function<double(const linalg::Vector& x, linalg::Vector& grad)>;

struct LbfgsOptions {
  std::size_t max_iterations = 200;
  std::size_t history = 10;          ///< stored (s, y) correction pairs
  double gradient_tolerance = 1e-6;  ///< stop when ||g||_inf <= this
  double value_tolerance = 1e-10;    ///< stop on relative f decrease below this
  std::size_t max_line_search = 40;  ///< function evaluations per line search
  double wolfe_c1 = 1e-4;            ///< sufficient-decrease constant
  double wolfe_c2 = 0.9;             ///< curvature constant
};

struct LbfgsResult {
  linalg::Vector x;             ///< final iterate
  double value = 0.0;           ///< f at the final iterate
  double gradient_norm = 0.0;   ///< ||g||_inf at the final iterate
  std::size_t iterations = 0;   ///< outer iterations taken
  std::size_t evaluations = 0;  ///< objective evaluations (incl. line search)
  bool converged = false;       ///< hit a tolerance (vs. iteration cap/stall)
  std::string message;          ///< human-readable stop reason
};

/// Minimizes the objective starting from x0. Throws NumericalError only if
/// the objective returns non-finite values at the starting point; later
/// non-finite trial points are handled by shrinking the step.
LbfgsResult minimize_lbfgs(const Objective& f, linalg::Vector x0,
                           const LbfgsOptions& options = {});

}  // namespace xpuf::ml
