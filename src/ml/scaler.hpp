// Feature standardization (zero mean, unit variance per column).
//
// PUF parity features are already in {-1, +1} so the attack pipelines work
// unscaled, but the scaler keeps the ML stack honest for general inputs and
// is exercised by the ablation benches.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get
  /// scale 1 so transform() is the identity minus the mean there.
  void fit(const linalg::Matrix& x);

  /// Applies (x - mean) / scale column-wise. fit() must have run.
  linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform().
  linalg::Matrix fit_transform(const linalg::Matrix& x);

  /// Reverses transform().
  linalg::Matrix inverse_transform(const linalg::Matrix& x) const;

  bool fitted() const { return !mean_.empty(); }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& scale() const { return scale_; }

 private:
  linalg::Vector mean_;
  linalg::Vector scale_;
};

}  // namespace xpuf::ml
