#include "ml/streaming.hpp"

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector.hpp"

namespace xpuf::ml {

StreamingNormalEquations::StreamingNormalEquations(std::size_t features,
                                                   std::size_t targets)
    : features_(features),
      targets_(targets),
      g_(features, features),
      xty_(targets, std::vector<double>(features, 0.0)),
      sum_y_(targets, 0.0) {
  XPUF_REQUIRE(features > 0, "streaming fit needs at least one feature");
  XPUF_REQUIRE(targets > 0, "streaming fit needs at least one target");
}

void StreamingNormalEquations::accumulate(
    const linalg::Matrix& phi, std::span<const std::vector<double>> chunk_targets) {
  XPUF_REQUIRE(phi.cols() == features_, "streaming accumulate: feature mismatch");
  XPUF_REQUIRE(chunk_targets.size() == targets_, "streaming accumulate: target mismatch");
  const std::size_t n = phi.rows();
  for (std::size_t t = 0; t < targets_; ++t)
    XPUF_REQUIRE(chunk_targets[t].size() == n, "streaming accumulate: row mismatch");

  // Gram contribution — the exact loop body of linalg::gram(), restricted to
  // this chunk's rows. Upper triangle only; mirrored once at solve time.
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = phi.row(r);
    for (std::size_t i = 0; i < features_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < features_; ++j) g_(i, j) += ri * row[j];
    }
  }

  // X^T y contributions — the exact loop body of linalg::matvec_transposed(),
  // restricted to this chunk's rows, once per target.
  for (std::size_t t = 0; t < targets_; ++t) {
    const std::vector<double>& yt = chunk_targets[t];
    double* acc = xty_[t].data();
    for (std::size_t r = 0; r < n; ++r) {
      const double* row = phi.row(r);
      const double yr = yt[r];
      for (std::size_t c = 0; c < features_; ++c) acc[c] += row[c] * yr;
    }
    double s = sum_y_[t];
    for (std::size_t r = 0; r < n; ++r) s += yt[r];
    sum_y_[t] = s;
  }

  rows_ += n;
}

linalg::Matrix StreamingNormalEquations::solve(double ridge) const {
  XPUF_REQUIRE(rows_ >= features_, "streaming fit: underdetermined system");
  linalg::Matrix g = g_;
  for (std::size_t i = 0; i < features_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  if (ridge > 0.0)
    for (std::size_t i = 0; i < features_; ++i) g(i, i) += ridge;

  const linalg::Cholesky chol(g);
  linalg::Matrix w(targets_, features_);
  linalg::Vector rhs(features_);
  for (std::size_t t = 0; t < targets_; ++t) {
    for (std::size_t c = 0; c < features_; ++c) rhs[c] = xty_[t][c];
    const linalg::Vector wt = chol.solve(rhs);
    for (std::size_t c = 0; c < features_; ++c) w(t, c) = wt[c];
  }
  return w;
}

double StreamingNormalEquations::target_mean(std::size_t t) const {
  XPUF_REQUIRE(t < targets_, "target_mean: index out of range");
  XPUF_REQUIRE(rows_ > 0, "target_mean: no rows accumulated");
  return sum_y_[t] / static_cast<double>(rows_);
}

}  // namespace xpuf::ml
