// Multi-layer perceptron binary classifier trained by full-batch L-BFGS
// (the paper's attack model: 3 hidden layers of 35/25/25 units, L-BFGS
// optimizer, transformed challenge vectors in, 1-bit XOR responses out) or
// by minibatch Adam for the ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "ml/adam.hpp"
#include "ml/dataset.hpp"
#include "ml/lbfgs.hpp"

namespace xpuf::ml {

enum class Activation { kTanh, kRelu, kSigmoid };

struct MlpOptions {
  /// Hidden layer widths; the paper's attack uses {35, 25, 25}.
  std::vector<std::size_t> hidden_layers = {35, 25, 25};
  Activation activation = Activation::kRelu;  ///< scikit-learn's default
  double l2 = 1e-5;                           ///< weight penalty (alpha)
  std::uint64_t seed = 1;                     ///< weight-init seed
};

struct MlpAdamOptions {
  std::size_t epochs = 50;
  std::size_t batch_size = 128;
  AdamOptions adam;
};

/// Feed-forward network with a single logit output and sigmoid/BCE loss.
/// Parameters live in one flat vector so generic optimizers can drive it.
class Mlp {
 public:
  Mlp(std::size_t n_inputs, MlpOptions options = {});

  std::size_t parameter_count() const { return params_.size(); }
  const linalg::Vector& parameters() const { return params_; }
  void set_parameters(const linalg::Vector& params);

  /// Re-randomizes weights (Glorot-uniform) with the stored seed.
  void initialize_weights();

  /// Mean BCE loss (+ L2) over a batch and its gradient w.r.t. `params`
  /// (evaluated at `params`, which may differ from the stored parameters).
  double loss_and_gradient(const linalg::Matrix& x, const linalg::Vector& y,
                           const linalg::Vector& params, linalg::Vector& grad) const;

  /// Full-batch L-BFGS training from the current weights.
  LbfgsResult fit(const Dataset& data, const LbfgsOptions& options = {});

  /// Minibatch Adam training; returns final full-batch loss.
  double fit_adam(const Dataset& data, const MlpAdamOptions& options, Rng& rng);

  /// P(label == 1 | features) for one sample.
  double predict_probability(std::span<const double> features) const;

  /// Probabilities for every row.
  linalg::Vector predict_probability(const linalg::Matrix& x) const;

  /// Hard 0/1 labels at threshold 0.5.
  linalg::Vector predict(const linalg::Matrix& x) const;

  std::size_t n_inputs() const { return layer_sizes_.front(); }
  const std::vector<std::size_t>& layer_sizes() const { return layer_sizes_; }

 private:
  MlpOptions options_;
  std::vector<std::size_t> layer_sizes_;  // input, hidden..., 1
  linalg::Vector params_;

  // Offsets of each layer's weight block / bias block in the flat vector.
  std::vector<std::size_t> w_offset_;
  std::vector<std::size_t> b_offset_;

  /// Forward pass over a batch; fills per-layer activations (a[0] = x).
  void forward(const linalg::Matrix& x, const linalg::Vector& params,
               std::vector<linalg::Matrix>& activations) const;

  double activate(double z) const;
  double activate_derivative(double activated) const;
};

}  // namespace xpuf::ml
