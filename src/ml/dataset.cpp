#include "ml/dataset.hpp"

#include <numeric>

#include "common/error.hpp"

namespace xpuf::ml {

void Dataset::add(std::span<const double> features_row, double target) {
  if (x.rows() == 0 && x.cols() == 0) {
    x = linalg::Matrix(0, features_row.size());
  }
  XPUF_REQUIRE(features_row.size() == x.cols(), "Dataset::add feature-count mismatch");
  x.append_row(features_row);
  y.push_back(target);
}

void Dataset::reserve(std::size_t n_samples, std::size_t n_features) {
  if (x.rows() == 0 && x.cols() == 0) x = linalg::Matrix(0, n_features);
  XPUF_REQUIRE(n_features == x.cols(), "Dataset::reserve feature-count mismatch");
  x.reserve_rows(n_samples);
  y.reserve(n_samples);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.x = linalg::Matrix(indices.size(), x.cols());
  out.y = linalg::Vector(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    XPUF_REQUIRE(src < x.rows(), "Dataset::subset index out of range");
    for (std::size_t c = 0; c < x.cols(); ++c) out.x(r, c) = x(src, c);
    out.y[r] = y[src];
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction, Rng& rng) const {
  XPUF_REQUIRE(train_fraction >= 0.0 && train_fraction <= 1.0,
               "train_fraction must be in [0, 1]");
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(size()));
  std::span<const std::size_t> all(idx);
  return {subset(all.subspan(0, n_train)), subset(all.subspan(n_train))};
}

std::pair<Dataset, Dataset> Dataset::head_split(std::size_t n_train) const {
  XPUF_REQUIRE(n_train <= size(), "head_split: n_train exceeds dataset size");
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::span<const std::size_t> all(idx);
  return {subset(all.subspan(0, n_train)), subset(all.subspan(n_train))};
}

void Dataset::shuffle(Rng& rng) {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  *this = subset(idx);
}

}  // namespace xpuf::ml
