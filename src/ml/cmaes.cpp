#include "ml/cmaes.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace xpuf::ml {

using linalg::Matrix;
using linalg::Vector;

CmaEsResult minimize_cmaes(const BlackBoxObjective& f, Vector x0,
                           const CmaEsOptions& options) {
  XPUF_REQUIRE(!x0.empty(), "CMA-ES needs a non-empty starting point");
  XPUF_REQUIRE(options.initial_sigma > 0.0, "CMA-ES needs a positive initial sigma");
  const std::size_t n = x0.size();
  const double nd = static_cast<double>(n);

  // Hansen's default strategy parameters.
  const std::size_t lambda =
      options.lambda > 0 ? options.lambda
                         : static_cast<std::size_t>(4.0 + std::floor(3.0 * std::log(nd)));
  XPUF_REQUIRE(lambda >= 2, "CMA-ES population too small");
  const std::size_t mu = lambda / 2;
  Vector weights(mu);
  for (std::size_t i = 0; i < mu; ++i)
    weights[i] = std::log(static_cast<double>(mu) + 0.5) -
                 std::log(static_cast<double>(i) + 1.0);
  double wsum = 0.0;
  for (double w : weights) wsum += w;
  weights /= wsum;
  double mu_eff_den = 0.0;
  for (double w : weights) mu_eff_den += w * w;
  const double mu_eff = 1.0 / mu_eff_den;

  const double c_sigma = (mu_eff + 2.0) / (nd + mu_eff + 5.0);
  const double d_sigma =
      1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (nd + 1.0)) - 1.0) + c_sigma;
  const double c_c = (4.0 + mu_eff / nd) / (nd + 4.0 + 2.0 * mu_eff / nd);
  const double c_1 = 2.0 / ((nd + 1.3) * (nd + 1.3) + mu_eff);
  const double c_mu = std::min(
      1.0 - c_1, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((nd + 2.0) * (nd + 2.0) + mu_eff));
  const double chi_n = std::sqrt(nd) * (1.0 - 1.0 / (4.0 * nd) + 1.0 / (21.0 * nd * nd));

  // Evolution state.
  Vector mean = std::move(x0);
  double sigma = options.initial_sigma;
  Matrix c = Matrix::identity(n);
  Matrix b = Matrix::identity(n);  // eigenvectors of C
  Vector d(n, 1.0);                // sqrt eigenvalues of C
  Vector p_sigma(n), p_c(n);
  Rng rng(options.seed);

  CmaEsResult result;
  result.x = mean;
  result.value = f(mean);
  result.evaluations = 1;
  if (!std::isfinite(result.value))
    throw NumericalError("CMA-ES: objective is non-finite at the starting point");

  std::deque<double> best_history;
  std::vector<Vector> z(lambda, Vector(n)), y(lambda, Vector(n)), x(lambda, Vector(n));
  std::vector<double> fitness(lambda);
  std::vector<std::size_t> order(lambda);

  for (std::size_t gen = 0; gen < options.max_generations; ++gen) {
    result.generations = gen + 1;

    // Sample and evaluate the population: x_k = mean + sigma * B D z_k.
    std::size_t finite = 0;
    for (std::size_t k = 0; k < lambda; ++k) {
      for (std::size_t i = 0; i < n; ++i) z[k][i] = rng.normal();
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < n; ++j) s += b(i, j) * d[j] * z[k][j];
        y[k][i] = s;
        x[k][i] = mean[i] + sigma * s;
      }
      fitness[k] = f(x[k]);
      ++result.evaluations;
      if (std::isfinite(fitness[k])) ++finite;
      else fitness[k] = std::numeric_limits<double>::max();
    }
    if (finite == 0)
      throw NumericalError("CMA-ES: every candidate of a generation was non-finite");

    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&fitness](std::size_t a2, std::size_t b2) {
                return fitness[a2] < fitness[b2];
              });
    if (fitness[order[0]] < result.value) {
      result.value = fitness[order[0]];
      result.x = x[order[0]];
    }

    // Recombination.
    Vector y_w(n);
    for (std::size_t i = 0; i < mu; ++i) linalg::axpy(weights[i], y[order[i]], y_w);
    for (std::size_t i = 0; i < n; ++i) mean[i] += sigma * y_w[i];

    // Step-size path: p_sigma uses C^{-1/2} y_w = B z_w with
    // z_w = sum w_i z_(i).
    Vector z_w(n);
    for (std::size_t i = 0; i < mu; ++i) linalg::axpy(weights[i], z[order[i]], z_w);
    Vector c_inv_half_yw(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += b(i, j) * z_w[j];
      c_inv_half_yw[i] = s;
    }
    const double cs_coef = std::sqrt(c_sigma * (2.0 - c_sigma) * mu_eff);
    for (std::size_t i = 0; i < n; ++i)
      p_sigma[i] = (1.0 - c_sigma) * p_sigma[i] + cs_coef * c_inv_half_yw[i];

    const double ps_norm = linalg::norm2(p_sigma);
    const bool h_sigma =
        ps_norm / std::sqrt(1.0 - std::pow(1.0 - c_sigma,
                                           2.0 * static_cast<double>(gen + 1))) <
        (1.4 + 2.0 / (nd + 1.0)) * chi_n;

    const double cc_coef = std::sqrt(c_c * (2.0 - c_c) * mu_eff);
    for (std::size_t i = 0; i < n; ++i)
      p_c[i] = (1.0 - c_c) * p_c[i] + (h_sigma ? cc_coef * y_w[i] : 0.0);

    // Covariance update: rank-one + rank-mu.
    const double delta_h = h_sigma ? 0.0 : c_c * (2.0 - c_c);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double rank_mu = 0.0;
        for (std::size_t k = 0; k < mu; ++k)
          rank_mu += weights[k] * y[order[k]][i] * y[order[k]][j];
        c(i, j) = (1.0 - c_1 - c_mu + c_1 * delta_h) * c(i, j) +
                  c_1 * p_c[i] * p_c[j] + c_mu * rank_mu;
      }
    }

    // Step-size update.
    sigma *= std::exp((c_sigma / d_sigma) * (ps_norm / chi_n - 1.0));
    sigma = std::min(sigma, 1e6);

    // Refresh the eigendecomposition (cheap at attack dimensions).
    const linalg::EigenDecomposition eig = linalg::eigen_symmetric(c);
    for (std::size_t j = 0; j < n; ++j) {
      d[j] = std::sqrt(std::max(eig.values[j], 1e-20));
      for (std::size_t i = 0; i < n; ++i) b(i, j) = eig.vectors(i, j);
    }

    // Stagnation stop.
    best_history.push_back(result.value);
    if (best_history.size() > options.stagnation_window) {
      best_history.pop_front();
      const double improvement = best_history.front() - best_history.back();
      if (improvement >= 0.0 &&
          improvement <= options.f_tolerance * std::max(1.0, std::fabs(result.value))) {
        result.converged = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace xpuf::ml
