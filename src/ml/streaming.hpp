// Streaming normal-equations accumulator: the O(d^2)-memory core of the
// fixed-memory enrollment pipeline.
//
// The materialized path (ml::LinearRegression over a fully built Dataset)
// computes W = (X^T X + ridge I)^{-1} X^T y after holding all n rows of X in
// RAM. This accumulator consumes X in row chunks and keeps only
//
//   G   = X^T X      (d x d, upper triangle accumulated, mirrored on solve)
//   Xty = X^T y_t    (d per target)
//   sum(y_t), n      (for target means / R^2 bookkeeping)
//
// so memory is O(d^2 + d * targets) regardless of n. Accumulation is
// bit-identical to the one-shot kernels for ANY chunk partition: gram() and
// matvec_transposed() both walk rows in ascending order and add one term per
// row into each output element, so splitting the row range into chunks
// changes nothing about the per-element addition order. Feeding chunks in
// ascending row order therefore reproduces the materialized G and Xty to the
// last bit, and the shared Cholesky solve reproduces the materialized
// coefficients to the last bit.
//
// Multiple targets share one G and one Cholesky factorization — this is the
// main arithmetic saving over per-PUF materialized fits, which redo the
// O(n d^2) gram per target.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace xpuf::ml {

/// Per-chunk accumulator for ridge least squares over a shared design matrix
/// with `targets` independent right-hand sides.
class StreamingNormalEquations {
 public:
  StreamingNormalEquations(std::size_t features, std::size_t targets);

  std::size_t features() const { return features_; }
  std::size_t targets() const { return targets_; }
  std::size_t rows() const { return rows_; }

  /// Folds one chunk into the accumulator. `phi` holds the chunk's rows of
  /// the design matrix; `chunk_targets[t]` holds the matching rows of target
  /// t. Chunks must arrive in ascending global row order (the bit-identity
  /// contract above); each call is O(chunk_rows * d^2).
  void accumulate(const linalg::Matrix& phi,
                  std::span<const std::vector<double>> chunk_targets);

  /// Solves (G + ridge I) w_t = Xty_t for every target via ONE Cholesky
  /// factorization, returning a targets x features coefficient matrix.
  /// Requires rows() >= features() (same underdetermined guard as
  /// solve_least_squares). Throws linalg::NumericalError if the regularized
  /// Gram matrix is not positive definite — the streaming path has no QR
  /// fallback because the design matrix is gone.
  linalg::Matrix solve(double ridge) const;

  /// Mean of target t over all accumulated rows (ascending-order sum, the
  /// same order finish() in least_squares.cpp uses for mean_b).
  double target_mean(std::size_t t) const;

 private:
  std::size_t features_;
  std::size_t targets_;
  std::size_t rows_ = 0;
  linalg::Matrix g_;                       // upper triangle of X^T X
  std::vector<std::vector<double>> xty_;   // per-target X^T y
  std::vector<double> sum_y_;              // per-target running sum
};

}  // namespace xpuf::ml
