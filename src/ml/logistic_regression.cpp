#include "ml/logistic_regression.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace xpuf::ml {

namespace {
// Rows per gradient shard; fixed so the partial-sum grid (and the result
// bits) never depends on the thread count. The GEMM-backed gradient below
// passes this same grid to matmul_tn, so the partial sums it combines are
// the ones the historical scalar objective produced.
constexpr std::size_t kGradChunk = 512;

// Mean cross-entropy with L2 penalty. The objective is three batched
// passes instead of one scalar row loop:
//   z    = X w          via matmul_nt   (each z_r is the same ascending-c
//                                        dot the scalar loop computed)
//   loss, err_r = (sigmoid(z_r) - t_r)/n   in kGradChunk row shards
//   grad = X^T err      via matmul_tn on the same kGradChunk grid, so the
//                       partial-sum tree matches the scalar objective's
//                       shard accumulation bit for bit at any thread count.
// `wrow` and `err` are caller-owned scratch so L-BFGS's repeated
// evaluations do not reallocate the n-row error column.
double lr_objective(const Dataset& data, double l2, const linalg::Vector& w,
                    linalg::Vector& grad, linalg::Matrix& wrow, linalg::Matrix& err) {
  const std::size_t n = data.size();
  const std::size_t d = data.features();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t c = 0; c < d; ++c) wrow(0, c) = w[c];
  const linalg::Matrix z = linalg::matmul_nt(data.x, wrow);
  double total_loss = parallel_reduce(
      n, kGradChunk, 0.0,
      [&](double& acc, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const double zr = z(r, 0);
          const double t = data.y[r] >= 0.5 ? 1.0 : 0.0;
          // log(1 + exp(-z)) for t=1, log(1 + exp(z)) for t=0, via softplus.
          acc += t > 0.5 ? softplus(-zr) : softplus(zr);
          err(r, 0) = (sigmoid(zr) - t) * inv_n;
        }
      },
      [](double& acc, double&& part) { acc += part; });
  const linalg::Matrix g = linalg::matmul_tn(err, data.x, kGradChunk);
  double loss = total_loss * inv_n;
  grad = linalg::Vector(d);
  for (std::size_t c = 0; c < d; ++c) grad[c] = g(0, c);
  for (std::size_t c = 0; c < d; ++c) {
    loss += 0.5 * l2 * w[c] * w[c];
    grad[c] += l2 * w[c];
  }
  return loss;
}
}  // namespace

LbfgsResult LogisticRegression::fit(const Dataset& data) {
  XPUF_TRACE_SPAN("ml.lr_fit");
  XPUF_REQUIRE(!data.empty(), "LogisticRegression::fit on empty dataset");
  const std::size_t n = data.size();
  const std::size_t d = data.features();

  // Scratch hoisted out of the objective; see lr_objective for the math and
  // the bit-identity contract.
  linalg::Matrix wrow(1, d);
  linalg::Matrix err(n, 1);
  Objective obj = [&](const linalg::Vector& w, linalg::Vector& grad) {
    return lr_objective(data, options_.l2, w, grad, wrow, err);
  };

  LbfgsResult res = minimize_lbfgs(obj, linalg::Vector(d), options_.lbfgs);
  weights_ = res.x;
  auto& registry = MetricsRegistry::global();
  static Counter& iterations = registry.counter("ml.lbfgs_iterations");
  static Counter& evaluations = registry.counter("ml.objective_evaluations");
  iterations.add(res.iterations);
  evaluations.add(res.evaluations);
  return res;
}

double LogisticRegression::objective(const Dataset& data, const linalg::Vector& w,
                                     linalg::Vector& grad) const {
  XPUF_REQUIRE(!data.empty(), "LogisticRegression::objective on empty dataset");
  XPUF_REQUIRE(w.size() == data.features(),
               "LogisticRegression::objective weight-count mismatch");
  linalg::Matrix wrow(1, data.features());
  linalg::Matrix err(data.size(), 1);
  return lr_objective(data, options_.l2, w, grad, wrow, err);
}

double LogisticRegression::predict_probability(std::span<const double> features) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  XPUF_REQUIRE(features.size() == weights_.size(),
               "LogisticRegression feature-count mismatch");
  return sigmoid(linalg::dot(weights_.span(), features));
}

double LogisticRegression::predict(std::span<const double> features) const {
  return predict_probability(features) >= 0.5 ? 1.0 : 0.0;
}

linalg::Vector LogisticRegression::predict_probability(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  linalg::Vector z = linalg::matvec(x, weights_);
  for (double& v : z) v = sigmoid(v);
  return z;
}

}  // namespace xpuf::ml
