#include "ml/logistic_regression.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace xpuf::ml {

namespace {
// Rows per gradient shard; fixed so the partial-sum grid (and the result
// bits) never depends on the thread count.
constexpr std::size_t kGradChunk = 512;

/// Per-shard accumulator for the deterministic parallel reduction.
struct LossGrad {
  double loss = 0.0;
  linalg::Vector grad;
};
}  // namespace

LbfgsResult LogisticRegression::fit(const Dataset& data) {
  XPUF_TRACE_SPAN("ml.lr_fit");
  XPUF_REQUIRE(!data.empty(), "LogisticRegression::fit on empty dataset");
  const std::size_t n = data.size();
  const std::size_t d = data.features();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Mean cross-entropy with L2 penalty; the gradient is accumulated in
  // fixed row shards across the thread pool and the shard partials are
  // combined in ascending order, so the objective is bit-identical for any
  // thread count.
  Objective obj = [&](const linalg::Vector& w, linalg::Vector& grad) {
    LossGrad zero;
    zero.grad = linalg::Vector(d);
    LossGrad total = parallel_reduce(
        n, kGradChunk, zero,
        [&](LossGrad& acc, std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            const double* row = data.x.row(r);
            double z = 0.0;
            for (std::size_t c = 0; c < d; ++c) z += row[c] * w[c];
            const double t = data.y[r] >= 0.5 ? 1.0 : 0.0;
            // log(1 + exp(-z)) for t=1, log(1 + exp(z)) for t=0, via softplus.
            acc.loss += t > 0.5 ? softplus(-z) : softplus(z);
            const double err = (sigmoid(z) - t) * inv_n;
            for (std::size_t c = 0; c < d; ++c) acc.grad[c] += err * row[c];
          }
        },
        [](LossGrad& acc, LossGrad&& part) {
          acc.loss += part.loss;
          acc.grad += part.grad;
        });
    double loss = total.loss * inv_n;
    grad = std::move(total.grad);
    for (std::size_t c = 0; c < d; ++c) {
      loss += 0.5 * options_.l2 * w[c] * w[c];
      grad[c] += options_.l2 * w[c];
    }
    return loss;
  };

  LbfgsResult res = minimize_lbfgs(obj, linalg::Vector(d), options_.lbfgs);
  weights_ = res.x;
  auto& registry = MetricsRegistry::global();
  static Counter& iterations = registry.counter("ml.lbfgs_iterations");
  static Counter& evaluations = registry.counter("ml.objective_evaluations");
  iterations.add(res.iterations);
  evaluations.add(res.evaluations);
  return res;
}

double LogisticRegression::predict_probability(std::span<const double> features) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  XPUF_REQUIRE(features.size() == weights_.size(),
               "LogisticRegression feature-count mismatch");
  double z = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) z += weights_[i] * features[i];
  return sigmoid(z);
}

double LogisticRegression::predict(std::span<const double> features) const {
  return predict_probability(features) >= 0.5 ? 1.0 : 0.0;
}

linalg::Vector LogisticRegression::predict_probability(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  linalg::Vector z = linalg::matvec(x, weights_);
  for (double& v : z) v = sigmoid(v);
  return z;
}

}  // namespace xpuf::ml
