#include "ml/logistic_regression.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace xpuf::ml {

LbfgsResult LogisticRegression::fit(const Dataset& data) {
  XPUF_REQUIRE(!data.empty(), "LogisticRegression::fit on empty dataset");
  const std::size_t n = data.size();
  const std::size_t d = data.features();
  const double inv_n = 1.0 / static_cast<double>(n);

  // Mean cross-entropy with L2 penalty; gradient computed in one pass.
  Objective obj = [&](const linalg::Vector& w, linalg::Vector& grad) {
    grad.fill(0.0);
    double loss = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* row = data.x.row(r);
      double z = 0.0;
      for (std::size_t c = 0; c < d; ++c) z += row[c] * w[c];
      const double t = data.y[r] >= 0.5 ? 1.0 : 0.0;
      // log(1 + exp(-z)) for t=1, log(1 + exp(z)) for t=0, via softplus.
      loss += t > 0.5 ? softplus(-z) : softplus(z);
      const double p = sigmoid(z);
      const double err = (p - t) * inv_n;
      for (std::size_t c = 0; c < d; ++c) grad[c] += err * row[c];
    }
    loss *= inv_n;
    for (std::size_t c = 0; c < d; ++c) {
      loss += 0.5 * options_.l2 * w[c] * w[c];
      grad[c] += options_.l2 * w[c];
    }
    return loss;
  };

  LbfgsResult res = minimize_lbfgs(obj, linalg::Vector(d), options_.lbfgs);
  weights_ = res.x;
  return res;
}

double LogisticRegression::predict_probability(std::span<const double> features) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  XPUF_REQUIRE(features.size() == weights_.size(),
               "LogisticRegression feature-count mismatch");
  double z = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i) z += weights_[i] * features[i];
  return sigmoid(z);
}

double LogisticRegression::predict(std::span<const double> features) const {
  return predict_probability(features) >= 0.5 ? 1.0 : 0.0;
}

linalg::Vector LogisticRegression::predict_probability(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "LogisticRegression::predict before fit");
  linalg::Vector z = linalg::matvec(x, weights_);
  for (double& v : z) v = sigmoid(v);
  return z;
}

}  // namespace xpuf::ml
