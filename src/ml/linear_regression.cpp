#include "ml/linear_regression.hpp"

#include "common/error.hpp"

namespace xpuf::ml {

void LinearRegression::fit(const Dataset& data) {
  XPUF_REQUIRE(!data.empty(), "LinearRegression::fit on empty dataset");
  linalg::LeastSquaresOptions ls;
  ls.method = options_.method;
  ls.ridge = options_.ridge;

  if (options_.fit_intercept) {
    linalg::Matrix aug(data.x.rows(), data.x.cols() + 1);
    for (std::size_t r = 0; r < data.x.rows(); ++r) {
      for (std::size_t c = 0; c < data.x.cols(); ++c) aug(r, c) = data.x(r, c);
      aug(r, data.x.cols()) = 1.0;
    }
    auto res = linalg::solve_least_squares(aug, data.y, ls);
    intercept_ = res.coefficients[data.x.cols()];
    coefficients_ = linalg::Vector(data.x.cols());
    for (std::size_t c = 0; c < data.x.cols(); ++c) coefficients_[c] = res.coefficients[c];
    train_r_squared_ = res.r_squared;
  } else {
    auto res = linalg::solve_least_squares(data.x, data.y, ls);
    coefficients_ = std::move(res.coefficients);
    intercept_ = 0.0;
    train_r_squared_ = res.r_squared;
  }
}

double LinearRegression::predict(std::span<const double> features) const {
  XPUF_REQUIRE(fitted(), "LinearRegression::predict before fit");
  XPUF_REQUIRE(features.size() == coefficients_.size(),
               "LinearRegression feature-count mismatch");
  // intercept added after the dot, matching the batched overload below so
  // the two predict paths agree bit for bit.
  return intercept_ + linalg::dot(coefficients_.span(), features);
}

linalg::Vector LinearRegression::predict(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "LinearRegression::predict before fit");
  linalg::Vector out = linalg::matvec(x, coefficients_);
  if (intercept_ != 0.0)
    for (double& v : out) v += intercept_;
  return out;
}

}  // namespace xpuf::ml
