#include "ml/adam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::ml {

Adam::Adam(std::size_t n_params, const AdamOptions& options)
    : options_(options), m_(n_params), v_(n_params) {
  XPUF_REQUIRE(n_params > 0, "Adam needs at least one parameter");
  XPUF_REQUIRE(options.learning_rate > 0.0, "Adam learning rate must be positive");
}

void Adam::step(linalg::Vector& params, const linalg::Vector& gradient) {
  XPUF_REQUIRE(params.size() == m_.size(), "Adam parameter-size mismatch");
  XPUF_REQUIRE(gradient.size() == m_.size(), "Adam gradient-size mismatch");
  ++t_;
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double gi = gradient[i];
    m_[i] = b1 * m_[i] + (1.0 - b1) * gi;
    v_[i] = b2 * v_[i] + (1.0 - b2) * gi * gi;
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= options_.learning_rate *
                 (m_hat / (std::sqrt(v_hat) + options_.epsilon) +
                  options_.weight_decay * params[i]);
  }
}

}  // namespace xpuf::ml
