#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace xpuf::ml {

namespace {
// Fixed row-chunk size for the parallel elementwise/loss passes; constant so
// the partial-sum grid (and every result bit) is thread-count independent.
constexpr std::size_t kRowChunk = 256;

/// Copies one layer's weight block out of the flat parameter vector into an
/// (out x in) row-major matrix so forward/backward are plain GEMM calls.
linalg::Matrix weight_matrix(const linalg::Vector& params, std::size_t offset,
                             std::size_t out, std::size_t in) {
  linalg::Matrix w(out, in);
  const double* src = params.data() + offset;
  for (std::size_t i = 0; i < out; ++i)
    for (std::size_t j = 0; j < in; ++j) w(i, j) = src[i * in + j];
  return w;
}
}  // namespace

Mlp::Mlp(std::size_t n_inputs, MlpOptions options) : options_(std::move(options)) {
  XPUF_REQUIRE(n_inputs > 0, "Mlp needs at least one input");
  layer_sizes_.push_back(n_inputs);
  for (std::size_t h : options_.hidden_layers) {
    XPUF_REQUIRE(h > 0, "Mlp hidden layer of width zero");
    layer_sizes_.push_back(h);
  }
  layer_sizes_.push_back(1);  // single logit output

  std::size_t total = 0;
  for (std::size_t l = 1; l < layer_sizes_.size(); ++l) {
    w_offset_.push_back(total);
    total += layer_sizes_[l] * layer_sizes_[l - 1];
    b_offset_.push_back(total);
    total += layer_sizes_[l];
  }
  params_ = linalg::Vector(total);
  initialize_weights();
}

void Mlp::set_parameters(const linalg::Vector& params) {
  XPUF_REQUIRE(params.size() == params_.size(), "Mlp parameter-count mismatch");
  params_ = params;
}

void Mlp::initialize_weights() {
  Rng rng(options_.seed);
  params_.fill(0.0);
  for (std::size_t l = 1; l < layer_sizes_.size(); ++l) {
    const std::size_t fan_in = layer_sizes_[l - 1];
    const std::size_t fan_out = layer_sizes_[l];
    const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    const std::size_t base = w_offset_[l - 1];
    for (std::size_t i = 0; i < fan_out * fan_in; ++i)
      params_[base + i] = rng.uniform(-bound, bound);
    // Biases start at zero (b_offset_ region already cleared).
  }
}

double Mlp::activate(double z) const {
  switch (options_.activation) {
    case Activation::kTanh: return std::tanh(z);
    case Activation::kRelu: return z > 0.0 ? z : 0.0;
    case Activation::kSigmoid: return sigmoid(z);
  }
  return z;
}

double Mlp::activate_derivative(double activated) const {
  switch (options_.activation) {
    case Activation::kTanh: return 1.0 - activated * activated;
    case Activation::kRelu: return activated > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: return activated * (1.0 - activated);
  }
  return 1.0;
}

void Mlp::forward(const linalg::Matrix& x, const linalg::Vector& params,
                  std::vector<linalg::Matrix>& activations) const {
  const std::size_t n = x.rows();
  const std::size_t layers = layer_sizes_.size();
  activations.assign(layers, linalg::Matrix{});
  activations[0] = x;
  for (std::size_t l = 1; l < layers; ++l) {
    const std::size_t in = layer_sizes_[l - 1];
    const std::size_t out = layer_sizes_[l];
    const double* b = params.data() + b_offset_[l - 1];
    const bool is_output = (l == layers - 1);
    // z = prev . W^T as a transposed GEMM (W rows are contiguous), then a
    // parallel bias-plus-activation sweep.
    const linalg::Matrix w = weight_matrix(params, w_offset_[l - 1], out, in);
    linalg::Matrix a = linalg::matmul_nt(activations[l - 1], w);
    parallel_for(n, kRowChunk, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t r = begin; r < end; ++r) {
        double* arow = a.row(r);
        for (std::size_t i = 0; i < out; ++i) {
          const double z = arow[i] + b[i];
          arow[i] = is_output ? z : activate(z);
        }
      }
    });
    activations[l] = std::move(a);
  }
}

double Mlp::loss_and_gradient(const linalg::Matrix& x, const linalg::Vector& y,
                              const linalg::Vector& params, linalg::Vector& grad) const {
  XPUF_REQUIRE(x.cols() == layer_sizes_.front(), "Mlp input-width mismatch");
  XPUF_REQUIRE(x.rows() == y.size(), "Mlp sample/target mismatch");
  XPUF_REQUIRE(params.size() == params_.size(), "Mlp parameter-count mismatch");
  const std::size_t n = x.rows();
  const std::size_t layers = layer_sizes_.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  std::vector<linalg::Matrix> a;
  forward(x, params, a);

  grad.resize(params.size());
  grad.fill(0.0);

  // BCE-with-logits loss (chunked deterministic reduction) and output delta.
  linalg::Matrix delta(n, 1);
  double loss = parallel_reduce(
      n, kRowChunk, 0.0,
      [&](double& acc, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const double z = a[layers - 1](r, 0);
          const double t = y[r] >= 0.5 ? 1.0 : 0.0;
          acc += t > 0.5 ? softplus(-z) : softplus(z);
          delta(r, 0) = (sigmoid(z) - t) * inv_n;
        }
      },
      [](double& acc, double&& part) { acc += part; });
  loss *= inv_n;

  // Backward pass as matrix products: dW = delta^T . prev is the sharded
  // gradient accumulation (matmul_tn combines fixed row-chunk partials in
  // chunk order), and the propagated delta is a row-parallel GEMM followed
  // by the activation-derivative sweep.
  for (std::size_t l = layers - 1; l >= 1; --l) {
    const std::size_t in = layer_sizes_[l - 1];
    const std::size_t out = layer_sizes_[l];
    double* gw = grad.data() + w_offset_[l - 1];
    double* gb = grad.data() + b_offset_[l - 1];
    const linalg::Matrix& prev = a[l - 1];

    const linalg::Matrix dw = linalg::matmul_tn(delta, prev);  // out x in
    std::copy(dw.raw().begin(), dw.raw().end(), gw);
    // Bias gradient: column sums of delta. O(n * out) — cheap next to the
    // GEMMs, and serial accumulation keeps the order fixed.
    for (std::size_t r = 0; r < n; ++r) {
      const double* drow = delta.row(r);
      for (std::size_t i = 0; i < out; ++i) gb[i] += drow[i];
    }

    if (l > 1) {
      const linalg::Matrix w = weight_matrix(params, w_offset_[l - 1], out, in);
      linalg::Matrix next_delta = linalg::matmul_blocked(delta, w);  // n x in
      parallel_for(n, kRowChunk,
                   [&](std::size_t begin, std::size_t end, std::size_t) {
                     for (std::size_t r = begin; r < end; ++r) {
                       const double* prow = prev.row(r);
                       double* ndrow = next_delta.row(r);
                       for (std::size_t j = 0; j < in; ++j)
                         ndrow[j] *= activate_derivative(prow[j]);
                     }
                   });
      delta = std::move(next_delta);
    }
  }

  // L2 penalty on weights only (not biases), matching scikit-learn's alpha.
  if (options_.l2 > 0.0) {
    for (std::size_t l = 1; l < layers; ++l) {
      const std::size_t count = layer_sizes_[l] * layer_sizes_[l - 1];
      const std::size_t base = w_offset_[l - 1];
      for (std::size_t i = 0; i < count; ++i) {
        loss += 0.5 * options_.l2 * params[base + i] * params[base + i];
        grad[base + i] += options_.l2 * params[base + i];
      }
    }
  }
  return loss;
}

LbfgsResult Mlp::fit(const Dataset& data, const LbfgsOptions& options) {
  XPUF_TRACE_SPAN("ml.mlp_fit");
  XPUF_REQUIRE(!data.empty(), "Mlp::fit on empty dataset");
  Objective obj = [this, &data](const linalg::Vector& p, linalg::Vector& g) {
    return loss_and_gradient(data.x, data.y, p, g);
  };
  LbfgsResult res = minimize_lbfgs(obj, params_, options);
  params_ = res.x;
  auto& registry = MetricsRegistry::global();
  static Counter& iterations = registry.counter("ml.lbfgs_iterations");
  static Counter& evaluations = registry.counter("ml.objective_evaluations");
  iterations.add(res.iterations);
  evaluations.add(res.evaluations);
  return res;
}

double Mlp::fit_adam(const Dataset& data, const MlpAdamOptions& options, Rng& rng) {
  XPUF_TRACE_SPAN("ml.mlp_fit_adam");
  XPUF_REQUIRE(!data.empty(), "Mlp::fit_adam on empty dataset");
  XPUF_REQUIRE(options.batch_size > 0, "Mlp::fit_adam batch size must be positive");
  static Counter& epochs = MetricsRegistry::global().counter("ml.adam_epochs");
  epochs.add(options.epochs);
  Adam adam(params_.size(), options.adam);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  linalg::Vector grad(params_.size());

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += options.batch_size) {
      const std::size_t stop = std::min(order.size(), start + options.batch_size);
      linalg::Matrix bx(stop - start, data.features());
      linalg::Vector by(stop - start);
      for (std::size_t k = start; k < stop; ++k) {
        const std::size_t src = order[k];
        for (std::size_t c = 0; c < data.features(); ++c) bx(k - start, c) = data.x(src, c);
        by[k - start] = data.y[src];
      }
      loss_and_gradient(bx, by, params_, grad);
      adam.step(params_, grad);
    }
  }
  linalg::Vector final_grad(params_.size());
  return loss_and_gradient(data.x, data.y, params_, final_grad);
}

double Mlp::predict_probability(std::span<const double> features) const {
  XPUF_REQUIRE(features.size() == layer_sizes_.front(), "Mlp input-width mismatch");
  linalg::Matrix x(1, features.size());
  for (std::size_t c = 0; c < features.size(); ++c) x(0, c) = features[c];
  std::vector<linalg::Matrix> a;
  forward(x, params_, a);
  return sigmoid(a.back()(0, 0));
}

linalg::Vector Mlp::predict_probability(const linalg::Matrix& x) const {
  XPUF_REQUIRE(x.cols() == layer_sizes_.front(), "Mlp input-width mismatch");
  std::vector<linalg::Matrix> a;
  forward(x, params_, a);
  linalg::Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = sigmoid(a.back()(r, 0));
  return out;
}

linalg::Vector Mlp::predict(const linalg::Matrix& x) const {
  linalg::Vector p = predict_probability(x);
  for (double& v : p) v = v >= 0.5 ? 1.0 : 0.0;
  return p;
}

}  // namespace xpuf::ml
