// Supervised datasets (feature matrix + target vector) with the split and
// shuffle operations the attack/enrollment experiments need.
#pragma once

#include <cstddef>
#include <utility>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace xpuf::ml {

/// Row-sample dataset: X is n_samples x n_features, y is length n_samples.
/// Targets are task-dependent: soft responses in [0,1] for regression,
/// 0/1 labels for classification.
struct Dataset {
  linalg::Matrix x;
  linalg::Vector y;

  std::size_t size() const { return x.rows(); }
  std::size_t features() const { return x.cols(); }
  bool empty() const { return x.rows() == 0; }

  /// Appends one sample in amortized O(n_features); the first append fixes
  /// the feature count.
  void add(std::span<const double> features_row, double target);

  /// Pre-reserves storage for n_samples rows of n_features each, fixing the
  /// feature count if the dataset is still empty. Optional — add() already
  /// grows geometrically — but avoids growth copies when the count is known.
  void reserve(std::size_t n_samples, std::size_t n_features);

  /// Returns the subset given by row indices (copies).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Random split into (train, test) with `train_fraction` of the rows in
  /// the first part. Shuffles with the provided RNG; deterministic per seed.
  std::pair<Dataset, Dataset> split(double train_fraction, Rng& rng) const;

  /// First-n / remainder split without shuffling (the paper's experiments
  /// shuffle challenges up front, so head splits stay unbiased).
  std::pair<Dataset, Dataset> head_split(std::size_t n_train) const;

  /// In-place row shuffle (features and targets together).
  void shuffle(Rng& rng);
};

}  // namespace xpuf::ml
