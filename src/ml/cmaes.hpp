// CMA-ES (covariance matrix adaptation evolution strategy) minimizer.
//
// The optimizer behind Becker's reliability-based attack on XOR arbiter
// PUFs (the paper's ref [9]): the reliability objective is non-smooth and
// non-convex, which is exactly CMA-ES territory. Standard (mu/mu_w, lambda)
// formulation with rank-one + rank-mu covariance updates and cumulative
// step-size adaptation (Hansen's tutorial parameterization).
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "linalg/vector.hpp"

namespace xpuf::ml {

/// Black-box objective: smaller is better. No gradients.
using BlackBoxObjective = std::function<double(const linalg::Vector& x)>;

struct CmaEsOptions {
  std::size_t lambda = 0;          ///< population size; 0 = 4 + 3 ln(n)
  double initial_sigma = 0.5;      ///< initial global step size
  std::size_t max_generations = 300;
  double f_tolerance = 1e-10;      ///< stop when best f stagnates below this
  std::size_t stagnation_window = 30;
  std::uint64_t seed = 1;
};

struct CmaEsResult {
  linalg::Vector x;            ///< best point seen
  double value = 0.0;          ///< objective at x
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  bool converged = false;      ///< stopped on stagnation (vs generation cap)
};

/// Minimizes the objective from `x0`. Throws NumericalError if the
/// objective returns non-finite values for every candidate of a generation.
CmaEsResult minimize_cmaes(const BlackBoxObjective& f, linalg::Vector x0,
                           const CmaEsOptions& options = {});

}  // namespace xpuf::ml
