#include "ml/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace xpuf::ml {

namespace {

using linalg::Vector;

/// State shared by the line search: counts evaluations and evaluates
/// phi(alpha) = f(x + alpha d) together with phi'(alpha) = g . d.
struct LineFunction {
  const Objective& f;
  const Vector& x;
  const Vector& d;
  Vector xtrial;
  Vector gtrial;
  std::size_t* evaluations;

  double operator()(double alpha, double& dphi) {
    xtrial = x;
    linalg::axpy(alpha, d, xtrial);
    const double value = f(xtrial, gtrial);
    ++*evaluations;
    dphi = linalg::dot(gtrial, d);
    return value;
  }
};

/// Cubic interpolation of a step in [lo, hi] from endpoint values/slopes;
/// falls back to bisection when the cubic is degenerate or outside bounds.
double interpolate(double a_lo, double f_lo, double g_lo, double a_hi, double f_hi,
                   double g_hi) {
  const double d1 = g_lo + g_hi - 3.0 * (f_lo - f_hi) / (a_lo - a_hi);
  const double disc = d1 * d1 - g_lo * g_hi;
  if (disc >= 0.0) {
    const double d2 = std::copysign(std::sqrt(disc), a_hi - a_lo);
    double cand = a_hi - (a_hi - a_lo) * (g_hi + d2 - d1) / (g_hi - g_lo + 2.0 * d2);
    const double lo = std::min(a_lo, a_hi), hi = std::max(a_lo, a_hi);
    const double margin = 0.1 * (hi - lo);
    if (std::isfinite(cand) && cand > lo + margin && cand < hi - margin) return cand;
  }
  return 0.5 * (a_lo + a_hi);
}

/// Strong-Wolfe line search (Nocedal & Wright Alg. 3.5/3.6). Returns the
/// accepted step, or 0 if none was found within the evaluation budget.
double line_search(LineFunction& phi, double f0, double dphi0, const LbfgsOptions& opt) {
  const double c1 = opt.wolfe_c1, c2 = opt.wolfe_c2;
  double a_prev = 0.0, f_prev = f0, g_prev = dphi0;
  double alpha = 1.0;
  double a_lo = 0.0, f_lo = f0, g_lo = dphi0;
  double a_hi = 0.0, f_hi = 0.0, g_hi = 0.0;
  bool bracketed = false;
  std::size_t evals = 0;

  // Bracketing phase.
  while (evals < opt.max_line_search) {
    double dphi;
    const double fval = phi(alpha, dphi);
    ++evals;
    if (!std::isfinite(fval)) {
      // Step into a non-finite region: shrink hard and retry.
      alpha *= 0.25;
      if (alpha < 1e-20) return 0.0;
      continue;
    }
    if (fval > f0 + c1 * alpha * dphi0 || (evals > 1 && fval >= f_prev)) {
      a_lo = a_prev; f_lo = f_prev; g_lo = g_prev;
      a_hi = alpha; f_hi = fval; g_hi = dphi;
      bracketed = true;
      break;
    }
    if (std::fabs(dphi) <= -c2 * dphi0) return alpha;  // strong Wolfe satisfied
    if (dphi >= 0.0) {
      a_lo = alpha; f_lo = fval; g_lo = dphi;
      a_hi = a_prev; f_hi = f_prev; g_hi = g_prev;
      bracketed = true;
      break;
    }
    a_prev = alpha; f_prev = fval; g_prev = dphi;
    alpha *= 2.0;
    if (alpha > 1e10) return a_prev;
  }
  if (!bracketed) return 0.0;

  // Zoom phase.
  while (evals < opt.max_line_search) {
    const double a_j = interpolate(a_lo, f_lo, g_lo, a_hi, f_hi, g_hi);
    double dphi;
    const double fval = phi(a_j, dphi);
    ++evals;
    if (!std::isfinite(fval) || fval > f0 + c1 * a_j * dphi0 || fval >= f_lo) {
      a_hi = a_j; f_hi = fval; g_hi = dphi;
    } else {
      if (std::fabs(dphi) <= -c2 * dphi0) return a_j;
      if (dphi * (a_hi - a_lo) >= 0.0) {
        a_hi = a_lo; f_hi = f_lo; g_hi = g_lo;
      }
      a_lo = a_j; f_lo = fval; g_lo = dphi;
    }
    if (std::fabs(a_hi - a_lo) < 1e-16 * std::max(1.0, std::fabs(a_lo))) break;
  }
  // Budget exhausted: accept the best sufficient-decrease point if any.
  return (f_lo < f0 && a_lo > 0.0) ? a_lo : 0.0;
}

}  // namespace

LbfgsResult minimize_lbfgs(const Objective& f, Vector x0, const LbfgsOptions& options) {
  XPUF_REQUIRE(!x0.empty(), "L-BFGS needs a non-empty starting point");
  LbfgsResult res;
  const std::size_t n = x0.size();

  Vector x = std::move(x0);
  Vector g(n);
  double fx = f(x, g);
  res.evaluations = 1;
  if (!std::isfinite(fx) || !linalg::all_finite(g))
    throw NumericalError("L-BFGS: objective is non-finite at the starting point");

  std::deque<Vector> s_hist, y_hist;
  std::deque<double> rho_hist;
  Vector d(n), x_prev(n), g_prev(n);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    res.iterations = iter + 1;
    const double gnorm = linalg::norm_inf(g);
    if (gnorm <= options.gradient_tolerance) {
      res.converged = true;
      res.message = "gradient tolerance reached";
      break;
    }

    // Two-loop recursion: d = -H g.
    d = g;
    std::vector<double> alpha_coef(s_hist.size());
    for (std::size_t i = s_hist.size(); i > 0; --i) {
      const std::size_t k = i - 1;
      alpha_coef[k] = rho_hist[k] * linalg::dot(s_hist[k], d);
      linalg::axpy(-alpha_coef[k], y_hist[k], d);
    }
    if (!s_hist.empty()) {
      // Initial Hessian scaling gamma = s.y / y.y.
      const double sy = linalg::dot(s_hist.back(), y_hist.back());
      const double yy = linalg::dot(y_hist.back(), y_hist.back());
      if (yy > 0.0) d *= sy / yy;
    }
    for (std::size_t k = 0; k < s_hist.size(); ++k) {
      const double beta = rho_hist[k] * linalg::dot(y_hist[k], d);
      linalg::axpy(alpha_coef[k] - beta, s_hist[k], d);
    }
    d *= -1.0;

    double dphi0 = linalg::dot(g, d);
    if (dphi0 >= 0.0) {
      // Not a descent direction (stale curvature): restart with -g.
      s_hist.clear(); y_hist.clear(); rho_hist.clear();
      d = g;
      d *= -1.0;
      dphi0 = linalg::dot(g, d);
    }

    x_prev = x;
    g_prev = g;
    LineFunction phi{f, x_prev, d, Vector(n), Vector(n), &res.evaluations};
    const double alpha = line_search(phi, fx, dphi0, options);
    if (alpha == 0.0) {
      res.message = "line search failed to make progress";
      break;
    }
    x = x_prev;
    linalg::axpy(alpha, d, x);
    const double fx_new = f(x, g);
    ++res.evaluations;

    const double decrease = fx - fx_new;
    fx = fx_new;
    if (decrease >= 0.0 &&
        decrease <= options.value_tolerance * std::max(1.0, std::fabs(fx))) {
      res.converged = true;
      res.message = "value tolerance reached";
      break;
    }

    // Update curvature history.
    Vector s = x;
    s -= x_prev;
    Vector yv = g;
    yv -= g_prev;
    const double sy = linalg::dot(s, yv);
    if (sy > 1e-12 * linalg::norm2(s) * linalg::norm2(yv)) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(yv));
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
  }

  if (res.message.empty()) res.message = "iteration limit reached";
  res.x = std::move(x);
  res.value = fx;
  res.gradient_norm = linalg::norm_inf(g);
  return res;
}

}  // namespace xpuf::ml
