// Ordinary-least-squares / ridge linear regression.
//
// This is the paper's enrollment model (Sec 4): measured *soft* responses
// (fractional flip rates) are regressed on the transformed challenge
// features; the fitted coefficients are proportional to the PUF's delay
// parameters and the fitted values are the "model predicted soft responses"
// that the threshold scheme classifies.
#pragma once

#include "linalg/least_squares.hpp"
#include "ml/dataset.hpp"

namespace xpuf::ml {

struct LinearRegressionOptions {
  bool fit_intercept = false;  ///< PUF features already carry a bias term
  double ridge = 0.0;
  linalg::LeastSquaresMethod method = linalg::LeastSquaresMethod::kAuto;
};

class LinearRegression {
 public:
  explicit LinearRegression(LinearRegressionOptions options = {})
      : options_(options) {}

  /// Fits coefficients to the dataset; throws on underdetermined input.
  void fit(const Dataset& data);

  /// Predicted value for one feature row.
  double predict(std::span<const double> features) const;

  /// Predicted values for all rows of a matrix.
  linalg::Vector predict(const linalg::Matrix& x) const;

  bool fitted() const { return !coefficients_.empty(); }
  const linalg::Vector& coefficients() const { return coefficients_; }
  double intercept() const { return intercept_; }
  double train_r_squared() const { return train_r_squared_; }

 private:
  LinearRegressionOptions options_;
  linalg::Vector coefficients_;
  double intercept_ = 0.0;
  double train_r_squared_ = 0.0;
};

}  // namespace xpuf::ml
