#include "ml/scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf::ml {

void StandardScaler::fit(const linalg::Matrix& x) {
  XPUF_REQUIRE(x.rows() > 0, "StandardScaler::fit needs at least one row");
  const std::size_t n = x.rows(), d = x.cols();
  mean_ = linalg::Vector(d);
  scale_ = linalg::Vector(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < n; ++r) m += x(r, c);
    m /= static_cast<double>(n);
    double v = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double dlt = x(r, c) - m;
      v += dlt * dlt;
    }
    v /= static_cast<double>(n);
    mean_[c] = m;
    scale_[c] = v > 0.0 ? std::sqrt(v) : 1.0;
  }
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "StandardScaler::transform before fit");
  XPUF_REQUIRE(x.cols() == mean_.size(), "StandardScaler column-count mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = (x(r, c) - mean_[c]) / scale_[c];
  return out;
}

linalg::Matrix StandardScaler::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

linalg::Matrix StandardScaler::inverse_transform(const linalg::Matrix& x) const {
  XPUF_REQUIRE(fitted(), "StandardScaler::inverse_transform before fit");
  XPUF_REQUIRE(x.cols() == mean_.size(), "StandardScaler column-count mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = x(r, c) * scale_[c] + mean_[c];
  return out;
}

}  // namespace xpuf::ml
