// Evaluation metrics for the attack and enrollment experiments.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/vector.hpp"

namespace xpuf::ml {

/// 2x2 confusion counts for binary labels (prediction rows, truth columns).
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  double accuracy() const;
  double precision() const;  ///< TP / (TP + FP); 0 when undefined
  double recall() const;     ///< TP / (TP + FN); 0 when undefined
  double f1() const;         ///< harmonic mean; 0 when undefined
};

/// Fraction of equal entries in two 0/1 label vectors.
double accuracy(std::span<const double> predicted, std::span<const double> truth);

/// Confusion counts from 0/1 label vectors.
ConfusionMatrix confusion(std::span<const double> predicted, std::span<const double> truth);

/// Mean squared error.
double mse(std::span<const double> predicted, std::span<const double> truth);

/// Root mean squared error.
double rmse(std::span<const double> predicted, std::span<const double> truth);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> truth);

/// Binary cross-entropy of probabilities in (0,1) against 0/1 targets,
/// clipped at 1e-12 for numerical safety.
double log_loss(std::span<const double> probabilities, std::span<const double> truth);

/// Coefficient of determination (1 - RSS/TSS); 0 when the truth is constant.
double r_squared(std::span<const double> predicted, std::span<const double> truth);

}  // namespace xpuf::ml
