// Adam first-order optimizer state — the stochastic alternative to L-BFGS
// for minibatch MLP training (used by the attack ablations and as a
// fallback when full-batch training does not fit the time budget).
#pragma once

#include <cstddef>

#include "linalg/vector.hpp"

namespace xpuf::ml {

struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style) L2 decay
};

/// Holds first/second moment estimates for one flat parameter vector and
/// applies bias-corrected updates in place.
class Adam {
 public:
  Adam(std::size_t n_params, const AdamOptions& options = {});

  /// Applies one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(linalg::Vector& params, const linalg::Vector& gradient);

  std::size_t steps_taken() const { return t_; }
  const AdamOptions& options() const { return options_; }

 private:
  AdamOptions options_;
  linalg::Vector m_;
  linalg::Vector v_;
  std::size_t t_ = 0;
};

}  // namespace xpuf::ml
