// L2-regularized logistic regression trained with L-BFGS.
//
// This is the conventional single-arbiter-PUF modeling attack from the
// literature the paper cites [2-5], and the hard-response enrollment
// baseline the paper's Sec 4 argues *against* (ablation bench 1 compares it
// with the soft-response linear regression).
#pragma once

#include "ml/dataset.hpp"
#include "ml/lbfgs.hpp"

namespace xpuf::ml {

struct LogisticRegressionOptions {
  double l2 = 1e-6;  ///< ridge penalty on the weights
  LbfgsOptions lbfgs;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  /// Fits to 0/1 targets; returns the optimizer result for diagnostics.
  LbfgsResult fit(const Dataset& data);

  /// The training objective at `w`: mean cross-entropy + L2 penalty, with
  /// the gradient written into `grad`. This is exactly the function fit()
  /// minimizes (GEMM-backed, fixed shard grid), exposed so tests can pin its
  /// value and gradient against a scalar reference implementation.
  double objective(const Dataset& data, const linalg::Vector& w,
                   linalg::Vector& grad) const;

  /// P(label == 1 | features).
  double predict_probability(std::span<const double> features) const;

  /// Hard 0/1 prediction at threshold 0.5.
  double predict(std::span<const double> features) const;

  /// Probabilities for all rows.
  linalg::Vector predict_probability(const linalg::Matrix& x) const;

  bool fitted() const { return !weights_.empty(); }
  const linalg::Vector& weights() const { return weights_; }

 private:
  LogisticRegressionOptions options_;
  linalg::Vector weights_;
};

}  // namespace xpuf::ml
