#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xpuf {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XPUF_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  XPUF_REQUIRE(n > 0, "uniform_below(0) is undefined");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: deterministic across platforms and accurate in
  // the tails (unlike table-driven methods truncated for speed).
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Rng::normal(double mean, double stddev) {
  XPUF_REQUIRE(stddev >= 0.0, "normal() needs a non-negative stddev");
  return mean + stddev * normal();
}

std::uint64_t Rng::binomial_inversion(std::uint64_t n, double p) {
  // CDF inversion with the pmf recurrence
  //   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p).
  // Exact starting point pmf(0) = (1-p)^n via expm1-safe log1p, so the
  // all-zeros probability that defines "100% stable" is correct.
  const double log_q = std::log1p(-p);
  double pmf = std::exp(static_cast<double>(n) * log_q);
  double cdf = pmf;
  const double odds = p / (1.0 - p);
  const double u = uniform();
  std::uint64_t k = 0;
  while (u > cdf && k < n) {
    pmf *= static_cast<double>(n - k) / static_cast<double>(k + 1) * odds;
    cdf += pmf;
    ++k;
    // Guard against pmf underflow stalling the walk in the far tail.
    if (pmf < 1e-300 && cdf < u) return k;
  }
  return k;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  XPUF_REQUIRE(p >= 0.0 && p <= 1.0, "binomial probability out of range");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double np = static_cast<double>(n) * p;
  if (np < 30.0) return binomial_inversion(n, p);

  // Bulk regime: normal approximation with continuity correction. The exact
  // tail mass at 0 or n is below exp(-60) here, so the approximation cannot
  // corrupt stability statistics.
  const double mean = np;
  const double sd = std::sqrt(np * (1.0 - p));
  double x = std::floor(mean + sd * normal() + 0.5);
  if (x < 0.0) x = 0.0;
  const double nd = static_cast<double>(n);
  if (x > nd) x = nd;
  return static_cast<std::uint64_t>(x);
}

Rng Rng::fork() {
  // A fresh 64-bit draw seeds a splitmix-expanded child; splitmix64 is a
  // bijective mixer so distinct draws give distinct, decorrelated children.
  return Rng(next_u64());
}

}  // namespace xpuf
