// RAII tracing spans over the metrics registry.
//
// XPUF_TRACE_SPAN("db.issue_batch") at the top of a function registers the
// label once (thread-safe function-local static), then every execution adds
// one call and its wall-clock to that label's SpanStat. Call counts are a
// deterministic function of the workload; seconds are observability-only
// and must never reach test-compared output (see common/metrics.hpp).
//
// Timing flows exclusively through Timer (common/timer.hpp) — the xpuf_lint
// `raw-timing` rule keeps std::chrono::steady_clock out of the rest of the
// tree so no ad-hoc clock reads creep into measurement paths.
#pragma once

#include "common/metrics.hpp"
#include "common/timer.hpp"

namespace xpuf {

/// Scoped timer that aggregates into a SpanStat on destruction. Cheap to
/// construct (one steady_clock read via Timer); safe on any thread.
class TraceSpan {
 public:
  explicit TraceSpan(SpanStat& stat) : stat_(&stat) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SpanStat* stat_;
  Timer timer_;
};

}  // namespace xpuf

#define XPUF_TRACE_CONCAT_INNER(a, b) a##b
#define XPUF_TRACE_CONCAT(a, b) XPUF_TRACE_CONCAT_INNER(a, b)

/// Times the enclosing scope under `label` in the global registry.
#define XPUF_TRACE_SPAN(label)                                              \
  static ::xpuf::SpanStat& XPUF_TRACE_CONCAT(xpuf_span_stat_, __LINE__) =   \
      ::xpuf::MetricsRegistry::global().span(label);                        \
  const ::xpuf::TraceSpan XPUF_TRACE_CONCAT(xpuf_trace_span_, __LINE__)(    \
      XPUF_TRACE_CONCAT(xpuf_span_stat_, __LINE__))
