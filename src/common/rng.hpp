// Deterministic, high-quality pseudo-random number generation.
//
// All stochastic components of the library (process variation, thermal
// noise, challenge generation, ML initialization) draw from xoshiro256++
// streams seeded via splitmix64. Every experiment takes an explicit seed so
// results are exactly reproducible, and independent subsystems derive
// decorrelated child streams via Rng::fork().
#pragma once

#include <cstdint>
#include <vector>

namespace xpuf {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state and to
/// derive child seeds. Passes BigCrush as a 64-bit mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <random> adaptors, but the built-in distributions below are
/// deterministic across platforms (libstdc++'s std::normal_distribution is
/// not guaranteed to produce identical streams across versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9d8f7e6c5b4a3920ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Rejection-free for practical n via Lemire's
  /// multiply-shift method.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Standard normal deviate (Ziggurat-free polar method; deterministic).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fair coin.
  bool bernoulli() { return (next_u64() >> 63) != 0; }

  /// Bernoulli with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exact Binomial(n, p) sample. Uses inversion for small n*p (and the
  /// mirrored tail for p close to 1) and the BTPE-style normal-rejection
  /// approximation otherwise. Tail probabilities are exact where it matters
  /// for stability analysis: Pr(X == 0) and Pr(X == n) are honored to within
  /// double precision for any n up to 2^31.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Derive an independent child generator. Children obtained from distinct
  /// parent draws have decorrelated streams.
  Rng fork();

  /// One draw to key a StreamFamily: advances this generator exactly once,
  /// regardless of how many child streams the family later hands out. This
  /// is the anchor of the deterministic-parallelism convention (see
  /// common/parallel.hpp): serial code that consumed a data-dependent number
  /// of draws per work item cannot be parallelized reproducibly, but one
  /// base draw + per-item keyed children can.
  std::uint64_t fork_base() { return next_u64(); }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  // Cached second deviate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;

  std::uint64_t poisson_knuth(double lambda);
  std::uint64_t binomial_inversion(std::uint64_t n, double p);
};

/// A deterministic family of decorrelated child streams keyed by item index.
///
/// stream(i) is a pure function of (base, i): unlike Rng::fork(), handing
/// out a child does not mutate any state, so parallel work items can derive
/// their streams in any order — chunked across any number of threads — and
/// always see exactly the draws the serial loop would have given them.
/// Distinct keys go through two rounds of splitmix64 mixing (one here, one
/// in the Rng seed expansion), which decorrelates neighboring indices.
class StreamFamily {
 public:
  /// `base` is typically one Rng::fork_base() draw from a parent stream.
  explicit StreamFamily(std::uint64_t base) : base_(base) {}

  /// The child stream for work item `index`.
  Rng stream(std::uint64_t index) const {
    SplitMix64 sm(base_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    return Rng(sm.next());
  }

  std::uint64_t base() const { return base_; }

 private:
  std::uint64_t base_;
};

}  // namespace xpuf
