// Tiny declarative command-line parser shared by benches and examples.
//
// Every reproduction binary exposes the same vocabulary: --challenges,
// --trials, --seed, --chips, ... plus the XPUF_BENCH_SCALE=full environment
// override that restores paper-scale workloads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xpuf {

/// Parsed command line: --key value / --key=value / --flag.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Scale presets shared by the reproduction benches. `reduced` keeps the
/// whole bench suite under ~10 minutes; `full` is the paper's workload
/// (1,000,000 challenges x 100,000 evaluations, 10 chips).
struct BenchScale {
  std::uint64_t challenges;      ///< random challenges per experiment
  std::uint64_t trials;          ///< repeated evaluations per challenge (K)
  std::uint64_t chips;           ///< chips in the simulated fab lot
  std::uint64_t attack_max_train;///< largest attack training-set size
  bool full;                     ///< true when paper scale was requested
  /// Execution lanes for the global thread pool (--threads / XPUF_THREADS;
  /// defaults to hardware_concurrency). Thread count never changes results
  /// — see common/parallel.hpp.
  std::uint64_t threads;
};

/// Resolves the scale: --scale full/reduced beats XPUF_BENCH_SCALE, which
/// beats the reduced default. Individual --challenges/--trials/--chips/
/// --threads flags override preset fields.
BenchScale resolve_scale(const Cli& cli);

}  // namespace xpuf
