#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace xpuf {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("XPUF_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v = env;
  if (v == "error") return LogLevel::kError;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}();

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[xpuf %s] %s\n", level_name(level), message.c_str());
}

}  // namespace xpuf
