#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/table.hpp"

namespace xpuf {

namespace metrics_detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace metrics_detail

namespace {

std::uint64_t sum_cells(const std::array<metrics_detail::Cell, metrics_detail::kShards>& cells) {
  std::uint64_t total = 0;
  for (const auto& c : cells) total += c.value.load(std::memory_order_relaxed);
  return total;
}

void zero_cells(std::array<metrics_detail::Cell, metrics_detail::kShards>& cells) {
  for (auto& c : cells) c.value.store(0, std::memory_order_relaxed);
}

/// Shortest round-trippable representation; JSON has no inf/nan, so clamp
/// the pathological cases to null-free sentinels rather than emit them.
std::string json_double(double v) {
  if (!(v == v)) return "0";            // NaN
  if (v > 1e308 || v < -1e308) return v > 0 ? "1e308" : "-1e308";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::uint64_t Counter::total() const { return sum_cells(cells_); }

void Counter::reset() { zero_cells(cells_); }

// buckets_ is sized in the init list: vector of atomic-holding arrays is
// neither copyable nor movable, so it must be built at its final size.
Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  XPUF_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket][metrics_detail::shard_index()].value.fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(sum_cells(b));
  return out;
}

std::uint64_t Histogram::total() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += sum_cells(b);
  return total;
}

double Histogram::quantile(double p) const { return histogram_quantile(bounds_, counts(), p); }

void Histogram::reset() {
  for (auto& b : buckets_) zero_cells(b);
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts, double p) {
  XPUF_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
  XPUF_REQUIRE(counts.size() == bounds.size() + 1,
               "histogram counts must have bounds + 1 entries");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Locate the bucket holding rank p*total, then interpolate linearly across
  // the bucket's span. The first bucket interpolates up from 0; the overflow
  // bucket has no upper edge, so it clamps to the highest finite bound (the
  // standard histogram_quantile convention — quantiles beyond the last bound
  // are not resolvable from fixed buckets).
  const double rank = p * static_cast<double>(total);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double cumulative = static_cast<double>(below + counts[i]);
    if (cumulative >= rank) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double into = (rank - static_cast<double>(below)) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    below += counts[i];
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void SpanStat::record(double seconds) {
  const std::size_t shard = metrics_detail::shard_index();
  calls_[shard].value.fetch_add(1, std::memory_order_relaxed);
  const double nanos = seconds > 0.0 ? seconds * 1e9 : 0.0;
  nanos_[shard].value.fetch_add(static_cast<std::uint64_t>(nanos),
                                std::memory_order_relaxed);
}

std::uint64_t SpanStat::calls() const { return sum_cells(calls_); }

double SpanStat::seconds() const {
  return static_cast<double>(sum_cells(nanos_)) * 1e-9;
}

void SpanStat::reset() {
  zero_cells(calls_);
  zero_cells(nanos_);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    XPUF_REQUIRE(slot->bounds() == bounds,
                 "histogram re-registered with different bucket bounds");
  }
  return *slot;
}

SpanStat& MetricsRegistry::span(const std::string& label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = spans_[label];
  if (!slot) slot = std::make_unique<SpanStat>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->total();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->get();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = {h->bounds(), h->counts(), h->total()};
  for (const auto& [name, s] : spans_) snap.spans[name] = {s->calls(), s->seconds()};
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : spans_) s->reset();
}

std::string MetricsSnapshot::to_json(const std::string& name, std::uint64_t threads,
                                     bool include_timing) const {
  std::string out = "{\"name\": \"" + name + "\", \"threads\": " +
                    std::to_string(threads) + ",\n \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters) {
    out += std::string(first ? "" : ", ") + "\"" + k + "\": " + std::to_string(v);
    first = false;
  }
  out += "},\n \"gauges\": {";
  first = true;
  for (const auto& [k, v] : gauges) {
    out += std::string(first ? "" : ", ") + "\"" + k + "\": " + json_double(v);
    first = false;
  }
  out += "},\n \"histograms\": {";
  first = true;
  for (const auto& [k, h] : histograms) {
    out += std::string(first ? "" : ", ") + "\"" + k + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i)
      out += (i ? ", " : "") + json_double(h.bounds[i]);
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      out += (i ? ", " : "") + std::to_string(h.counts[i]);
    out += "], \"total\": " + std::to_string(h.total) + "}";
    first = false;
  }
  out += "},\n \"spans\": {";
  first = true;
  for (const auto& [k, s] : spans) {
    out += std::string(first ? "" : ", ") + "\"" + k +
           "\": {\"calls\": " + std::to_string(s.calls);
    if (include_timing) out += ", \"seconds\": " + json_double(s.seconds);
    out += "}";
    first = false;
  }
  out += "}}\n";
  return out;
}

void MetricsSnapshot::print() const {
  Table t("Metrics snapshot");
  t.set_header({"metric", "kind", "value"});
  for (const auto& [k, v] : counters)
    t.add_row({k, "counter", std::to_string(v)});
  for (const auto& [k, v] : gauges) t.add_row({k, "gauge", Table::num(v, 3)});
  for (const auto& [k, h] : histograms) {
    std::string shape;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string bound =
          i < h.bounds.size() ? "<=" + Table::num(h.bounds[i], 0) : "inf";
      shape += (i ? " " : "") + bound + ":" + std::to_string(h.counts[i]);
    }
    t.add_row({k, "histogram", shape});
  }
  for (const auto& [k, s] : spans)
    t.add_row({k, "span", std::to_string(s.calls) + " calls, " +
                              Table::num(s.seconds * 1e3, 3) + " ms"});
  t.print();
}

}  // namespace xpuf
