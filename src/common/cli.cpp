#include "common/cli.hpp"

#include <cstdlib>
#include <thread>

#include "common/error.hpp"

namespace xpuf {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" form: consume the next token unless it is another flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ParseError("option --" + name + " expects an integer, got '" + it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ParseError("option --" + name + " expects a number, got '" + it->second + "'");
  }
}

BenchScale resolve_scale(const Cli& cli) {
  std::string scale = cli.get("scale", "");
  if (scale.empty()) {
    const char* env = std::getenv("XPUF_BENCH_SCALE");
    if (env != nullptr) scale = env;
  }
  const bool full = (scale == "full" || scale == "paper");

  BenchScale s{};
  if (full) {
    s = {1'000'000, 100'000, 10, 100'000, true, 0};
  } else {
    s = {100'000, 10'000, 3, 20'000, false, 0};
  }
  s.challenges = static_cast<std::uint64_t>(
      cli.get_int("challenges", static_cast<std::int64_t>(s.challenges)));
  s.trials = static_cast<std::uint64_t>(
      cli.get_int("trials", static_cast<std::int64_t>(s.trials)));
  s.chips = static_cast<std::uint64_t>(
      cli.get_int("chips", static_cast<std::int64_t>(s.chips)));
  s.attack_max_train = static_cast<std::uint64_t>(
      cli.get_int("attack-max-train", static_cast<std::int64_t>(s.attack_max_train)));

  // Thread count: --threads beats XPUF_THREADS beats hardware_concurrency
  // (0 = let the pool pick hardware_concurrency).
  std::int64_t threads = 0;
  if (const char* env = std::getenv("XPUF_THREADS"); env != nullptr && *env != '\0')
    threads = std::atoll(env);
  threads = cli.get_int("threads", threads);
  if (threads <= 0) threads = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = 1;
  s.threads = static_cast<std::uint64_t>(threads);
  return s;
}

}  // namespace xpuf
