// Minimal CSV writing/reading for benchmark artifacts.
//
// Benches write their series to bench_out/*.csv so the paper's plots can be
// regenerated with any plotting tool; the reader exists so tests can verify
// round trips and examples can reload recorded sweeps.
#pragma once

#include <string>
#include <vector>

namespace xpuf {

/// Streams rows of string/double cells to a CSV file. Cells containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row. Parent
  /// directories must exist; create_directories() below helps benches.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the header
  void write_cells(const std::vector<std::string>& cells);
};

/// Parsed CSV contents: a header plus data rows of raw string cells.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws ParseError if absent.
  std::size_t column(const std::string& name) const;
};

/// Reads an entire CSV file (RFC 4180 quoting).
CsvData read_csv(const std::string& path);

/// Creates the directory (and parents) if missing. Returns the path.
std::string ensure_directory(const std::string& path);

}  // namespace xpuf
