// Wall-clock timing for benches (training-speed tables in the paper).
#pragma once

#include <chrono>

namespace xpuf {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace xpuf
