#include "common/trace.hpp"

namespace xpuf {

// Out of line so instrumented translation units don't inline the recording
// path everywhere; the hot cost is one steady_clock read at each end.
TraceSpan::~TraceSpan() { stat_->record(timer_.seconds()); }

}  // namespace xpuf
