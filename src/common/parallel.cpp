#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace xpuf {

namespace {
// True inside a pool worker (or a body run by the calling thread); nested
// parallel_for calls detect this and degrade to serial chunk execution.
thread_local bool t_inside_body = false;
}  // namespace

/// One parallel_for invocation. Workers keep a shared_ptr to the job they
/// joined, so a worker that wakes late (after the job completed and a new
/// one started) can only touch its own, already-drained job.
struct ThreadPool::Job {
  ParallelBody body;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t n_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable job_done;
  std::shared_ptr<Job> current;
  std::uint64_t generation = 0;
  bool stopping = false;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t threads) : state_(std::make_unique<State>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  lanes_ = threads;
  State& s = *state_;
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    s.workers.emplace_back([this, &s] {
      std::uint64_t seen = 0;
      for (;;) {
        std::shared_ptr<Job> job;
        {
          std::unique_lock<std::mutex> lock(s.mutex);
          s.work_ready.wait(lock, [&] { return s.stopping || s.generation != seen; });
          if (s.stopping) return;
          seen = s.generation;
          job = s.current;
        }
        if (!job) continue;
        run_chunks(*job);
        if (job->completed.load(std::memory_order_acquire) == job->n_chunks) {
          std::lock_guard<std::mutex> lock(s.mutex);
          s.job_done.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  State& s = *state_;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.stopping = true;
  }
  s.work_ready.notify_all();
  for (auto& w : s.workers) w.join();
}

void ThreadPool::run_chunks(Job& job) {
  const bool was_inside = t_inside_body;
  t_inside_body = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = c * job.chunk;
      const std::size_t end = std::min(job.n, begin + job.chunk);
      try {
        job.body(begin, end, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
  t_inside_body = was_inside;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk, const ParallelBody& body) {
  XPUF_REQUIRE(chunk > 0, "parallel_for needs a positive chunk size");
  if (n == 0) return;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;

  // Serial path: single lane, a single chunk, or a nested call from inside a
  // body. The chunk grid (and therefore every result) is identical to the
  // parallel path.
  if (lanes_ <= 1 || n_chunks == 1 || t_inside_body) {
    const bool was_inside = t_inside_body;
    t_inside_body = true;
    try {
      for (std::size_t c = 0; c < n_chunks; ++c)
        body(c * chunk, std::min(n, (c + 1) * chunk), c);
    } catch (...) {
      t_inside_body = was_inside;
      throw;
    }
    t_inside_body = was_inside;
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = body;
  job->n = n;
  job->chunk = chunk;
  job->n_chunks = n_chunks;

  State& s = *state_;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.current = job;
    ++s.generation;
  }
  s.work_ready.notify_all();

  run_chunks(*job);  // the caller is a lane too

  {
    std::unique_lock<std::mutex> lock(s.mutex);
    s.job_done.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->n_chunks;
    });
    if (s.current == job) s.current.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (slot && slot->size() == threads) return;
  slot = std::make_unique<ThreadPool>(threads);
}

std::size_t ThreadPool::global_threads() { return global().size(); }

void parallel_for(std::size_t n, std::size_t chunk, const ParallelBody& body) {
  ThreadPool::global().parallel_for(n, chunk, body);
}

}  // namespace xpuf
