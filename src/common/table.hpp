// Aligned console tables for benchmark output.
//
// Every bench target prints the paper's figure/table as a plain-text table
// through this class so all reproduction output has a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xpuf {

/// Column-aligned table with a title, a header row, and formatted cells.
/// Numeric cells are formatted by the caller (the precision that matters is
/// experiment-specific). Rendering pads every column to its widest cell.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets (replaces) the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows may be ragged; missing cells render empty.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with fixed precision.
  static std::string num(double v, int precision = 4);

  /// Convenience: formats a double in scientific notation.
  static std::string sci(double v, int precision = 3);

  /// Convenience: formats a percentage (v in [0,1] -> "12.34%").
  static std::string pct(double v, int precision = 2);

  /// Renders to the stream with a title line, rule, header, rule, rows.
  void print(std::ostream& os) const;

  /// Renders to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xpuf
