#include "common/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace xpuf {

namespace {
bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw ParseError("cannot open CSV for writing: " + path);
  file_ = f;
  write_cells(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  FILE* f = static_cast<FILE*>(file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string q = quote(cells[i]);
    if (i > 0) std::fputc(',', f);
    std::fwrite(q.data(), 1, q.size(), f);
  }
  std::fputc('\n', f);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) { write_cells(cells); }

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    out.push_back(os.str());
  }
  write_cells(out);
}

std::size_t CsvData::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw ParseError("CSV column not found: " + name);
}

CsvData read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open CSV for reading: " + path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  CsvData data;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    if (data.header.empty()) data.header = row;
    else data.rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_quotes = true; row_has_content = true; break;
      case ',': end_cell(); row_has_content = true; break;
      case '\r': break;
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) end_row();
        break;
      default: cell += c; row_has_content = true; break;
    }
  }
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  if (in_quotes) throw ParseError("unterminated quoted cell in " + path);
  return data;
}

std::string ensure_directory(const std::string& path) {
  std::filesystem::create_directories(path);
  return path;
}

}  // namespace xpuf
