// Leveled logging to stderr. Benches use INFO for progress on long sweeps;
// the level is controlled by XPUF_LOG (error|warn|info|debug), default warn,
// so test and bench stdout stays clean for the harness.
#pragma once

#include <sstream>
#include <string>

namespace xpuf {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold (resolved once from XPUF_LOG).
LogLevel log_level();

/// Override the threshold programmatically (tests).
void set_log_level(LogLevel level);

/// Emits a line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
struct LogStream {
  explicit LogStream(LogLevel l) : level(l) {}
  ~LogStream() { log_line(level, os.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  LogLevel level;
  std::ostringstream os;
};
}  // namespace detail

}  // namespace xpuf

#define XPUF_LOG(level_enum)                                   \
  ::xpuf::detail::LogStream(::xpuf::LogLevel::level_enum).os
#define XPUF_INFO() XPUF_LOG(kInfo)
#define XPUF_WARN() XPUF_LOG(kWarn)
#define XPUF_DEBUG() XPUF_LOG(kDebug)
