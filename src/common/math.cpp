#include "common/math.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace xpuf {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;
}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

void normal_cdf_batch(std::span<const double> xs, std::span<double> out) {
  XPUF_REQUIRE(xs.size() == out.size(), "normal_cdf_batch needs equal-length spans");
  // The exact expression normal_cdf uses, element by element: the batch API
  // exists so callers make one call per block, not so results can drift.
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = 0.5 * std::erfc(-xs[i] * kInvSqrt2);
}

double log_normal_cdf(double x) {
  if (x > -8.0) return std::log(normal_cdf(x));
  // Asymptotic expansion of the Mills ratio for the far lower tail:
  // Phi(x) ~ pdf(x)/|x| * (1 - 1/x^2 + 3/x^4 - 15/x^6).
  const double x2 = x * x;
  const double series = 1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2);
  return -0.5 * x2 - std::log(-x) - 0.5 * std::log(2.0 * M_PI) + std::log(series);
}

double normal_quantile(double p) {
  XPUF_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile needs p in (0, 1)");
  // Acklam's piecewise rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step drives relative error below 1e-13.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double unanimity_probability(std::uint64_t n, double p) {
  XPUF_REQUIRE(p >= 0.0 && p <= 1.0, "unanimity_probability needs p in [0, 1]");
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  // (1-p)^n + p^n via logs to keep the far tails meaningful.
  double all_zero = (p >= 1.0) ? 0.0 : std::exp(nd * std::log1p(-p));
  double all_one = (p <= 0.0) ? 0.0 : std::exp(nd * std::log(p));
  return all_zero + all_one;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  XPUF_REQUIRE(xs.size() == ys.size(), "correlation needs equal-length spans");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double clamp(double x, double lo, double hi) {
  XPUF_REQUIRE(lo <= hi, "clamp needs lo <= hi");
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace xpuf
