// Scalar special functions used throughout the library.
//
// The silicon noise model maps arbiter delay differences to flip
// probabilities through the standard normal CDF; enrollment and the
// stability analysis need its inverse. Both are implemented to near
// double precision so far-tail stability probabilities (1e-12 and below)
// are meaningful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace xpuf {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal CDF Phi(x), accurate in both tails (built on erfc).
double normal_cdf(double x);

/// Batched Phi over a span: out[i] = normal_cdf(xs[i]), bit-for-bit. One
/// straight-line loop over the same erfc expression, so the batched
/// evaluation core (sim/linear.hpp) and the scalar hot paths can never
/// disagree. Spans must have equal length; in-place (out == xs) is fine.
void normal_cdf_batch(std::span<const double> xs, std::span<double> out);

/// log(Phi(x)); stable for very negative x where Phi underflows.
double log_normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; relative error < 1e-13 over (0, 1)).
double normal_quantile(double p);

/// Numerically stable logistic function 1 / (1 + exp(-x)).
double sigmoid(double x);

/// log(1 + exp(x)) without overflow.
double softplus(double x);

/// Probability that a Binomial(n, p) sample equals 0 or n, i.e. that n
/// repeated evaluations of a response with one-probability p are unanimous.
/// This is the exact per-challenge "100% stable" probability.
double unanimity_probability(std::uint64_t n, double p);

/// Mean of a span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Pearson correlation of two equal-length spans; 0 if either is constant.
double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// Clamp helper mirroring std::clamp but tolerant of lo == hi.
double clamp(double x, double lo, double hi);

}  // namespace xpuf
