// Error handling primitives shared across the library.
//
// The library distinguishes programmer errors (precondition violations,
// reported via XPUF_REQUIRE and std::invalid_argument / std::logic_error)
// from runtime failures (numerical breakdown, I/O), reported via
// std::runtime_error subclasses.
#pragma once

#include <stdexcept>
#include <string>

namespace xpuf {

/// Thrown when a numerical routine cannot make progress (e.g. a Cholesky
/// factorization of a matrix that is not positive definite, or a line search
/// that cannot satisfy the Wolfe conditions on a non-finite objective).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulated hardware access-control rule is violated, e.g.
/// reading an individual PUF tap after the enrollment fuses were blown.
class AccessError : public std::runtime_error {
 public:
  explicit AccessError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed external input (CSV parsing, CLI arguments).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a wire-protocol frame cannot be decoded (bad magic, version
/// skew, truncation, checksum failure). The serving layer catches this per
/// frame and counts it — a hostile network must never crash the service.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace xpuf

/// Precondition check that is always active (not compiled out in Release):
/// the library is used interactively for experiments, so fail loudly.
#define XPUF_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::xpuf::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
