// Deterministic parallel execution layer.
//
// The paper's workloads are embarrassingly parallel at enormous scale (10
// chips x 1M challenges x 100k evaluations x 9 corners ~ 1 trillion CRPs),
// but naive threading would make results depend on the thread count because
// stochastic work items would consume a shared RNG stream in scheduling
// order. The convention used throughout this repo fixes that:
//
//   1. Work is split into CHUNKS whose boundaries depend only on the problem
//      size (never on the thread count).
//   2. Every RNG-consuming item derives a private child stream keyed by its
//      item index (see StreamFamily in common/rng.hpp), so the random draws
//      an item sees are a pure function of (base seed, item index).
//   3. Floating-point reductions accumulate per-chunk partials and combine
//      them in ascending chunk order (parallel_reduce).
//
// Under these rules the output of every parallel loop is bit-identical for
// 1, 2, or 64 threads — verified by tests/test_parallel.cpp.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace xpuf {

/// Body of a parallel loop: processes items [begin, end) of chunk
/// `chunk_index`. Chunks are disjoint; bodies run concurrently and must not
/// write shared state except into per-item or per-chunk slots.
using ParallelBody =
    std::function<void(std::size_t begin, std::size_t end, std::size_t chunk_index)>;

/// A persistent pool of worker threads with a chunked parallel_for. The
/// calling thread participates in the work, so a pool of size T uses T
/// execution lanes total (T - 1 workers + the caller).
class ThreadPool {
 public:
  /// `threads` execution lanes; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (>= 1).
  std::size_t size() const { return lanes_; }

  /// Runs body over [0, n) split into ceil(n / chunk) chunks. Blocks until
  /// every chunk finished. The first exception thrown by a body is rethrown
  /// here (remaining chunks are skipped best-effort). Nested calls from
  /// inside a body execute serially to avoid deadlock.
  void parallel_for(std::size_t n, std::size_t chunk, const ParallelBody& body);

  /// The process-wide pool used by the free functions below. Created on
  /// first use with hardware_concurrency lanes.
  static ThreadPool& global();

  /// Resizes the global pool (benches: --threads N). Not safe while a
  /// parallel_for on the global pool is in flight.
  static void set_global_threads(std::size_t threads);

  /// Lanes of the global pool without forcing its creation beyond need.
  static std::size_t global_threads();

 private:
  struct Job;
  struct State;
  std::unique_ptr<State> state_;
  std::size_t lanes_;

  static void run_chunks(Job& job);
};

/// parallel_for on the global pool.
void parallel_for(std::size_t n, std::size_t chunk, const ParallelBody& body);

/// Deterministic parallel reduction on the global pool: each chunk fills a
/// fresh accumulator (copy of `init`), and the partials are combined with
/// `combine` in ascending chunk order after the loop — so the result is a
/// pure function of the chunk grid, never of the thread count.
template <typename Acc, typename ChunkBody, typename Combine>
Acc parallel_reduce(std::size_t n, std::size_t chunk, Acc init, const ChunkBody& body,
                    const Combine& combine) {
  if (n == 0) return init;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  std::vector<Acc> partials(n_chunks, init);
  parallel_for(n, chunk,
               [&](std::size_t begin, std::size_t end, std::size_t chunk_index) {
                 body(partials[chunk_index], begin, end);
               });
  Acc out = std::move(partials.front());
  for (std::size_t c = 1; c < n_chunks; ++c) combine(out, std::move(partials[c]));
  return out;
}

}  // namespace xpuf
