#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace xpuf {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (100.0 * v) << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  if (total < title_.size()) total = title_.size();

  auto rule = [&os, total] { os << std::string(total, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };

  os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
}

void Table::print() const { print(std::cout); }

}  // namespace xpuf
