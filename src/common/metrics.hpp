// Process-wide operational metrics for the authentication pipeline.
//
// The paper's protocol (Fig 7) is judged by operational counters — selector
// draws per issued batch, mismatches under the zero-HD criterion, replay
// rejections — and the production north star (millions of authentications)
// needs those numbers visible without attaching a profiler. MetricsRegistry
// holds named counters, gauges, and fixed-bucket histograms; hot paths cache
// a reference once (`static Counter& c = ...`) and record through per-thread
// shards, so `parallel_for` bodies can count without contention and without
// perturbing the deterministic execution contract (common/parallel.hpp):
// recording never draws randomness, never blocks, and totals are pure sums —
// identical for any thread count.
//
// Determinism rule for consumers: counts, gauge values, and bucket shapes
// are reproducible and may appear in test-visible output; span wall-clock
// seconds are not and must stay out of any compared artifact (snapshot
// serialization takes an `include_timing` switch for exactly this reason).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xpuf {

namespace metrics_detail {

/// Per-metric shard count. Threads map onto slots by registration order, so
/// the first kShards threads never share a cache line; later threads reuse
/// slots (still correct — cells are atomic — just contended).
constexpr std::size_t kShards = 32;

/// This thread's stable shard slot.
std::size_t shard_index();

/// One cache line per shard so concurrent recorders never false-share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace metrics_detail

/// Monotonic event count, sharded per thread. add() is safe anywhere,
/// including inside parallel_for bodies.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[metrics_detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards (snapshot-time merge).
  std::uint64_t total() const;

  void reset();

 private:
  std::array<metrics_detail::Cell, metrics_detail::kShards> cells_{};
};

/// Last-writer-wins instantaneous value (ledger sizes, device counts).
/// Intended for serial sections; concurrent set() is safe but which write
/// survives is unspecified.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bound[i]; one
/// implicit overflow bucket catches the rest. Bounds are fixed at creation
/// so the bucket SHAPE is part of the metric's identity and snapshots are
/// comparable across runs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket totals (bounds().size() + 1 entries) merged over shards.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total() const;

  /// Estimated p-quantile (0 <= p <= 1) of the observed distribution, by
  /// linear interpolation within the bucket holding the target rank (the
  /// Prometheus histogram_quantile convention: the first bucket interpolates
  /// up from 0, the overflow bucket clamps to the highest finite bound).
  /// Returns 0.0 on an empty histogram.
  double quantile(double p) const;

  void reset();

 private:
  std::vector<double> bounds_;
  /// buckets_[bucket][shard].
  std::vector<std::array<metrics_detail::Cell, metrics_detail::kShards>> buckets_;
};

/// Aggregated scoped-timer statistics for one label: how often the span ran
/// and how much wall-clock it accumulated. Filled by TraceSpan
/// (common/trace.hpp); call counts are deterministic, seconds are not.
class SpanStat {
 public:
  void record(double seconds);

  std::uint64_t calls() const;
  double seconds() const;

  void reset();

 private:
  std::array<metrics_detail::Cell, metrics_detail::kShards> calls_{};
  std::array<metrics_detail::Cell, metrics_detail::kShards> nanos_{};
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t total = 0;
};

/// Quantile over already-merged (bounds, counts) — the same estimator
/// Histogram::quantile uses, usable on a HistogramSnapshot after the live
/// histogram was reset.
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts, double p);

struct SpanSnapshot {
  std::uint64_t calls = 0;
  double seconds = 0.0;
};

/// Point-in-time merge of every registered metric, keyed by name (sorted —
/// serialization order is deterministic).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanSnapshot> spans;

  /// One JSON object (same family as the bench_out/<name>_timing.json
  /// records: top-level "name"/"threads" plus the metric sections). With
  /// `include_timing` false, span seconds are omitted so the output is a
  /// pure function of the workload — the form tests may compare.
  std::string to_json(const std::string& name = "", std::uint64_t threads = 0,
                      bool include_timing = true) const;

  /// Human-readable dump (benches: --metrics).
  void print() const;
};

/// Name -> metric registry. Registration (the name lookup) takes a mutex;
/// recording through the returned reference is lock-free, so hot paths do
/// the lookup once into a function-local static. References stay valid for
/// the life of the process; reset() zeroes values but never unregisters.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Naming convention: "<area>.<noun>", e.g. "auth.replay_rejected".
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram requires identical bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  SpanStat& span(const std::string& label);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (tests isolate sections with this).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SpanStat>> spans_;
};

}  // namespace xpuf
