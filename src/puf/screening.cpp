#include "puf/screening.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"

namespace xpuf::puf {

namespace {

/// Rows per parallel_for chunk when evaluating a block tile. Chunking is
/// bit-invisible (each output cell is an independent ascending dot), so this
/// only balances scheduling overhead against load spread.
constexpr std::size_t kEvalRowChunk = 64;

}  // namespace

// Pure accounting: every (tried, accepted) pair is legal, including zeros.
// xpuf-lint: allow(require-guard)
void record_screening(std::size_t tried, std::size_t accepted) {
  auto& registry = MetricsRegistry::global();
  static Counter& tried_counter = registry.counter("selection.candidates_tried");
  static Counter& accepted_counter = registry.counter("selection.accepted");
  static Histogram& per_batch = registry.histogram(
      "selection.batch_candidates", {10.0, 100.0, 1'000.0, 10'000.0, 100'000.0, 1'000'000.0});
  tried_counter.add(tried);
  accepted_counter.add(accepted);
  per_batch.observe(static_cast<double>(tried));
}

ChallengeScreener::ChallengeScreener(const ModelView& view, std::size_t n_pufs,
                                     ScreeningOptions options)
    : view_(&view), n_pufs_(n_pufs), options_(options) {
  XPUF_REQUIRE(!view.empty(), "screener needs a non-empty model view");
  XPUF_REQUIRE(n_pufs >= 1 && n_pufs <= view.puf_count(), "screener n_pufs out of range");
  XPUF_REQUIRE(options.block >= 1, "screening block must hold at least one candidate");
  thresholds_.reserve(n_pufs);
  std::vector<sim::DeviceLinearView> devices;
  devices.reserve(n_pufs);
  for (std::size_t p = 0; p < n_pufs; ++p) {
    thresholds_.push_back(view.adjusted_thresholds(p));
    const std::span<const double> w = view.weights(p);
    // sigma is irrelevant here: screening consumes only the raw linear
    // product (delay_differences), never the noise CDF.
    devices.push_back(sim::DeviceLinearView{
        linalg::Vector(std::vector<double>(w.begin(), w.end())), 1.0});
  }
  chip_view_ = sim::ChipLinearView(std::move(devices));
}

void ChallengeScreener::candidate_into(Challenge& out, std::size_t stages, Rng& rng) {
  XPUF_REQUIRE(stages >= 1, "a challenge needs at least one stage");
  out.resize(stages);
  for (std::size_t base = 0; base < stages; base += 64) {
    const std::uint64_t word = rng.next_u64();
    const std::size_t bits = std::min<std::size_t>(64, stages - base);
    for (std::size_t j = 0; j < bits; ++j)
      out[base + j] = static_cast<std::uint8_t>((word >> j) & 1u);
  }
}

ChallengeScreener::Outcome ChallengeScreener::screen(const StreamFamily& family,
                                                     std::uint64_t first_index,
                                                     std::size_t count,
                                                     std::size_t max_attempts,
                                                     const Sink& sink) {
  XPUF_REQUIRE(count >= 1, "screening quota must be positive");
  XPUF_REQUIRE(sink != nullptr, "screening needs a sink");
  Outcome out = options_.batched
                    ? screen_batched(family, first_index, count, max_attempts, sink)
                    : screen_serial(family, first_index, count, max_attempts, sink);
  out.next_index = first_index + out.tried;
  return out;
}

// The reference walk the batched mode is bit-identical to: one candidate at
// a time, one feature row, n ascending dots. Kept deliberately scalar as the
// oracle for the A/B bench and the equivalence suite. Params are validated
// by screen().  xpuf-lint: guarded-by(candidate_into)
ChallengeScreener::Outcome ChallengeScreener::screen_serial(
    const StreamFamily& family, std::uint64_t first_index, std::size_t count,
    std::size_t max_attempts, const Sink& sink) {
  Outcome out;
  const std::size_t stages = view_->stages();
  const std::size_t features = stages + 1;
  std::vector<double> phi(features);
  std::vector<double> raw(n_pufs_);
  Challenge candidate;
  while (out.accepted < count && out.tried < max_attempts) {
    Rng rng = family.stream(first_index + out.tried);
    candidate_into(candidate, stages, rng);
    ++out.tried;
    sim::feature_fill(candidate, phi.data());
    bool stable = true;
    for (std::size_t p = 0; p < n_pufs_ && stable; ++p) {
      const std::span<const double> w = view_->weights(p);
      double acc = 0.0;
      for (std::size_t k = 0; k < features; ++k) acc += phi[k] * w[k];
      raw[p] = acc;
      stable = thresholds_[p].classify(acc) != StableClass::kUnstable;
    }
    if (!stable) continue;
    // The early-exit above never fires for a stable candidate, so every
    // raw[p] is populated here.
    ++out.stable;
    bool bit = false;
    for (std::size_t p = 0; p < n_pufs_; ++p) bit ^= raw[p] > 0.5;
    if (sink(std::move(candidate), bit)) ++out.accepted;
  }
  out.filled = out.accepted >= count;
  return out;
}

// Params are validated by screen().  xpuf-lint: guarded-by(candidate_into)
ChallengeScreener::Outcome ChallengeScreener::screen_batched(
    const StreamFamily& family, std::uint64_t first_index, std::size_t count,
    std::size_t max_attempts, const Sink& sink) {
  Outcome out;
  const std::size_t stages = view_->stages();
  // Geometric block ramp: start near the expected candidate demand of a
  // small quota, grow toward options_.block. Purely a cost knob — candidate
  // j's bits depend only on its stream index, so the block partition is
  // invisible in the issued sequence.
  std::size_t ramp = std::min(options_.block, std::max<std::size_t>(8, 2 * count));
  while (out.accepted < count && out.tried < max_attempts) {
    const std::size_t want = std::min(ramp, max_attempts - out.tried);
    ramp = std::min(options_.block, ramp * 2);
    candidates_.resize(want);
    for (std::size_t i = 0; i < want; ++i) {
      Rng rng = family.stream(first_index + out.tried + i);
      candidate_into(candidates_[i], stages, rng);
    }
    block_.assign(candidates_);
    raw_.resize(want * n_pufs_);
    // One register-blocked weight product per tile; each output cell is the
    // same ascending-index dot as the serial walk (sim/linear contract).
    parallel_for(want, kEvalRowChunk,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   chip_view_.delay_differences_into(block_, begin, end,
                                                     raw_.data() + begin * n_pufs_);
                 });
    for (std::size_t i = 0; i < want && out.accepted < count; ++i) {
      ++out.tried;
      const double* row = raw_.data() + i * n_pufs_;
      bool stable = true;
      for (std::size_t p = 0; p < n_pufs_ && stable; ++p)
        stable = thresholds_[p].classify(row[p]) != StableClass::kUnstable;
      if (!stable) continue;
      ++out.stable;
      bool bit = false;
      for (std::size_t p = 0; p < n_pufs_; ++p) bit ^= row[p] > 0.5;
      if (sink(std::move(candidates_[i]), bit)) ++out.accepted;
    }
  }
  out.filled = out.accepted >= count;
  return out;
}

}  // namespace xpuf::puf
