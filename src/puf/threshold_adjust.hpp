// Threshold-level adjustment (paper Sec 5, Figs 9 and 11).
//
// Raw training thresholds can mis-classify CRPs that were never measured, or
// that drift at other voltage/temperature corners. The paper's remedy is to
// scale Thr('0') down by beta0 and Thr('1') up by beta1 — starting from 1.00
// and stepping until no CRP the model selects as stable is unstable in the
// evaluation measurements. Evaluation data may span several corners; the
// betas found against the full V/T grid are the deployment values.
#pragma once

#include <vector>

#include "puf/enrollment.hpp"

namespace xpuf::puf {

/// Evaluation measurements for one corner: soft responses of every PUF for a
/// challenge list (soft[puf][challenge]).
struct EvaluationBlock {
  std::vector<Challenge> challenges;
  std::vector<std::vector<double>> soft;
  sim::Environment environment;
};

struct BetaSearchConfig {
  double step = 0.01;      ///< the paper adjusts in 0.01 increments
  double min_beta0 = 0.05; ///< search floor (gives up below this)
  double max_beta1 = 4.0;  ///< search ceiling
  /// When true (default) a "violation" additionally includes stable-but-
  /// wrong-valued predictions (a stable-'0' classification whose measured
  /// soft response is 1.00) — required for the zero-Hamming-distance
  /// authentication criterion.
  bool require_correct_value = true;
};

struct BetaSearchResult {
  BetaFactors betas;
  std::size_t violations_before = 0;  ///< unstable-selected CRPs at beta = 1
  std::size_t violations_after = 0;   ///< remaining (0 unless search hit a bound)
  bool converged = false;             ///< all violations filtered out
};

/// Finds the common beta pair for one chip over the given evaluation blocks.
/// Challenges may repeat across blocks (same challenge at several corners).
BetaSearchResult find_betas(const ServerModel& model,
                            const std::vector<EvaluationBlock>& blocks,
                            const BetaSearchConfig& config = {});

/// The paper deploys one beta pair for the whole lot: the most conservative
/// values over a sample of chips (min beta0, max beta1).
BetaFactors conservative_betas(const std::vector<BetaFactors>& per_chip);

/// Measures an evaluation block for a chip at a corner (enrollment-phase
/// tap access required).
EvaluationBlock measure_evaluation_block(const sim::XorPufChip& chip,
                                         const std::vector<Challenge>& challenges,
                                         const sim::Environment& env,
                                         std::uint64_t trials, Rng& rng);

}  // namespace xpuf::puf
