#include "puf/model.hpp"

#include "common/error.hpp"

namespace xpuf::puf {

double ArbiterPufModel::predict_raw(const Challenge& challenge) const {
  XPUF_REQUIRE(!empty(), "predict on an empty model");
  XPUF_REQUIRE(challenge.size() + 1 == weights_.size(), "challenge length mismatch");
  // Inline the feature transform without materializing phi, but accumulate
  // in ASCENDING index order: phi entries are exact +/-1, so summing
  // w_0 phi_0, w_1 phi_1, ... reproduces the span/GEMM accumulation order
  // bit for bit — the batched evaluation core's equivalence contract.
  // phi_0 is the full suffix product; phi_{i+1} = phi_i * (1 - 2 c_i).
  double sign = 1.0;
  for (const auto bit : challenge) sign *= bit ? -1.0 : 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < challenge.size(); ++i) {
    sum += weights_[i] * sign;
    sign *= challenge[i] ? -1.0 : 1.0;
  }
  return sum + weights_[challenge.size()];  // constant feature last
}

double ArbiterPufModel::predict_raw(std::span<const double> phi) const {
  XPUF_REQUIRE(!empty(), "predict on an empty model");
  XPUF_REQUIRE(phi.size() == weights_.size(), "feature length mismatch");
  return linalg::dot(weights_.span(), phi);
}

bool ArbiterPufModel::predict_response(const Challenge& challenge) const {
  return predict_raw(challenge) > 0.5;
}

bool ArbiterPufModel::predict_response(std::span<const double> phi) const {
  return predict_raw(phi) > 0.5;
}

double ArbiterPufModel::agreement(const ArbiterPufModel& a, const ArbiterPufModel& b,
                                  const std::vector<Challenge>& sample) {
  XPUF_REQUIRE(!sample.empty(), "agreement needs a non-empty sample");
  std::size_t same = 0;
  for (const auto& c : sample)
    if (a.predict_response(c) == b.predict_response(c)) ++same;
  return static_cast<double>(same) / static_cast<double>(sample.size());
}

const ArbiterPufModel& XorPufModel::puf(std::size_t i) const {
  XPUF_REQUIRE(i < pufs_.size(), "PUF index out of range");
  return pufs_[i];
}

bool XorPufModel::predict_response(const Challenge& challenge) const {
  XPUF_REQUIRE(!pufs_.empty(), "predict on an empty XOR model");
  bool out = false;
  for (const auto& p : pufs_) out ^= p.predict_response(challenge);
  return out;
}

}  // namespace xpuf::puf
