// Persistence of the server-side enrollment database.
//
// The paper's protocol stores per-PUF delay parameters and thresholds "in
// the server database" (Sec 3, refs [4, 6-7]). This module serializes a
// ServerModel to a self-describing CSV file (one row per PUF: weights,
// thresholds, fit stats; one header row carrying chip id and betas) and
// loads it back bit-exactly, so enrollment and authentication can run in
// different processes — as they would in a real deployment.
#pragma once

#include <string>

#include "puf/enrollment.hpp"

namespace xpuf::puf {

/// Writes the model to `path`. Overwrites. Throws ParseError on I/O error.
void save_server_model(const ServerModel& model, const std::string& path);

/// Loads a model previously written by save_server_model. Validates the
/// format version and shape; throws ParseError on any mismatch.
ServerModel load_server_model(const std::string& path);

}  // namespace xpuf::puf
