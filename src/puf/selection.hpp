// Stable-challenge selection strategies.
//
// ModelBasedSelector is the paper's proposal (Fig 7): the server draws
// random challenges and keeps those whose predicted soft responses are
// stable on ALL n internal PUFs — no device access needed, works for
// challenges never measured during enrollment.
//
// MeasurementBasedSelector is the prior-art baseline [1]: challenges are
// kept only if the *measured* soft responses are 100% stable, which needs
// fused tap access and per-challenge testing (and therefore cannot predict
// unmeasured challenges, the inefficiency the paper calls out for large n).
#pragma once

#include <cstdint>
#include <vector>

#include "puf/enrollment.hpp"
#include "puf/screening.hpp"

namespace xpuf::puf {

/// A selected challenge batch plus the server's expected XOR responses.
struct SelectionResult {
  std::vector<Challenge> challenges;
  std::vector<bool> expected_responses;
  std::size_t candidates_tried = 0;  ///< random draws consumed
  bool filled = false;               ///< quota reached within the attempt cap

  /// Selection yield: fraction of tried candidates that passed.
  double yield() const {
    return candidates_tried == 0
               ? 0.0
               : static_cast<double>(challenges.size()) /
                     static_cast<double>(candidates_tried);
  }
};

class ModelBasedSelector {
 public:
  /// Uses the first `n_pufs` enrolled PUFs (the XOR width under test).
  /// `options` tunes the screening walk (block size, batched vs the serial
  /// reference) without changing the issued sequence.
  ModelBasedSelector(const ServerModel& model, std::size_t n_pufs,
                     ScreeningOptions options = {});

  /// Draws random challenges until `count` stable ones are found or
  /// `max_attempts` candidates were tried. Consumes exactly one fork_base()
  /// draw from `rng` regardless of the walk's length.
  SelectionResult select(std::size_t count, Rng& rng,
                         std::size_t max_attempts = 10'000'000) const;

  /// Filters an existing challenge list (used by the yield benches).
  SelectionResult filter(const std::vector<Challenge>& candidates) const;

 private:
  const ServerModel* model_;
  std::size_t n_pufs_;
  ScreeningOptions options_;
};

class MeasurementBasedSelector {
 public:
  /// Measures through the fused taps at one corner with `trials` per CRP.
  MeasurementBasedSelector(const sim::XorPufChip& chip, sim::Environment env,
                           std::uint64_t trials, std::size_t n_pufs);

  SelectionResult select(std::size_t count, Rng& rng,
                         std::size_t max_attempts = 10'000'000) const;

  SelectionResult filter(const std::vector<Challenge>& candidates, Rng& rng) const;

 private:
  const sim::XorPufChip* chip_;
  sim::Environment env_;
  std::uint64_t trials_;
  std::size_t n_pufs_;
};

}  // namespace xpuf::puf
