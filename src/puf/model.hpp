// Analytic (server/attacker-side) PUF models.
//
// An ArbiterPufModel is a learned weight vector in the linear additive delay
// model; an XorPufModel XORs the sign predictions of n of them. During
// enrollment the server fits one ArbiterPufModel per internal PUF from soft
// responses (paper Sec 4); during authentication it predicts responses and
// stability classes from these models alone — it never touches the device
// internals again.
#pragma once

#include <vector>

#include "linalg/vector.hpp"
#include "puf/transform.hpp"

namespace xpuf::puf {

class ArbiterPufModel {
 public:
  ArbiterPufModel() = default;
  explicit ArbiterPufModel(linalg::Vector weights) : weights_(std::move(weights)) {}

  bool empty() const { return weights_.empty(); }
  std::size_t stages() const { return weights_.empty() ? 0 : weights_.size() - 1; }
  const linalg::Vector& weights() const { return weights_; }

  /// Raw linear prediction w . phi(c). When the model was fit by regressing
  /// soft responses on phi, this is the paper's "model predicted soft
  /// response": centered at 0.5 but with a wider range whose excess encodes
  /// the delay-difference magnitude (Fig 8).
  double predict_raw(const Challenge& challenge) const;

  /// Same from a precomputed feature row.
  double predict_raw(std::span<const double> phi) const;

  /// Hard response prediction: raw value above the 0.5 center.
  bool predict_response(const Challenge& challenge) const;
  bool predict_response(std::span<const double> phi) const;

  /// Fraction of challenges on which two models agree, over a sample.
  static double agreement(const ArbiterPufModel& a, const ArbiterPufModel& b,
                          const std::vector<Challenge>& sample);

 private:
  linalg::Vector weights_;
};

class XorPufModel {
 public:
  XorPufModel() = default;
  explicit XorPufModel(std::vector<ArbiterPufModel> pufs) : pufs_(std::move(pufs)) {}

  std::size_t puf_count() const { return pufs_.size(); }
  const ArbiterPufModel& puf(std::size_t i) const;

  /// XOR of the n individual hard predictions.
  bool predict_response(const Challenge& challenge) const;

 private:
  std::vector<ArbiterPufModel> pufs_;
};

}  // namespace xpuf::puf
