#include "puf/stability.hpp"

#include <limits>

#include "common/error.hpp"

namespace xpuf::puf {

ThresholdPair derive_thresholds(std::span<const double> predicted,
                                std::span<const double> measured) {
  XPUF_REQUIRE(predicted.size() == measured.size(),
               "derive_thresholds needs paired predictions and measurements");
  XPUF_REQUIRE(!predicted.empty(), "derive_thresholds on empty data");
  // Thr('0'): lowest prediction among CRPs with any '1' flips observed.
  // Thr('1'): highest prediction among CRPs with any '0' flips observed.
  double thr0 = std::numeric_limits<double>::infinity();
  double thr1 = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (measured[i] > 0.0 && predicted[i] < thr0) thr0 = predicted[i];
    if (measured[i] < 1.0 && predicted[i] > thr1) thr1 = predicted[i];
  }
  return finalize_thresholds(thr0, thr1);
}

// Raw extrema carry their own "absent" encoding (infinities), so every input
// is legal.
ThresholdPair finalize_thresholds(double thr0, double thr1) {
  // Degenerate training sets (all measured stable on one side) fall back to
  // the 0.5 center — the most conservative classification boundary.
  if (!(thr0 < std::numeric_limits<double>::infinity())) thr0 = 0.5;
  if (!(thr1 > -std::numeric_limits<double>::infinity())) thr1 = 0.5;
  // Crossed thresholds can only arise when the training set has no unstable
  // band at all (e.g. two perfectly stable CRPs); the stable regions would
  // overlap, so collapse to the conservative center instead.
  if (thr0 > thr1) {
    thr0 = 0.5;
    thr1 = 0.5;
  }
  return {thr0, thr1};
}

// Every span length is legal, including empty.  xpuf-lint: allow(require-guard)
ClassCounts classify_all(const ThresholdPair& thresholds,
                         std::span<const double> predicted) {
  ClassCounts counts;
  for (double p : predicted) {
    switch (thresholds.classify(p)) {
      case StableClass::kStable0: ++counts.stable0; break;
      case StableClass::kUnstable: ++counts.unstable; break;
      case StableClass::kStable1: ++counts.stable1; break;
    }
  }
  return counts;
}

// Empty input is legal and handled explicitly.  xpuf-lint: allow(require-guard)
double measured_stable_fraction(std::span<const double> soft_responses) {
  if (soft_responses.empty()) return 0.0;
  std::size_t stable = 0;
  for (double s : soft_responses)
    if (measured_stable(s)) ++stable;
  return static_cast<double>(stable) / static_cast<double>(soft_responses.size());
}

}  // namespace xpuf::puf
