// Lockdown-style CRP budgeting (Yu et al. [7]) — the second related-work
// mitigation the paper discusses: CRPs are only obtainable with the
// server's permission, so an attacker cannot accumulate a training set.
//
// This module models the server-side interface ledger: every challenge
// issued to a device is debited against a per-device budget, and the gate
// refuses to release more once the budget that would enable a modeling
// attack is exhausted. (The paper's criticism — "requires complicated
// system level support" — is visible here as the state the server must
// persist per device forever.)
#pragma once

#include <cstdint>
#include <map>

#include "common/error.hpp"

namespace xpuf::puf {

struct LockdownPolicy {
  /// Lifetime CRP budget per device id. The paper's Fig 4 suggests ~100k
  /// CRPs break n < 10; a safe budget sits well below the attack knee.
  std::uint64_t lifetime_crp_budget = 10'000;
};

class LockdownGate {
 public:
  explicit LockdownGate(LockdownPolicy policy) : policy_(policy) {}

  const LockdownPolicy& policy() const { return policy_; }

  /// Requests permission to release `count` CRPs for a device. Returns true
  /// and debits the budget when allowed; false (no state change) otherwise.
  bool authorize(std::uint64_t device_id, std::uint64_t count);

  /// CRPs still available to a device.
  std::uint64_t remaining(std::uint64_t device_id) const;

  /// Total CRPs ever released to a device.
  std::uint64_t issued(std::uint64_t device_id) const;

 private:
  LockdownPolicy policy_;
  std::map<std::uint64_t, std::uint64_t> issued_;
};

}  // namespace xpuf::puf
