#include "puf/extensions/noise_bifurcation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "puf/transform.hpp"

namespace xpuf::puf {

BifurcationTranscript run_bifurcation_exchange(const sim::XorPufChip& chip,
                                               const NoiseBifurcationConfig& config,
                                               const sim::Environment& env, Rng& rng) {
  XPUF_REQUIRE(config.group_size >= 1, "bifurcation group size must be >= 1");
  XPUF_REQUIRE(config.groups >= 1, "bifurcation needs at least one group");
  BifurcationTranscript transcript;
  transcript.groups.reserve(config.groups);
  for (std::size_t g = 0; g < config.groups; ++g) {
    BifurcationGroup group;
    group.challenges.reserve(config.group_size);
    for (std::size_t i = 0; i < config.group_size; ++i)
      group.challenges.push_back(random_challenge(chip.stages(), rng));
    const std::size_t chosen =
        static_cast<std::size_t>(rng.uniform_below(config.group_size));
    group.response = chip.xor_response(group.challenges[chosen], env, rng);
    transcript.groups.push_back(std::move(group));
  }
  return transcript;
}

double verify_bifurcation(const ServerModel& model, std::size_t n_pufs,
                          const BifurcationTranscript& transcript) {
  XPUF_REQUIRE(!transcript.groups.empty(), "empty bifurcation transcript");
  std::size_t passing = 0;
  for (const auto& group : transcript.groups) {
    bool any = false;
    for (const auto& c : group.challenges)
      if (model.predict_xor(c, n_pufs) == group.response) any = true;
    if (any) ++passing;
  }
  return static_cast<double>(passing) / static_cast<double>(transcript.groups.size());
}

double bifurcation_accept_threshold(std::size_t group_size) {
  XPUF_REQUIRE(group_size >= 1, "bifurcation group size must be >= 1");
  const double counterfeit =
      1.0 - std::pow(0.5, static_cast<double>(group_size));
  return 0.5 * (1.0 + counterfeit);
}

ml::Dataset bifurcation_attack_dataset(
    const std::vector<BifurcationTranscript>& observed) {
  XPUF_REQUIRE(!observed.empty(), "no transcripts observed");
  std::size_t rows = 0;
  std::size_t stages = 0;
  for (const auto& t : observed)
    for (const auto& g : t.groups) {
      rows += g.challenges.size();
      if (!g.challenges.empty()) stages = g.challenges.front().size();
    }
  XPUF_REQUIRE(rows > 0, "transcripts contain no challenges");

  ml::Dataset data;
  data.x = linalg::Matrix(rows, stages + 1);
  data.y = linalg::Vector(rows);
  std::size_t r = 0;
  for (const auto& t : observed)
    for (const auto& g : t.groups)
      for (const auto& c : g.challenges) {
        feature_vector_into(c, data.x.row(r));
        data.y[r] = g.response ? 1.0 : 0.0;
        ++r;
      }
  return data;
}

}  // namespace xpuf::puf
