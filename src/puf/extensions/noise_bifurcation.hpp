// Noise-bifurcation authentication (Yu et al. [6]) — the related-work
// baseline the paper contrasts its scheme against (Sec 1).
//
// Idea: the device never reveals which challenge a returned response bit
// belongs to. Challenges are sent in groups of d; the device evaluates all
// of them and returns the response of ONE secretly chosen member per group.
// An eavesdropper must attribute the bit to every member (label noise
// (d-1)/(2d)), which degrades modeling attacks. The cost — the paper's
// criticism — is that the server must relax its acceptance test: it can
// only check that the bit matches at least one member's predicted response,
// so a counterfeit passes a single group with probability 1 - 2^-d and many
// more CRPs are needed for the same confidence.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "puf/enrollment.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

struct BifurcationGroup {
  std::vector<Challenge> challenges;  ///< d member challenges
  bool response = false;              ///< the one bit the device returned
};

struct NoiseBifurcationConfig {
  std::size_t group_size = 2;  ///< d; 1 disables bifurcation
  std::size_t groups = 64;     ///< groups exchanged per authentication
};

/// One authentication transcript: everything an eavesdropper sees.
struct BifurcationTranscript {
  std::vector<BifurcationGroup> groups;
};

/// Device-side response generation: evaluates every member at the corner and
/// returns the response of a uniformly chosen member per group.
BifurcationTranscript run_bifurcation_exchange(const sim::XorPufChip& chip,
                                               const NoiseBifurcationConfig& config,
                                               const sim::Environment& env, Rng& rng);

/// Server-side verification: a group passes when the returned bit matches
/// the model-predicted response of at least one member. Returns the fraction
/// of passing groups (genuine device -> ~1.0; counterfeit -> ~1 - 2^-d).
double verify_bifurcation(const ServerModel& model, std::size_t n_pufs,
                          const BifurcationTranscript& transcript);

/// Acceptance threshold between the genuine expectation (1.0) and the
/// counterfeit expectation (1 - 2^-d), placed at the midpoint.
double bifurcation_accept_threshold(std::size_t group_size);

/// Eavesdropper's training data: each group's bit attributed to every
/// member challenge (the classic attack surface of the scheme; label noise
/// (d-1)/(2d) in expectation).
ml::Dataset bifurcation_attack_dataset(const std::vector<BifurcationTranscript>& observed);

}  // namespace xpuf::puf
