#include "puf/extensions/lockdown.hpp"

namespace xpuf::puf {

bool LockdownGate::authorize(std::uint64_t device_id, std::uint64_t count) {
  XPUF_REQUIRE(count > 0, "lockdown authorization for zero CRPs");
  const std::uint64_t used = issued(device_id);
  // Subtraction form: `used + count` can wrap uint64 for a huge request and
  // slip past the budget. `used <= budget` is a class invariant, so the
  // difference below never underflows.
  if (count > policy_.lifetime_crp_budget - used) return false;
  issued_[device_id] = used + count;
  return true;
}

std::uint64_t LockdownGate::remaining(std::uint64_t device_id) const {
  const std::uint64_t used = issued(device_id);
  return policy_.lifetime_crp_budget - used;
}

std::uint64_t LockdownGate::issued(std::uint64_t device_id) const {
  const auto it = issued_.find(device_id);
  return it == issued_.end() ? 0 : it->second;
}

}  // namespace xpuf::puf
