// Authentication phase of the model-assisted XOR PUF (paper Fig 7).
//
// The server selects challenges predicted stable on every internal PUF,
// sends them to the deployed chip, samples the XOR output ONCE per challenge
// (stability makes repetition unnecessary), and approves only on a perfect
// match — the zero-Hamming-distance criterion the paper's selected CRPs make
// affordable. A relaxed Hamming-distance policy is provided as the
// traditional baseline for comparison benches.
#pragma once

#include <cstdint>
#include <vector>

#include "puf/selection.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

/// Server-side approval policy.
struct AuthenticationPolicy {
  std::size_t challenge_count = 64;       ///< CRPs exchanged per attempt
  std::size_t max_hamming_distance = 0;   ///< 0 = the paper's strict criterion
  std::size_t max_selection_attempts = 10'000'000;
};

struct AuthenticationOutcome {
  bool approved = false;
  std::size_t challenges_used = 0;
  std::size_t mismatches = 0;
  std::size_t candidates_tried = 0;  ///< selection cost on the server

  double mismatch_fraction() const {
    return challenges_used == 0
               ? 0.0
               : static_cast<double>(mismatches) / static_cast<double>(challenges_used);
  }
};

/// One issued challenge batch with the server's expected responses. The
/// server keeps `expected` and the accounting fields; only `challenges`
/// travel to the device.
struct ChallengeBatch {
  std::vector<Challenge> challenges;
  std::vector<bool> expected;
  /// Selector draws consumed to fill this batch (the paper's selection
  /// cost); carried here so verify()/authenticate() can report it.
  std::size_t candidates_tried = 0;
  /// Stable candidates dropped because a replay ledger had already issued
  /// them (only the ServerDatabase path populates this).
  std::size_t replay_rejected = 0;
};

/// Applies the approval policy to a batch/response pair — the single
/// verification kernel behind AuthenticationServer::verify and
/// ServerDatabase::verify. Pure policy: no model access, no copies; bumps
/// the auth.verifications / auth.mismatches / auth.approved / auth.denied
/// counters.
AuthenticationOutcome apply_auth_policy(const ChallengeBatch& batch,
                                        const std::vector<bool>& responses,
                                        const AuthenticationPolicy& policy);

class AuthenticationServer {
 public:
  /// `n_pufs` = XOR width in use (the paper recommends >= 10).
  AuthenticationServer(ServerModel model, std::size_t n_pufs,
                       AuthenticationPolicy policy = {});

  const ServerModel& model() const { return model_; }
  const AuthenticationPolicy& policy() const { return policy_; }
  std::size_t n_pufs() const { return n_pufs_; }

  /// Issues a batch of model-selected stable challenges (Fig 7 left half).
  /// Throws NumericalError if the selection cannot fill the batch within
  /// the attempt budget (the n/beta combination yields too few CRPs).
  ChallengeBatch issue(Rng& rng) const;

  /// Baseline: random challenges with model-predicted responses, no
  /// stability filtering (the traditional scheme the paper improves on).
  ChallengeBatch issue_random(Rng& rng) const;

  /// Compares device responses against the batch's expectations.
  AuthenticationOutcome verify(const ChallengeBatch& batch,
                               const std::vector<bool>& responses) const;

  /// Full round trip against a chip at a corner: issue, sample the XOR
  /// output once per challenge, verify.
  AuthenticationOutcome authenticate(const sim::XorPufChip& chip,
                                     const sim::Environment& env, Rng& rng,
                                     bool model_selected = true) const;

 private:
  ServerModel model_;
  std::size_t n_pufs_;
  AuthenticationPolicy policy_;
};

}  // namespace xpuf::puf
