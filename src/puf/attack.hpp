// Modeling attacks on XOR arbiter PUFs (paper Sec 2.3, Fig 4).
//
// The paper's security evaluation trains a multi-layer perceptron (3 hidden
// layers of 35/25/25 units, L-BFGS) on transformed challenge vectors with
// 1-bit XOR responses as targets, using ONLY 100%-stable CRPs for both the
// training and the test set (unstable CRPs mislead the training, and only
// stable CRPs matter for authentication). A logistic-regression attack on
// the product-of-linear-delays model (Ruehrmair et al. [3]) is included as
// the classic baseline.
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"
#include "ml/mlp.hpp"
#include "puf/model.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

/// Stable-CRP attack corpus: features are phi rows, targets are XOR bits.
struct AttackDataset {
  ml::Dataset train;
  ml::Dataset test;
  std::size_t n_pufs = 0;
  std::size_t challenges_measured = 0;  ///< raw draws before stability filter
  double stable_fraction = 0.0;         ///< measured all-PUF-stable yield
};

struct AttackDatasetConfig {
  std::size_t n_pufs = 4;
  std::size_t challenges = 100'000;   ///< random challenges measured
  std::uint64_t trials = 10'000;      ///< evaluations per soft response
  double train_fraction = 0.9;        ///< the paper's 90/10 split
  sim::Environment environment = sim::Environment::nominal();
};

/// Builds the paper's attack corpus from a chip with intact fuses: measures
/// soft responses of the first n PUFs per challenge, keeps challenges that
/// are 100% stable on all of them, XORs the (stable, hence noiseless) hard
/// responses into the target bit, and splits 90/10.
AttackDataset build_stable_attack_dataset(const sim::XorPufChip& chip,
                                          const AttackDatasetConfig& config, Rng& rng);

struct AttackResult {
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  double train_time_ms = 0.0;
  std::size_t optimizer_iterations = 0;

  /// The paper reports training speed as milliseconds per training CRP.
  double ms_per_crp() const {
    return train_size == 0 ? 0.0 : train_time_ms / static_cast<double>(train_size);
  }
};

struct MlpAttackConfig {
  ml::MlpOptions mlp;       ///< defaults to the paper's 35/25/25 topology
  ml::LbfgsOptions lbfgs;   ///< full-batch L-BFGS as in the paper
  std::size_t restarts = 1; ///< best-of-k random initializations
};

/// Trains the MLP attack on `data.train` and scores on `data.test`.
AttackResult run_mlp_attack(const AttackDataset& data, const MlpAttackConfig& config = {});

/// Logistic-regression XOR attack: models the response probability as
/// sigmoid(prod_i (w_i . phi)) and fits all n weight vectors jointly with
/// L-BFGS. The classic attack of [3]; used as the baseline in the benches.
struct LrXorAttackConfig {
  ml::LbfgsOptions lbfgs;
  std::uint64_t seed = 7;
  double init_scale = 0.1;  ///< weight-initialization sigma
  std::size_t restarts = 1;
};

AttackResult run_lr_xor_attack(const AttackDataset& data,
                               const LrXorAttackConfig& config = {});

}  // namespace xpuf::puf
