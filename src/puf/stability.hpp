// Three-category stability classification of CRPs (paper Sec 4, Fig 8).
//
// Measured side: a CRP is "100% stable" when the soft response sits in the
// first (0.00) or last (1.00) histogram bin — every one of the K repeated
// evaluations agreed.
//
// Model side: predicted soft responses are classified into stable-'0',
// unstable, and stable-'1' by two thresholds. Thr('0') is the lowest
// predicted soft response that produced a measured soft response > 0.00 in
// the training set; Thr('1') the highest that produced one < 1.00. A
// prediction strictly below Thr('0') (resp. above Thr('1')) is declared
// stable; the band between them — including CRPs stable in measurement but
// marginal in the model — is discarded as unstable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xpuf::puf {

enum class StableClass { kStable0, kUnstable, kStable1 };

/// Measured-side stability test on a soft response in [0, 1].
inline bool measured_stable(double soft_response) {
  return soft_response == 0.0 || soft_response == 1.0;
}

/// Model-side classification thresholds in predicted-soft-response units.
struct ThresholdPair {
  double thr0 = 0.0;  ///< predictions below this are stable '0'
  double thr1 = 1.0;  ///< predictions above this are stable '1'

  StableClass classify(double predicted) const {
    if (predicted < thr0) return StableClass::kStable0;
    if (predicted > thr1) return StableClass::kStable1;
    return StableClass::kUnstable;
  }

  bool is_stable(double predicted) const {
    return classify(predicted) != StableClass::kUnstable;
  }
};

/// Derives Thr('0')/Thr('1') from paired (predicted, measured) soft
/// responses exactly as Fig 8 defines them. If no unstable CRP exists in the
/// training data the thresholds collapse to the 0.5 center, which is the
/// conservative limit. Inputs must have equal length.
ThresholdPair derive_thresholds(std::span<const double> predicted,
                                std::span<const double> measured);

/// Degenerate-case handling shared by derive_thresholds and the streaming
/// enrollment accumulator: takes the raw extrema (thr0 = min prediction with
/// measured flips toward '1', +inf if none; thr1 = max prediction with flips
/// toward '0', -inf if none) and collapses missing or crossed thresholds to
/// the conservative 0.5 center.
ThresholdPair finalize_thresholds(double thr0, double thr1);

/// Counts of each class over a prediction set.
struct ClassCounts {
  std::size_t stable0 = 0;
  std::size_t unstable = 0;
  std::size_t stable1 = 0;

  std::size_t total() const { return stable0 + unstable + stable1; }
  double stable_fraction() const {
    const std::size_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(stable0 + stable1) / static_cast<double>(t);
  }
};

ClassCounts classify_all(const ThresholdPair& thresholds,
                         std::span<const double> predicted);

/// Fraction of soft responses that are measured 100% stable.
double measured_stable_fraction(std::span<const double> soft_responses);

}  // namespace xpuf::puf
