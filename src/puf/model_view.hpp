// Lightweight read view of one device's enrolled model.
//
// The authentication hot path needs three things from a model: the weight
// rows (for batched screening GEMMs), the beta-adjusted thresholds, and the
// geometry. A ModelView carries exactly that as borrowed pointers plus a
// type-erased owner handle, so the same screening code serves
//
//   - an in-memory ServerModel (selection/issue on the registry map),
//   - an LRU-cached shared_ptr<const ServerModel> (store cache hit), and
//   - a raw mmap'd REGISTER payload (store cold path, zero parse/copy:
//     store::model_view_from_payload points the weight spans straight into
//     the mapped shard file).
//
// Lifetime rules: the view is valid while `owner()` (or the borrowed model,
// for the unowned factory) stays alive. Views into a mapped shard hold the
// mapping's shared_ptr, so compaction may swap the file underneath without
// invalidating handed-out views — the old mapping dies with its last view.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "puf/enrollment.hpp"

namespace xpuf::puf {

class ModelView {
 public:
  ModelView() = default;

  /// Borrows `m` without taking ownership — the caller keeps `m` alive for
  /// the view's lifetime (the selection path, where the model is a local).
  static ModelView of(const ServerModel& m) { return from_model(m, nullptr); }

  /// Shares ownership with an LRU cache hand-out: the view stays valid
  /// across evictions.
  static ModelView of(std::shared_ptr<const ServerModel> m) {
    XPUF_REQUIRE(m != nullptr, "ModelView::of: null model");
    const ServerModel& ref = *m;
    return from_model(ref, std::shared_ptr<const void>(std::move(m)));
  }

  /// Assembled from raw parts by store::model_view_from_payload — the only
  /// other sanctioned constructor, because the payload layout knowledge
  /// lives in the record codec.
  static ModelView from_parts(std::uint64_t chip_id, std::uint32_t stages,
                              BetaFactors betas, std::vector<const double*> weights,
                              std::vector<ThresholdPair> thresholds,
                              std::shared_ptr<const void> owner) {
    XPUF_REQUIRE(!weights.empty() && weights.size() == thresholds.size(),
                 "ModelView::from_parts: inconsistent per-PUF arrays");
    ModelView v;
    v.chip_id_ = chip_id;
    v.stages_ = stages;
    v.betas_ = betas;
    v.weights_ = std::move(weights);
    v.thresholds_ = std::move(thresholds);
    v.owner_ = std::move(owner);
    return v;
  }

  bool empty() const { return weights_.empty(); }
  std::uint64_t chip_id() const { return chip_id_; }
  std::size_t puf_count() const { return weights_.size(); }
  std::size_t stages() const { return stages_; }
  std::size_t features() const { return stages_ + 1; }

  const BetaFactors& betas() const { return betas_; }

  /// Weight row of PUF p: features() doubles, valid while the owner lives.
  std::span<const double> weights(std::size_t p) const {
    XPUF_REQUIRE(p < weights_.size(), "PUF index out of range");
    return {weights_[p], stages_ + 1};
  }

  /// Raw training thresholds of PUF p (before beta tightening).
  const ThresholdPair& raw_thresholds(std::size_t p) const {
    XPUF_REQUIRE(p < thresholds_.size(), "PUF index out of range");
    return thresholds_[p];
  }

  /// Beta-tightened thresholds — same function ServerModel applies.
  ThresholdPair adjusted_thresholds(std::size_t p) const {
    return tighten(raw_thresholds(p), betas_);
  }

  /// The keep-alive handle (null for a borrowed in-memory model).
  const std::shared_ptr<const void>& owner() const { return owner_; }

 private:
  static ModelView from_model(const ServerModel& m, std::shared_ptr<const void> owner) {
    XPUF_REQUIRE(m.puf_count() > 0, "ModelView of an empty model");
    ModelView v;
    v.chip_id_ = m.chip_id();
    v.stages_ = static_cast<std::uint32_t>(m.stages());
    v.betas_ = m.betas();
    v.weights_.reserve(m.puf_count());
    v.thresholds_.reserve(m.puf_count());
    for (std::size_t p = 0; p < m.puf_count(); ++p) {
      const PufEnrollment& e = m.puf(p);
      XPUF_REQUIRE(e.model.weights().size() == m.stages() + 1,
                   "mixed stage counts in ServerModel");
      v.weights_.push_back(e.model.weights().data());
      v.thresholds_.push_back(e.thresholds);
    }
    v.owner_ = std::move(owner);
    return v;
  }

  std::uint64_t chip_id_ = 0;
  std::uint32_t stages_ = 0;
  BetaFactors betas_;
  std::vector<const double*> weights_;
  std::vector<ThresholdPair> thresholds_;
  std::shared_ptr<const void> owner_;
};

}  // namespace xpuf::puf
