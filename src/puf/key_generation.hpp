// PUF key generation via the code-offset fuzzy extractor.
//
// The other classic PUF application next to the paper's authentication use
// case: derive a stable secret key from noisy responses. Construction
// (Dodis et al. code-offset):
//   Gen:  pick a random message msg, c = BCH.encode(msg),
//         helper = response XOR c (public), key = SHA-256(msg).
//   Rep:  c' = response' XOR helper = c XOR e; BCH decodes e (<= t errors),
//         key = SHA-256(decoded msg).
// The response bits come from XOR-PUF evaluations on a fixed challenge
// list. The paper's contribution slots in directly: drawing the challenge
// list from the model-selected 100%-stable set collapses the error rate
// the code must absorb — bench_ext3_key_generation measures how much BCH
// strength (and helper-data leakage) that saves.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bch.hpp"
#include "crypto/sha256.hpp"
#include "puf/enrollment.hpp"
#include "sim/chip.hpp"

namespace xpuf::puf {

/// Public helper data: safe to store/transmit; reveals nothing about the
/// key beyond the code's redundancy (standard code-offset leakage bound).
struct HelperData {
  std::vector<Challenge> challenges;  ///< the fixed key-challenge list
  crypto::Bits offset;                ///< response XOR codeword
};

struct KeyGenConfig {
  unsigned bch_m = 7;  ///< code length n = 2^m - 1 (127)
  unsigned bch_t = 10; ///< correctable response-bit errors
};

struct KeyGenResult {
  crypto::Digest key{};   ///< 256-bit derived key
  HelperData helper;      ///< public reproduction data
};

struct KeyRepResult {
  bool ok = false;            ///< decoding succeeded
  crypto::Digest key{};       ///< reproduced key (when ok)
  std::size_t errors_corrected = 0;
};

class FuzzyExtractor {
 public:
  explicit FuzzyExtractor(const KeyGenConfig& config);

  const crypto::BchCode& code() const { return code_; }
  /// Response bits consumed per key (the code length).
  std::size_t response_bits() const { return code_.n(); }

  /// Enrollment-time key generation from a chip: evaluates the challenge
  /// list once at the given corner, draws the random codeword from `rng`.
  /// `challenges` must contain exactly response_bits() entries.
  KeyGenResult generate(const sim::XorPufChip& chip,
                        const std::vector<Challenge>& challenges,
                        const sim::Environment& env, Rng& rng) const;

  /// Field-time key reproduction from fresh (noisy) response bits.
  KeyRepResult reproduce(const sim::XorPufChip& chip, const HelperData& helper,
                         const sim::Environment& env, Rng& rng) const;

  /// Reproduction from explicit response bits (used by tests).
  KeyRepResult reproduce_from_bits(const crypto::Bits& response,
                                   const HelperData& helper) const;

 private:
  crypto::BchCode code_;

  crypto::Bits read_response(const sim::XorPufChip& chip,
                             const std::vector<Challenge>& challenges,
                             const sim::Environment& env, Rng& rng) const;
};

}  // namespace xpuf::puf
