#include "puf/database.hpp"

#include <charconv>
#include <filesystem>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "puf/model_store.hpp"

namespace xpuf::puf {

namespace {

/// Parses the `<id>` of a legacy `ledger_<id>.csv` filename. Exact integer
/// parse — any non-digit residue means the file is not one of ours.
bool parse_ledger_id(const std::string& filename, std::size_t& id) {
  constexpr const char* kPrefix = "ledger_";
  constexpr const char* kSuffix = ".csv";
  if (filename.rfind(kPrefix, 0) != 0) return false;
  const std::size_t prefix_len = std::string(kPrefix).size();
  const std::size_t suffix_len = std::string(kSuffix).size();
  if (filename.size() <= prefix_len + suffix_len) return false;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) != 0) return false;
  const char* begin = filename.data() + prefix_len;
  const char* end = filename.data() + filename.size() - suffix_len;
  const auto [ptr, ec] = std::from_chars(begin, end, id);
  return ec == std::errc() && ptr == end;
}

/// Converts one legacy '0'/'1' ledger row into the packed key format,
/// validating it against the device's stage count.
std::string packed_key_from_legacy(const std::string& row, std::size_t stages,
                                   const std::string& path) {
  XPUF_REQUIRE(stages > 0, "legacy ledger conversion needs the model geometry");
  if (row.size() != stages)
    throw ParseError(path + ": ledger challenge has " + std::to_string(row.size()) +
                     " bits, device model has " + std::to_string(stages) + " stages");
  Challenge challenge;
  challenge.reserve(row.size());
  for (char ch : row) {
    if (ch != '0' && ch != '1')
      throw ParseError(path + ": corrupt challenge encoding in ledger");
    challenge.push_back(ch == '1' ? 1 : 0);
  }
  return store::pack_challenge(challenge);
}

}  // namespace

ServerDatabase::ServerDatabase(ServerDatabase&& other) noexcept
    : config_(other.config_),
      models_(std::move(other.models_)),
      issued_(std::move(other.issued_)),
      ledger_total_(other.ledger_total_.load(std::memory_order_relaxed)),
      store_(std::move(other.store_)) {}

ServerDatabase& ServerDatabase::operator=(ServerDatabase&& other) noexcept {
  if (this != &other) {
    config_ = other.config_;
    models_ = std::move(other.models_);
    issued_ = std::move(other.issued_);
    ledger_total_.store(other.ledger_total_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    store_ = std::move(other.store_);
  }
  return *this;
}

ServerDatabase ServerDatabase::open(const std::string& directory, DatabaseConfig config,
                                    store::StoreOptions options) {
  XPUF_TRACE_SPAN("db.open");
  ServerDatabase db(config);
  db.store_ = std::make_unique<store::EnrollmentStore>(
      store::EnrollmentStore::open(directory, options));
  return db;
}

const store::EnrollmentStore& ServerDatabase::store() const {
  XPUF_REQUIRE(store_ != nullptr, "store() on an in-memory database");
  return *store_;
}

void ServerDatabase::register_device(ServerModel model) {
  XPUF_REQUIRE(model.puf_count() >= config_.n_pufs,
               "enrolled model has fewer PUFs than the database XOR width");
  if (store_ != nullptr) {
    store_->register_device(std::move(model));
    return;
  }
  XPUF_REQUIRE(!knows(model.chip_id()), "device already registered");
  const std::size_t id = model.chip_id();
  models_.emplace(id, std::move(model));
  issued_[id];
}

void ServerDatabase::revoke_device(std::size_t chip_id) {
  if (store_ != nullptr) {
    store_->revoke_device(chip_id);
    return;
  }
  XPUF_REQUIRE(knows(chip_id), "revoking an unknown device");
  const std::uint64_t dropped = issued_.at(chip_id).size();
  models_.erase(chip_id);
  issued_.erase(chip_id);
  const std::uint64_t total =
      ledger_total_.fetch_sub(dropped, std::memory_order_relaxed) - dropped;
  static Gauge& ledger_size = MetricsRegistry::global().gauge("db.ledger_size");
  ledger_size.set(static_cast<double>(total));
}

const ServerModel& ServerDatabase::model(std::size_t chip_id) const {
  XPUF_REQUIRE(store_ == nullptr,
               "a backed database serves models through the bounded cache; "
               "use model_snapshot()");
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return it->second;
}

std::shared_ptr<const ServerModel> ServerDatabase::model_snapshot(std::size_t chip_id) const {
  // Both branches bounds-check chip_id (store::EnrollmentStore::model and
  // model() respectively).
  return store_ != nullptr ? store_->model(chip_id)
                           : std::make_shared<const ServerModel>(model(chip_id));
}

const ServerModel& ServerDatabase::resolve_model(
    std::size_t chip_id, std::shared_ptr<const ServerModel>& held) const {
  if (store_ != nullptr) {
    held = store_->model(chip_id);
    return *held;
  }
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return it->second;
}

ChallengeBatch ServerDatabase::issue(std::size_t chip_id, Rng& rng) {
  XPUF_TRACE_SPAN("db.issue_batch");
  XPUF_REQUIRE(config_.policy.challenge_count > 0, "an authentication batch cannot be empty");
  std::shared_ptr<const ServerModel> held;
  const ServerModel& m = resolve_model(chip_id, held);
  // Find-based on purpose: issue() must never mutate the ledger map itself,
  // so concurrent calls for DISTINCT pre-registered devices touch disjoint
  // ledgers (see the concurrency contract in database.hpp).
  std::set<std::string>* ledger_ptr = nullptr;
  if (store_ != nullptr) {
    ledger_ptr = &store_->ledger(chip_id);
  } else {
    const auto ledger_it = issued_.find(chip_id);
    XPUF_REQUIRE(ledger_it != issued_.end(), "unknown device id");
    ledger_ptr = &ledger_it->second;
  }
  std::set<std::string>& ledger = *ledger_ptr;

  ChallengeBatch batch;
  std::vector<std::string> fresh;
  fresh.reserve(config_.policy.challenge_count);
  ModelBasedSelector selector(m, config_.n_pufs);
  while (batch.challenges.size() < config_.policy.challenge_count) {
    // Select in small gulps so the replay filter can interleave.
    SelectionResult sel = selector.select(config_.policy.challenge_count, rng,
                                          config_.policy.max_selection_attempts);
    batch.candidates_tried += sel.candidates_tried;
    if (sel.challenges.empty() ||
        batch.candidates_tried > config_.policy.max_selection_attempts)
      throw NumericalError("challenge issuance exhausted its attempt budget");
    for (std::size_t i = 0; i < sel.challenges.size() &&
                            batch.challenges.size() < config_.policy.challenge_count;
         ++i) {
      std::string key = store::pack_challenge(sel.challenges[i]);
      if (!ledger.insert(key).second) {
        // Replay-guarded: this stable challenge was issued to the device
        // before (e.g. a reused issuance seed); count the rejection — it is
        // the chosen-challenge-attack signal the server must observe.
        ++batch.replay_rejected;
        continue;
      }
      fresh.push_back(std::move(key));
      batch.challenges.push_back(std::move(sel.challenges[i]));
      batch.expected.push_back(sel.expected_responses[i]);
    }
  }
  auto& registry = MetricsRegistry::global();
  static Counter& replay = registry.counter("auth.replay_rejected");
  static Counter& issued = registry.counter("db.challenges_issued");
  static Gauge& ledger_size = registry.gauge("db.ledger_size");
  replay.add(batch.replay_rejected);
  issued.add(batch.challenges.size());
  if (store_ != nullptr) {
    // Durable acknowledgement: the challenges exist on disk before the
    // caller can send them anywhere (the store refreshes the gauges).
    store_->record_issued(chip_id, static_cast<std::uint32_t>(m.stages()), fresh);
  } else {
    const std::uint64_t total =
        ledger_total_.fetch_add(fresh.size(), std::memory_order_relaxed) + fresh.size();
    ledger_size.set(static_cast<double>(total));
  }
  return batch;
}

AuthenticationOutcome ServerDatabase::verify(std::size_t chip_id,
                                             const ChallengeBatch& batch,
                                             const std::vector<bool>& responses) const {
  XPUF_REQUIRE(responses.size() == batch.challenges.size(),
               "one response bit per issued challenge");
  std::shared_ptr<const ServerModel> held;
  const ServerModel& m = resolve_model(chip_id, held);
  AuthenticationServer server(m, config_.n_pufs, config_.policy);
  return server.verify(batch, responses);
}

DatabaseAuthOutcome ServerDatabase::authenticate(const sim::XorPufChip& chip,
                                                 const sim::Environment& env, Rng& rng) {
  XPUF_TRACE_SPAN("db.authenticate");
  static Counter& requests = MetricsRegistry::global().counter("db.auth_requests");
  static Counter& unknown = MetricsRegistry::global().counter("db.unknown_device");
  requests.add(1);
  DatabaseAuthOutcome out;
  if (!knows(chip.id())) {  // unknown device: denied by default
    unknown.add(1);
    return out;
  }
  out.known_device = true;
  const ChallengeBatch batch = issue(chip.id(), rng);
  out.replay_rejected = batch.replay_rejected;
  std::vector<bool> responses;
  responses.reserve(batch.challenges.size());
  for (const auto& c : batch.challenges) responses.push_back(chip.xor_response(c, env, rng));
  out.outcome = verify(chip.id(), batch, responses);
  return out;
}

std::size_t ServerDatabase::issued_count(std::size_t chip_id) const {
  if (store_ != nullptr) return store_->ledger(chip_id).size();
  const auto it = issued_.find(chip_id);
  XPUF_REQUIRE(it != issued_.end(), "unknown device id");
  return it->second.size();
}

void ServerDatabase::save(const std::string& directory) const {
  XPUF_TRACE_SPAN("db.save");
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  if (store_ != nullptr) {
    // A backed database is already durable record by record; save() is the
    // compaction point, and it only makes sense in the store's own home.
    XPUF_REQUIRE(directory == store_->dir(),
                 "a backed database saves in place (compaction)");
    store_->compact();
    devices.set(static_cast<double>(store_->device_count()));
    return;
  }
  // In-memory mode: commit the complete binary snapshot first (every file
  // lands via write-temp-then-rename), and only then clear legacy CSV
  // files — the reverse of the old delete-then-write order, so a crash at
  // any byte leaves a loadable directory. load() prefers the manifest, so
  // a crash between the two phases (both formats present) reads the new one.
  store::write_snapshot(directory, store::StoreOptions{}.n_shards, models_, issued_);
  namespace fs = std::filesystem;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool device_file = name.rfind("device_", 0) == 0;
    const bool ledger_file = name.rfind("ledger_", 0) == 0;
    if (device_file || ledger_file) fs::remove(entry.path());
  }
  devices.set(static_cast<double>(models_.size()));
}

ServerDatabase ServerDatabase::load(const std::string& directory, DatabaseConfig config) {
  XPUF_TRACE_SPAN("db.load");
  ServerDatabase db(config);
  namespace fs = std::filesystem;
  XPUF_REQUIRE(fs::is_directory(directory), "database directory does not exist");
  std::uint64_t total = 0;
  if (store::EnrollmentStore::is_store_dir(directory)) {
    // Binary store: replay the op log. A tiny cache keeps the replay from
    // holding the fleet twice while models are copied into the registry.
    store::StoreOptions options;
    options.cache_capacity = 1;
    const store::EnrollmentStore st = store::EnrollmentStore::open(directory, options);
    for (const std::uint64_t id : st.device_ids()) {
      db.models_.emplace(static_cast<std::size_t>(id), ServerModel(*st.model(id)));
      db.issued_[static_cast<std::size_t>(id)] = st.ledger(id);
    }
    total = st.issued_total();
  } else {
    std::vector<fs::path> ledger_files;
    for (const auto& entry : fs::directory_iterator(directory)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ledger_", 0) == 0) {
        ledger_files.push_back(entry.path());
        continue;
      }
      if (name.rfind("device_", 0) != 0) continue;
      ServerModel m = load_server_model(entry.path().string());
      db.register_device(std::move(m));
    }
    for (const fs::path& path : ledger_files) {
      std::size_t id = 0;
      if (!parse_ledger_id(path.filename().string(), id)) continue;
      if (!db.knows(id))
        throw ParseError(path.string() + ": orphaned ledger (device_" +
                         std::to_string(id) + " is missing) — a mid-save crash left "
                         "issued challenges behind; refusing to silently forget them");
      const std::size_t stages = db.models_.at(id).stages();
      const CsvData ledger = read_csv(path.string());
      for (const auto& row : ledger.rows) {
        if (row.empty() || row[0].empty()) continue;
        if (db.issued_[id].insert(packed_key_from_legacy(row[0], stages, path.string()))
                .second)
          ++total;
      }
    }
  }
  db.ledger_total_.store(total, std::memory_order_relaxed);
  auto& registry = MetricsRegistry::global();
  static Gauge& devices = registry.gauge("db.devices");
  static Gauge& ledger_size = registry.gauge("db.ledger_size");
  devices.set(static_cast<double>(db.models_.size()));
  ledger_size.set(static_cast<double>(total));
  return db;
}

}  // namespace xpuf::puf
