#include "puf/database.hpp"

#include <filesystem>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "puf/model_store.hpp"

namespace xpuf::puf {

// Pure encoding: every challenge length round-trips, nothing to guard.
// xpuf-lint: allow(require-guard)
std::string ServerDatabase::encode(const Challenge& challenge) {
  std::string s;
  s.reserve(challenge.size());
  for (auto b : challenge) s.push_back(b ? '1' : '0');
  return s;
}

Challenge ServerDatabase::decode(const std::string& encoded) {
  Challenge c;
  c.reserve(encoded.size());
  for (char ch : encoded) {
    XPUF_REQUIRE(ch == '0' || ch == '1', "corrupt challenge encoding in ledger");
    c.push_back(ch == '1' ? 1 : 0);
  }
  return c;
}

void ServerDatabase::register_device(ServerModel model) {
  XPUF_REQUIRE(model.puf_count() >= config_.n_pufs,
               "enrolled model has fewer PUFs than the database XOR width");
  XPUF_REQUIRE(!knows(model.chip_id()), "device already registered");
  const std::size_t id = model.chip_id();
  models_.emplace(id, std::move(model));
  issued_[id];
}

void ServerDatabase::revoke_device(std::size_t chip_id) {
  XPUF_REQUIRE(knows(chip_id), "revoking an unknown device");
  models_.erase(chip_id);
  issued_.erase(chip_id);
}

const ServerModel& ServerDatabase::model(std::size_t chip_id) const {
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return it->second;
}

ChallengeBatch ServerDatabase::issue(std::size_t chip_id, Rng& rng) {
  XPUF_TRACE_SPAN("db.issue_batch");
  XPUF_REQUIRE(config_.policy.challenge_count > 0, "an authentication batch cannot be empty");
  const ServerModel& m = model(chip_id);
  // Find-based on purpose: issue() must never mutate the outer map, so
  // concurrent calls for DISTINCT pre-registered devices touch disjoint
  // ledgers (see the concurrency contract in database.hpp).
  const auto ledger_it = issued_.find(chip_id);
  XPUF_REQUIRE(ledger_it != issued_.end(), "unknown device id");
  std::set<std::string>& ledger = ledger_it->second;

  ChallengeBatch batch;
  ModelBasedSelector selector(m, config_.n_pufs);
  while (batch.challenges.size() < config_.policy.challenge_count) {
    // Select in small gulps so the replay filter can interleave.
    SelectionResult sel = selector.select(config_.policy.challenge_count, rng,
                                          config_.policy.max_selection_attempts);
    batch.candidates_tried += sel.candidates_tried;
    if (sel.challenges.empty() ||
        batch.candidates_tried > config_.policy.max_selection_attempts)
      throw NumericalError("challenge issuance exhausted its attempt budget");
    for (std::size_t i = 0; i < sel.challenges.size() &&
                            batch.challenges.size() < config_.policy.challenge_count;
         ++i) {
      const std::string key = encode(sel.challenges[i]);
      if (!ledger.insert(key).second) {
        // Replay-guarded: this stable challenge was issued to the device
        // before (e.g. a reused issuance seed); count the rejection — it is
        // the chosen-challenge-attack signal the server must observe.
        ++batch.replay_rejected;
        continue;
      }
      batch.challenges.push_back(std::move(sel.challenges[i]));
      batch.expected.push_back(sel.expected_responses[i]);
    }
  }
  auto& registry = MetricsRegistry::global();
  static Counter& replay = registry.counter("auth.replay_rejected");
  static Counter& issued = registry.counter("db.challenges_issued");
  static Gauge& ledger_size = registry.gauge("db.ledger_size");
  replay.add(batch.replay_rejected);
  issued.add(batch.challenges.size());
  ledger_size.set(static_cast<double>(ledger.size()));
  return batch;
}

AuthenticationOutcome ServerDatabase::verify(std::size_t chip_id,
                                             const ChallengeBatch& batch,
                                             const std::vector<bool>& responses) const {
  XPUF_REQUIRE(responses.size() == batch.challenges.size(),
               "one response bit per issued challenge");
  AuthenticationServer server(model(chip_id), config_.n_pufs, config_.policy);
  return server.verify(batch, responses);
}

DatabaseAuthOutcome ServerDatabase::authenticate(const sim::XorPufChip& chip,
                                                 const sim::Environment& env, Rng& rng) {
  XPUF_TRACE_SPAN("db.authenticate");
  static Counter& requests = MetricsRegistry::global().counter("db.auth_requests");
  static Counter& unknown = MetricsRegistry::global().counter("db.unknown_device");
  requests.add(1);
  DatabaseAuthOutcome out;
  if (!knows(chip.id())) {  // unknown device: denied by default
    unknown.add(1);
    return out;
  }
  out.known_device = true;
  const ChallengeBatch batch = issue(chip.id(), rng);
  out.replay_rejected = batch.replay_rejected;
  std::vector<bool> responses;
  responses.reserve(batch.challenges.size());
  for (const auto& c : batch.challenges) responses.push_back(chip.xor_response(c, env, rng));
  out.outcome = verify(chip.id(), batch, responses);
  return out;
}

std::size_t ServerDatabase::issued_count(std::size_t chip_id) const {
  const auto it = issued_.find(chip_id);
  XPUF_REQUIRE(it != issued_.end(), "unknown device id");
  return it->second.size();
}

void ServerDatabase::save(const std::string& directory) const {
  XPUF_TRACE_SPAN("db.save");
  ensure_directory(directory);
  // Reconcile before writing: a save over an existing directory must not
  // leave behind device_*/ledger_* files for devices revoked since the last
  // save — load() would resurrect them. Only our own naming pattern is
  // touched; unrelated files in the directory survive.
  namespace fs = std::filesystem;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool device_file = name.rfind("device_", 0) == 0;
    const bool ledger_file = name.rfind("ledger_", 0) == 0;
    if (device_file || ledger_file) fs::remove(entry.path());
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(models_.size()));
  for (const auto& [id, m] : models_) {
    save_server_model(m, directory + "/device_" + std::to_string(id) + ".csv");
    CsvWriter ledger(directory + "/ledger_" + std::to_string(id) + ".csv",
                     {"challenge"});
    for (const auto& key : issued_.at(id))
      ledger.write_row(std::vector<std::string>{key});
  }
}

ServerDatabase ServerDatabase::load(const std::string& directory, DatabaseConfig config) {
  XPUF_TRACE_SPAN("db.load");
  ServerDatabase db(config);
  namespace fs = std::filesystem;
  XPUF_REQUIRE(fs::is_directory(directory), "database directory does not exist");
  for (const auto& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("device_", 0) != 0) continue;
    ServerModel m = load_server_model(entry.path().string());
    const std::size_t id = m.chip_id();
    db.register_device(std::move(m));
    const std::string ledger_path = directory + "/ledger_" + std::to_string(id) + ".csv";
    if (fs::exists(ledger_path)) {
      const CsvData ledger = read_csv(ledger_path);
      for (const auto& row : ledger.rows)
        if (!row.empty() && !row[0].empty()) db.issued_[id].insert(row[0]);
    }
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(db.models_.size()));
  return db;
}

}  // namespace xpuf::puf
