#include "puf/database.hpp"

#include <charconv>
#include <filesystem>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "puf/model_store.hpp"

namespace xpuf::puf {

namespace {

/// Parses the `<id>` of a legacy `ledger_<id>.csv` filename. Exact integer
/// parse — any non-digit residue means the file is not one of ours.
bool parse_ledger_id(const std::string& filename, std::size_t& id) {
  constexpr const char* kPrefix = "ledger_";
  constexpr const char* kSuffix = ".csv";
  if (filename.rfind(kPrefix, 0) != 0) return false;
  const std::size_t prefix_len = std::string(kPrefix).size();
  const std::size_t suffix_len = std::string(kSuffix).size();
  if (filename.size() <= prefix_len + suffix_len) return false;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) != 0) return false;
  const char* begin = filename.data() + prefix_len;
  const char* end = filename.data() + filename.size() - suffix_len;
  const auto [ptr, ec] = std::from_chars(begin, end, id);
  return ec == std::errc() && ptr == end;
}

/// Converts one legacy '0'/'1' ledger row into the packed key format,
/// validating it against the device's stage count.
std::string packed_key_from_legacy(const std::string& row, std::size_t stages,
                                   const std::string& path) {
  XPUF_REQUIRE(stages > 0, "legacy ledger conversion needs the model geometry");
  if (row.size() != stages)
    throw ParseError(path + ": ledger challenge has " + std::to_string(row.size()) +
                     " bits, device model has " + std::to_string(stages) + " stages");
  Challenge challenge;
  challenge.reserve(row.size());
  for (char ch : row) {
    if (ch != '0' && ch != '1')
      throw ParseError(path + ": corrupt challenge encoding in ledger");
    challenge.push_back(ch == '1' ? 1 : 0);
  }
  return store::pack_challenge(challenge);
}

}  // namespace

ServerDatabase::ServerDatabase(ServerDatabase&& other) noexcept
    : config_(other.config_),
      models_(std::move(other.models_)),
      issued_(std::move(other.issued_)),
      ledger_total_(other.ledger_total_.load(std::memory_order_relaxed)),
      mem_pools_(std::move(other.mem_pools_)),
      mem_pool_undrained_(other.mem_pool_undrained_),
      mem_pool_mu_(std::move(other.mem_pool_mu_)),
      store_(std::move(other.store_)) {}

ServerDatabase& ServerDatabase::operator=(ServerDatabase&& other) noexcept {
  if (this != &other) {
    config_ = other.config_;
    models_ = std::move(other.models_);
    issued_ = std::move(other.issued_);
    ledger_total_.store(other.ledger_total_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    mem_pools_ = std::move(other.mem_pools_);
    mem_pool_undrained_ = other.mem_pool_undrained_;
    mem_pool_mu_ = std::move(other.mem_pool_mu_);
    store_ = std::move(other.store_);
  }
  return *this;
}

ServerDatabase ServerDatabase::open(const std::string& directory, DatabaseConfig config,
                                    store::StoreOptions options) {
  XPUF_TRACE_SPAN("db.open");
  ServerDatabase db(config);
  db.store_ = std::make_unique<store::EnrollmentStore>(
      store::EnrollmentStore::open(directory, options));
  return db;
}

const store::EnrollmentStore& ServerDatabase::store() const {
  XPUF_REQUIRE(store_ != nullptr, "store() on an in-memory database");
  return *store_;
}

void ServerDatabase::register_device(ServerModel model) {
  XPUF_REQUIRE(model.puf_count() >= config_.n_pufs,
               "enrolled model has fewer PUFs than the database XOR width");
  const std::size_t id = model.chip_id();
  if (store_ != nullptr) {
    store_->register_device(std::move(model));
  } else {
    XPUF_REQUIRE(!knows(id), "device already registered");
    models_.emplace(id, std::move(model));
    issued_[id];
  }
  if (config_.pool.target > 0) {
    // Enrollment pre-screens the device's issuance pool so its first
    // authentications are pure drains. The registration path just warmed
    // the cache, so resolve_view() is a cheap cache hit here.
    const ModelView view = resolve_view(id);
    (void)refill_pool(id, view, store_ != nullptr ? store_->ledger(id) : issued_.at(id));
  }
}

void ServerDatabase::revoke_device(std::size_t chip_id) {
  if (store_ != nullptr) {
    store_->revoke_device(chip_id);
    return;
  }
  XPUF_REQUIRE(knows(chip_id), "revoking an unknown device");
  const std::uint64_t dropped = issued_.at(chip_id).size();
  models_.erase(chip_id);
  issued_.erase(chip_id);
  {
    std::lock_guard<std::mutex> lock(*mem_pool_mu_);
    if (const auto it = mem_pools_.find(chip_id); it != mem_pools_.end()) {
      mem_pool_undrained_ -= it->second.pool.keys.size() - it->second.head;
      mem_pools_.erase(it);
    }
  }
  const std::uint64_t total =
      ledger_total_.fetch_sub(dropped, std::memory_order_relaxed) - dropped;
  static Gauge& ledger_size = MetricsRegistry::global().gauge("db.ledger_size");
  ledger_size.set(static_cast<double>(total));
}

const ServerModel& ServerDatabase::model(std::size_t chip_id) const {
  XPUF_REQUIRE(store_ == nullptr,
               "a backed database serves models through the bounded cache; "
               "use model_snapshot()");
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return it->second;
}

std::shared_ptr<const ServerModel> ServerDatabase::model_snapshot(std::size_t chip_id) const {
  // Both branches bounds-check chip_id (store::EnrollmentStore::model and
  // model() respectively).
  return store_ != nullptr ? store_->model(chip_id)
                           : std::make_shared<const ServerModel>(model(chip_id));
}

ModelView ServerDatabase::resolve_view(std::size_t chip_id) const {
  if (store_ != nullptr) return store_->model_view(chip_id);
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return ModelView::of(it->second);
}

std::set<std::string>& ServerDatabase::ledger_ref(std::size_t chip_id) {
  // Find-based on purpose: issue() must never mutate the ledger map itself,
  // so concurrent calls for DISTINCT pre-registered devices touch disjoint
  // ledgers (see the concurrency contract in database.hpp).
  if (store_ != nullptr) return store_->ledger(chip_id);
  const auto it = issued_.find(chip_id);
  XPUF_REQUIRE(it != issued_.end(), "unknown device id");
  return it->second;
}

std::uint32_t ServerDatabase::device_stages(std::size_t chip_id) const {
  if (store_ != nullptr) return store_->device_record(chip_id).stages;
  const auto it = models_.find(chip_id);
  XPUF_REQUIRE(it != models_.end(), "unknown device id");
  return static_cast<std::uint32_t>(it->second.stages());
}

StreamFamily ServerDatabase::device_family(std::size_t chip_id) const {
  // Mixed per-device base: distinct devices walk disjoint candidate streams,
  // and the whole pooled issuance history is reproducible from
  // (pool.seed, chip_id) — no caller RNG involved.
  return StreamFamily(config_.pool.seed ^
                      (0xa24baed4963ee407ull * (static_cast<std::uint64_t>(chip_id) + 1)));
}

// A device without a pool is legal — the bool return is the signal, and
// every out-param is written before a true return.
// xpuf-lint: allow(require-guard)
bool ServerDatabase::pool_peek(std::size_t chip_id, std::uint32_t& head,
                               std::uint32_t& count, std::uint64_t& cursor,
                               std::uint32_t& epoch) const {
  if (store_ != nullptr) {
    store::PoolSlot slot;
    if (!store_->pool_slot(chip_id, slot)) return false;
    head = slot.head;
    count = slot.count;
    cursor = slot.cursor;
    epoch = slot.epoch;
    return true;
  }
  std::lock_guard<std::mutex> lock(*mem_pool_mu_);
  const auto it = mem_pools_.find(chip_id);
  if (it == mem_pools_.end()) return false;
  head = it->second.head;
  count = static_cast<std::uint32_t>(it->second.pool.keys.size());
  cursor = it->second.pool.cursor;
  epoch = it->second.pool.epoch;
  return true;
}

void ServerDatabase::pool_read(std::size_t chip_id, std::uint32_t first, std::uint32_t n,
                               std::vector<std::string>& keys,
                               std::vector<std::uint8_t>& expected) const {
  if (store_ != nullptr) {
    store_->read_pool_slice(chip_id, first, n, keys, expected);
    return;
  }
  std::lock_guard<std::mutex> lock(*mem_pool_mu_);
  const auto it = mem_pools_.find(chip_id);
  XPUF_REQUIRE(it != mem_pools_.end(), "device has no pool");
  XPUF_REQUIRE(first + n <= it->second.pool.keys.size(), "pool slice out of range");
  for (std::uint32_t i = first; i < first + n; ++i) {
    keys.push_back(it->second.pool.keys[i]);
    expected.push_back(it->second.pool.expected[i]);
  }
}

void ServerDatabase::pool_set_head(std::size_t chip_id, std::uint32_t head) {
  if (store_ != nullptr) {
    store_->set_pool_head(chip_id, head);
    return;
  }
  std::lock_guard<std::mutex> lock(*mem_pool_mu_);
  const auto it = mem_pools_.find(chip_id);
  XPUF_REQUIRE(it != mem_pools_.end(), "device has no pool");
  mem_pool_undrained_ -= head - it->second.head;
  it->second.head = head;
}

void ServerDatabase::pool_write(std::size_t chip_id, store::PoolPayload pool) {
  XPUF_REQUIRE(pool.keys.size() == pool.expected.size(),
               "pool rows and expected bits must align");
  if (store_ != nullptr) {
    store_->record_pool(chip_id, pool);
    return;
  }
  std::lock_guard<std::mutex> lock(*mem_pool_mu_);
  MemPool& entry = mem_pools_[chip_id];
  mem_pool_undrained_ -= entry.pool.keys.size() - entry.head;
  mem_pool_undrained_ += pool.keys.size();
  entry.pool = std::move(pool);
  entry.head = 0;
}

std::uint64_t ServerDatabase::pool_entries_total() const {
  if (store_ != nullptr) return store_->pool_entries_total();
  std::lock_guard<std::mutex> lock(*mem_pool_mu_);
  return mem_pool_undrained_;
}

std::size_t ServerDatabase::pool_remaining(std::size_t chip_id) const {
  XPUF_REQUIRE(knows(chip_id), "pool_remaining for an unregistered device");
  std::uint32_t head = 0, count = 0, epoch = 0;
  std::uint64_t cursor = 0;
  if (!pool_peek(chip_id, head, count, cursor, epoch)) return 0;
  return count - head;
}

std::size_t ServerDatabase::refill_pool(std::size_t chip_id, const ModelView& view,
                                        const std::set<std::string>& ledger) {
  XPUF_TRACE_SPAN("db.pool_refill");
  XPUF_REQUIRE(config_.pool.target >= 1, "refill_pool requires pooling enabled");
  static Counter& refills = MetricsRegistry::global().counter("auth.pool_refills");
  std::uint32_t head = 0, count = 0, epoch = 0;
  std::uint64_t cursor = 0;
  const bool existed = pool_peek(chip_id, head, count, cursor, epoch);
  store::PoolPayload next;
  next.stages = static_cast<std::uint32_t>(view.stages());
  next.epoch = existed ? epoch + 1 : 1;
  const std::uint64_t start = existed ? cursor : 0;
  // Undrained leftovers carry over — screened work is never thrown away.
  if (existed && head < count) pool_read(chip_id, head, count - head, next.keys, next.expected);
  const std::size_t want =
      config_.pool.target > next.keys.size() ? config_.pool.target - next.keys.size() : 0;
  std::size_t tried = 0;
  if (want > 0) {
    ChallengeScreener screener(view, config_.n_pufs, config_.screening);
    const StreamFamily family = device_family(chip_id);
    const ChallengeScreener::Sink sink = [&](Challenge&& challenge, bool bit) {
      std::string key = store::pack_challenge(challenge);
      // Already-issued challenges never enter the pool; skipping them here
      // (instead of at drain time) keeps the drain's replay count a pure
      // crash-recovery signal.
      if (ledger.count(key) != 0) return false;
      next.keys.push_back(std::move(key));
      next.expected.push_back(bit ? 1 : 0);
      return true;
    };
    const ChallengeScreener::Outcome outcome = screener.screen(
        family, start, want, config_.policy.max_selection_attempts, sink);
    record_screening(outcome.tried, outcome.accepted);
    next.cursor = outcome.next_index;
    tried = outcome.tried;
  } else {
    next.cursor = start;
  }
  pool_write(chip_id, std::move(next));
  refills.add(1);
  static Gauge& pool_size = MetricsRegistry::global().gauge("auth.pool_size");
  pool_size.set(static_cast<double>(pool_entries_total()));
  return tried;
}

void ServerDatabase::fill_live(const ModelView& view, std::set<std::string>& ledger,
                               ChallengeBatch& batch, std::vector<std::string>& fresh,
                               Rng& rng) {
  XPUF_REQUIRE(batch.challenges.size() < config_.policy.challenge_count,
               "fill_live called with an already-full batch");
  const std::size_t need = config_.policy.challenge_count - batch.challenges.size();
  ChallengeScreener screener(view, config_.n_pufs, config_.screening);
  const StreamFamily family(rng.fork_base());
  const ChallengeScreener::Sink sink = [&](Challenge&& challenge, bool bit) {
    std::string key = store::pack_challenge(challenge);
    if (!ledger.insert(key).second) {
      // Replay-guarded: this stable challenge was issued to the device
      // before (e.g. a reused issuance seed); count the rejection — it is
      // the chosen-challenge-attack signal the server must observe.
      ++batch.replay_rejected;
      return false;
    }
    fresh.push_back(std::move(key));
    batch.challenges.push_back(std::move(challenge));
    batch.expected.push_back(bit);
    return true;
  };
  const ChallengeScreener::Outcome outcome = screener.screen(
      family, 0, need, config_.policy.max_selection_attempts, sink);
  batch.candidates_tried += outcome.tried;
  record_screening(outcome.tried, outcome.accepted);
  if (!outcome.filled)
    throw NumericalError("challenge issuance exhausted its attempt budget");
}

void ServerDatabase::finish_issue(std::size_t chip_id, std::uint32_t stages,
                                  ChallengeBatch& batch,
                                  const std::vector<std::string>& fresh) {
  XPUF_REQUIRE(batch.challenges.size() == batch.expected.size(),
               "issued rows and expected bits must align");
  auto& registry = MetricsRegistry::global();
  static Counter& replay = registry.counter("auth.replay_rejected");
  static Counter& issued = registry.counter("db.challenges_issued");
  static Gauge& ledger_size = registry.gauge("db.ledger_size");
  replay.add(batch.replay_rejected);
  issued.add(batch.challenges.size());
  if (store_ != nullptr) {
    // Durable acknowledgement: the challenges exist on disk before the
    // caller can send them anywhere (the store refreshes the gauges).
    store_->record_issued(chip_id, stages, fresh);
  } else {
    const std::uint64_t total =
        ledger_total_.fetch_add(fresh.size(), std::memory_order_relaxed) + fresh.size();
    ledger_size.set(static_cast<double>(total));
  }
}

ChallengeBatch ServerDatabase::issue_live(std::size_t chip_id, Rng& rng) {
  XPUF_TRACE_SPAN("db.issue_live");
  XPUF_REQUIRE(config_.policy.challenge_count > 0, "an authentication batch cannot be empty");
  const ModelView view = resolve_view(chip_id);
  std::set<std::string>& ledger = ledger_ref(chip_id);
  ChallengeBatch batch;
  std::vector<std::string> fresh;
  fresh.reserve(config_.policy.challenge_count);
  fill_live(view, ledger, batch, fresh, rng);
  finish_issue(chip_id, static_cast<std::uint32_t>(view.stages()), batch, fresh);
  return batch;
}

ChallengeBatch ServerDatabase::issue(std::size_t chip_id, Rng& rng) {
  XPUF_TRACE_SPAN("db.issue_batch");
  XPUF_REQUIRE(config_.policy.challenge_count > 0, "an authentication batch cannot be empty");
  auto& registry = MetricsRegistry::global();
  static Counter& requests = registry.counter("db.issue_requests");
  static Counter& pool_hits = registry.counter("auth.pool_hits");
  static Counter& pool_misses = registry.counter("auth.pool_misses");
  static Gauge& pool_size = registry.gauge("auth.pool_size");
  requests.add(1);
  if (config_.pool.target == 0) {
    pool_misses.add(1);
    return issue_live(chip_id, rng);
  }
  const std::uint32_t stages = device_stages(chip_id);
  std::set<std::string>& ledger = ledger_ref(chip_id);
  ChallengeBatch batch;
  std::vector<std::string> fresh;
  fresh.reserve(config_.policy.challenge_count);
  bool pool_ok = true;
  std::size_t dry_refills = 0;
  while (batch.challenges.size() < config_.policy.challenge_count) {
    std::uint32_t head = 0, count = 0, epoch = 0;
    std::uint64_t cursor = 0;
    if (!pool_peek(chip_id, head, count, cursor, epoch) || head >= count) {
      // Empty (or absent: a fleet enrolled before pooling was turned on):
      // refill in place. Two consecutive refills without a drainable entry
      // mean screening is dry — bypass to live.
      if (dry_refills++ >= 2) {
        pool_ok = false;
        break;
      }
      const ModelView view = resolve_view(chip_id);
      batch.candidates_tried += refill_pool(chip_id, view, ledger);
      continue;
    }
    dry_refills = 0;
    const auto need = static_cast<std::uint32_t>(config_.policy.challenge_count -
                                                 batch.challenges.size());
    const std::uint32_t take = std::min(count - head, need);
    std::vector<std::string> keys;
    std::vector<std::uint8_t> expected;
    pool_read(chip_id, head, take, keys, expected);
    for (std::uint32_t i = 0; i < take; ++i) {
      if (!ledger.insert(keys[i]).second) {
        // Only a crash-recovery re-drain reaches here: replay reset the
        // drain head, and the durable ledger screens out what was already
        // sent. Counted — it is still an issued-challenge-reuse signal.
        ++batch.replay_rejected;
        continue;
      }
      batch.challenges.push_back(store::unpack_challenge(keys[i], stages));
      batch.expected.push_back(expected[i] != 0);
      fresh.push_back(std::move(keys[i]));
    }
    pool_set_head(chip_id, head + take);
  }
  if (pool_ok) {
    pool_hits.add(1);
  } else {
    pool_misses.add(1);
    const ModelView view = resolve_view(chip_id);
    fill_live(view, ledger, batch, fresh, rng);
  }
  // Low-water top-up after serving, so the next issue is a pure drain.
  if (pool_ok && pool_remaining(chip_id) < config_.pool.low_water) {
    const ModelView view = resolve_view(chip_id);
    batch.candidates_tried += refill_pool(chip_id, view, ledger);
  }
  pool_size.set(static_cast<double>(pool_entries_total()));
  finish_issue(chip_id, stages, batch, fresh);
  return batch;
}

AuthenticationOutcome ServerDatabase::verify(std::size_t chip_id,
                                             const ChallengeBatch& batch,
                                             const std::vector<bool>& responses) const {
  XPUF_REQUIRE(knows(chip_id), "unknown device id");
  // Pure policy over the batch's expected bits: no model resolution, no
  // cache traffic — the whole verification is a Hamming-distance check.
  return apply_auth_policy(batch, responses, config_.policy);
}

DatabaseAuthOutcome ServerDatabase::authenticate(const sim::XorPufChip& chip,
                                                 const sim::Environment& env, Rng& rng) {
  XPUF_TRACE_SPAN("db.authenticate");
  static Counter& requests = MetricsRegistry::global().counter("db.auth_requests");
  static Counter& unknown = MetricsRegistry::global().counter("db.unknown_device");
  requests.add(1);
  DatabaseAuthOutcome out;
  if (!knows(chip.id())) {  // unknown device: denied by default
    unknown.add(1);
    return out;
  }
  out.known_device = true;
  const ChallengeBatch batch = issue(chip.id(), rng);
  out.replay_rejected = batch.replay_rejected;
  std::vector<bool> responses;
  responses.reserve(batch.challenges.size());
  for (const auto& c : batch.challenges) responses.push_back(chip.xor_response(c, env, rng));
  out.outcome = verify(chip.id(), batch, responses);
  return out;
}

std::size_t ServerDatabase::issued_count(std::size_t chip_id) const {
  if (store_ != nullptr) return store_->ledger(chip_id).size();
  const auto it = issued_.find(chip_id);
  XPUF_REQUIRE(it != issued_.end(), "unknown device id");
  return it->second.size();
}

void ServerDatabase::save(const std::string& directory) const {
  XPUF_TRACE_SPAN("db.save");
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  if (store_ != nullptr) {
    // A backed database is already durable record by record; save() is the
    // compaction point, and it only makes sense in the store's own home.
    XPUF_REQUIRE(directory == store_->dir(),
                 "a backed database saves in place (compaction)");
    store_->compact();
    devices.set(static_cast<double>(store_->device_count()));
    return;
  }
  // In-memory mode: commit the complete binary snapshot first (every file
  // lands via write-temp-then-rename), and only then clear legacy CSV
  // files — the reverse of the old delete-then-write order, so a crash at
  // any byte leaves a loadable directory. load() prefers the manifest, so
  // a crash between the two phases (both formats present) reads the new one.
  store::write_snapshot(directory, store::StoreOptions{}.n_shards, models_, issued_);
  namespace fs = std::filesystem;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool device_file = name.rfind("device_", 0) == 0;
    const bool ledger_file = name.rfind("ledger_", 0) == 0;
    if (device_file || ledger_file) fs::remove(entry.path());
  }
  devices.set(static_cast<double>(models_.size()));
}

ServerDatabase ServerDatabase::load(const std::string& directory, DatabaseConfig config) {
  XPUF_TRACE_SPAN("db.load");
  ServerDatabase db(config);
  namespace fs = std::filesystem;
  XPUF_REQUIRE(fs::is_directory(directory), "database directory does not exist");
  std::uint64_t total = 0;
  if (store::EnrollmentStore::is_store_dir(directory)) {
    // Binary store: replay the op log. A tiny cache keeps the replay from
    // holding the fleet twice while models are copied into the registry.
    store::StoreOptions options;
    options.cache_capacity = 1;
    const store::EnrollmentStore st = store::EnrollmentStore::open(directory, options);
    for (const std::uint64_t id : st.device_ids()) {
      db.models_.emplace(static_cast<std::size_t>(id), ServerModel(*st.model(id)));
      db.issued_[static_cast<std::size_t>(id)] = st.ledger(id);
    }
    total = st.issued_total();
  } else {
    std::vector<fs::path> ledger_files;
    for (const auto& entry : fs::directory_iterator(directory)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ledger_", 0) == 0) {
        ledger_files.push_back(entry.path());
        continue;
      }
      if (name.rfind("device_", 0) != 0) continue;
      ServerModel m = load_server_model(entry.path().string());
      db.register_device(std::move(m));
    }
    for (const fs::path& path : ledger_files) {
      std::size_t id = 0;
      if (!parse_ledger_id(path.filename().string(), id)) continue;
      if (!db.knows(id))
        throw ParseError(path.string() + ": orphaned ledger (device_" +
                         std::to_string(id) + " is missing) — a mid-save crash left "
                         "issued challenges behind; refusing to silently forget them");
      const std::size_t stages = db.models_.at(id).stages();
      const CsvData ledger = read_csv(path.string());
      for (const auto& row : ledger.rows) {
        if (row.empty() || row[0].empty()) continue;
        if (db.issued_[id].insert(packed_key_from_legacy(row[0], stages, path.string()))
                .second)
          ++total;
      }
    }
  }
  db.ledger_total_.store(total, std::memory_order_relaxed);
  auto& registry = MetricsRegistry::global();
  static Gauge& devices = registry.gauge("db.devices");
  static Gauge& ledger_size = registry.gauge("db.ledger_size");
  devices.set(static_cast<double>(db.models_.size()));
  ledger_size.set(static_cast<double>(total));
  return db;
}

}  // namespace xpuf::puf
