#include "puf/threshold_adjust.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace xpuf::puf {

namespace {

/// Per-PUF flattened evaluation data: model predictions paired with measured
/// soft responses, concatenated over every block/corner.
struct PufEvalData {
  std::vector<double> predicted;
  std::vector<double> measured;
};

std::vector<PufEvalData> flatten(const ServerModel& model,
                                 const std::vector<EvaluationBlock>& blocks) {
  std::vector<PufEvalData> data(model.puf_count());
  for (const auto& block : blocks) {
    XPUF_REQUIRE(block.soft.size() == model.puf_count(),
                 "evaluation block PUF count mismatch");
    // All models predict the whole block with one GEMM (bit-identical to
    // per-challenge predict_soft).
    const FeatureBlock features(block.challenges);
    const linalg::Matrix raw = model.predict_raw_batch(features);
    for (std::size_t p = 0; p < model.puf_count(); ++p) {
      XPUF_REQUIRE(block.soft[p].size() == block.challenges.size(),
                   "evaluation block row length mismatch");
      for (std::size_t c = 0; c < block.challenges.size(); ++c) {
        data[p].predicted.push_back(raw(c, p));
        data[p].measured.push_back(block.soft[p][c]);
      }
    }
  }
  return data;
}

/// A measured soft response disqualifies a stable-'0' selection when it is
/// not exactly 0.00 (strict mode) or when it is strictly between the bins
/// (stability-only mode).
bool bad_for_zero(double soft, bool strict) { return strict ? soft != 0.0 : soft > 0.0 && soft < 1.0; }
bool bad_for_one(double soft, bool strict) { return strict ? soft != 1.0 : soft > 0.0 && soft < 1.0; }

std::size_t count_violations(const ServerModel& model, const std::vector<PufEvalData>& data,
                             const BetaFactors& betas, bool strict) {
  std::size_t violations = 0;
  for (std::size_t p = 0; p < data.size(); ++p) {
    const ThresholdPair thr = tighten(model.puf(p).thresholds, betas);
    for (std::size_t i = 0; i < data[p].predicted.size(); ++i) {
      const double pred = data[p].predicted[i];
      const double soft = data[p].measured[i];
      if (pred < thr.thr0 && bad_for_zero(soft, strict)) ++violations;
      else if (pred > thr.thr1 && bad_for_one(soft, strict)) ++violations;
    }
  }
  return violations;
}

std::size_t count_side0(const ServerModel& model, const std::vector<PufEvalData>& data,
                        double beta0, bool strict) {
  std::size_t violations = 0;
  for (std::size_t p = 0; p < data.size(); ++p) {
    const ThresholdPair thr =
        tighten(model.puf(p).thresholds, BetaFactors{beta0, 1.0});
    for (std::size_t i = 0; i < data[p].predicted.size(); ++i)
      if (data[p].predicted[i] < thr.thr0 && bad_for_zero(data[p].measured[i], strict))
        ++violations;
  }
  return violations;
}

std::size_t count_side1(const ServerModel& model, const std::vector<PufEvalData>& data,
                        double beta1, bool strict) {
  std::size_t violations = 0;
  for (std::size_t p = 0; p < data.size(); ++p) {
    const ThresholdPair thr =
        tighten(model.puf(p).thresholds, BetaFactors{1.0, beta1});
    for (std::size_t i = 0; i < data[p].predicted.size(); ++i)
      if (data[p].predicted[i] > thr.thr1 && bad_for_one(data[p].measured[i], strict))
        ++violations;
  }
  return violations;
}

}  // namespace

BetaSearchResult find_betas(const ServerModel& model,
                            const std::vector<EvaluationBlock>& blocks,
                            const BetaSearchConfig& config) {
  XPUF_REQUIRE(!blocks.empty(), "beta search needs at least one evaluation block");
  XPUF_REQUIRE(config.step > 0.0, "beta search step must be positive");
  const bool strict = config.require_correct_value;
  const std::vector<PufEvalData> data = flatten(model, blocks);

  BetaSearchResult result;
  result.violations_before = count_violations(model, data, BetaFactors{1.0, 1.0}, strict);

  // The two sides are independent: beta0 only moves the stable-'0' boundary
  // and beta1 the stable-'1' boundary, so each is stepped separately, from
  // 1.00 toward stringency, exactly as the paper describes.
  double beta0 = 1.0;
  while (count_side0(model, data, beta0, strict) > 0 &&
         beta0 - config.step >= config.min_beta0)
    beta0 -= config.step;

  double beta1 = 1.0;
  while (count_side1(model, data, beta1, strict) > 0 &&
         beta1 + config.step <= config.max_beta1)
    beta1 += config.step;

  result.betas = BetaFactors{beta0, beta1};
  result.violations_after = count_violations(model, data, result.betas, strict);
  result.converged = result.violations_after == 0;
  return result;
}

BetaFactors conservative_betas(const std::vector<BetaFactors>& per_chip) {
  XPUF_REQUIRE(!per_chip.empty(), "conservative_betas over an empty set");
  BetaFactors out{1.0, 1.0};
  for (const auto& b : per_chip) {
    out.beta0 = std::min(out.beta0, b.beta0);
    out.beta1 = std::max(out.beta1, b.beta1);
  }
  return out;
}

EvaluationBlock measure_evaluation_block(const sim::XorPufChip& chip,
                                         const std::vector<Challenge>& challenges,
                                         const sim::Environment& env,
                                         std::uint64_t trials, Rng& rng) {
  XPUF_REQUIRE(trials > 0, "an evaluation block needs at least one trial per challenge");
  for (const auto& c : challenges)
    XPUF_REQUIRE(c.size() == chip.stages(), "challenge length != chip stage count");
  EvaluationBlock block;
  block.challenges = challenges;
  block.environment = env;
  block.soft.assign(chip.puf_count(), std::vector<double>(challenges.size(), 0.0));
  if (challenges.empty()) return block;
  // Probabilities for every (PUF, challenge) cell come from one GEMM; the
  // binomial counters then consume the caller's serial RNG in the exact
  // (p, c) order the per-cell measurement loop used, so the block is
  // reproducible draw for draw.
  const FeatureBlock features(challenges);
  const linalg::Matrix probs = chip.one_probabilities(features, env);
  for (std::size_t p = 0; p < chip.puf_count(); ++p)
    for (std::size_t c = 0; c < challenges.size(); ++c)
      block.soft[p][c] = static_cast<double>(rng.binomial(trials, probs(c, p))) /
                         static_cast<double>(trials);
  return block;
}

}  // namespace xpuf::puf
