// Multi-device server database and authentication front end.
//
// The paper's server stores per-chip delay parameters and thresholds "in
// the server database" and runs the Fig 7 flow per authentication request.
// This module is the deployment-shaped wrapper around those pieces: a
// registry of enrolled chips, per-device authentication with the zero-HD
// policy, challenge-replay protection (a challenge is never reused for a
// device — otherwise an eavesdropper could replay recorded responses), and
// persistence of the whole registry to a directory of model files.
//
// Concurrency contract: issue(), verify(), authenticate() and the const
// accessors are safe to call concurrently for DISTINCT pre-registered
// devices — they never mutate the registry maps themselves, only the
// per-device ledger set the caller's device owns (std::map lookups tolerate
// concurrent readers, and disjoint mapped values may be mutated in
// parallel). register_device(), revoke_device(), save() and load() mutate
// the maps and require exclusive access; the net/ ServiceEngine satisfies
// this by giving each shard its own ServerDatabase and keeping all calls on
// the owning shard lane. tests/test_observability.cpp exercises the
// concurrent half of the contract under TSan.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "puf/authentication.hpp"

namespace xpuf::puf {

struct DatabaseConfig {
  std::size_t n_pufs = 10;  ///< XOR width used for every device
  AuthenticationPolicy policy;
};

/// Result of a database-level authentication request.
struct DatabaseAuthOutcome {
  bool known_device = false;
  AuthenticationOutcome outcome;
  std::size_t replay_rejected = 0;  ///< candidates dropped by replay guard
};

class ServerDatabase {
 public:
  explicit ServerDatabase(DatabaseConfig config) : config_(config) {}

  const DatabaseConfig& config() const { return config_; }
  std::size_t device_count() const { return models_.size(); }
  bool knows(std::size_t chip_id) const { return models_.count(chip_id) != 0; }

  /// Registers an enrolled chip; rejects duplicate ids and width mismatches.
  void register_device(ServerModel model);

  /// Removes a device and its replay history.
  void revoke_device(std::size_t chip_id);

  const ServerModel& model(std::size_t chip_id) const;

  /// Issues a fresh stable-challenge batch for a device, excluding every
  /// challenge the server has ever sent to it (replay protection). The
  /// issued challenges are recorded immediately.
  ChallengeBatch issue(std::size_t chip_id, Rng& rng);

  /// Verifies responses against the last batch semantics (stateless check —
  /// the caller passes the batch back; the database just applies policy).
  AuthenticationOutcome verify(std::size_t chip_id, const ChallengeBatch& batch,
                               const std::vector<bool>& responses) const;

  /// Full round trip against a physical chip.
  DatabaseAuthOutcome authenticate(const sim::XorPufChip& chip,
                                   const sim::Environment& env, Rng& rng);

  /// Challenges ever issued to a device.
  std::size_t issued_count(std::size_t chip_id) const;

  /// Writes one model file per device into `directory` (created if absent)
  /// plus the issued-challenge ledger; `load` restores the registry.
  void save(const std::string& directory) const;
  static ServerDatabase load(const std::string& directory, DatabaseConfig config);

 private:
  DatabaseConfig config_;
  std::map<std::size_t, ServerModel> models_;
  /// Replay ledger: compact challenge encodings per device.
  std::map<std::size_t, std::set<std::string>> issued_;

  static std::string encode(const Challenge& challenge);
  static Challenge decode(const std::string& encoded);
};

}  // namespace xpuf::puf
