// Multi-device server database and authentication front end.
//
// The paper's server stores per-chip delay parameters and thresholds "in
// the server database" and runs the Fig 7 flow per authentication request.
// This module is the deployment-shaped wrapper around those pieces: a
// registry of enrolled chips, per-device authentication with the zero-HD
// policy, challenge-replay protection (a challenge is never reused for a
// device — otherwise an eavesdropper could replay recorded responses), and
// persistence of the whole registry to a directory of model files.
//
// Two serving modes share the same API:
//
//   in-memory (the historical default): every model and ledger lives in the
//   registry maps; save() writes a complete binary snapshot (sharded store
//   files committed via write-temp-then-rename — never delete-then-write)
//   and load() reads either that binary format or a legacy CSV directory,
//   upgrading the latter on its first save.
//
//   backed (open()): the database fronts a store::EnrollmentStore — every
//   register/revoke/issue is appended durably to a sharded crc'd op log
//   before the call returns, ledgers stay memory-resident per shard, and
//   model weights are served through a capacity-bounded LRU cache
//   (db.cache_hits/db.cache_misses/db.cache_evictions), so authentication
//   over a million-device fleet runs in bounded memory. save() compacts the
//   log in place.
//
// Concurrency contract: issue(), verify(), authenticate() and the const
// accessors are safe to call concurrently for DISTINCT pre-registered
// devices — they never mutate the registry maps themselves, only the
// per-device ledger set the caller's device owns (std::map lookups tolerate
// concurrent readers, and disjoint mapped values may be mutated in
// parallel; the backed store locks its shared cache and shard files
// internally). register_device(), revoke_device(), save() and load() mutate
// the maps and require exclusive access; the net/ ServiceEngine satisfies
// this by giving each shard its own ServerDatabase and keeping all calls on
// the owning shard lane. tests/test_observability.cpp exercises the
// concurrent half of the contract under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "puf/authentication.hpp"
#include "puf/screening.hpp"
#include "puf/store/store.hpp"

namespace xpuf::puf {

/// Per-device pre-screened stable-challenge pools — the issuance hot path.
/// With pooling on, registration (and a low-water refill) screens `target`
/// predicted-stable challenges per device through the batched screener and
/// persists them (backed mode: a durable POOL record; in-memory mode: a
/// registry entry), so a steady-state issue() drains O(challenge_count)
/// entries instead of rejection-sampling ~challenge_count / 0.800^n live
/// candidates. Pool candidates come from a per-device StreamFamily keyed by
/// `seed ^ f(device_id)` with a persisted resume cursor, so the pooled
/// challenge sequence is a pure function of (seed, device, drain history) —
/// crash + replay re-drains the same prefix and the replay ledger screens
/// out what was already issued.
struct PoolPolicy {
  std::size_t target = 0;     ///< pool entries per device; 0 disables pooling
  std::size_t low_water = 8;  ///< refill when undrained entries drop below this
  std::uint64_t seed = 0x706f6f6c73656564ull;  ///< pool stream family base
};

struct DatabaseConfig {
  std::size_t n_pufs = 10;  ///< XOR width used for every device
  AuthenticationPolicy policy;
  ScreeningOptions screening;  ///< candidate screening mode (batched default)
  PoolPolicy pool;             ///< issuance pools (disabled by default)
};

/// Result of a database-level authentication request.
struct DatabaseAuthOutcome {
  bool known_device = false;
  AuthenticationOutcome outcome;
  std::size_t replay_rejected = 0;  ///< candidates dropped by replay guard
};

class ServerDatabase {
 public:
  explicit ServerDatabase(DatabaseConfig config) : config_(config) {}

  ServerDatabase(ServerDatabase&& other) noexcept;
  ServerDatabase& operator=(ServerDatabase&& other) noexcept;

  /// Opens (creating if needed) a store-backed database at `directory`:
  /// durable sharded op log + LRU-bounded model serving.
  static ServerDatabase open(const std::string& directory, DatabaseConfig config,
                             store::StoreOptions options = {});

  bool backed() const { return store_ != nullptr; }

  /// The underlying store of a backed database (introspection: shard
  /// totals, cache occupancy, compaction offsets).
  const store::EnrollmentStore& store() const;

  const DatabaseConfig& config() const { return config_; }
  std::size_t device_count() const {
    return store_ ? store_->device_count() : models_.size();
  }
  bool knows(std::size_t chip_id) const {
    return store_ ? store_->knows(chip_id) : models_.count(chip_id) != 0;
  }

  /// Registers an enrolled chip; rejects duplicate ids and width mismatches.
  void register_device(ServerModel model);

  /// Removes a device and its replay history.
  void revoke_device(std::size_t chip_id);

  /// Direct registry reference — in-memory mode only: a backed database
  /// serves models through the bounded cache, where references can be
  /// evicted under the caller; use model_snapshot() there.
  const ServerModel& model(std::size_t chip_id) const;

  /// Mode-independent model access. Backed: the cached (or freshly decoded)
  /// model, kept alive by the shared_ptr across evictions. In-memory: a
  /// copy — intended for tests and tooling, not hot paths.
  std::shared_ptr<const ServerModel> model_snapshot(std::size_t chip_id) const;

  /// Issues a fresh stable-challenge batch for a device, excluding every
  /// challenge the server has ever sent to it (replay protection). The
  /// issued challenges are recorded immediately. With pooling enabled the
  /// batch drains the device's pre-screened pool (auth.pool_hits) and only
  /// falls back to live screening when the pool cannot be refilled
  /// (auth.pool_misses); `rng` is consumed only on that fallback, so the
  /// pooled sequence is reproducible from the pool seed alone.
  ChallengeBatch issue(std::size_t chip_id, Rng& rng);

  /// The live-screening issuance path, pool-bypassing by construction:
  /// screens candidates from a stream forked off `rng` (exactly one
  /// fork_base() draw) against the device's model. This is issue()'s
  /// fallback and the reference side of the pooled-vs-live bench A/B.
  ChallengeBatch issue_live(std::size_t chip_id, Rng& rng);

  /// Undrained pre-screened challenges currently pooled for a device
  /// (0 when it has no pool).
  std::size_t pool_remaining(std::size_t chip_id) const;

  /// Verifies responses against the batch the caller passes back — pure
  /// policy over the batch's expected bits (apply_auth_policy); no model is
  /// resolved, so verification never touches the cache or the log.
  AuthenticationOutcome verify(std::size_t chip_id, const ChallengeBatch& batch,
                               const std::vector<bool>& responses) const;

  /// Full round trip against a physical chip.
  DatabaseAuthOutcome authenticate(const sim::XorPufChip& chip,
                                   const sim::Environment& env, Rng& rng);

  /// Challenges ever issued to a device.
  std::size_t issued_count(std::size_t chip_id) const;

  /// In-memory mode: writes a complete binary store snapshot into
  /// `directory` (created if absent) — manifest + sharded record logs, each
  /// file committed via write-temp-then-rename — then removes any legacy
  /// `device_*`/`ledger_*` CSV files, completing the format migration. A
  /// crash at any point leaves every device readable in either its old or
  /// new state; nothing is deleted before its replacement is durable.
  /// Backed mode: compacts the store in place (`directory` must be the
  /// store's own directory).
  void save(const std::string& directory) const;

  /// Restores an in-memory registry from `directory`: binary store layout
  /// when a manifest is present, legacy CSV otherwise. Orphaned legacy
  /// `ledger_*` files (their `device_*` partner missing — the residue of a
  /// mid-save crash of the old writer) are a ParseError, never silently
  /// forgotten issued challenges.
  static ServerDatabase load(const std::string& directory, DatabaseConfig config);

 private:
  /// In-memory pool state (backed mode keeps pools in the store instead).
  /// Dropped by save()/load(): pools are a rebuildable cache, not registry
  /// state — the first post-load issue recreates them.
  struct MemPool {
    store::PoolPayload pool;
    std::uint32_t head = 0;
  };

  /// Mode-independent model access for screening: zero-copy mapped view,
  /// cached model, or borrowed registry reference.
  ModelView resolve_view(std::size_t chip_id) const;
  std::set<std::string>& ledger_ref(std::size_t chip_id);
  std::uint32_t device_stages(std::size_t chip_id) const;
  /// The device's pool candidate stream family — pure function of
  /// (config_.pool.seed, chip_id).
  StreamFamily device_family(std::size_t chip_id) const;

  // Pool state accessors spanning both serving modes. All are safe
  // concurrently for distinct devices (store pool mutex / mem_pool_mu_).
  bool pool_peek(std::size_t chip_id, std::uint32_t& head, std::uint32_t& count,
                 std::uint64_t& cursor, std::uint32_t& epoch) const;
  void pool_read(std::size_t chip_id, std::uint32_t first, std::uint32_t n,
                 std::vector<std::string>& keys,
                 std::vector<std::uint8_t>& expected) const;
  void pool_set_head(std::size_t chip_id, std::uint32_t head);
  void pool_write(std::size_t chip_id, store::PoolPayload pool);
  /// Fleet-wide undrained pool entries (behind the auth.pool_size gauge).
  std::uint64_t pool_entries_total() const;

  /// (Re)builds the device's pool: carries over undrained entries, screens
  /// fresh candidates from the persisted cursor, persists the result with
  /// head = 0 and a bumped epoch. Returns candidates tried (the caller adds
  /// it to the batch's accounting).
  std::size_t refill_pool(std::size_t chip_id, const ModelView& view,
                          const std::set<std::string>& ledger);
  /// Completes `batch` to challenge_count via live screening (the shared
  /// kernel of issue_live and the pool-bypass fallback).
  void fill_live(const ModelView& view, std::set<std::string>& ledger,
                 ChallengeBatch& batch, std::vector<std::string>& fresh, Rng& rng);
  /// Common issue() epilogue: replay/issued metrics + durable ledger append.
  void finish_issue(std::size_t chip_id, std::uint32_t stages, ChallengeBatch& batch,
                    const std::vector<std::string>& fresh);

  DatabaseConfig config_;
  std::map<std::size_t, ServerModel> models_;
  /// Replay ledger: packed challenge keys (store::pack_challenge) per device.
  std::map<std::size_t, std::set<std::string>> issued_;
  /// Fleet-wide issued-challenge count behind the db.ledger_size gauge
  /// (in-memory mode); atomic because concurrent issue() calls for distinct
  /// devices both retire into it.
  std::atomic<std::uint64_t> ledger_total_{0};
  std::map<std::size_t, MemPool> mem_pools_;
  /// Fleet-wide undrained entries over mem_pools_, maintained incrementally
  /// (same O(1) gauge-refresh contract as the store's counter). Guarded by
  /// mem_pool_mu_.
  std::uint64_t mem_pool_undrained_ = 0;
  /// Guards mem_pools_ (lookup and lazy insertion under concurrent issue).
  std::unique_ptr<std::mutex> mem_pool_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<store::EnrollmentStore> store_;
};

}  // namespace xpuf::puf
