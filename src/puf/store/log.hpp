// Sharded append-only log files of the enrollment store.
//
// An AppendLog is one shard file: records are only ever appended (fseek to
// the end + fwrite + fflush), read back either whole (recovery replay) or by
// exact [offset, length) window (cache misses), and replaced wholesale only
// through write-temp-then-rename (compaction / snapshot) — so at every
// instant the named file on disk is either the complete old contents or the
// complete new contents, never a partial mix. A crash mid-append leaves at
// most one torn record at the tail, which recovery truncates away.
//
// ShardedLog owns the directory: a fixed-size crc'd manifest records the
// shard fan-out (device_id % n_shards routes every op), and shard k lives
// in `shard_<k>.log`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace xpuf::puf::store {

/// Commits `bytes` under `path` without ever exposing a partial file: the
/// contents land in `<path>.tmp` first and the rename is the atomic switch.
/// Refuses empty contents — absence of a file is the representation of an
/// empty shard, so committing a zero-byte file is always a caller bug.
void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Reads `dir`'s shard manifest into `n_shards`. Returns false when no
/// manifest exists; throws ParseError when one exists but is corrupt.
bool read_manifest(const std::string& dir, std::uint32_t& n_shards);

class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();
  AppendLog(AppendLog&& other) noexcept;
  AppendLog& operator=(AppendLog&& other) noexcept;
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens (creating if missing) the log file. Throws AccessError on I/O
  /// failure.
  static AppendLog open(const std::string& path);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Current end-of-file offset — the offset the next append lands at.
  std::uint64_t size() const { return size_; }

  /// Appends `bytes` at the end and flushes; returns the end offset AFTER
  /// the write (the record's durable high-water mark).
  std::uint64_t append(const std::vector<std::uint8_t>& bytes);

  /// Reads the whole file into `out` (recovery replay).
  void read_all(std::vector<std::uint8_t>& out) const;

  /// Reads exactly [offset, offset + length) into `out`; throws AccessError
  /// if the window is outside the file (an index/file mismatch is store
  /// corruption, not a soft miss).
  void read_at(std::uint64_t offset, std::uint64_t length,
               std::vector<std::uint8_t>& out) const;

  /// Drops everything at and after `new_size` — recovery uses this to cut a
  /// torn tail record so later appends extend a clean prefix.
  void truncate_to(std::uint64_t new_size);

  /// Atomically replaces the file contents: writes `bytes` to `<path>.tmp`,
  /// renames over `path`, reopens. The rename is the commit point.
  void replace_with(const std::vector<std::uint8_t>& bytes);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t size_ = 0;
};

class ShardedLog {
 public:
  /// Opens the store directory: reads the manifest when present (ParseError
  /// if corrupt), otherwise creates one recording `default_shards`. The
  /// manifest itself is committed via temp-then-rename.
  static ShardedLog open(const std::string& dir, std::uint32_t default_shards);

  /// True when `dir` holds a binary store (manifest file present) — the
  /// format probe ServerDatabase::load() uses to pick binary vs legacy CSV.
  static bool is_store_dir(const std::string& dir);

  const std::string& dir() const { return dir_; }
  std::uint32_t n_shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::uint32_t shard_of(std::uint64_t device_id) const {
    return static_cast<std::uint32_t>(device_id % shards_.size());
  }

  AppendLog& shard(std::uint32_t k);
  const AppendLog& shard(std::uint32_t k) const;

 private:
  ShardedLog() = default;

  std::string dir_;
  std::vector<AppendLog> shards_;
};

}  // namespace xpuf::puf::store
