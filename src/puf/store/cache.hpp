// Capacity-bounded LRU cache of decoded ServerModels.
//
// The store keeps the device index and ledgers memory-resident but decodes
// model weights on demand — with the cache sized at ~1% of the fleet, the
// authentication path touches a bounded working set no matter how many
// devices are enrolled. Entries are shared_ptr so an authentication that
// fetched a model keeps it alive even if the cache evicts it mid-flight.
// Pure mechanism: hit/miss/eviction *metrics* belong to the
// EnrollmentStore, which knows why a lookup happened.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>

#include "puf/enrollment.hpp"

namespace xpuf::puf::store {

class ModelCache {
 public:
  /// `capacity` is the maximum number of resident models (>= 1).
  explicit ModelCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return by_id_.size(); }

  /// Returns the cached model and marks it most-recently-used, or nullptr.
  std::shared_ptr<const ServerModel> get(std::uint64_t device_id);

  /// Inserts (or replaces) a model and marks it most-recently-used; evicts
  /// the least-recently-used entry when over capacity. Returns the number
  /// of evictions performed (0 or 1).
  std::size_t put(std::uint64_t device_id, std::shared_ptr<const ServerModel> model);

  /// Drops one device (revocation); returns true if it was resident.
  bool erase(std::uint64_t device_id);

  void clear();

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const ServerModel>>;

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recent
  std::map<std::uint64_t, std::list<Entry>::iterator> by_id_;
};

}  // namespace xpuf::puf::store
