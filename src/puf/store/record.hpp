// Fixed-width binary record codec of the enrollment store.
//
// The server must durably remember every enrolled model and every challenge
// it ever issued — the issued-challenge ledger IS the replay defense — so
// store records follow the same byte-exact discipline as the net/ wire
// frames (which this module cannot include: puf sits below net in the
// layering DAG, so the primitives are redefined here and the xpuf_lint
// `wire-pairing` pass checks both copies).
//
// Record layout (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     2  magic        0x5253 ("SR": store record)
//        2     1  version      kStoreVersion
//        3     1  op           OpType (register / revoke / issue)
//        4     8  device_id
//       12     4  payload_len  bytes that follow before the checksum
//       16     n  payload
//     16+n     4  crc32        over bytes [0, 16+n)
//
// A store file is a plain concatenation of records (an op log); decoding is
// streaming — decode_record() consumes one record at an offset and reports
// kTruncated for a partial tail, so a crash mid-append loses at most the
// record being written, never the prefix. Challenges are packed one BIT per
// stage (LSB-first, like the wire challenge batches), not one char per bit.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "puf/enrollment.hpp"
#include "puf/model_view.hpp"

namespace xpuf::puf::store {

inline constexpr std::uint16_t kRecordMagic = 0x5253;  // "SR"
inline constexpr std::uint8_t kStoreVersion = 1;
inline constexpr std::uint32_t kRecordHeaderBytes = 16;
inline constexpr std::uint32_t kRecordTrailerBytes = 4;
/// Upper bound on payload size; larger length prefixes are rejected as
/// kBadLength before any allocation, so a corrupt length cannot OOM.
inline constexpr std::uint32_t kMaxRecordPayloadBytes = 1u << 24;
/// Geometry bounds of a model payload — generous, but small enough that a
/// corrupt count field cannot drive a giant allocation.
inline constexpr std::uint32_t kMaxPufsPerModel = 4096;
inline constexpr std::uint32_t kMaxStagesPerModel = 4096;

/// Typed operations of the append-only log. Replay applies them in order,
/// so a revoke permanently shadows every earlier record of its device — the
/// structural fix for the PR 3 revoke-resurrection class of bug.
enum class OpType : std::uint8_t {
  kRegister = 1,  ///< full ServerModel snapshot for a device
  kRevoke = 2,    ///< device removed; payload empty
  kIssue = 3,     ///< ledger append: packed challenges issued to the device
  kPool = 4,      ///< pre-screened stable-challenge pool; latest epoch wins
  kPad = 5,       ///< alignment filler (0-7 zero bytes) so the f64 region of
                  ///< the next REGISTER payload lands 8-byte aligned for
                  ///< zero-copy mmap serving; no device semantics
};

/// Largest legal kPad payload: a pad exists only to reach the next 8-byte
/// boundary, so anything longer is corruption.
inline constexpr std::uint32_t kMaxPadBytes = 7;

bool is_known_op(std::uint8_t raw);
const char* to_string(OpType op);

enum class RecordStatus : std::uint8_t {
  kOk = 0,
  kTruncated,    ///< fewer bytes than header + payload_len + checksum
  kBadMagic,
  kBadVersion,
  kBadOp,
  kBadLength,    ///< payload_len exceeds kMaxRecordPayloadBytes
  kBadChecksum,
  kBadPayload,   ///< payload codec found malformed contents
};

const char* to_string(RecordStatus status);

// --- byte-order codecs ------------------------------------------------------
// The only sanctioned way bytes enter or leave a store record. Inline in the
// header so the whole codec TU pair (record.hpp + record.cpp) carries the
// put_/read_ vocabulary the wire-pairing lint pass verifies.

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (std::uint32_t shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (std::uint32_t shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
}

/// Doubles travel as their IEEE-754 bit pattern in a little-endian u64, so a
/// model round-trips bit-exactly on any host.
inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  static_assert(std::numeric_limits<double>::is_iec559,
                "store codec requires IEEE-754 doubles");
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian cursor. Every read_* returns false instead
/// of walking past the end, so truncated records surface as kTruncated,
/// never UB.
class RecordReader {
 public:
  RecordReader(const std::uint8_t* data, std::uint64_t size)
      : data_(data), size_(size) {}

  bool read_u8(std::uint8_t& v);
  bool read_u16(std::uint16_t& v);
  bool read_u32(std::uint32_t& v);
  bool read_u64(std::uint64_t& v);
  bool read_f64(double& v);
  bool read_bytes(std::uint64_t n, std::string& out);
  bool skip(std::uint64_t n);

  std::uint64_t position() const { return pos_; }
  std::uint64_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
};

inline bool RecordReader::read_u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = data_[pos_++];
  return true;
}

inline bool RecordReader::read_u16(std::uint16_t& v) {
  if (remaining() < 2) return false;
  v = static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) |
                                 (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return true;
}

inline bool RecordReader::read_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (std::uint32_t b = 0; b < 4; ++b)
    v |= static_cast<std::uint32_t>(data_[pos_ + b]) << (8 * b);
  pos_ += 4;
  return true;
}

inline bool RecordReader::read_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (std::uint32_t b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(data_[pos_ + b]) << (8 * b);
  pos_ += 8;
  return true;
}

inline bool RecordReader::read_f64(double& v) {
  std::uint64_t bits = 0;
  if (!read_u64(bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

inline bool RecordReader::read_bytes(std::uint64_t n, std::string& out) {
  if (remaining() < n) return false;
  out.assign(reinterpret_cast<const char*>(data_) + pos_, static_cast<std::size_t>(n));
  pos_ += n;
  return true;
}

inline bool RecordReader::skip(std::uint64_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the record checksum.
std::uint32_t crc32(const std::uint8_t* data, std::uint64_t size);

// --- record framing ---------------------------------------------------------

/// A decoded record, viewing (not copying) the payload bytes of the buffer
/// it was decoded from. `begin`/`end` are buffer offsets of the record's
/// first byte and one past its trailer — the replay cursor and the torture
/// test's truncation bookkeeping both key on `end`.
struct RecordView {
  OpType op = OpType::kRevoke;
  std::uint64_t device_id = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Appends one framed record (header + payload + crc) to `out`.
void encode_record(std::vector<std::uint8_t>& out, OpType op, std::uint64_t device_id,
                   const std::vector<std::uint8_t>& payload);

/// Decodes the record starting at `offset`; `out` views into `data` and is
/// valid only on kOk. Never throws — a truncated or corrupt tail is a state
/// the recovery path must classify, not a crash.
RecordStatus decode_record(const std::uint8_t* data, std::uint64_t size,
                           std::uint64_t offset, RecordView& out);

// --- payload codecs ---------------------------------------------------------

/// REGISTER payload: u32 puf_count, u32 stages, f64 beta0, f64 beta1, then
/// per PUF: f64 thr0, f64 thr1, f64 r_squared, f64 fit_time_ms and
/// (stages + 1) f64 weights.
std::vector<std::uint8_t> encode_model(const ServerModel& model);
RecordStatus decode_model(const std::uint8_t* payload, std::uint32_t len,
                          std::uint64_t device_id, ServerModel& out);

/// Reads only the geometry prefix of a REGISTER payload — replay indexes
/// records without materializing weights, but compaction needs the stages.
RecordStatus peek_model_shape(const std::uint8_t* payload, std::uint32_t len,
                              std::uint32_t& puf_count, std::uint32_t& stages);

/// Exact byte size of a REGISTER payload with this geometry — replay checks
/// the stored length against it without decoding the weights.
std::uint64_t model_payload_bytes(std::uint32_t puf_count, std::uint32_t stages);

/// ISSUE payload: u32 count, u32 stages, then count rows of
/// ceil(stages / 8) bytes — the packed ledger keys, verbatim.
std::vector<std::uint8_t> encode_ledger(std::uint32_t stages,
                                        const std::vector<std::string>& keys);
RecordStatus decode_ledger(const std::uint8_t* payload, std::uint32_t len,
                           std::uint32_t& stages, std::vector<std::string>& keys);

/// Decoded POOL payload: the device's pre-screened stable-challenge pool.
/// `keys` are packed challenges (pack_challenge format), `expected[i]` the
/// predicted XOR bit of keys[i], `cursor` the candidate-stream index the
/// next refill resumes screening from, `epoch` the pool generation — replay
/// keeps only the record with the highest epoch per device.
struct PoolPayload {
  std::uint32_t stages = 0;
  std::uint32_t epoch = 0;
  std::uint64_t cursor = 0;
  std::vector<std::string> keys;
  std::vector<std::uint8_t> expected;  ///< one 0/1 byte per key
};

/// POOL payload: u32 count, u32 stages, u32 epoch, u32 reserved(0),
/// u64 cursor, ceil(count / 8) expected-bit bytes (bit i of byte i/8 =
/// expected response of entry i, LSB-first like the challenge packing),
/// then count rows of ceil(stages / 8) packed challenge bytes.
std::vector<std::uint8_t> encode_pool(const PoolPayload& pool);
RecordStatus decode_pool(const std::uint8_t* payload, std::uint32_t len,
                         PoolPayload& out);

/// Builds a zero-copy ModelView straight over a REGISTER payload — the mmap
/// serving path: the view's weight spans point into `payload` itself, no
/// parse, no copy. Returns false (leaving `out` untouched) when the payload
/// is malformed or its f64 region is not 8-byte aligned in memory; callers
/// fall back to decode_model. `owner` (typically the shard mapping) keeps
/// the bytes alive for the view's lifetime.
bool model_view_from_payload(const std::uint8_t* payload, std::uint32_t len,
                             std::uint64_t device_id,
                             std::shared_ptr<const void> owner, ModelView& out);

/// Appends one kPad record iff `base_offset + out.size()` — the file offset
/// the next record would land at — is not 8-byte aligned, sized so the next
/// record appended begins on an 8-byte boundary. A REGISTER record starting
/// at an aligned offset has its f64 region (record offset 24) aligned too,
/// which is what zero-copy serving from a page-aligned mapping requires.
/// `base_offset` is the file offset `out` will be appended at (0 for a
/// buffer that becomes a whole shard). No-op when already aligned.
void append_alignment_pad(std::vector<std::uint8_t>& out, std::uint64_t base_offset = 0);

// --- shard manifest ---------------------------------------------------------
// Tiny fixed-size file at the store root recording the shard fan-out; its
// presence is also how load() distinguishes a binary store from a legacy
// CSV directory.
//
//   offset  size  field
//        0     2  magic      0x534D ("MS": manifest of shards)
//        2     1  version    kStoreVersion
//        3     1  reserved   0
//        4     4  n_shards
//        8     4  crc32      over bytes [0, 8)

inline constexpr std::uint16_t kManifestMagic = 0x534D;  // "MS"
inline constexpr std::uint32_t kManifestBytes = 12;

std::vector<std::uint8_t> encode_manifest(std::uint32_t n_shards);
RecordStatus decode_manifest(const std::uint8_t* data, std::uint64_t size,
                             std::uint32_t& n_shards);

// --- packed challenge keys --------------------------------------------------
// The in-memory replay ledger stores challenges in the same packed form the
// log uses: ceil(stages / 8) bytes, bit i of byte i/8 = challenge bit i.

std::string pack_challenge(const Challenge& challenge);
Challenge unpack_challenge(const std::string& key, std::size_t bits);

}  // namespace xpuf::puf::store
