#include "puf/store/store.hpp"

#include <filesystem>
#include <utility>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace xpuf::puf::store {

namespace {

/// Issued-challenge keys per ISSUE record: 65536 keys of a 4096-stage model
/// stay far below kMaxRecordPayloadBytes, so compaction and snapshotting of
/// arbitrarily large ledgers never produce an oversized record.
constexpr std::size_t kLedgerKeysPerRecord = 65536;

std::string shard_gauge_name(std::uint32_t k) {
  return "db.shard_ledger_size." + std::to_string(k);
}

/// Appends ISSUE records covering [first, last), chunked so each record's
/// payload stays bounded.
template <typename Iter>
void append_issue_records(std::vector<std::uint8_t>& out, std::uint64_t device_id,
                          std::uint32_t stages, Iter first, Iter last) {
  XPUF_REQUIRE(stages > 0, "issue records need the model geometry");
  std::vector<std::string> chunk;
  while (first != last) {
    chunk.clear();
    for (std::size_t n = 0; n < kLedgerKeysPerRecord && first != last; ++n, ++first)
      chunk.push_back(*first);
    encode_record(out, OpType::kIssue, device_id, encode_ledger(stages, chunk));
  }
}

}  // namespace

EnrollmentStore::EnrollmentStore(ShardedLog log, StoreOptions options)
    : options_(options),
      log_(std::move(log)),
      maps_(log_.n_shards()),
      cache_(options.cache_capacity),
      shard_mu_(std::make_unique<std::mutex[]>(log_.n_shards())),
      cache_mu_(std::make_unique<std::mutex>()),
      pool_mu_(std::make_unique<std::mutex>()),
      shard_ledger_total_(std::make_unique<std::atomic<std::uint64_t>[]>(log_.n_shards())) {
  auto& registry = MetricsRegistry::global();
  shard_gauges_.reserve(log_.n_shards());
  for (std::uint32_t k = 0; k < log_.n_shards(); ++k)
    shard_gauges_.push_back(&registry.gauge(shard_gauge_name(k)));
}

EnrollmentStore EnrollmentStore::open(const std::string& dir, StoreOptions options) {
  XPUF_TRACE_SPAN("db.store_open");
  EnrollmentStore store(ShardedLog::open(dir, options.n_shards), options);
  for (std::uint32_t k = 0; k < store.n_shards(); ++k) {
    store.replay_shard(k);
    store.refresh_ledger_gauges(k);
    // Map only after replay: a torn tail has been truncated away by now, so
    // the frozen mapping covers exactly the validated prefix.
    store.remap_shard(k);
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(store.index_.size()));
  return store;
}

void EnrollmentStore::replay_shard(std::uint32_t k) {
  static Counter& truncations = MetricsRegistry::global().counter("db.log_truncated");
  AppendLog& shard = log_.shard(k);
  std::vector<std::uint8_t> bytes;
  shard.read_all(bytes);
  const auto corrupt = [&](std::uint64_t offset, const std::string& what) {
    return ParseError("store log " + shard.path() + " at offset " +
                      std::to_string(offset) + ": " + what);
  };
  std::uint64_t offset = 0;
  // A pad record is only ever written immediately before the REGISTER it
  // aligns (same append), so a pad with nothing after it is the residue of
  // a torn append, not acknowledged state — trim from the pad's own begin.
  bool tail_is_pad = false;
  std::uint64_t tail_pad_begin = 0;
  while (offset < bytes.size()) {
    RecordView view;
    const RecordStatus status = decode_record(bytes.data(), bytes.size(), offset, view);
    if (status == RecordStatus::kTruncated) {
      // Torn tail from a crash mid-append: everything before `offset` is
      // intact (each record is crc'd), so cut the residue and carry on.
      truncations.add(1);
      shard.truncate_to(tail_is_pad ? tail_pad_begin : offset);
      return;
    }
    if (status != RecordStatus::kOk) throw corrupt(offset, to_string(status));
    switch (view.op) {
      case OpType::kRegister: {
        if (index_.count(view.device_id) != 0)
          throw corrupt(offset, "REGISTER for already-registered device " +
                                    std::to_string(view.device_id));
        std::uint32_t puf_count = 0;
        std::uint32_t stages = 0;
        if (peek_model_shape(view.payload, view.payload_len, puf_count, stages) !=
                RecordStatus::kOk ||
            view.payload_len != model_payload_bytes(puf_count, stages))
          throw corrupt(offset, "malformed model payload");
        index_[view.device_id] =
            DeviceRecord{k, view.begin, view.end - view.begin, puf_count, stages};
        ledgers_[view.device_id];
        break;
      }
      case OpType::kRevoke: {
        if (view.payload_len != 0) throw corrupt(offset, "REVOKE with a payload");
        const auto it = ledgers_.find(view.device_id);
        if (it == ledgers_.end() || index_.erase(view.device_id) == 0)
          throw corrupt(offset, "REVOKE for unknown device " +
                                    std::to_string(view.device_id));
        shard_ledger_total_[k].fetch_sub(it->second.size(), std::memory_order_relaxed);
        ledgers_.erase(it);
        if (const auto pit = pools_.find(view.device_id); pit != pools_.end()) {
          pool_undrained_ -= pit->second.count - pit->second.head;
          pools_.erase(pit);
        }
        break;
      }
      case OpType::kIssue: {
        const auto it = ledgers_.find(view.device_id);
        if (it == ledgers_.end())
          throw corrupt(offset, "orphaned ISSUE record for unknown device " +
                                    std::to_string(view.device_id) +
                                    " — issued challenges must never be forgotten");
        std::uint32_t stages = 0;
        std::vector<std::string> keys;
        if (decode_ledger(view.payload, view.payload_len, stages, keys) != RecordStatus::kOk)
          throw corrupt(offset, "malformed ledger payload");
        if (stages != index_.at(view.device_id).stages)
          throw corrupt(offset, "ledger geometry does not match the registered model");
        std::uint64_t inserted = 0;
        for (std::string& key : keys)
          if (it->second.insert(std::move(key)).second) ++inserted;
        shard_ledger_total_[k].fetch_add(inserted, std::memory_order_relaxed);
        break;
      }
      case OpType::kPool: {
        if (index_.count(view.device_id) == 0)
          throw corrupt(offset, "POOL record for unknown device " +
                                    std::to_string(view.device_id));
        PoolPayload pool;
        if (decode_pool(view.payload, view.payload_len, pool) != RecordStatus::kOk)
          throw corrupt(offset, "malformed pool payload");
        if (pool.stages != index_.at(view.device_id).stages)
          throw corrupt(offset, "pool geometry does not match the registered model");
        // Append order is authority: a refill's record supersedes its
        // predecessor. head restarts at 0 — the replay ledger screens out
        // the already-issued prefix on the first post-crash drain.
        if (const auto pit = pools_.find(view.device_id); pit != pools_.end())
          pool_undrained_ -= pit->second.count - pit->second.head;
        pool_undrained_ += pool.keys.size();
        pools_[view.device_id] =
            PoolSlot{k, view.begin, view.end - view.begin,
                     static_cast<std::uint32_t>(pool.keys.size()), 0, pool.epoch,
                     pool.cursor};
        break;
      }
      case OpType::kPad: {
        if (view.payload_len > kMaxPadBytes)
          throw corrupt(offset, "PAD record longer than any alignment gap");
        break;
      }
    }
    tail_is_pad = view.op == OpType::kPad;
    tail_pad_begin = view.begin;
    offset = view.end;
  }
  if (tail_is_pad) {
    // The log ends in a complete pad whose REGISTER never made it to disk:
    // the append was torn exactly at the pad/record boundary.
    truncations.add(1);
    shard.truncate_to(tail_pad_begin);
  }
}

std::vector<std::uint64_t> EnrollmentStore::device_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(index_.size());
  for (const auto& [id, rec] : index_) ids.push_back(id);
  return ids;
}

const DeviceRecord& EnrollmentStore::device_record(std::uint64_t device_id) const {
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  return it->second;
}

void EnrollmentStore::append_record(std::uint32_t shard,
                                    const std::vector<std::uint8_t>& bytes) {
  XPUF_REQUIRE(shard < n_shards(), "shard index out of range");
  std::lock_guard<std::mutex> lock(shard_mu_[shard]);
  log_.shard(shard).append(bytes);
}

void EnrollmentStore::register_device(ServerModel model) {
  XPUF_REQUIRE(!knows(model.chip_id()), "device already registered");
  XPUF_REQUIRE(model.puf_count() >= 1 && model.puf_count() <= kMaxPufsPerModel,
               "model PUF count outside store bounds");
  XPUF_REQUIRE(model.stages() >= 1 && model.stages() <= kMaxStagesPerModel,
               "model stage count outside store bounds");
  static Counter& evictions = MetricsRegistry::global().counter("db.cache_evictions");
  const std::uint64_t id = model.chip_id();
  const std::uint32_t k = log_.shard_of(id);
  std::vector<std::uint8_t> bytes;
  std::uint64_t end = 0;
  std::uint64_t record_len = 0;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[k]);
    // Pad to an 8-byte file offset first so the REGISTER record's f64
    // region is mmap-servable without a decode.
    append_alignment_pad(bytes, log_.shard(k).size());
    const std::size_t pad_bytes = bytes.size();
    encode_record(bytes, OpType::kRegister, id, encode_model(model));
    record_len = bytes.size() - pad_bytes;
    end = log_.shard(k).append(bytes);
  }
  index_[id] = DeviceRecord{k, end - record_len, record_len,
                            static_cast<std::uint32_t>(model.puf_count()),
                            static_cast<std::uint32_t>(model.stages())};
  ledgers_[id];
  auto shared = std::make_shared<const ServerModel>(std::move(model));
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    evictions.add(cache_.put(id, std::move(shared)));
  }
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(index_.size()));
}

void EnrollmentStore::revoke_device(std::uint64_t device_id) {
  XPUF_REQUIRE(knows(device_id), "revoking an unknown device");
  const std::uint32_t k = log_.shard_of(device_id);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, OpType::kRevoke, device_id, {});
  append_record(k, bytes);
  shard_ledger_total_[k].fetch_sub(ledgers_.at(device_id).size(),
                                   std::memory_order_relaxed);
  index_.erase(device_id);
  ledgers_.erase(device_id);
  {
    std::lock_guard<std::mutex> lock(*pool_mu_);
    if (const auto pit = pools_.find(device_id); pit != pools_.end()) {
      pool_undrained_ -= pit->second.count - pit->second.head;
      pools_.erase(pit);
    }
  }
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    cache_.erase(device_id);
  }
  refresh_ledger_gauges(k);
  static Gauge& devices = MetricsRegistry::global().gauge("db.devices");
  devices.set(static_cast<double>(index_.size()));
}

std::shared_ptr<const ServerModel> EnrollmentStore::model(std::uint64_t device_id) const {
  auto& registry = MetricsRegistry::global();
  static Counter& hits = registry.counter("db.cache_hits");
  static Counter& misses = registry.counter("db.cache_misses");
  static Counter& evictions = registry.counter("db.cache_evictions");
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    if (auto cached = cache_.get(device_id)) {
      hits.add(1);
      return cached;
    }
  }
  misses.add(1);
  const DeviceRecord& rec = it->second;
  std::vector<std::uint8_t> bytes;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[rec.shard]);
    log_.shard(rec.shard).read_at(rec.offset, rec.length, bytes);
  }
  RecordView view;
  if (decode_record(bytes.data(), bytes.size(), 0, view) != RecordStatus::kOk ||
      view.op != OpType::kRegister || view.device_id != device_id)
    throw ParseError("stored REGISTER record for device " + std::to_string(device_id) +
                     " is corrupt");
  auto decoded = std::make_shared<ServerModel>();
  if (decode_model(view.payload, view.payload_len, device_id, *decoded) != RecordStatus::kOk)
    throw ParseError("stored model payload for device " + std::to_string(device_id) +
                     " is corrupt");
  std::shared_ptr<const ServerModel> shared = std::move(decoded);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    evictions.add(cache_.put(device_id, shared));
  }
  return shared;
}

ModelView EnrollmentStore::model_view(std::uint64_t device_id) const {
  auto& registry = MetricsRegistry::global();
  static Counter& hits = registry.counter("db.cache_hits");
  static Counter& mmap_hits = registry.counter("db.mmap_hits");
  static Counter& mmap_bytes = registry.counter("db.mmap_bytes");
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    if (auto cached = cache_.get(device_id)) {
      hits.add(1);
      return ModelView::of(std::move(cached));
    }
  }
  const DeviceRecord& rec = it->second;
  // Zero-copy cold path: when the REGISTER record sits inside the shard's
  // frozen mapping, crc-check it in place and hand out spans over the mapped
  // bytes. Deliberately bypasses the LRU — the point is that cold lookups
  // cost no decode and no resident copy.
  if (const std::shared_ptr<const MappedFile> map = maps_[rec.shard];
      map != nullptr && rec.offset + rec.length <= map->size()) {
    RecordView view;
    if (decode_record(map->data(), map->size(), rec.offset, view) != RecordStatus::kOk ||
        view.op != OpType::kRegister || view.device_id != device_id)
      throw ParseError("mapped REGISTER record for device " + std::to_string(device_id) +
                       " is corrupt");
    ModelView out;
    if (model_view_from_payload(view.payload, view.payload_len, device_id, map, out)) {
      mmap_hits.add(1);
      mmap_bytes.add(rec.length);
      return out;
    }
    // Misaligned record (written before aligned appends existed): fall
    // through to the decode path, which serves any store.
  }
  return ModelView::of(model(device_id));
}

void EnrollmentStore::remap_shard(std::uint32_t k) {
  maps_[k] = MappedFile::map_prefix(log_.shard(k).path(), log_.shard(k).size());
}

void EnrollmentStore::record_pool(std::uint64_t device_id, const PoolPayload& pool) {
  const auto it = index_.find(device_id);
  XPUF_REQUIRE(it != index_.end(), "unknown device id");
  XPUF_REQUIRE(pool.stages == it->second.stages,
               "pool geometry does not match the registered model");
  const std::uint32_t k = log_.shard_of(device_id);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, OpType::kPool, device_id, encode_pool(pool));
  std::uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[k]);
    end = log_.shard(k).append(bytes);
  }
  std::lock_guard<std::mutex> lock(*pool_mu_);
  if (const auto pit = pools_.find(device_id); pit != pools_.end())
    pool_undrained_ -= pit->second.count - pit->second.head;
  pool_undrained_ += pool.keys.size();
  pools_[device_id] = PoolSlot{k, end - bytes.size(), bytes.size(),
                               static_cast<std::uint32_t>(pool.keys.size()), 0,
                               pool.epoch, pool.cursor};
}

bool EnrollmentStore::pool_slot(std::uint64_t device_id, PoolSlot& out) const {
  std::lock_guard<std::mutex> lock(*pool_mu_);
  const auto it = pools_.find(device_id);
  if (it == pools_.end()) return false;
  out = it->second;
  return true;
}

void EnrollmentStore::set_pool_head(std::uint64_t device_id, std::uint32_t head) {
  std::lock_guard<std::mutex> lock(*pool_mu_);
  const auto it = pools_.find(device_id);
  XPUF_REQUIRE(it != pools_.end(), "device has no pool");
  XPUF_REQUIRE(head >= it->second.head && head <= it->second.count,
               "pool head must advance monotonically within the record");
  pool_undrained_ -= head - it->second.head;
  it->second.head = head;
}

std::uint64_t EnrollmentStore::pool_entries_total() const {
  std::lock_guard<std::mutex> lock(*pool_mu_);
  return pool_undrained_;
}

bool EnrollmentStore::read_pool(std::uint64_t device_id, PoolPayload& out) const {
  PoolSlot slot;
  if (!pool_slot(device_id, slot)) return false;
  std::vector<std::string> keys;
  std::vector<std::uint8_t> expected;
  read_pool_slice(device_id, 0, slot.count, keys, expected);
  out.stages = index_.at(device_id).stages;
  out.epoch = slot.epoch;
  out.cursor = slot.cursor;
  out.keys = std::move(keys);
  out.expected = std::move(expected);
  return true;
}

void EnrollmentStore::read_pool_slice(std::uint64_t device_id, std::uint32_t first,
                                      std::uint32_t n, std::vector<std::string>& keys,
                                      std::vector<std::uint8_t>& expected) const {
  PoolSlot slot;
  XPUF_REQUIRE(pool_slot(device_id, slot), "device has no pool");
  XPUF_REQUIRE(first <= slot.count && n <= slot.count - first,
               "pool slice out of range");
  const auto corrupt = [&] {
    return ParseError("stored POOL record for device " + std::to_string(device_id) +
                      " is corrupt");
  };
  // Validate the whole record (crc) on every read — pool bytes gate what the
  // server issues, so they get the same per-read skepticism as the mapped
  // model path. Served in place from the shard mapping when covered; a
  // record appended after the mapping was frozen is fetched with one pread.
  const std::shared_ptr<const MappedFile> map = maps_[slot.shard];
  std::vector<std::uint8_t> bytes;
  const std::uint8_t* base = nullptr;
  std::uint64_t base_size = 0;
  std::uint64_t record_at = 0;
  if (map != nullptr && slot.offset + slot.length <= map->size()) {
    base = map->data();
    base_size = map->size();
    record_at = slot.offset;
  } else {
    std::lock_guard<std::mutex> lock(shard_mu_[slot.shard]);
    log_.shard(slot.shard).read_at(slot.offset, slot.length, bytes);
    base = bytes.data();
    base_size = bytes.size();
  }
  RecordView view;
  if (decode_record(base, base_size, record_at, view) != RecordStatus::kOk ||
      view.op != OpType::kPool || view.device_id != device_id)
    throw corrupt();
  // Slice extraction without decode_pool: materialize only [first, first+n).
  RecordReader reader(view.payload, view.payload_len);
  std::uint32_t count = 0;
  std::uint32_t stages = 0;
  if (!reader.read_u32(count) || !reader.read_u32(stages) || count != slot.count)
    throw corrupt();
  const std::uint64_t row = (static_cast<std::uint64_t>(stages) + 7) / 8;
  const std::uint64_t bitmap = (static_cast<std::uint64_t>(count) + 7) / 8;
  if (!reader.skip(16) || reader.remaining() != bitmap + count * row) throw corrupt();
  const std::uint8_t* bits = view.payload + reader.position();
  const std::uint8_t* rows = bits + bitmap;
  keys.reserve(keys.size() + n);
  expected.reserve(expected.size() + n);
  for (std::uint32_t i = first; i < first + n; ++i) {
    keys.emplace_back(reinterpret_cast<const char*>(rows + i * row),
                      static_cast<std::size_t>(row));
    expected.push_back(static_cast<std::uint8_t>((bits[i / 8] >> (i % 8)) & 1u));
  }
}

std::set<std::string>& EnrollmentStore::ledger(std::uint64_t device_id) {
  const auto it = ledgers_.find(device_id);
  XPUF_REQUIRE(it != ledgers_.end(), "unknown device id");
  return it->second;
}

const std::set<std::string>& EnrollmentStore::ledger(std::uint64_t device_id) const {
  const auto it = ledgers_.find(device_id);
  XPUF_REQUIRE(it != ledgers_.end(), "unknown device id");
  return it->second;
}

void EnrollmentStore::record_issued(std::uint64_t device_id, std::uint32_t stages,
                                    const std::vector<std::string>& fresh) {
  XPUF_REQUIRE(knows(device_id), "unknown device id");
  if (fresh.empty()) return;
  const std::uint32_t k = log_.shard_of(device_id);
  std::vector<std::uint8_t> bytes;
  append_issue_records(bytes, device_id, stages, fresh.begin(), fresh.end());
  append_record(k, bytes);
  shard_ledger_total_[k].fetch_add(fresh.size(), std::memory_order_relaxed);
  refresh_ledger_gauges(k);
}

std::uint64_t EnrollmentStore::issued_total() const {
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < n_shards(); ++k)
    total += shard_ledger_total_[k].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t EnrollmentStore::shard_issued_total(std::uint32_t k) const {
  XPUF_REQUIRE(k < n_shards(), "shard index out of range");
  return shard_ledger_total_[k].load(std::memory_order_relaxed);
}

void EnrollmentStore::refresh_ledger_gauges(std::uint32_t shard) const {
  static Gauge& fleet = MetricsRegistry::global().gauge("db.ledger_size");
  fleet.set(static_cast<double>(issued_total()));
  shard_gauges_[shard]->set(
      static_cast<double>(shard_ledger_total_[shard].load(std::memory_order_relaxed)));
}

void EnrollmentStore::compact() {
  XPUF_TRACE_SPAN("db.compact");
  for (std::uint32_t k = 0; k < n_shards(); ++k) {
    std::vector<std::uint8_t> fresh;
    std::map<std::uint64_t, DeviceRecord> rewritten;
    std::map<std::uint64_t, PoolSlot> rewritten_pools;
    for (const auto& [id, rec] : index_) {
      if (rec.shard != k) continue;
      // Copy the REGISTER record bytes verbatim: the model survives
      // compaction bit-exactly without ever being decoded. The pad keeps
      // its f64 region 8-aligned so the rewritten shard is mmap-servable
      // even when the original (pre-alignment) store was not.
      append_alignment_pad(fresh);
      std::vector<std::uint8_t> record_bytes;
      log_.shard(k).read_at(rec.offset, rec.length, record_bytes);
      DeviceRecord updated = rec;
      updated.offset = fresh.size();
      fresh.insert(fresh.end(), record_bytes.begin(), record_bytes.end());
      rewritten[id] = updated;
      const std::set<std::string>& keys = ledgers_.at(id);
      append_issue_records(fresh, id, rec.stages, keys.begin(), keys.end());
      PoolSlot slot;
      if (pool_slot(id, slot)) {
        // The latest POOL record also travels verbatim; head/epoch/cursor
        // are slot state, only the location changes.
        std::vector<std::uint8_t> pool_bytes;
        log_.shard(k).read_at(slot.offset, slot.length, pool_bytes);
        slot.offset = fresh.size();
        fresh.insert(fresh.end(), pool_bytes.begin(), pool_bytes.end());
        rewritten_pools[id] = slot;
      }
    }
    if (fresh.empty()) {
      // No live devices route here; truncating (one syscall) beats renaming
      // an empty file into place, and replay of an empty shard is a no-op.
      log_.shard(k).truncate_to(0);
    } else {
      log_.shard(k).replace_with(fresh);
    }
    for (const auto& [id, rec] : rewritten) index_[id] = rec;
    {
      std::lock_guard<std::mutex> lock(*pool_mu_);
      for (const auto& [id, slot] : rewritten_pools) pools_[id] = slot;
    }
    // Swap in a mapping of the rewritten shard; views handed out over the
    // old mapping keep it alive until they die.
    remap_shard(k);
  }
}

std::size_t EnrollmentStore::cache_size() const {
  std::lock_guard<std::mutex> lock(*cache_mu_);
  return cache_.size();
}

void write_snapshot(const std::string& dir, std::uint32_t default_shards,
                    const std::map<std::size_t, ServerModel>& models,
                    const std::map<std::size_t, std::set<std::string>>& ledgers) {
  XPUF_REQUIRE(default_shards > 0, "write_snapshot: zero shards");
  ensure_directory(dir);
  std::uint32_t n_shards = default_shards;
  if (!read_manifest(dir, n_shards))
    write_file_atomic(dir + "/store_manifest", encode_manifest(n_shards));
  std::vector<std::vector<std::uint8_t>> buffers(n_shards);
  for (const auto& [id, m] : models) {
    std::vector<std::uint8_t>& out = buffers[id % n_shards];
    append_alignment_pad(out);
    encode_record(out, OpType::kRegister, id, encode_model(m));
    const auto lit = ledgers.find(id);
    if (lit == ledgers.end() || lit->second.empty()) continue;
    append_issue_records(out, id, static_cast<std::uint32_t>(m.stages()),
                         lit->second.begin(), lit->second.end());
  }
  namespace fs = std::filesystem;
  for (std::uint32_t k = 0; k < n_shards; ++k) {
    const std::string path = dir + "/shard_" + std::to_string(k) + ".log";
    if (buffers[k].empty()) {
      // A shard with no surviving devices is represented by file absence —
      // a crash right here just leaves an empty-equivalent old file.
      fs::remove(path);
      fs::remove(path + ".tmp");
    } else {
      write_file_atomic(path, buffers[k]);
    }
  }
}

}  // namespace xpuf::puf::store
